//! Criterion benchmark of whole optimizer iterations on a cheap synthetic
//! problem: the fixed per-simulation overhead each method adds.

use criterion::{criterion_group, criterion_main, Criterion};
use dnn_opt::{DnnOpt, DnnOptConfig};
use opt::{
    DifferentialEvolution, Fom, Gaspad, Optimizer, SizingProblem, SpecResult, StopPolicy,
};

struct Cheap;
impl SizingProblem for Cheap {
    fn dim(&self) -> usize {
        10
    }
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; 10], vec![1.0; 10])
    }
    fn num_constraints(&self) -> usize {
        3
    }
    fn evaluate(&self, x: &[f64]) -> SpecResult {
        SpecResult {
            objective: x.iter().map(|v| (v - 0.4).powi(2)).sum(),
            constraints: vec![0.2 - x[0], 0.2 - x[1], x.iter().sum::<f64>() - 8.0],
        }
    }
}

fn bench_iterations(c: &mut Criterion) {
    let fom = Fom::uniform(1.0, 3);

    c.bench_function("de_60_sims", |b| {
        b.iter(|| DifferentialEvolution::default().run(&Cheap, &fom, 60, StopPolicy::Exhaust, 0))
    });

    c.bench_function("gaspad_60_sims", |b| {
        b.iter(|| Gaspad::default().run(&Cheap, &fom, 60, StopPolicy::Exhaust, 0))
    });

    c.bench_function("dnn_opt_30_sims", |b| {
        let cfg = DnnOptConfig {
            critic_epochs: 60,
            actor_epochs: 20,
            critic_batch: 64,
            hidden: 24,
            ..Default::default()
        };
        b.iter(|| DnnOpt::new(cfg.clone()).run(&Cheap, &fom, 30, StopPolicy::Exhaust, 0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_iterations
}
criterion_main!(benches);
