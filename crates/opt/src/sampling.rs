//! Design-space sampling helpers shared by every optimizer.

use rand::Rng;

/// Draws `n` uniform samples inside the box `[lb, ub]`.
///
/// # Panics
///
/// Panics if `lb.len() != ub.len()`.
pub fn sample_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    lb: &[f64],
    ub: &[f64],
    n: usize,
) -> Vec<Vec<f64>> {
    assert_eq!(lb.len(), ub.len(), "bound length mismatch");
    (0..n)
        .map(|_| {
            lb.iter()
                .zip(ub)
                .map(|(&l, &u)| if u > l { rng.gen_range(l..u) } else { l })
                .collect()
        })
        .collect()
}

/// Latin-hypercube sampling: `n` points, one per axis stratum in each
/// dimension, uniformly jittered within strata. Gives better coverage than
/// plain uniform sampling for the small initial populations DNN-Opt uses.
///
/// # Panics
///
/// Panics if `lb.len() != ub.len()` or `n == 0`.
pub fn latin_hypercube<R: Rng + ?Sized>(
    rng: &mut R,
    lb: &[f64],
    ub: &[f64],
    n: usize,
) -> Vec<Vec<f64>> {
    assert_eq!(lb.len(), ub.len(), "bound length mismatch");
    assert!(n > 0, "need at least one sample");
    let d = lb.len();
    let mut out = vec![vec![0.0; d]; n];
    for j in 0..d {
        // A random permutation of strata for this dimension.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let k = rng.gen_range(0..=i);
            perm.swap(i, k);
        }
        for (i, &stratum) in perm.iter().enumerate() {
            let u = (stratum as f64 + rng.gen::<f64>()) / n as f64;
            out[i][j] = if ub[j] > lb[j] {
                lb[j] + u * (ub[j] - lb[j])
            } else {
                lb[j]
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let lb = vec![-1.0, 10.0];
        let ub = vec![1.0, 20.0];
        for x in sample_uniform(&mut rng, &lb, &ub, 100) {
            assert!(x[0] >= -1.0 && x[0] < 1.0);
            assert!(x[1] >= 10.0 && x[1] < 20.0);
        }
    }

    #[test]
    fn lhs_stratifies_each_dimension() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10;
        let pts = latin_hypercube(&mut rng, &[0.0], &[1.0], n);
        // Exactly one point per [k/n, (k+1)/n) stratum.
        let mut seen = vec![false; n];
        for p in &pts {
            let k = ((p[0] * n as f64) as usize).min(n - 1);
            assert!(!seen[k], "stratum {k} hit twice");
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn lhs_multidimensional_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let lb = vec![0.0, -5.0, 100.0];
        let ub = vec![1.0, 5.0, 200.0];
        for x in latin_hypercube(&mut rng, &lb, &ub, 17) {
            for j in 0..3 {
                assert!(x[j] >= lb[j] && x[j] <= ub[j]);
            }
        }
    }

    #[test]
    fn degenerate_bounds_collapse() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = sample_uniform(&mut rng, &[2.0], &[2.0], 5);
        assert!(pts.iter().all(|p| p[0] == 2.0));
        let pts = latin_hypercube(&mut rng, &[2.0], &[2.0], 5);
        assert!(pts.iter().all(|p| p[0] == 2.0));
    }

    #[test]
    fn seeded_runs_reproduce() {
        let a = sample_uniform(&mut StdRng::seed_from_u64(9), &[0.0], &[1.0], 5);
        let b = sample_uniform(&mut StdRng::seed_from_u64(9), &[0.0], &[1.0], 5);
        assert_eq!(a, b);
    }
}
