//! The industrial flow on the CTLE (paper §III-B): sensitivity pruning
//! (Eq. 7) followed by a DNN-Opt run on the reduced problem.
//!
//! Run with `cargo run --release --example industrial_ctle`.

use circuits::Ctle;
use dnn_opt::{DnnOpt, DnnOptConfig, ReducedProblem, SensitivityReport};
use opt::{Fom, Optimizer, SizingProblem, StopPolicy};

fn main() {
    let ctle = Ctle::new();
    println!(
        "CTLE: {} variables, {} constraints, ~{:.0}k devices (array-expanded)",
        ctle.dim(),
        ctle.num_constraints(),
        ctle.device_count() / 1e3
    );

    // Sensitivity analysis around the designer's starting point.
    let nominal = ctle.nominal();
    let report = SensitivityReport::compute(&ctle, &nominal, 0.05);
    println!("\n== sensitivity scores (Eq. 7) ==\n{}", report.table());
    let critical = report.critical_variables(0.1);
    println!("critical variables: {critical:?}");

    // Optimize only the critical subset.
    let reduced = ReducedProblem::new(&ctle, nominal, critical);
    let fom = Fom::new(100.0, vec![0.5; reduced.num_constraints()]);
    let run =
        DnnOpt::new(DnnOptConfig::default()).run(&reduced, &fom, 120, StopPolicy::FirstFeasible, 0);
    match run.sims_to_feasible() {
        Some(n) => println!("\nDNN-Opt met all 14 constraints after {n} simulations"),
        None => println!("\nno feasible design within 120 simulations"),
    }
}
