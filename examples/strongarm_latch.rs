//! Evaluate and size the StrongARM latch comparator (paper Fig. 5 /
//! Table III / Eq. 10).
//!
//! Run with `cargo run --release --example strongarm_latch -- [budget]`.

use circuits::StrongArmLatch;
use dnn_opt::{DnnOpt, DnnOptConfig};
use opt::{Fom, Optimizer, SizingProblem, StopPolicy};

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);
    let latch = StrongArmLatch::new();

    println!("== nominal latch against Eq. 10 ==");
    let spec = latch.evaluate(&latch.nominal());
    println!("power    : {:.2} µW at 25 MHz", spec.objective * 1e6);
    println!("feasible : {}", spec.feasible());
    for (i, c) in spec.constraints.iter().enumerate() {
        let name = [
            "set delay",
            "reset delay",
            "area",
            "input noise",
            "diff reset V",
            "diff set V",
            "xp residual",
            "xn residual",
            "outp residual",
            "outn residual",
        ][i];
        println!(
            "  {:<14} {:>8.3} {}",
            name,
            c,
            if *c > 0.0 { "VIOLATED" } else { "ok" }
        );
    }

    println!("\n== DNN-Opt sizing run (budget {budget}) ==");
    let fom = Fom::new(3e4, vec![0.25; latch.num_constraints()]);
    let run =
        DnnOpt::new(DnnOptConfig::default()).run(&latch, &fom, budget, StopPolicy::Exhaust, 1);
    println!(
        "best FoM : {:.3}",
        run.history.best().map(|e| e.fom).unwrap_or(f64::NAN)
    );
    match run.history.best_feasible() {
        Some(e) => println!("feasible : {:.2} µW", e.spec.objective * 1e6),
        None => println!("no feasible design inside this budget (paper needs ~330 sims)"),
    }
}
