//! DC operating point and DC sweeps.
//!
//! The operating point is found by damped Newton-Raphson on the resistive
//! MNA system (capacitors open). When plain NR fails, the solver falls back
//! to gmin stepping (continuation in the diagonal loading conductance) and
//! then to source stepping (continuation in the source scale factor), the
//! same strategies production SPICE engines use.

use std::collections::HashMap;

use linalg::Lu;

use crate::diag::{FailureDiag, FailureKind, LadderStage, NewtonFailure};
use crate::error::SpiceError;
use crate::mos::{MosEval, MosRegion};
use crate::netlist::{Circuit, Device, NodeId};
use crate::options::SimOptions;
use crate::stamp::{node_voltage, stamp_resistive_system, Assemble, SourceEval, Stamp};
use crate::workspace::{NewtonWorkspace, SolveMode, SparseStep, StampKind};

/// Per-MOSFET operating-point report.
#[derive(Debug, Clone, Copy)]
pub struct MosOp {
    /// Drain current (into the drain) \[A\].
    pub id: f64,
    /// Gate-source voltage \[V\].
    pub vgs: f64,
    /// Drain-source voltage \[V\].
    pub vds: f64,
    /// Bulk-source voltage \[V\].
    pub vbs: f64,
    /// Effective threshold magnitude \[V\].
    pub vth: f64,
    /// Saturation voltage \[V\].
    pub vdsat: f64,
    /// Saturation margin `|vds| − vdsat` \[V\].
    pub vsat_margin: f64,
    /// Transconductance \[S\].
    pub gm: f64,
    /// Output conductance \[S\].
    pub gds: f64,
    /// Bulk transconductance \[S\].
    pub gmb: f64,
    /// Operating region.
    pub region: MosRegion,
}

impl MosOp {
    /// True if the device operates in saturation with at least `margin`
    /// volts of headroom (the paper's "saturation margin" constraints).
    pub fn saturated_with_margin(&self, margin: f64) -> bool {
        self.vsat_margin >= margin
    }
}

/// Solved DC operating point.
#[derive(Debug, Clone)]
pub struct OpPoint {
    /// Node voltages indexed by [`NodeId`] (entry 0 is ground).
    v: Vec<f64>,
    /// Branch currents in branch order.
    branch_currents: Vec<f64>,
    /// Per-MOSFET operating data, keyed by instance name.
    mos: HashMap<String, MosOp>,
    /// Raw unknown vector (for warm starts).
    x: Vec<f64>,
    /// NR iterations used by the successful solve.
    pub iterations: usize,
}

impl OpPoint {
    /// Voltage of a node \[V\].
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn voltage(&self, n: NodeId) -> f64 {
        self.v[n]
    }

    /// All node voltages (index = [`NodeId`]).
    pub fn voltages(&self) -> &[f64] {
        &self.v
    }

    /// Current through a voltage source, positive flowing from its `p`
    /// terminal into the source (SPICE convention: a battery delivering
    /// power reports negative current).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownDevice`] if the name does not refer to a
    /// voltage source or VCVS in `circuit`.
    pub fn source_current(&self, circuit: &Circuit, name: &str) -> Result<f64, SpiceError> {
        let idx = circuit
            .device_index(name)
            .ok_or_else(|| SpiceError::UnknownDevice {
                name: name.to_string(),
            })?;
        match &circuit.devices()[idx] {
            Device::VSource { branch, .. } | Device::Vcvs { branch, .. } => {
                Ok(self.branch_currents[*branch])
            }
            _ => Err(SpiceError::UnknownDevice {
                name: name.to_string(),
            }),
        }
    }

    /// Operating-point data of a MOSFET by instance name.
    pub fn mos_op(&self, name: &str) -> Option<&MosOp> {
        self.mos.get(name)
    }

    /// All MOSFET operating points, keyed by instance name.
    pub fn mos_ops(&self) -> &HashMap<String, MosOp> {
        &self.mos
    }

    /// Raw unknown vector (node voltages then branch currents), usable as a
    /// warm start for subsequent solves.
    pub fn raw(&self) -> &[f64] {
        &self.x
    }
}

/// Generic damped Newton loop shared by the DC and transient engines.
///
/// `assemble` must fill the (cleared) stamper with the full linearized
/// system at the given unknown vector. Two robustness devices on top of
/// plain Newton:
///
/// - a per-iteration voltage limiter (`opts.v_limit`), the classic SPICE
///   damping;
/// - adaptive relaxation: when `max_dv` stops shrinking (a 2-cycle between
///   two linearizations, common with piecewise device models), the applied
///   fraction of the Newton step is reduced, which provably breaks period-2
///   oscillations; it recovers geometrically once progress resumes.
///
/// All solver state lives in `ws`, so one iteration performs no heap
/// allocation: the stamper, LU (dense or sparse) factors, and step vector
/// are reused across iterations, retries, and (for the transient engine)
/// timesteps.
///
/// The linear kernel is selected per `(topology, kind)` by
/// [`NewtonWorkspace::prepare`]: large, sparse systems assemble through a
/// recorded stamp→slot map into CSC storage and run one pivoting sparse
/// factorization per solve session followed by scan-free numeric
/// refactorizations; everything else uses the dense workspace kernel,
/// which also remains the universal fallback path.
pub(crate) fn newton_loop<A: Assemble>(
    circuit: &Circuit,
    opts: &SimOptions,
    max_iters: usize,
    x0: &[f64],
    ws: &mut NewtonWorkspace,
    kind: StampKind,
    assemble: A,
) -> Result<(Vec<f64>, usize), NewtonFailure> {
    if !telemetry::enabled() {
        return newton_loop_inner(circuit, opts, max_iters, x0, ws, kind, assemble);
    }
    let _solve = telemetry::span(telemetry::SpanId::Solve);
    let out = newton_loop_inner(circuit, opts, max_iters, x0, ws, kind, assemble);
    let iters = match &out {
        Ok((_, it)) => *it,
        Err(e) => e.iterations,
    };
    telemetry::record(telemetry::Metric::NewtonIterations, iters as u64);
    if let Err(e) = &out {
        if e.injected {
            telemetry::record(telemetry::Metric::FaultsInjected, 1);
            telemetry::instant(telemetry::SpanId::Fault, e.kind as u64);
        }
    }
    out
}

fn newton_loop_inner<A: Assemble>(
    circuit: &Circuit,
    opts: &SimOptions,
    max_iters: usize,
    x0: &[f64],
    ws: &mut NewtonWorkspace,
    kind: StampKind,
    mut assemble: A,
) -> Result<(Vec<f64>, usize), NewtonFailure> {
    // Deterministic fault hook: one relaxed atomic load when disabled; an
    // active plan forces the planned failure at its chosen solve indices.
    if let Some(fault) = crate::fault::next_solve_fault() {
        return Err(NewtonFailure {
            kind: fault.failure_kind(),
            iterations: if fault == crate::fault::FaultKind::IterationExhaustion {
                max_iters
            } else {
                0
            },
            injected: true,
        });
    }
    let trace = std::env::var_os("SPICE_DEBUG").is_some();
    let n = circuit.num_unknowns();
    let n_v = circuit.num_nodes() - 1;
    let mut x = x0.to_vec();
    let mut converged_once = false;
    let mut relax = 1.0_f64;
    let mut prev_dv = f64::INFINITY;
    let mut prev_damp = 1.0_f64;
    ws.ensure(circuit);
    let mut mode = ws.prepare(circuit, kind, &mut assemble, x0);
    // One Newton solve = one constant-segment preload: split sparse plans
    // stamp the x-independent writes (linear devices, sources at this
    // solve's time/scale, capacitor companions) once here-after, and
    // replay only the MOS slots per iteration.
    ws.begin_solve();
    let fail = |kind: FailureKind, iterations: usize| NewtonFailure {
        kind,
        iterations,
        injected: false,
    };
    for iter in 0..max_iters {
        let mut solved = false;
        if mode == SolveMode::Sparse {
            match ws.sparse_step(kind, &x, &mut assemble) {
                SparseStep::Factored => solved = ws.sparse_solve(kind),
                // The dense kernel eliminates in a different (row-pivoted,
                // natural-order) sequence, so a pivot that collapsed under
                // the sparse ordering may still survive — fall back for the
                // rest of this solve rather than failing outright.
                SparseStep::Singular | SparseStep::Fallback => mode = SolveMode::Dense,
            }
        }
        if !solved {
            {
                let _asm = telemetry::span(telemetry::SpanId::Assembly);
                ws.st.clear();
                assemble.assemble(&x, &mut ws.st);
            }
            // `factor_in_place` steals the stamped matrix's storage (an
            // O(1) buffer swap) — the next iteration's `clear` + `assemble`
            // rebuild it from scratch anyway. A failed factor here is the
            // real singular-matrix verdict: the dense kernel is the last
            // fallback, so the cause must survive instead of collapsing
            // into the same `None` a NaN residual produces.
            if Lu::factor_in_place(&mut ws.st.a, &mut ws.lu).is_err() {
                return Err(fail(FailureKind::Singular, iter));
            }
            if ws.lu.solve_into(&ws.st.z, &mut ws.x_new).is_err() {
                return Err(fail(FailureKind::Singular, iter));
            }
        }
        let x_new = &ws.x_new;
        if x_new.iter().any(|v| !v.is_finite()) {
            return Err(fail(FailureKind::NanResidual, iter));
        }
        // Raw Newton step size on node voltages.
        let mut max_dv = 0.0_f64;
        for i in 0..n_v {
            max_dv = max_dv.max((x_new[i] - x[i]).abs());
        }
        let vmax = x[..n_v].iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let tol = opts.vabstol + opts.reltol * vmax;
        // Converged: the full Newton step is already below tolerance.
        if max_dv < tol {
            if converged_once {
                x[..n].copy_from_slice(&x_new[..n]);
                return Ok((x, iter + 1));
            }
            converged_once = true;
        } else {
            converged_once = false;
        }
        // Relaxation adaptation. A damped iteration on a locally linear
        // system shrinks the step by about (1 − damp) per pass, so judge
        // progress against that yardstick: clearly growing steps and steps
        // shrinking much slower than the damping allows both indicate
        // cycling between linearizations.
        let ratio = max_dv / prev_dv;
        if ratio > 1.05 {
            relax = (relax * 0.5).max(0.02);
        } else if ratio > 1.0 - 0.3 * prev_damp {
            relax = (relax * 0.7).max(0.02);
        } else {
            relax = (relax * 1.4).min(1.0);
        }
        prev_dv = max_dv;
        let damp = relax
            * if max_dv > opts.v_limit {
                opts.v_limit / max_dv
            } else {
                1.0
            };
        prev_damp = damp;
        for i in 0..n {
            x[i] += damp * (x_new[i] - x[i]);
        }
        if trace && iter >= max_iters.saturating_sub(6) {
            eprintln!("nr iter={iter} max_dv={max_dv:.3e} damp={damp:.3} relax={relax:.3}");
        }
    }
    if trace {
        eprintln!("nr FAILED after {max_iters} iters, last_dv={prev_dv:.3e}");
    }
    Err(fail(FailureKind::NoConvergence, max_iters))
}

/// The DC-resistive assembly: gmin loading plus the linearized resistive
/// stamps of every device at the given source scale.
struct DcAssemble<'a> {
    circuit: &'a Circuit,
    gmin: f64,
    scale: f64,
}

impl Assemble for DcAssemble<'_> {
    fn assemble<S: Stamp>(&mut self, x: &[f64], st: &mut S) {
        st.load_gmin(self.gmin);
        stamp_resistive_system(self.circuit, x, SourceEval::Dc { scale: self.scale }, st);
    }

    fn supports_split(&self) -> bool {
        true
    }

    fn assemble_constant<S: Stamp>(&mut self, st: &mut S) {
        st.load_gmin(self.gmin);
        crate::stamp::stamp_resistive_linear(
            self.circuit,
            SourceEval::Dc { scale: self.scale },
            st,
        );
    }

    fn assemble_varying<S: Stamp>(&mut self, x: &[f64], st: &mut S) {
        crate::stamp::stamp_resistive_mos(self.circuit, x, st);
    }
}

/// Newton-Raphson solve at fixed source scale and gmin. Returns the unknown
/// vector and iterations, or the classified failure.
fn nr_solve(
    circuit: &Circuit,
    opts: &SimOptions,
    gmin: f64,
    scale: f64,
    x0: &[f64],
    max_iters: usize,
    ws: &mut NewtonWorkspace,
) -> Result<(Vec<f64>, usize), NewtonFailure> {
    newton_loop(
        circuit,
        opts,
        max_iters,
        x0,
        ws,
        StampKind::Dc,
        DcAssemble {
            circuit,
            gmin,
            scale,
        },
    )
}

/// Builds the [`OpPoint`] report from a converged unknown vector.
fn build_op(circuit: &Circuit, x: Vec<f64>, iterations: usize) -> OpPoint {
    let n_nodes = circuit.num_nodes();
    let mut v = vec![0.0; n_nodes];
    for (i, vi) in v.iter_mut().enumerate().skip(1) {
        *vi = x[i - 1];
    }
    let branch_currents = x[(n_nodes - 1)..].to_vec();
    let mut mos = HashMap::new();
    for dev in circuit.devices() {
        if let Device::Mosfet {
            name,
            d,
            g,
            s,
            b,
            model,
            w,
            l,
            m,
            ..
        } = dev
        {
            let vgs = node_voltage(&x, *g) - node_voltage(&x, *s);
            let vds = node_voltage(&x, *d) - node_voltage(&x, *s);
            let vbs = node_voltage(&x, *b) - node_voltage(&x, *s);
            let e: MosEval = crate::mos::eval_mos(model, *w, *l, *m, vgs, vds, vbs);
            mos.insert(
                name.clone(),
                MosOp {
                    id: e.id,
                    vgs,
                    vds,
                    vbs,
                    vth: e.vth,
                    vdsat: e.vdsat,
                    vsat_margin: e.vsat_margin,
                    gm: e.gm,
                    gds: e.gds,
                    gmb: e.gmb,
                    region: e.region,
                },
            );
        }
    }
    OpPoint {
        v,
        branch_currents,
        mos,
        x,
        iterations,
    }
}

/// Computes the DC operating point.
///
/// # Errors
///
/// Returns [`SpiceError::NoConvergence`] when NR, gmin stepping and source
/// stepping all fail, or [`SpiceError::SingularMatrix`] if the topology is
/// structurally singular even with gmin loading.
pub fn op(circuit: &Circuit, opts: &SimOptions) -> Result<OpPoint, SpiceError> {
    op_with_guess(circuit, opts, None)
}

/// Computes the DC operating point starting from a warm-start guess
/// (the raw unknown vector of a previous, nearby solution).
///
/// # Errors
///
/// Same failure modes as [`op`].
pub fn op_with_guess(
    circuit: &Circuit,
    opts: &SimOptions,
    guess: Option<&[f64]>,
) -> Result<OpPoint, SpiceError> {
    // Lease from the process-wide pool so repeated solves on the same
    // topology (optimizer candidates, test sweeps) reuse the recorded
    // stamp→slot maps and factor storage even through this convenience
    // entry point.
    let mut ws = crate::workspace::lease_workspace(circuit);
    op_with_workspace(circuit, opts, guess, &mut ws)
}

/// Computes the DC operating point using caller-owned solver state.
///
/// The workspace (stamper, LU factors, step buffers) is reused across every
/// Newton iteration and every gmin/source-stepping retry, so the solve
/// performs no per-iteration allocation. Reuse one workspace across many
/// solves of the same topology (sweeps, optimizer populations) for the full
/// benefit; it resizes itself if the circuit's unknown count changes.
///
/// # Errors
///
/// Same failure modes as [`op`].
pub fn op_with_workspace(
    circuit: &Circuit,
    opts: &SimOptions,
    guess: Option<&[f64]>,
    ws: &mut NewtonWorkspace,
) -> Result<OpPoint, SpiceError> {
    let n = circuit.num_unknowns();
    if n == 0 {
        return Err(SpiceError::BadAnalysis {
            reason: "empty circuit".to_string(),
        });
    }
    ws.ensure(circuit);
    // New candidate/analysis: re-derive sparse pivot sequences from this
    // circuit's own values (the workspace-pooling determinism boundary).
    ws.begin_session();
    let x0 = guess.map(<[f64]>::to_vec).unwrap_or_else(|| vec![0.0; n]);

    // Recovery-ladder bookkeeping: total Newton iterations spent across
    // every stage (successful continuation steps included — that is the
    // retry budget this candidate burned), the deepest stage reached, and
    // the classified failure of the last stage to die.
    let mut spent = 0usize;
    let mut injected = false;

    // 1. Plain NR.
    match nr_solve(circuit, opts, opts.gmin, 1.0, &x0, opts.max_nr_iters, ws) {
        Ok((x, iters)) => return Ok(build_op(circuit, x, iters)),
        Err(e) => {
            spent += e.iterations;
            injected |= e.injected;
        }
    }

    // 2. Gmin stepping: heavy loading pulls every node toward ground,
    //    making the first solves nearly linear; relax it gradually.
    let mut x = x0.clone();
    let mut ok = true;
    let mut total = 0;
    for exp in 2..=12 {
        let gmin = 10f64.powi(-exp);
        telemetry::record(telemetry::Metric::GminSteps, 1);
        match nr_solve(circuit, opts, gmin, 1.0, &x, opts.max_nr_iters, ws) {
            Ok((xn, it)) => {
                x = xn;
                total += it;
            }
            Err(e) => {
                total += e.iterations;
                injected |= e.injected;
                ok = false;
                break;
            }
        }
    }
    if ok {
        match nr_solve(circuit, opts, opts.gmin, 1.0, &x, opts.max_nr_iters, ws) {
            Ok((xf, it)) => return Ok(build_op(circuit, xf, total + it)),
            Err(e) => {
                total += e.iterations;
                injected |= e.injected;
            }
        }
    }
    spent += total;

    // 3. Source stepping: ramp all independent sources from 10% to 100%.
    // The last stage of the ladder: its failure classifies the whole solve.
    let mut x = vec![0.0; n];
    let mut total = 0;
    for step in 1..=10 {
        let scale = step as f64 / 10.0;
        telemetry::record(telemetry::Metric::SourceSteps, 1);
        match nr_solve(circuit, opts, opts.gmin, scale, &x, opts.max_nr_iters, ws) {
            Ok((xn, it)) => {
                x = xn;
                total += it;
            }
            Err(e) => {
                return Err(SpiceError::Solver(FailureDiag {
                    kind: e.kind,
                    analysis: "dc operating point",
                    stage: LadderStage::SourceStepping,
                    iterations: spent + total + e.iterations,
                    halvings: 0,
                    injected: injected || e.injected,
                }));
            }
        }
    }
    Ok(build_op(circuit, x, total))
}

/// Sweeps the DC value of one voltage source, warm-starting each point from
/// the previous solution. Returns one operating point per sweep value.
///
/// # Errors
///
/// Fails if the source is unknown or any point fails to converge.
pub fn dc_sweep(
    circuit: &Circuit,
    opts: &SimOptions,
    source: &str,
    values: &[f64],
) -> Result<Vec<OpPoint>, SpiceError> {
    let idx = circuit
        .device_index(source)
        .ok_or_else(|| SpiceError::UnknownDevice {
            name: source.to_string(),
        })?;
    if !matches!(circuit.devices()[idx], Device::VSource { .. }) {
        return Err(SpiceError::UnknownDevice {
            name: source.to_string(),
        });
    }
    if values.is_empty() {
        return Err(SpiceError::BadAnalysis {
            reason: "empty dc sweep".to_string(),
        });
    }
    let mut ckt = circuit.clone();
    let mut out = Vec::with_capacity(values.len());
    let mut guess: Option<Vec<f64>> = None;
    // One workspace for the whole sweep: every point reuses the stamper and
    // LU storage.
    let mut ws = NewtonWorkspace::new(&ckt);
    for &val in values {
        if let Device::VSource { wave, .. } = &mut ckt.devices_mut()[idx] {
            *wave = crate::waveform::Waveform::Dc(val);
        }
        let op = op_with_workspace(&ckt, opts, guess.as_deref(), &mut ws)?;
        guess = Some(op.raw().to_vec());
        out.push(op);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mos::{MosModel, MosPolarity};
    use crate::netlist::GND;
    use crate::waveform::Waveform;

    fn nmos() -> MosModel {
        MosModel {
            polarity: MosPolarity::Nmos,
            vth0: 0.45,
            kp: 300e-6,
            clm: 0.02e-6,
            gamma: 0.4,
            phi: 0.8,
            nsub: 1.4,
            cox: 8.5e-3,
            cov: 3e-10,
            cj: 1e-3,
            ldiff: 0.4e-6,
            kf: 1e-26,
            af: 1.0,
            noise_gamma: 2.0 / 3.0,
        }
    }

    fn pmos() -> MosModel {
        MosModel {
            polarity: MosPolarity::Pmos,
            vth0: 0.45,
            kp: 80e-6,
            ..nmos()
        }
    }

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, GND, Waveform::Dc(2.0)).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_resistor("R2", b, GND, 3e3).unwrap();
        let op = op(&c, &SimOptions::default()).unwrap();
        assert!((op.voltage(b) - 1.5).abs() < 1e-6);
        // Battery delivers 2V/4k = 0.5 mA; reported current is negative.
        let i = op.source_current(&c, "V1").unwrap();
        assert!((i + 0.5e-3).abs() < 1e-9);
    }

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, GND, Waveform::Dc(2.0)).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_resistor("R2", b, GND, 3e3).unwrap();
        c
    }

    #[test]
    fn injected_fault_on_every_solve_exhausts_the_ladder() {
        use crate::fault::{self, FaultKind, FaultPlan, FaultSolves};
        let _guard = fault::PLAN_LOCK.lock().unwrap();
        let c = divider();
        fault::install(Some(FaultPlan {
            seed: 9,
            rate: 1.0,
            kind: FaultKind::SingularFactor,
            solves: FaultSolves::All,
        }));
        let err = {
            let _scope = fault::candidate_scope(fault::candidate_key(&[0.5], 0));
            op(&c, &SimOptions::default()).unwrap_err()
        };
        fault::install(None);
        let diag = err.failure_diag().expect("solver failure carries a diag");
        assert_eq!(diag.kind, FailureKind::Singular);
        assert_eq!(diag.stage, LadderStage::SourceStepping);
        assert_eq!(diag.analysis, "dc operating point");
        assert!(diag.injected, "diag must be marked injected: {diag}");
    }

    #[test]
    fn injected_fault_on_first_solve_is_rescued_by_gmin_stepping() {
        use crate::fault::{self, FaultKind, FaultPlan, FaultSolves};
        let _guard = fault::PLAN_LOCK.lock().unwrap();
        let c = divider();
        fault::install(Some(FaultPlan {
            seed: 9,
            rate: 1.0,
            kind: FaultKind::IterationExhaustion,
            solves: FaultSolves::Index(0),
        }));
        let point = {
            let _scope = fault::candidate_scope(fault::candidate_key(&[0.5], 0));
            op(&c, &SimOptions::default()).unwrap()
        };
        fault::install(None);
        // Plain NR was killed; the gmin ladder recovered the exact solution.
        assert!((point.voltage(2) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn fault_outside_candidate_scope_is_inert() {
        use crate::fault::{self, FaultKind, FaultPlan, FaultSolves};
        let _guard = fault::PLAN_LOCK.lock().unwrap();
        let c = divider();
        fault::install(Some(FaultPlan {
            seed: 9,
            rate: 1.0,
            kind: FaultKind::SingularFactor,
            solves: FaultSolves::All,
        }));
        // No candidate scope on this thread: the plan must not fire.
        let point = op(&c, &SimOptions::default()).unwrap();
        fault::install(None);
        assert!((point.voltage(2) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_isource("I1", GND, a, Waveform::Dc(1e-3)).unwrap();
        c.add_resistor("R1", a, GND, 2e3).unwrap();
        let op = op(&c, &SimOptions::default()).unwrap();
        assert!((op.voltage(a) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn vcvs_amplifies() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("V1", inp, GND, Waveform::Dc(0.1)).unwrap();
        c.add_vcvs("E1", out, GND, inp, GND, 10.0).unwrap();
        c.add_resistor("RL", out, GND, 1e3).unwrap();
        let op = op(&c, &SimOptions::default()).unwrap();
        assert!((op.voltage(out) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vccs_drives_current() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("V1", inp, GND, Waveform::Dc(0.5)).unwrap();
        c.add_vccs("G1", GND, out, inp, GND, 1e-3).unwrap(); // 0.5 mA into out
        c.add_resistor("RL", out, GND, 1e3).unwrap();
        let op = op(&c, &SimOptions::default()).unwrap();
        assert!((op.voltage(out) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn diode_connected_nmos_bias() {
        // VDD -> R -> diode-connected NMOS to ground. The gate voltage must
        // settle a bit above Vth and KCL must hold: (VDD - v)/R = Id(v).
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, GND, Waveform::Dc(1.8)).unwrap();
        c.add_resistor("R1", vdd, d, 10e3).unwrap();
        let m = nmos();
        c.add_mosfet("M1", d, d, GND, GND, &m, 10e-6, 1e-6, 1.0)
            .unwrap();
        let op = op(&c, &SimOptions::default()).unwrap();
        let v = op.voltage(d);
        assert!(v > 0.45 && v < 1.2, "diode voltage {v}");
        let mop = op.mos_op("M1").unwrap();
        let ir = (1.8 - v) / 10e3;
        assert!(
            (mop.id - ir).abs() / ir < 1e-3,
            "KCL violated: id={} ir={}",
            mop.id,
            ir
        );
        assert_eq!(mop.region, MosRegion::Saturation);
    }

    #[test]
    fn cmos_inverter_transfer_extremes() {
        let build = |vin: f64| {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let inp = c.node("in");
            let out = c.node("out");
            c.add_vsource("VDD", vdd, GND, Waveform::Dc(1.8)).unwrap();
            c.add_vsource("VIN", inp, GND, Waveform::Dc(vin)).unwrap();
            c.add_mosfet("MN", out, inp, GND, GND, &nmos(), 2e-6, 0.18e-6, 1.0)
                .unwrap();
            c.add_mosfet("MP", out, inp, vdd, vdd, &pmos(), 4e-6, 0.18e-6, 1.0)
                .unwrap();
            let op = op(&c, &SimOptions::default()).unwrap();
            op.voltage(out)
        };
        assert!(build(0.0) > 1.75, "out-high failed: {}", build(0.0));
        assert!(build(1.8) < 0.05, "out-low failed: {}", build(1.8));
        let mid = build(0.9);
        assert!(mid > 0.1 && mid < 1.7, "mid transfer: {mid}");
    }

    #[test]
    fn nmos_common_source_gain_stage() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, GND, Waveform::Dc(1.8)).unwrap();
        c.add_vsource("VG", g, GND, Waveform::Dc(0.7)).unwrap();
        c.add_resistor("RD", vdd, d, 8e3).unwrap();
        c.add_mosfet("M1", d, g, GND, GND, &nmos(), 10e-6, 1e-6, 1.0)
            .unwrap();
        let op = op(&c, &SimOptions::default()).unwrap();
        let mop = op.mos_op("M1").unwrap();
        assert_eq!(mop.region, MosRegion::Saturation);
        assert!(mop.gm > 0.0);
        // Drain voltage consistent with id·RD drop.
        assert!((op.voltage(d) - (1.8 - mop.id * 8e3)).abs() < 1e-6);
    }

    #[test]
    fn dc_sweep_inverter_is_monotonic() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("VDD", vdd, GND, Waveform::Dc(1.8)).unwrap();
        c.add_vsource("VIN", inp, GND, Waveform::Dc(0.0)).unwrap();
        c.add_mosfet("MN", out, inp, GND, GND, &nmos(), 2e-6, 0.18e-6, 1.0)
            .unwrap();
        c.add_mosfet("MP", out, inp, vdd, vdd, &pmos(), 4e-6, 0.18e-6, 1.0)
            .unwrap();
        let values: Vec<f64> = (0..=18).map(|i| i as f64 * 0.1).collect();
        let sweep = dc_sweep(&c, &SimOptions::default(), "VIN", &values).unwrap();
        let vout: Vec<f64> = sweep.iter().map(|o| o.voltage(out)).collect();
        for w in vout.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-6,
                "inverter VTC must be non-increasing: {vout:?}"
            );
        }
    }

    #[test]
    fn sparse_kernel_solves_large_mos_ladder() {
        // 30 diode-connected-NMOS stages: 32 unknowns, well above the
        // sparse threshold. KCL at every stage pins the whole solution, so
        // this exercises the recorded stamp→slot assembly, the pivoting
        // first factor, and the refactor path end to end.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        c.add_vsource("VDD", vdd, GND, Waveform::Dc(1.8)).unwrap();
        let m = nmos();
        let mut prev = vdd;
        for i in 0..30 {
            let d = c.node(&format!("d{i}"));
            c.add_resistor(&format!("R{i}"), prev, d, 5e3).unwrap();
            c.add_mosfet(&format!("M{i}"), d, d, GND, GND, &m, 4e-6, 0.5e-6, 1.0)
                .unwrap();
            prev = d;
        }
        let mut ws = crate::workspace::NewtonWorkspace::new(&c);
        let op = op_with_workspace(&c, &SimOptions::default(), None, &mut ws).unwrap();
        assert!(ws.uses_sparse(false), "ladder must select the sparse path");
        // KCL at every internal node: the incoming resistor current equals
        // the stage's diode current plus the current into the next stage.
        let mut up = vdd;
        for i in 0..30 {
            let d = c.find_node(&format!("d{i}")).unwrap();
            let i_in = (op.voltage(up) - op.voltage(d)) / 5e3;
            let i_out = if i + 1 < 30 {
                let next = c.find_node(&format!("d{}", i + 1)).unwrap();
                (op.voltage(d) - op.voltage(next)) / 5e3
            } else {
                0.0
            };
            let id = op.mos_op(&format!("M{i}")).unwrap().id;
            assert!(
                (i_in - i_out - id).abs() <= 1e-6 * id.abs().max(1e-12) + 1e-9,
                "KCL violated at stage {i}: in={i_in} out={i_out} id={id}"
            );
            up = d;
        }
        // Re-solving with the same workspace refactors instead of
        // re-recording and yields the same answer.
        let op2 = op_with_workspace(&c, &SimOptions::default(), None, &mut ws).unwrap();
        for n in 0..c.num_nodes() {
            assert_eq!(op.voltage(n).to_bits(), op2.voltage(n).to_bits());
        }
        // In-place value updates (same topology) keep the recorded plan
        // valid: resize every device and check KCL again.
        let mut sized = c.clone();
        for i in 0..30 {
            sized
                .set_mosfet_geometry(&format!("M{i}"), 8e-6, 0.4e-6, 2.0)
                .unwrap();
            sized.set_resistance(&format!("R{i}"), 7e3).unwrap();
        }
        let op3 = op_with_workspace(&sized, &SimOptions::default(), None, &mut ws).unwrap();
        // Terminal stage: all of the last resistor's current is M29's.
        let d28 = sized.find_node("d28").unwrap();
        let d29 = sized.find_node("d29").unwrap();
        let ir = (op3.voltage(d28) - op3.voltage(d29)) / 7e3;
        let id = op3.mos_op("M29").unwrap().id;
        assert!(
            (ir - id).abs() <= 1e-6 * id.abs().max(1e-12) + 1e-9,
            "ir={ir} id={id}"
        );
    }

    #[test]
    fn floating_node_recovers_via_gmin() {
        // A node connected only through a capacitor is floating in DC; gmin
        // loading defines it instead of failing.
        let mut c = Circuit::new();
        let a = c.node("a");
        let f = c.node("floating");
        c.add_vsource("V1", a, GND, Waveform::Dc(1.0)).unwrap();
        c.add_capacitor("C1", a, f, 1e-12).unwrap();
        let op = op(&c, &SimOptions::default()).unwrap();
        assert!(op.voltage(f).abs() < 1e-3);
    }

    #[test]
    fn empty_circuit_is_rejected() {
        let c = Circuit::new();
        assert!(matches!(
            op(&c, &SimOptions::default()),
            Err(SpiceError::BadAnalysis { .. })
        ));
    }

    #[test]
    fn sweep_unknown_source_is_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, GND, 1e3).unwrap();
        assert!(dc_sweep(&c, &SimOptions::default(), "VX", &[0.0]).is_err());
    }
}
