//! The actor network: proposes design changes, trained through the frozen
//! critic (paper Eq. 5 and Eq. 6).

use linalg::Matrix;
use nn::{Activation, Adam, Mlp, TrainWorkspace};
use opt::Fom;
use rand::Rng;

use crate::config::DnnOptConfig;
use crate::critic::Critic;

/// A trained actor: maps a design `x` (unit cube) to a proposed change
/// `Δx = µ(x|θµ)`.
#[derive(Debug, Clone)]
pub struct Actor {
    net: Mlp,
    dim: usize,
}

impl Actor {
    /// Trains a fresh actor against a frozen critic (paper Alg. 1 line 6).
    ///
    /// Loss (Eq. 5): mean over the batch of
    /// `g[Q(x, µ(x))] + ‖λ·viol‖²` where `viol` (Eq. 6) measures how far
    /// `x + µ(x)` leaves the elite bounding box `[lb_rest, ub_rest]`.
    /// Gradients flow through the critic's inputs into the actor's
    /// parameters; the critic's parameters stay fixed.
    ///
    /// # Panics
    ///
    /// Panics on empty batches or inconsistent dimensions.
    pub fn train<R: Rng + ?Sized>(
        cfg: &DnnOptConfig,
        critic: &Critic,
        fom: &Fom,
        batch: &[Vec<f64>],
        lb_rest: &[f64],
        ub_rest: &[f64],
        rng: &mut R,
    ) -> Self {
        assert!(!batch.is_empty(), "cannot train an actor without a batch");
        let d = critic.dim();
        assert_eq!(batch[0].len(), d, "batch dimension mismatch");
        assert!(
            lb_rest.len() == d && ub_rest.len() == d,
            "bounds dimension mismatch"
        );

        let mut sizes = vec![d];
        for _ in 0..cfg.depth {
            sizes.push(cfg.hidden);
        }
        sizes.push(d);
        let mut net = Mlp::new(&sizes, Activation::Relu, rng);
        // DDPG-style near-zero output initialization: the untrained actor
        // proposes Δx ≈ 0 (stay at the elite design) and learns to deviate,
        // instead of starting from large random jumps that the boundary
        // penalty must first fight down.
        net.scale_output_layer(1e-3);
        let mut adam = Adam::new(cfg.actor_lr);

        let nb = batch.len();
        let x_mat = Matrix::from_fn(nb, d, |i, j| batch[i][j]);

        // Every per-epoch buffer — the actor's and critic's forward/backward
        // state, the (x, Δx) batch, raw specs, and all gradient matrices —
        // is allocated once here and reused for all `actor_epochs` steps.
        let mut actor_ws = TrainWorkspace::new();
        let mut critic_ws = TrainWorkspace::new();
        let mut xdx = Matrix::default();
        let mut raw = Matrix::default();
        let mut grad_raw = Matrix::default();
        let mut grad_scaled = Matrix::default();
        let mut grad_dx = Matrix::default();
        let mut fom_grad = vec![0.0; critic.num_specs()];

        // The x-half of the (x, Δx) critic batch never changes: write it
        // once and overwrite only the Δx half per epoch.
        xdx.reshape_zeroed(nb, 2 * d);
        for i in 0..nb {
            xdx.row_mut(i)[..d].copy_from_slice(x_mat.row(i));
        }
        grad_raw.reshape_zeroed(nb, critic.num_specs());
        grad_dx.reshape_zeroed(nb, d);
        for _ in 0..cfg.actor_epochs {
            // Forward: actor proposes Δx; critic evaluates (x, Δx).
            net.forward_ws(&x_mat, &mut actor_ws);
            let dx = actor_ws.output();
            for i in 0..nb {
                xdx.row_mut(i)[d..].copy_from_slice(dx.row(i));
            }
            critic.forward_scaled_ws(&xdx, &mut critic_ws, &mut raw);

            // dL/d(raw specs): FoM subgradient per row, averaged.
            for i in 0..nb {
                fom.value_and_grad_into(raw.row(i), &mut fom_grad);
                for (g, &gj) in grad_raw.row_mut(i).iter_mut().zip(&fom_grad) {
                    *g = gj / nb as f64;
                }
            }
            // Back through the critic to its inputs; keep the Δx half.
            let grad_inputs =
                critic.backward_to_inputs_ws(&mut critic_ws, &grad_raw, &mut grad_scaled);
            for i in 0..nb {
                grad_dx.row_mut(i).copy_from_slice(&grad_inputs.row(i)[d..]);
            }
            // Boundary-violation penalty (Eq. 6): viol = max(0, lb−(x+Δx))
            // + max(0, (x+Δx)−ub); L += ‖λ·viol‖² (mean over batch).
            let dx = actor_ws.output();
            for i in 0..nb {
                let grow = grad_dx.row_mut(i);
                let xrow = x_mat.row(i);
                let dxrow = dx.row(i);
                for j in 0..d {
                    let xn = xrow[j] + dxrow[j];
                    let v_lb = (lb_rest[j] - xn).max(0.0);
                    let v_ub = (xn - ub_rest[j]).max(0.0);
                    let lam2 = cfg.lambda * cfg.lambda;
                    grow[j] += 2.0 * lam2 * (v_ub - v_lb) / nb as f64;
                }
            }
            // Backpropagate into the actor parameters only (the gradient
            // with respect to the elite designs is never used, so the
            // params-only pass skips the first layer's propagation GEMM).
            net.backward_params_ws(&mut actor_ws, &grad_dx);
            adam.step(&mut net, actor_ws.gradients());
        }
        // Training is done: pre-pack the actor's panels for the proposal
        // batches of the optimizer loop.
        net.freeze();
        Actor { net, dim: d }
    }

    /// Proposes changes for a batch of designs (rows).
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the design dimensionality.
    pub fn propose(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.dim, "actor input width mismatch");
        self.net.forward(x)
    }

    /// Proposes a change for one design.
    pub fn propose_one(&self, x: &[f64]) -> Vec<f64> {
        let m = Matrix::from_vec(1, self.dim, x.to_vec());
        self.propose(&m).row(0).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Builds a critic on a known quadratic bowl (min at 0.3) and checks
    /// the actor proposes steps that improve the predicted FoM.
    fn bowl_setup(rng: &mut StdRng) -> (Critic, Vec<Vec<f64>>, Vec<Vec<f64>>) {
        use rand::Rng;
        let mut xs = Vec::new();
        let mut fs = Vec::new();
        for _ in 0..80 {
            let x: Vec<f64> = (0..2).map(|_| rng.gen::<f64>()).collect();
            let f0: f64 = x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum();
            fs.push(vec![f0]);
            xs.push(x);
        }
        let cfg = DnnOptConfig {
            critic_epochs: 800,
            critic_batch: 256,
            ..Default::default()
        };
        let critic = Critic::train(&cfg, &xs, &fs, rng);
        (critic, xs, fs)
    }

    #[test]
    fn actor_descends_the_critic_landscape() {
        let mut rng = StdRng::seed_from_u64(21);
        let (critic, xs, fs) = bowl_setup(&mut rng);
        let fom = Fom::uniform(1.0, 0);
        let cfg = DnnOptConfig {
            actor_epochs: 150,
            ..Default::default()
        };
        // Elite = best 10 designs by f0.
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&a, &b| fs[a][0].partial_cmp(&fs[b][0]).unwrap());
        let elite: Vec<Vec<f64>> = idx[..10].iter().map(|&i| xs[i].clone()).collect();
        let actor = Actor::train(
            &cfg,
            &critic,
            &fom,
            &elite,
            &[0.0, 0.0],
            &[1.0, 1.0],
            &mut rng,
        );
        // Proposed steps should reduce the *true* objective for most of the
        // elite designs.
        let mut improved = 0;
        for x in &elite {
            let dx = actor.propose_one(x);
            let before: f64 = x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum();
            let after: f64 = x
                .iter()
                .zip(&dx)
                .map(|(v, d)| {
                    let xn = (v + d).clamp(0.0, 1.0);
                    (xn - 0.3) * (xn - 0.3)
                })
                .sum();
            if after < before + 1e-9 {
                improved += 1;
            }
        }
        assert!(improved >= 7, "only {improved}/10 elite designs improved");
    }

    #[test]
    fn boundary_penalty_keeps_proposals_inside() {
        let mut rng = StdRng::seed_from_u64(22);
        let (critic, xs, _) = bowl_setup(&mut rng);
        let fom = Fom::uniform(1.0, 0);
        let cfg = DnnOptConfig {
            actor_epochs: 200,
            lambda: 100.0,
            ..Default::default()
        };
        // A tight restricted box around 0.6: the bowl minimum (0.3) lies
        // outside, so the unpenalized actor would walk out.
        let lb = [0.55, 0.55];
        let ub = [0.65, 0.65];
        let batch: Vec<Vec<f64>> = xs
            .iter()
            .filter(|x| x.iter().all(|&v| (0.55..=0.65).contains(&v)))
            .cloned()
            .chain(std::iter::once(vec![0.6, 0.6]))
            .collect();
        let actor = Actor::train(&cfg, &critic, &fom, &batch, &lb, &ub, &mut rng);
        for x in &batch {
            let dx = actor.propose_one(x);
            for j in 0..2 {
                let xn = x[j] + dx[j];
                assert!(
                    xn > lb[j] - 0.05 && xn < ub[j] + 0.05,
                    "proposal {xn} strays far outside the restricted box"
                );
            }
        }
    }

    #[test]
    fn propose_shapes() {
        let mut rng = StdRng::seed_from_u64(23);
        let (critic, xs, _) = bowl_setup(&mut rng);
        let fom = Fom::uniform(1.0, 0);
        let cfg = DnnOptConfig {
            actor_epochs: 2,
            ..Default::default()
        };
        let actor = Actor::train(
            &cfg,
            &critic,
            &fom,
            &xs[..5],
            &[0.0, 0.0],
            &[1.0, 1.0],
            &mut rng,
        );
        let out = actor.propose(&Matrix::zeros(3, 2));
        assert_eq!(out.rows(), 3);
        assert_eq!(out.cols(), 2);
        assert_eq!(actor.propose_one(&[0.5, 0.5]).len(), 2);
    }
}
