//! The critic network: a SPICE proxy trained on pseudo-samples (Eq. 3).

use linalg::Matrix;
use nn::{Activation, Adam, Mlp, Scaler, TrainWorkspace};
use rand::Rng;

use crate::config::DnnOptConfig;
use crate::pseudo::{all_pseudo_samples_into, sample_pseudo_batch_into};

/// A trained critic: predicts the full spec vector `[f0, f1, …, fm]` of a
/// design step `(x, Δx)` in unit-cube coordinates.
///
/// Targets are standardized internally (a [`Scaler`] over the observed
/// specs) so the MSE of Eq. 3 weighs every spec equally regardless of
/// units, and predictions are mapped back to raw spec space on the way
/// out.
#[derive(Debug, Clone)]
pub struct Critic {
    net: Mlp,
    y_scaler: Scaler,
    dim: usize,
    num_specs: usize,
}

impl Critic {
    /// Trains a fresh critic on the current population (paper Alg. 1 lines
    /// 3–5): new parameters every iteration, pseudo-samples per Eq. 2,
    /// MSE loss per Eq. 3.
    ///
    /// `xs` are unit-cube design points; `fs` the raw simulated spec
    /// vectors (clipped by the caller if desired).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or shapes disagree.
    pub fn train<R: Rng + ?Sized>(
        cfg: &DnnOptConfig,
        xs: &[Vec<f64>],
        fs: &[Vec<f64>],
        rng: &mut R,
    ) -> Self {
        assert!(!xs.is_empty(), "cannot train a critic without data");
        assert_eq!(xs.len(), fs.len(), "design/spec count mismatch");
        // NaN quarantine tripwire: the optimizer maps failed-evaluation
        // placeholders to the finite failure penalty before training, so a
        // non-finite target here means a leak in that quarantine.
        debug_assert!(
            xs.iter().chain(fs).flatten().all(|v| v.is_finite()),
            "non-finite value reached critic training data"
        );
        let d = xs[0].len();
        let mo = fs[0].len();
        let n = xs.len();

        // Fit the target scaler on the raw specs.
        let f_mat = Matrix::from_fn(n, mo, |i, j| fs[i][j]);
        let y_scaler = Scaler::fit(&f_mat);

        let mut sizes = vec![2 * d];
        for _ in 0..cfg.depth {
            sizes.push(cfg.hidden);
        }
        sizes.push(mo);
        let mut net = Mlp::new(&sizes, Activation::Relu, rng);
        let mut adam = Adam::new(cfg.critic_lr);

        // Every per-epoch buffer — pseudo-sample batch, scaled targets, and
        // the network's forward/backward state — is allocated once here and
        // reused for all `critic_epochs` gradient steps.
        let mut inp = Matrix::default();
        let mut raw_out = Matrix::default();
        let mut out = Matrix::default();
        let mut ws = TrainWorkspace::new();
        let full_pairs = n * n;
        let use_full_set = full_pairs <= cfg.critic_batch;
        if use_full_set {
            // The full N² Cartesian set is deterministic: build it once.
            all_pseudo_samples_into(xs, fs, &mut inp, &mut raw_out);
            y_scaler.transform_into(&raw_out, &mut out);
        }
        for _ in 0..cfg.critic_epochs {
            if !use_full_set {
                sample_pseudo_batch_into(xs, fs, cfg.critic_batch, rng, &mut inp, &mut raw_out);
                y_scaler.transform_into(&raw_out, &mut out);
            }
            nn::train_step_mse_ws(&mut net, &mut adam, &inp, &out, &mut ws);
        }
        // The critic is frozen from here on (the actor trains *through*
        // it): pre-pack its weight panels so every forward/backward of the
        // actor loop skips the per-call GEMM packing.
        net.freeze();
        Critic {
            net,
            y_scaler,
            dim: d,
            num_specs: mo,
        }
    }

    /// Design dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of predicted specs (`m + 1`).
    pub fn num_specs(&self) -> usize {
        self.num_specs
    }

    /// Predicts raw spec vectors for a batch of `(x, Δx)` rows (width
    /// `2d`).
    ///
    /// # Panics
    ///
    /// Panics if the input width is not `2d`.
    pub fn predict(&self, xdx: &Matrix) -> Matrix {
        assert_eq!(xdx.cols(), 2 * self.dim, "critic input width must be 2d");
        let scaled = self.net.forward(xdx);
        self.y_scaler.inverse_transform(&scaled)
    }

    /// Predicts one `(x, Δx)` pair.
    pub fn predict_one(&self, x: &[f64], dx: &[f64]) -> Vec<f64> {
        let mut row = Vec::with_capacity(2 * self.dim);
        row.extend_from_slice(x);
        row.extend_from_slice(dx);
        let m = Matrix::from_vec(1, 2 * self.dim, row);
        self.predict(&m).row(0).to_vec()
    }

    /// Workspace forward pass: runs the critic on `xdx`, leaving the
    /// *scaled* outputs and the backward-pass state in `ws`, and writes the
    /// raw (unscaled) specs into `raw_out`. Allocation free once the
    /// buffers are warm — the critic-to-actor gradient path.
    pub(crate) fn forward_scaled_ws(
        &self,
        xdx: &Matrix,
        ws: &mut TrainWorkspace,
        raw_out: &mut Matrix,
    ) {
        self.net.forward_ws(xdx, ws);
        self.y_scaler.inverse_transform_into(ws.output(), raw_out);
    }

    /// Gradient of a loss with respect to the critic *inputs*, given the
    /// loss gradient with respect to the critic's raw (unscaled) outputs.
    /// Consumes the forward state left in `ws` by
    /// [`Critic::forward_scaled_ws`]; the result is `ws.input_gradient()`.
    pub(crate) fn backward_to_inputs_ws<'w>(
        &self,
        ws: &'w mut TrainWorkspace,
        grad_raw_out: &Matrix,
        grad_scaled: &mut Matrix,
    ) -> &'w Matrix {
        // raw = scaled·σ + µ  =>  ∂L/∂scaled = ∂L/∂raw · σ.
        grad_scaled.copy_from(grad_raw_out);
        let scales = self.y_scaler.scales();
        for i in 0..grad_scaled.rows() {
            for (g, &s) in grad_scaled.row_mut(i).iter_mut().zip(scales) {
                *g *= s;
            }
        }
        // The critic is frozen here: only the gradient *through* it is
        // needed, so the input-only pass skips every δᵀ·x parameter GEMM.
        self.net.backward_input_ws(ws, grad_scaled);
        ws.input_gradient()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Synthetic quadratic "circuit": f0 = Σ(x-0.4)², f1 = x0 − 0.5.
    fn synth_data(n: usize, rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        use rand::Rng;
        let mut xs = Vec::new();
        let mut fs = Vec::new();
        for _ in 0..n {
            let x: Vec<f64> = (0..3).map(|_| rng.gen::<f64>()).collect();
            let f0: f64 = x.iter().map(|v| (v - 0.4) * (v - 0.4)).sum();
            let f1 = x[0] - 0.5;
            fs.push(vec![f0, f1]);
            xs.push(x);
        }
        (xs, fs)
    }

    #[test]
    fn critic_learns_quadratic_landscape() {
        let mut rng = StdRng::seed_from_u64(9);
        let (xs, fs) = synth_data(60, &mut rng);
        let cfg = DnnOptConfig {
            critic_epochs: 600,
            critic_batch: 256,
            ..Default::default()
        };
        let critic = Critic::train(&cfg, &xs, &fs, &mut rng);
        // Predict at known designs with zero delta: should match own specs.
        let mut err = 0.0;
        for (x, f) in xs.iter().zip(&fs).take(20) {
            let pred = critic.predict_one(x, &[0.0, 0.0, 0.0]);
            err += (pred[0] - f[0]).abs();
        }
        assert!(err / 20.0 < 0.08, "mean |err| {}", err / 20.0);
    }

    #[test]
    fn critic_predicts_step_destinations() {
        let mut rng = StdRng::seed_from_u64(10);
        let (xs, fs) = synth_data(60, &mut rng);
        let cfg = DnnOptConfig {
            critic_epochs: 600,
            critic_batch: 256,
            ..Default::default()
        };
        let critic = Critic::train(&cfg, &xs, &fs, &mut rng);
        // Predict a *step* from x0 to x1: must be close to f(x1).
        let dx: Vec<f64> = xs[1].iter().zip(&xs[0]).map(|(a, b)| a - b).collect();
        let pred = critic.predict_one(&xs[0], &dx);
        assert!(
            (pred[0] - fs[1][0]).abs() < 0.15,
            "{} vs {}",
            pred[0],
            fs[1][0]
        );
        assert!(
            (pred[1] - fs[1][1]).abs() < 0.15,
            "{} vs {}",
            pred[1],
            fs[1][1]
        );
    }

    #[test]
    fn shapes_are_enforced() {
        let mut rng = StdRng::seed_from_u64(11);
        let (xs, fs) = synth_data(10, &mut rng);
        let cfg = DnnOptConfig {
            critic_epochs: 2,
            ..Default::default()
        };
        let critic = Critic::train(&cfg, &xs, &fs, &mut rng);
        assert_eq!(critic.dim(), 3);
        assert_eq!(critic.num_specs(), 2);
        let pred = critic.predict(&Matrix::zeros(4, 6));
        assert_eq!(pred.rows(), 4);
        assert_eq!(pred.cols(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot train a critic without data")]
    fn empty_training_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = DnnOptConfig::default();
        let _ = Critic::train(&cfg, &[], &[], &mut rng);
    }
}
