//! Cholesky factorization of symmetric positive-definite matrices.

use crate::{FactorError, Matrix};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// Used by Gaussian-process regression, where `A` is a kernel Gram matrix
/// plus noise jitter; [`Cholesky::log_det`] feeds the log marginal
/// likelihood.
///
/// # Example
///
/// ```
/// use linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = Cholesky::factor(&a).expect("SPD");
/// let x = ch.solve(&[2.0, 1.0]);
/// let r = a.matvec(&x);
/// assert!((r[0] - 2.0).abs() < 1e-12 && (r[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper part is garbage and never read).
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed, not
    /// checked.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] for non-square input, or
    /// [`FactorError::NotPositiveDefinite`] if a diagonal entry becomes
    /// non-positive during elimination.
    pub fn factor(a: &Matrix) -> Result<Self, FactorError> {
        if a.rows() != a.cols() {
            return Err(FactorError::Shape { rows: a.rows(), cols: a.cols() });
        }
        let n = a.rows();
        let mut l = a.clone();
        for j in 0..n {
            let mut d = l[(j, j)];
            for k in 0..j {
                let v = l[(j, k)];
                d -= v * v;
            }
            if !(d > 0.0) {
                return Err(FactorError::NotPositiveDefinite { order: j + 1 });
            }
            let d = d.sqrt();
            l[(j, j)] = d;
            for i in (j + 1)..n {
                let mut s = l[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / d;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A·x = b` via two triangular solves.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        self.solve_upper(&y)
    }

    /// Solves `L·y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ·x = y` (back substitution).
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the factored dimension.
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "rhs length must equal matrix dimension");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * x[j];
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Log-determinant of `A`: `2·Σ log L[i,i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Borrow the lower-triangular factor (entries above the diagonal are
    /// unspecified).
    pub fn lower(&self) -> &Matrix {
        &self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_known_matrix() {
        // A = [[4, 12, -16], [12, 37, -43], [-16, -43, 98]] has
        // L = [[2,0,0],[6,1,0],[-8,5,3]] (classic textbook example).
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ]);
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.lower();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 8.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matches_direct() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let b = [2.0, 1.0];
        let x = ch.solve(&b);
        let r = a.matvec(&x);
        assert!((r[0] - b[0]).abs() < 1e-12);
        assert!((r[1] - b[1]).abs() < 1e-12);
    }

    #[test]
    fn log_det_matches() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let det = 4.0 * 3.0 - 2.0 * 2.0;
        assert!((ch.log_det() - (det as f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(FactorError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            Cholesky::factor(&Matrix::zeros(2, 3)),
            Err(FactorError::Shape { .. })
        ));
    }

    #[test]
    fn triangular_solves_compose() {
        let a = Matrix::from_rows(&[&[9.0, 3.0, 1.0], &[3.0, 5.0, 2.0], &[1.0, 2.0, 6.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let b = [1.0, -2.0, 3.0];
        let y = ch.solve_lower(&b);
        let x = ch.solve_upper(&y);
        let direct = ch.solve(&b);
        for (u, v) in x.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-14);
        }
    }
}
