//! The StrongARM latch comparator of paper Fig. 5 / Table III / Eq. 10.
//!
//! Topology (standard StrongARM):
//!
//! - NMOS input pair (`W1/L1`) on a clocked NMOS tail (`W4/L4`);
//! - cross-coupled NMOS (`W2/L2`) and PMOS (`W3/L3`) regeneration;
//! - four PMOS precharge switches (`W5/L5`) resetting the integration
//!   nodes and outputs to VDD while the clock is low;
//! - output buffer inverters (`W6/L6` with a 2.5× PMOS);
//! - `CL` load expressed in unit fingers (1 fF each), Table III's 13th
//!   variable.
//!
//! The sizing problem is Table III: 13 variables (`L1..L6`, `W1..W6`,
//! `CL fingers`) and Eq. 10's 10 constraints. Measurements come from a
//! one-clock-cycle transient (25 MHz clock, 10 mV differential input):
//! set/reset delays, regenerated differential voltage, residual reset
//! voltages at the integration/output nodes, cycle energy (→ power), area
//! from drawn geometry, and an analytic input-referred noise estimate
//! (documented substitution: transient-noise simulation is outside the
//! simulator substrate's scope; the estimator uses the standard
//! `√(2kTγ/C_X)/G_int` sampling-noise form on simulated operating data).

use opt::{SizingProblem, SpecResult};
use spice::mos::BOLTZMANN;
use spice::{Circuit, SimOptions, SpiceError, Waveform, GND};

use crate::measure;
use crate::tech::{tech_180nm, Technology};

/// Decoded Table III parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LatchParams {
    /// Channel lengths `L1..L6` \[m\].
    pub l: [f64; 6],
    /// Channel widths `W1..W6` \[m\].
    pub w: [f64; 6],
    /// Load capacitor fingers (integer, 1 fF per finger).
    pub cl_fingers: f64,
}

impl LatchParams {
    /// Decodes `[L1..L6, W1..W6, CL]`, rounding the finger count.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 13`.
    pub fn decode(x: &[f64]) -> Self {
        assert_eq!(x.len(), 13, "latch design vector has 13 entries");
        let mut l = [0.0; 6];
        let mut w = [0.0; 6];
        l.copy_from_slice(&x[0..6]);
        w.copy_from_slice(&x[6..12]);
        LatchParams {
            l,
            w,
            cl_fingers: x[12].round().max(1.0),
        }
    }

    /// Load capacitance \[F\] (1 fF per finger).
    pub fn cl(&self) -> f64 {
        self.cl_fingers * 1e-15
    }

    /// Total drawn gate area of the comparator \[m²\], including the load
    /// capacitor at a MIM-like 2 fF/µm².
    pub fn area(&self) -> f64 {
        // Device multiplicities in the netlist: pair ×2, ccN ×2, ccP ×2,
        // tail ×1, precharge ×4, buffers ×2 N + ×2 P (2.5×W).
        let gates = 2.0 * self.w[0] * self.l[0]
            + 2.0 * self.w[1] * self.l[1]
            + 2.0 * self.w[2] * self.l[2]
            + self.w[3] * self.l[3]
            + 4.0 * self.w[4] * self.l[4]
            + 2.0 * (1.0 + 2.5) * self.w[5] * self.l[5];
        let cap_area = self.cl() / 2e-3; // 2 fF/µm² = 2e-3 F/m²
        gates + cap_area
    }
}

/// The StrongARM latch sizing problem (paper Table III / Eq. 10).
///
/// # Example
///
/// ```no_run
/// use circuits::StrongArmLatch;
/// use opt::SizingProblem;
///
/// let latch = StrongArmLatch::new();
/// let spec = latch.evaluate(&latch.nominal());
/// println!("power = {} µW", spec.objective * 1e6);
/// ```
#[derive(Debug, Clone)]
pub struct StrongArmLatch {
    tech: Technology,
    opts: SimOptions,
    /// Input common mode \[V\].
    vcm: f64,
    /// Differential input for the set-phase measurement \[V\].
    vin_diff: f64,
    /// Clock period \[s\] (clock rises at `period/4`, falls at
    /// `3·period/4`).
    period: f64,
    /// Prebuilt testbench topology (node maps and device registry derived
    /// once); per-candidate evaluation clones it and re-sizes in place.
    template: Circuit,
    /// Key node ids: `(outp, outn, xp, xn, di_p, di_n)`.
    nodes: (usize, usize, usize, usize, usize, usize),
}

impl Default for StrongArmLatch {
    fn default() -> Self {
        Self::new()
    }
}

impl StrongArmLatch {
    /// Creates the problem on the generic 180nm-class technology.
    pub fn new() -> Self {
        let opts = SimOptions {
            max_nr_iters: 200,
            ..Default::default()
        };
        let mut latch = StrongArmLatch {
            tech: tech_180nm(),
            opts,
            vcm: 0.7,
            vin_diff: 10e-3,
            period: 40e-9,
            template: Circuit::new(),
            nodes: (0, 0, 0, 0, 0, 0),
        };
        let (ckt, outp, outn, xp, xn, di_p, di_n) =
            latch.build_topology().expect("latch template must build");
        latch.template = ckt;
        latch.nodes = (outp, outn, xp, xn, di_p, di_n);
        latch
    }

    /// A hand-tuned near-feasible design (the regression anchor).
    pub fn nominal(&self) -> Vec<f64> {
        let u = 1e-6;
        vec![
            // L1..L6
            0.25 * u,
            0.18 * u,
            0.18 * u,
            0.18 * u,
            0.18 * u,
            0.18 * u,
            // W1..W6
            18.0 * u,
            6.0 * u,
            3.0 * u,
            7.0 * u,
            8.0 * u,
            1.0 * u,
            // CL fingers
            10.0,
        ]
    }

    /// Builds the testbench topology once, with the nominal sizing applied
    /// (the sizing itself lives exclusively in [`StrongArmLatch::resize`]).
    /// Returns `(circuit, outp, outn, xp, xn, di_p, di_n)` where `di_*`
    /// are the latch-internal output nodes and `x*` the integration nodes.
    #[allow(clippy::type_complexity)]
    fn build_topology(
        &self,
    ) -> Result<(Circuit, usize, usize, usize, usize, usize, usize), SpiceError> {
        let u = 1e-6;
        let t = &self.tech;
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource("VDD", vdd, GND, Waveform::Dc(t.vdd))?;

        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        ckt.add_vsource(
            "VIP",
            inp,
            GND,
            Waveform::Dc(self.vcm + self.vin_diff / 2.0),
        )?;
        ckt.add_vsource(
            "VIN",
            inn,
            GND,
            Waveform::Dc(self.vcm - self.vin_diff / 2.0),
        )?;

        let clk = ckt.node("clk");
        let quarter = self.period / 4.0;
        ckt.add_vsource(
            "VCLK",
            clk,
            GND,
            Waveform::pulse(
                0.0,
                t.vdd,
                quarter,
                100e-12,
                100e-12,
                2.0 * quarter,
                f64::INFINITY,
            ),
        )?;

        let tail = ckt.node("tail");
        let xp = ckt.node("xp"); // integration node, input side P
        let xn = ckt.node("xn");
        let di_p = ckt.node("di_p"); // internal latch output (drives buffer)
        let di_n = ckt.node("di_n");

        // Clocked tail.
        ckt.add_mosfet("M_tail", tail, clk, GND, GND, &t.nmos, u, u, 1.0)?;
        // Input pair: inp integrates onto xn-side? Keep the conventional
        // wiring: the device driven by the larger input discharges its
        // drain faster, so its latch output falls; with the input pair
        // drains crossed to x nodes named after their own side:
        ckt.add_mosfet("M_inP", xp, inp, tail, GND, &t.nmos, u, u, 1.0)?;
        ckt.add_mosfet("M_inN", xn, inn, tail, GND, &t.nmos, u, u, 1.0)?;
        // Cross-coupled NMOS (sources on the integration nodes).
        ckt.add_mosfet("M_ccnP", di_p, di_n, xp, GND, &t.nmos, u, u, 1.0)?;
        ckt.add_mosfet("M_ccnN", di_n, di_p, xn, GND, &t.nmos, u, u, 1.0)?;
        // Cross-coupled PMOS.
        ckt.add_mosfet("M_ccpP", di_p, di_n, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("M_ccpN", di_n, di_p, vdd, vdd, &t.pmos, u, u, 1.0)?;
        // Precharge switches on both the latch outputs and the integration
        // nodes (gate = clk, on while clk is low).
        ckt.add_mosfet("M_preP", di_p, clk, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("M_preN", di_n, clk, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("M_preXP", xp, clk, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("M_preXN", xn, clk, vdd, vdd, &t.pmos, u, u, 1.0)?;

        // Output buffer inverters with the CL loads.
        let outp = ckt.node("outp");
        let outn = ckt.node("outn");
        ckt.add_mosfet("M_bnP", outp, di_n, GND, GND, &t.nmos, u, u, 1.0)?;
        ckt.add_mosfet("M_bpP", outp, di_n, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("M_bnN", outn, di_p, GND, GND, &t.nmos, u, u, 1.0)?;
        ckt.add_mosfet("M_bpN", outn, di_p, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_capacitor("CL_P", outp, GND, 1e-15)?;
        ckt.add_capacitor("CL_N", outn, GND, 1e-15)?;

        self.resize(&mut ckt, &LatchParams::decode(&self.nominal()))?;
        Ok((ckt, outp, outn, xp, xn, di_p, di_n))
    }

    /// Writes every design-dependent device value for the decoded
    /// parameters `p` — the single source of truth for the Table III
    /// variable→device mapping.
    fn resize(&self, ckt: &mut Circuit, p: &LatchParams) -> Result<(), SpiceError> {
        ckt.set_mosfet_geometry("M_tail", p.w[3], p.l[3], 1.0)?;
        for name in ["M_inP", "M_inN"] {
            ckt.set_mosfet_geometry(name, p.w[0], p.l[0], 1.0)?;
        }
        for name in ["M_ccnP", "M_ccnN"] {
            ckt.set_mosfet_geometry(name, p.w[1], p.l[1], 1.0)?;
        }
        for name in ["M_ccpP", "M_ccpN"] {
            ckt.set_mosfet_geometry(name, p.w[2], p.l[2], 1.0)?;
        }
        for name in ["M_preP", "M_preN", "M_preXP", "M_preXN"] {
            ckt.set_mosfet_geometry(name, p.w[4], p.l[4], 1.0)?;
        }
        for name in ["M_bnP", "M_bnN"] {
            ckt.set_mosfet_geometry(name, p.w[5], p.l[5], 1.0)?;
        }
        for name in ["M_bpP", "M_bpN"] {
            ckt.set_mosfet_geometry(name, 2.5 * p.w[5], p.l[5], 1.0)?;
        }
        ckt.set_capacitance("CL_P", p.cl())?;
        ckt.set_capacitance("CL_N", p.cl())?;
        Ok(())
    }

    /// Instantiates the candidate: clones the prebuilt template and
    /// re-sizes devices in place (no netlist rebuild; the topology
    /// fingerprint is unchanged so pooled solver state carries across
    /// candidates).
    #[allow(clippy::type_complexity)]
    fn build(
        &self,
        p: &LatchParams,
    ) -> Result<(Circuit, usize, usize, usize, usize, usize, usize), SpiceError> {
        let mut ckt = self.template.clone();
        self.resize(&mut ckt, p)?;
        let (outp, outn, xp, xn, di_p, di_n) = self.nodes;
        Ok((ckt, outp, outn, xp, xn, di_p, di_n))
    }

    /// Analytic input-referred noise estimate — the documented substitution
    /// for transient-noise simulation (outside the simulator substrate's
    /// scope). Standard sampling-noise form for the StrongARM integration
    /// phase:
    ///
    /// ```text
    /// σ_in ≈ sqrt(kT·γ / C_X) / (G_int·√2),   G_int = (gm/Id)·Vth
    /// ```
    ///
    /// where `C_X` is the integration-node capacitance (from the same
    /// geometry model the simulator uses), `gm/Id` is evaluated at the
    /// mid-integration bias (gate at VCM, source risen ~120 mV), and the √2
    /// credits noise accumulated after regeneration has taken over. The
    /// estimator's value lies in its *scalings* — σ falls with device/cap
    /// area and with integration gain — which is what the sizing loop
    /// exercises.
    fn input_noise(&self, p: &LatchParams) -> f64 {
        let t = &self.tech;
        // Integration-node capacitance: drain junctions + cross-coupled
        // NMOS source side + precharge drain, approximated from geometry.
        let cx = spice::mos::mos_caps(&t.nmos, p.w[0], p.l[0], 1.0).cdb
            + spice::mos::mos_caps(&t.nmos, p.w[1], p.l[1], 1.0).csb
            + spice::mos::mos_caps(&t.nmos, p.w[1], p.l[1], 1.0).cgs
            + spice::mos::mos_caps(&t.pmos, p.w[4], p.l[4], 1.0).cdb;
        let ein = spice::mos::eval_mos(
            &t.nmos,
            p.w[0],
            p.l[0],
            1.0,
            self.vcm - 0.12,
            t.vdd / 2.0,
            0.0,
        );
        let gm_over_id = (ein.gm / ein.id.max(1e-12)).clamp(1.0, 30.0);
        let gain = gm_over_id * t.nmos.vth0;
        (BOLTZMANN * self.opts.temp * t.nmos.noise_gamma / cx).sqrt()
            / (gain * std::f64::consts::SQRT_2)
    }
}

impl StrongArmLatch {
    /// Prints the transient waveforms of the key nodes (debugging aid).
    #[doc(hidden)]
    pub fn debug_transient(&self, x: &[f64]) {
        let p = LatchParams::decode(x);
        let (ckt, outp, outn, xp, xn, di_p, di_n) = self.build(&p).expect("netlist");
        let clk = ckt.find_node("clk").unwrap();
        let tr = match spice::transient(&ckt, &self.opts, self.period, 50e-12) {
            Ok(tr) => tr,
            Err(e) => {
                println!("transient failed: {e}");
                return;
            }
        };
        println!("      t(ns)     clk     xp      xn      di_p    di_n    outp    outn");
        for i in 0..=40 {
            let t = self.period * i as f64 / 40.0;
            println!(
                "t={:>8.2}  {:>6.3} {:>7.4} {:>7.4} {:>7.4} {:>7.4} {:>7.4} {:>7.4}",
                t * 1e9,
                tr.sample(clk, t),
                tr.sample(xp, t),
                tr.sample(xn, t),
                tr.sample(di_p, t),
                tr.sample(di_n, t),
                tr.sample(outp, t),
                tr.sample(outn, t)
            );
        }
        let q = tr.delivered_charge(&ckt, "VDD", 0.0, self.period).unwrap();
        println!(
            "cycle energy = {:.3e} J, power = {:.3e} W",
            q * self.tech.vdd,
            q * self.tech.vdd / self.period
        );
        println!("input noise est = {:.3e} V", self.input_noise(&p));
        println!("area = {:.3e} um^2", p.area() * 1e12);
    }
}

/// `v` must be at least `limit`: `f = (limit − v)/scale`.
fn at_least(v: f64, limit: f64, scale: f64) -> f64 {
    (limit - v) / scale
}

/// `v` must be at most `limit`: `f = (v − limit)/scale`.
fn at_most(v: f64, limit: f64, scale: f64) -> f64 {
    (v - limit) / scale
}

impl SizingProblem for StrongArmLatch {
    fn dim(&self) -> usize {
        13
    }

    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let u = 1e-6;
        let mut lb = Vec::with_capacity(13);
        let mut ub = Vec::with_capacity(13);
        // L1..L6: 0.18–10 µm.
        for _ in 0..6 {
            lb.push(0.18 * u);
            ub.push(10.0 * u);
        }
        // W1..W6: 0.22–50 µm.
        for _ in 0..6 {
            lb.push(0.22 * u);
            ub.push(50.0 * u);
        }
        // CL fingers: 10–300.
        lb.push(10.0);
        ub.push(300.0);
        (lb, ub)
    }

    fn num_constraints(&self) -> usize {
        10
    }

    fn name(&self) -> &str {
        "strongarm-latch"
    }

    fn variable_names(&self) -> Vec<String> {
        let mut names: Vec<String> = (1..=6).map(|i| format!("L{i}")).collect();
        names.extend((1..=6).map(|i| format!("W{i}")));
        names.push("CL".to_string());
        names
    }

    fn nominal(&self) -> Vec<f64> {
        self.nominal()
    }

    fn evaluate(&self, x: &[f64]) -> SpecResult {
        let m = self.num_constraints();
        // Single-corner problem: the fault-plane scope keys on the
        // candidate alone (corner salt 0).
        let _scope = spice::fault::candidate_scope(spice::fault::candidate_key(x, 0));
        let p = LatchParams::decode(x);
        let (ckt, outp, outn, xp, xn, di_p, di_n) = match self.build(&p) {
            Ok(v) => v,
            Err(e) => {
                return SpecResult::failed_with(m, crate::diag_from_spice(&e, "latch netlist"))
            }
        };
        let t = &self.tech;
        let quarter = self.period / 4.0;
        let t_rise = quarter; // clock edge up
        let t_fall = 3.0 * quarter; // clock edge down
                                    // One pooled workspace for the whole evaluation: the transient
                                    // reuses the recorded solver state of previous candidates.
        let mut ws = spice::lease_workspace(&ckt);
        let tr =
            match spice::transient_with_workspace(&ckt, &self.opts, self.period, 50e-12, &mut ws) {
                Ok(tr) => tr,
                Err(e) => {
                    return SpecResult::failed_with(
                        m,
                        crate::diag_from_spice(&e, "latch transient"),
                    )
                }
            };

        // Both buffer outputs start low (the latch precharges its internal
        // nodes high); after the clock edge exactly one of them rises.
        // Set delay: clock edge to the *differential* output magnitude
        // reaching 90% of the supply.
        let w_outp = tr.waveform(outp);
        let w_outn = tr.waveform(outn);
        let d_out = |w: &[(f64, f64)], t0: f64| -> Vec<(f64, f64)> {
            w.iter().copied().filter(|&(t, _)| t >= t0).collect()
        };
        let set_diff: Vec<(f64, f64)> = tr
            .times()
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t >= t_rise)
            .map(|(i, &t)| (t, (tr.voltage(i, outp) - tr.voltage(i, outn)).abs()))
            .collect();
        // Differential set voltage at the end of the evaluation phase.
        let v_set_diff =
            (tr.sample(outp, t_fall - 0.2e-9) - tr.sample(outn, t_fall - 0.2e-9)).abs();
        let set_delay = measure::crossing_time(&set_diff, 0.9 * t.vdd, true).map(|tc| tc - t_rise);

        // Reset delay: falling clock edge to both outputs back within 10%
        // of their precharge levels. The buffers invert: when the latch
        // precharges both internal nodes to VDD, both buffer outputs go
        // low.
        let reset_p = d_out(&w_outp, t_fall);
        let reset_n = d_out(&w_outn, t_fall);
        let reset_delay = {
            let a = measure::crossing_time(&reset_p, 0.1 * t.vdd, false)
                .or_else(|| measure::crossing_time(&reset_p, 0.9 * t.vdd, true));
            let b = measure::crossing_time(&reset_n, 0.1 * t.vdd, false)
                .or_else(|| measure::crossing_time(&reset_n, 0.9 * t.vdd, true));
            // Outputs may already be at the reset level (the falling one).
            let end_ok = tr.sample(outp, self.period - 0.1e-9) < 0.1 * t.vdd
                && tr.sample(outn, self.period - 0.1e-9) < 0.1 * t.vdd;
            match (a, b, end_ok) {
                (Some(ta), Some(tb), _) => Some(ta.max(tb) - t_fall),
                (Some(ta), None, true) => Some(ta - t_fall),
                (None, Some(tb), true) => Some(tb - t_fall),
                (None, None, true) => Some(0.0),
                _ => None,
            }
        };

        // Residual voltages at the very end of the reset phase (just before
        // the next cycle would begin): the precharged latch must have
        // equalized its internal and output nodes.
        let t_end = self.period - 0.1e-9;
        let v_reset_diff = (tr.sample(di_p, t_end) - tr.sample(di_n, t_end)).abs();
        let vx_p_resid = (tr.sample(xp, t_end) - t.vdd).abs();
        let vx_n_resid = (tr.sample(xn, t_end) - t.vdd).abs();
        let vout_p_resid = (tr.sample(outp, t_end) - tr.sample(outp, 0.0)).abs();
        let vout_n_resid = (tr.sample(outn, t_end) - tr.sample(outn, 0.0)).abs();

        // Power: supply energy over the full cycle divided by the period.
        let energy = match tr.delivered_charge(&ckt, "VDD", 0.0, self.period) {
            Ok(q) => q * t.vdd,
            Err(e) => {
                return SpecResult::failed_with(m, crate::diag_from_spice(&e, "latch energy"))
            }
        };
        let power = energy / self.period;

        let area = p.area();
        let vnoise_in = self.input_noise(&p);

        // --- Eq. 10 constraints. Where a measurement does not exist
        // because the latch never functioned, the fallback violation is
        // *graded* by how close the circuit came (a flat penalty would
        // make the landscape a plateau no optimizer can descend).
        let mut constraints = Vec::with_capacity(m);
        let decide_progress = (v_set_diff / (0.9 * t.vdd)).min(1.0);
        // 1. Set delay < 10 ns.
        constraints.push(match set_delay {
            Some(d) => at_most(d, 10e-9, 10e-9),
            None => 1.0 + 2.0 * (1.0 - decide_progress),
        });
        // 2. Reset delay < 6.5 ns.
        constraints.push(match reset_delay {
            Some(d) => at_most(d, 6.5e-9, 6.5e-9),
            None => {
                let resid = vout_p_resid.max(vout_n_resid) / t.vdd;
                1.0 + resid.min(1.0)
            }
        });
        // 3. Area < 26 µm² (scale matched to the ~40–4000 µm² range random
        // designs produce, so the constraint stays informative).
        constraints.push(at_most(area, 26e-12, 100e-12));
        // 4. Input-referred noise < 50 µV rms.
        constraints.push(at_most(vnoise_in, 50e-6, 50e-6));
        // 5. Differential reset voltage < 1 µV.
        constraints.push(at_most(v_reset_diff, 1e-6, 1e-4));
        // 6. Differential set voltage > 1.195 V.
        constraints.push(at_least(v_set_diff, 1.195, 0.5));
        // 7/8. Integration-node reset residuals < 60 µV.
        constraints.push(at_most(vx_p_resid, 60e-6, 6e-3));
        constraints.push(at_most(vx_n_resid, 60e-6, 6e-3));
        // 9/10. Output-node reset residuals < 0.35 µV.
        constraints.push(at_most(vout_p_resid, 0.35e-6, 3.5e-5));
        constraints.push(at_most(vout_n_resid, 0.35e-6, 3.5e-5));

        SpecResult {
            failure: None,
            objective: power,
            constraints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_match_table_three() {
        let latch = StrongArmLatch::new();
        let (lb, ub) = latch.bounds();
        assert_eq!(lb.len(), 13);
        assert!((lb[0] - 0.18e-6).abs() < 1e-12);
        assert!((ub[0] - 10e-6).abs() < 1e-12);
        assert!((lb[6] - 0.22e-6).abs() < 1e-12);
        assert!((ub[6] - 50e-6).abs() < 1e-12);
        assert_eq!(lb[12], 10.0);
        assert_eq!(ub[12], 300.0);
        assert_eq!(latch.num_constraints(), 10);
    }

    #[test]
    fn area_model_scales() {
        let latch = StrongArmLatch::new();
        let mut x = latch.nominal();
        let a0 = LatchParams::decode(&x).area();
        x[6] *= 2.0; // W1 doubles
        let a1 = LatchParams::decode(&x).area();
        assert!(a1 > a0);
        // 300 fingers = 300 fF / 2 fF/µm² = 150 µm² of cap alone, so the
        // area constraint genuinely prices the load cap.
        x[12] = 300.0;
        let a2 = LatchParams::decode(&x).area();
        assert!(a2 > 100e-12);
    }

    #[test]
    fn nominal_latch_decides_correctly() {
        let latch = StrongArmLatch::new();
        let spec = latch.evaluate(&latch.nominal());
        assert_eq!(spec.constraints.len(), 10);
        assert!(!spec.is_failure(), "nominal latch must simulate");
        // Set/reset delays and the regenerated differential voltage are the
        // core of the decision behaviour: they must be satisfied (the
        // residual-voltage constraints are the genuinely hard ones).
        assert!(
            spec.constraints[0] <= 0.0,
            "set delay violated: {}",
            spec.constraints[0]
        );
        assert!(
            spec.constraints[1] <= 0.0,
            "reset delay violated: {}",
            spec.constraints[1]
        );
        assert!(
            spec.constraints[5] <= 0.0,
            "set voltage violated: {}",
            spec.constraints[5]
        );
        // Power in the µW range at 25 MHz.
        assert!(
            spec.objective > 0.1e-6 && spec.objective < 500e-6,
            "power {}",
            spec.objective
        );
    }

    #[test]
    fn noise_estimate_scales_with_cap() {
        let latch = StrongArmLatch::new();
        let p_small = LatchParams::decode(&latch.nominal());
        let mut big = latch.nominal();
        big[6] *= 4.0; // wider input -> more Cx and more gm
        big[7] *= 4.0;
        let p_big = LatchParams::decode(&big);
        assert!(latch.input_noise(&p_big) < latch.input_noise(&p_small));
    }

    #[test]
    fn minimum_size_design_fails_some_constraint() {
        let latch = StrongArmLatch::new();
        let (lb, _) = latch.bounds();
        let spec = latch.evaluate(&lb);
        assert_eq!(spec.constraints.len(), 10);
        assert!(!spec.feasible());
    }
}
