//! The constrained sizing-problem abstraction (paper Eq. 1).

/// Result of one expensive evaluation: the objective and the constraint
/// values in `fi(x) ≤ 0` form (negative/zero = satisfied).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecResult {
    /// Objective value `f0(x)` to minimize.
    pub objective: f64,
    /// Constraint values `fi(x)`; feasible when all are `≤ 0`.
    pub constraints: Vec<f64>,
}

impl SpecResult {
    /// True if every constraint is satisfied.
    pub fn feasible(&self) -> bool {
        self.constraints.iter().all(|&c| c <= 0.0)
    }

    /// The full spec vector `[f0, f1, …, fm]` as the critic network sees it.
    pub fn as_vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(1 + self.constraints.len());
        v.push(self.objective);
        v.extend_from_slice(&self.constraints);
        v
    }

    /// Builds a result from the `[f0, f1, …, fm]` vector layout.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn from_vector(v: &[f64]) -> Self {
        assert!(!v.is_empty(), "spec vector needs at least the objective");
        SpecResult {
            objective: v[0],
            constraints: v[1..].to_vec(),
        }
    }

    /// A deliberately terrible result used when a simulation fails: large
    /// objective and every constraint maximally violated. Keeps optimizer
    /// loops total (no `Result` plumbing through every algorithm) while
    /// making failed regions strongly repellent.
    pub fn failed(num_constraints: usize) -> Self {
        SpecResult {
            objective: 1e12,
            constraints: vec![1e12; num_constraints],
        }
    }

    /// True if this is a failure placeholder (any non-finite or huge entry).
    pub fn is_failure(&self) -> bool {
        !self.objective.is_finite()
            || self.objective >= 1e12
            || self
                .constraints
                .iter()
                .any(|c| !c.is_finite() || *c >= 1e12)
    }
}

/// A constrained black-box sizing problem (paper Eq. 1):
///
/// ```text
/// minimize f0(x)   subject to fi(x) ≤ 0,  i = 1..m,   x ∈ [lb, ub]
/// ```
///
/// Implementations wrap a circuit testbench; `evaluate` is the expensive
/// "SPICE simulation" every optimizer counts.
///
/// The `Sync` supertrait lets [`crate::Evaluator::evaluate_batch`] fan
/// candidate populations out across worker threads; implementations are
/// plain data plus pure computation, so this costs nothing in practice.
pub trait SizingProblem: Sync {
    /// Number of design variables `d`.
    fn dim(&self) -> usize;

    /// Box bounds `(lb, ub)`, each of length [`SizingProblem::dim`].
    fn bounds(&self) -> (Vec<f64>, Vec<f64>);

    /// Number of constraints `m`.
    fn num_constraints(&self) -> usize;

    /// Runs the expensive evaluation.
    ///
    /// Implementations must return [`SpecResult::failed`] (rather than
    /// panicking) when the underlying simulation does not converge.
    fn evaluate(&self, x: &[f64]) -> SpecResult;

    /// Human-readable problem name.
    fn name(&self) -> &str {
        "problem"
    }

    /// Names of the design variables (defaults to `x0`, `x1`, …).
    fn variable_names(&self) -> Vec<String> {
        (0..self.dim()).map(|i| format!("x{i}")).collect()
    }

    /// A nominal starting design; defaults to the center of the box. Used
    /// by sensitivity analysis.
    fn nominal(&self) -> Vec<f64> {
        let (lb, ub) = self.bounds();
        lb.iter().zip(&ub).map(|(l, u)| 0.5 * (l + u)).collect()
    }
}

/// Robust clipping bounds for surrogate-model targets: `(lo, hi)` such
/// that values inside the bulk of the distribution pass through unchanged
/// while failure-penalty cliffs (e.g. the 1e12 placeholders of
/// [`SpecResult::failed`]) are pulled close enough to carry gradient
/// information without destroying the target scaling.
///
/// Uses the 10th/90th percentiles `p10`, `p90` and returns
/// `(p10 − 3·r, p90 + 3·r)` with `r = max(p90 − p10, ε)`.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn robust_clip_bounds(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty(), "cannot clip an empty column");
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return (-1.0, 1.0);
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| v[((v.len() - 1) as f64 * p).round() as usize];
    let (p10, p90) = (q(0.1), q(0.9));
    let r = (p90 - p10).max(1e-9 * (1.0 + p90.abs()));
    (p10 - 3.0 * r, p90 + 3.0 * r)
}

/// Maps a design point into the unit cube given problem bounds.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn to_unit(x: &[f64], lb: &[f64], ub: &[f64]) -> Vec<f64> {
    assert!(
        x.len() == lb.len() && x.len() == ub.len(),
        "to_unit: length mismatch"
    );
    x.iter()
        .zip(lb.iter().zip(ub))
        .map(|(&v, (&l, &u))| if u > l { (v - l) / (u - l) } else { 0.5 })
        .collect()
}

/// Inverse of [`to_unit`].
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn from_unit(u: &[f64], lb: &[f64], ub: &[f64]) -> Vec<f64> {
    assert!(
        u.len() == lb.len() && u.len() == ub.len(),
        "from_unit: length mismatch"
    );
    u.iter()
        .zip(lb.iter().zip(ub))
        .map(|(&t, (&l, &h))| l + t * (h - l))
        .collect()
}

#[cfg(test)]
pub(crate) mod test_problems {
    use super::*;

    /// A cheap analytic stand-in for a circuit: minimize Σ(x−0.3)² with
    /// constraints requiring each coordinate ≥ 0.1 (written as 0.1 − x ≤ 0)
    /// and the sum ≤ d·0.8.
    pub struct Sphere {
        pub d: usize,
    }

    impl SizingProblem for Sphere {
        fn dim(&self) -> usize {
            self.d
        }

        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; self.d], vec![1.0; self.d])
        }

        fn num_constraints(&self) -> usize {
            self.d + 1
        }

        fn evaluate(&self, x: &[f64]) -> SpecResult {
            let objective = x.iter().map(|v| (v - 0.3).powi(2)).sum();
            let mut constraints: Vec<f64> = x.iter().map(|v| 0.1 - v).collect();
            constraints.push(x.iter().sum::<f64>() - 0.8 * self.d as f64);
            SpecResult {
                objective,
                constraints,
            }
        }

        fn name(&self) -> &str {
            "sphere"
        }
    }

    /// A problem with a narrow feasible region, for exercising
    /// first-feasible statistics: feasible only when ‖x − 0.7‖∞ ≤ 0.05.
    pub struct NarrowBand {
        pub d: usize,
    }

    impl SizingProblem for NarrowBand {
        fn dim(&self) -> usize {
            self.d
        }

        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; self.d], vec![1.0; self.d])
        }

        fn num_constraints(&self) -> usize {
            self.d
        }

        fn evaluate(&self, x: &[f64]) -> SpecResult {
            let objective = x.iter().sum::<f64>();
            let constraints = x.iter().map(|v| (v - 0.7).abs() - 0.05).collect();
            SpecResult {
                objective,
                constraints,
            }
        }

        fn name(&self) -> &str {
            "narrow-band"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_problems::Sphere;
    use super::*;

    #[test]
    fn feasibility_detection() {
        let ok = SpecResult {
            objective: 1.0,
            constraints: vec![-0.1, 0.0],
        };
        assert!(ok.feasible());
        let bad = SpecResult {
            objective: 1.0,
            constraints: vec![-0.1, 0.01],
        };
        assert!(!bad.feasible());
    }

    #[test]
    fn vector_roundtrip() {
        let s = SpecResult {
            objective: 2.0,
            constraints: vec![1.0, -1.0],
        };
        let v = s.as_vector();
        assert_eq!(v, vec![2.0, 1.0, -1.0]);
        assert_eq!(SpecResult::from_vector(&v), s);
    }

    #[test]
    fn failed_results_are_infeasible_and_flagged() {
        let f = SpecResult::failed(3);
        assert!(!f.feasible());
        assert!(f.is_failure());
        let ok = SpecResult {
            objective: 1.0,
            constraints: vec![0.0],
        };
        assert!(!ok.is_failure());
    }

    #[test]
    fn unit_mapping_roundtrip() {
        let lb = vec![-1.0, 0.0, 10.0];
        let ub = vec![1.0, 5.0, 20.0];
        let x = vec![0.0, 2.5, 15.0];
        let u = to_unit(&x, &lb, &ub);
        assert_eq!(u, vec![0.5, 0.5, 0.5]);
        let back = from_unit(&u, &lb, &ub);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_bounds_do_not_divide_by_zero() {
        let u = to_unit(&[3.0], &[3.0], &[3.0]);
        assert_eq!(u, vec![0.5]);
    }

    #[test]
    fn sphere_problem_basics() {
        let p = Sphere { d: 3 };
        assert_eq!(p.dim(), 3);
        assert_eq!(p.num_constraints(), 4);
        let r = p.evaluate(&[0.3, 0.3, 0.3]);
        assert!(r.objective < 1e-12);
        assert!(r.feasible());
        let r2 = p.evaluate(&[0.05, 0.3, 0.3]);
        assert!(!r2.feasible());
        assert_eq!(p.nominal(), vec![0.5, 0.5, 0.5]);
        assert_eq!(p.variable_names().len(), 3);
    }
}
