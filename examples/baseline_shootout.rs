//! All five optimizers side by side on a cheap synthetic sizing problem.
//!
//! Run with `cargo run --release --example baseline_shootout`.

use dnn_opt::{DnnOpt, DnnOptConfig};
use opt::{
    BoWei, DifferentialEvolution, Fom, Gaspad, Optimizer, RandomSearch, SimulatedAnnealing,
    SizingProblem, SpecResult, StopPolicy,
};

/// Constrained Rosenbrock-flavored problem in 6-d.
struct Bench;

impl SizingProblem for Bench {
    fn dim(&self) -> usize {
        6
    }
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; 6], vec![1.0; 6])
    }
    fn num_constraints(&self) -> usize {
        2
    }
    fn evaluate(&self, x: &[f64]) -> SpecResult {
        let obj: f64 = (0..5)
            .map(|i| 4.0 * (x[i + 1] - x[i] * x[i]).powi(2) + (1.0 - x[i]).powi(2))
            .sum();
        SpecResult {
            failure: None,
            objective: obj,
            constraints: vec![x.iter().sum::<f64>() - 4.5, 0.35 - x[0]],
        }
    }
    fn name(&self) -> &str {
        "rosenbrock-6d"
    }
}

fn main() {
    let fom = Fom::uniform(0.3, 2);
    let budget = 250;
    println!(
        "{:<10} {:>8} {:>14} {:>10}",
        "method", "budget", "first feasible", "best FoM"
    );
    let methods: Vec<Box<dyn Optimizer>> = vec![
        Box::new(RandomSearch),
        Box::new(DifferentialEvolution::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(BoWei::default()),
        Box::new(Gaspad::default()),
        Box::new(DnnOpt::new(DnnOptConfig::default())),
    ];
    for m in methods {
        let run = m.run(&Bench, &fom, budget, StopPolicy::Exhaust, 3);
        println!(
            "{:<10} {:>8} {:>14} {:>10.4}",
            m.name(),
            budget,
            run.sims_to_feasible()
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
            run.history.best().map(|e| e.fom).unwrap_or(f64::NAN)
        );
    }
}
