//! The continuous-time linear equalizer — paper Table V row 4.
//!
//! A source-degenerated NMOS differential pair (R_S ∥ C_S between the
//! sources) with resistive loads and source-follower output buffers. The
//! degeneration zero boosts high frequencies relative to DC — the classic
//! CTLE peaking response — and the sink/buffer current mirrors are heavily
//! arrayed, emulating the paper's 173k device count.
//!
//! 14 constraints cover DC gain window, peaking window, peak-frequency
//! window, Nyquist-rate boost, bandwidth, power, output common mode,
//! offset, and saturation margins — matching the paper's "DC Gain, offset,
//! Nyquist Gain, Fpeak, Peaking Max, Power, etc." list.

use opt::{SizingProblem, SpecResult};
use spice::{Circuit, SimOptions, SpiceError, Waveform, GND};

use crate::measure;
use crate::parasitics::{apply_parasitics, update_parasitics, ParasiticConfig};
use crate::tech::{tech_advanced, Corner, CornerSet, Technology};

/// The CTLE sizing problem (12 variables — ~8 critical — and 14
/// constraints).
#[derive(Debug, Clone)]
pub struct Ctle {
    tech: Technology,
    opts: SimOptions,
    parasitics: ParasiticConfig,
    /// Input common mode \[V\] (tracks the corner supply).
    vcm: f64,
    /// Nyquist frequency of the target link \[Hz\].
    f_nyquist: f64,
    /// Prebuilt testbench topology; per-candidate evaluation clones it and
    /// re-sizes devices and parasitics in place.
    template: Circuit,
    /// Output node ids `(op, on)`.
    outs: (usize, usize),
    /// The PVT scenario plane this instance evaluates across.
    corners: CornerSet,
    /// Evaluation planes for `corners[1..]` (plane 0 is this instance).
    extra_planes: Vec<Ctle>,
}

impl Default for Ctle {
    fn default() -> Self {
        Self::new()
    }
}

impl Ctle {
    /// Creates the problem on the generic advanced-node technology at the
    /// nominal corner only (the legacy single-scenario plane).
    pub fn new() -> Self {
        Self::with_corners(CornerSet::nominal())
    }

    /// Creates the problem evaluating every candidate across a PVT corner
    /// set (see [`crate::tech::CornerSet`]); corner 0 of every standard
    /// set is nominal and bit-identical to [`Ctle::new`].
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or the template fails to build.
    pub fn with_corners(corners: CornerSet) -> Self {
        let (mut base, extras) = corners.split_planes(Self::build_plane);
        base.corners = corners;
        base.extra_planes = extras;
        base
    }

    /// Builds one single-corner evaluation plane.
    fn build_plane(corner: &Corner) -> Ctle {
        let mut ctle = Ctle {
            tech: tech_advanced().at_corner(corner),
            opts: corner.options(&SimOptions::default()),
            parasitics: ParasiticConfig::default(),
            vcm: 0.55 * corner.vdd_scale,
            f_nyquist: 4e9,
            template: Circuit::new(),
            outs: (0, 0),
            corners: CornerSet::single(*corner),
            extra_planes: Vec::new(),
        };
        let (ckt, op_id, on_id) = ctle.build_topology().expect("CTLE template must build");
        ctle.template = ckt;
        ctle.outs = (op_id, on_id);
        ctle
    }

    /// The scenario plane this instance evaluates across.
    pub fn corners(&self) -> &CornerSet {
        &self.corners
    }

    /// The evaluation plane of corner `k` (0 = this instance).
    fn plane(&self, k: usize) -> &Ctle {
        if k == 0 {
            self
        } else {
            &self.extra_planes[k - 1]
        }
    }

    /// A hand-tuned near-feasible design.
    ///
    /// Layout: `[w_in, l_in, rs, cs, rl, m_sink, w_buf, c_par, w_decap,
    /// l_decap, w_dummy, r_term]`.
    pub fn nominal(&self) -> Vec<f64> {
        let u = 1e-6;
        vec![
            8.0 * u,  // input pair width
            0.03 * u, // input pair length
            400.0,    // degeneration resistor
            100e-15,  // degeneration capacitor
            200.0,    // load resistor
            500.0,    // sink array fingers
            6.0 * u,  // buffer follower width
            5e-15,    // extra load-node cap
            1.0 * u,  // decap width  (non-critical)
            0.1 * u,  // decap length (non-critical)
            0.3 * u,  // dummy width  (non-critical)
            55.0,     // input termination (non-critical with ideal drive)
        ]
    }

    /// Builds the testbench topology once, with the nominal sizing applied
    /// (the sizing itself lives exclusively in [`Ctle::resize`]).
    fn build_topology(&self) -> Result<(Circuit, usize, usize), SpiceError> {
        let t = &self.tech;
        let l = t.l_min;
        let u = 1e-6;
        let (w_in, l_in, rs, cs, rl, m_sink, w_buf, c_par) =
            (u, l, 100.0, 1e-15, 100.0, 1.0, u, 1e-15);
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource("VDD", vdd, GND, Waveform::Dc(t.vdd))?;

        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        ckt.add_vsource_ac("VIP", inp, GND, Waveform::Dc(self.vcm), 0.5)?;
        ckt.add_vsource_ac("VIN", inn, GND, Waveform::Dc(self.vcm), -0.5)?;
        ckt.add_resistor("RT_P", inp, GND, 50.0)?;
        ckt.add_resistor("RT_N", inn, GND, 50.0)?;

        // Bias for the sink and buffer mirrors.
        let vbn = ckt.node("vbn");
        ckt.add_mosfet("MB_n", vbn, vbn, GND, GND, &t.nmos, 0.5e-6, 0.05e-6, 100.0)?;
        ckt.add_isource("IB", vdd, vbn, Waveform::Dc(100e-6))?;

        // Degenerated differential pair.
        let sp = ckt.node("sp");
        let sn = ckt.node("sn");
        let dp = ckt.node("dp");
        let dn = ckt.node("dn");
        ckt.add_mosfet("M_inP", dp, inp, sp, GND, &t.nmos, w_in, l_in, 4.0)?;
        ckt.add_mosfet("M_inN", dn, inn, sn, GND, &t.nmos, w_in, l_in, 4.0)?;
        ckt.add_resistor("RS", sp, sn, rs)?;
        ckt.add_capacitor("CS", sp, sn, cs)?;
        // Arrayed current sinks (0.5 µm fingers off the bias mirror).
        ckt.add_mosfet(
            "M_snkP", sp, vbn, GND, GND, &t.nmos, 0.5e-6, 0.05e-6, m_sink,
        )?;
        ckt.add_mosfet(
            "M_snkN", sn, vbn, GND, GND, &t.nmos, 0.5e-6, 0.05e-6, m_sink,
        )?;
        ckt.add_resistor("RL_P", vdd, dp, rl)?;
        ckt.add_resistor("RL_N", vdd, dn, rl)?;
        ckt.add_capacitor("CP_P", dp, GND, c_par)?;
        ckt.add_capacitor("CP_N", dn, GND, c_par)?;

        // Source-follower output buffers with arrayed sink loads.
        let op = ckt.node("op");
        let on = ckt.node("on");
        ckt.add_mosfet("M_bufP", vdd, dp, op, GND, &t.nmos, w_buf, l, 2.0)?;
        ckt.add_mosfet("M_bufN", vdd, dn, on, GND, &t.nmos, w_buf, l, 2.0)?;
        ckt.add_mosfet(
            "M_bsnkP",
            op,
            vbn,
            GND,
            GND,
            &t.nmos,
            0.5e-6,
            0.05e-6,
            m_sink / 2.0,
        )?;
        ckt.add_mosfet(
            "M_bsnkN",
            on,
            vbn,
            GND,
            GND,
            &t.nmos,
            0.5e-6,
            0.05e-6,
            m_sink / 2.0,
        )?;
        ckt.add_capacitor("CL_P", op, GND, 30e-15)?;
        ckt.add_capacitor("CL_N", on, GND, 30e-15)?;

        // Device-count emulation: rail decap arrays.
        ckt.add_mosfet("M_decap1", GND, vdd, GND, GND, &t.nmos, u, l, 85_500.0)?;
        ckt.add_mosfet("M_decap2", GND, vdd, GND, GND, &t.nmos, u, l, 85_500.0)?;
        ckt.add_mosfet("M_dummy", dp, GND, GND, GND, &t.nmos, u, l, 1.0)?;
        self.resize(&mut ckt, &self.nominal())?;
        apply_parasitics(&mut ckt, &self.parasitics)?;
        let op_id = ckt.find_node("op")?;
        let on_id = ckt.find_node("on")?;
        Ok((ckt, op_id, on_id))
    }

    /// Writes every design-dependent device value for the vector `x` —
    /// the single source of truth for the variable→device mapping.
    fn resize(&self, ckt: &mut Circuit, x: &[f64]) -> Result<(), SpiceError> {
        let t = &self.tech;
        let l = t.l_min;
        let (w_in, l_in, rs, cs, rl, m_sink, w_buf, c_par) = (
            x[0],
            x[1].max(l),
            x[2],
            x[3],
            x[4],
            x[5].round().max(1.0),
            x[6],
            x[7],
        );
        ckt.set_mosfet_geometry("M_inP", w_in, l_in, 4.0)?;
        ckt.set_mosfet_geometry("M_inN", w_in, l_in, 4.0)?;
        ckt.set_resistance("RS", rs)?;
        ckt.set_capacitance("CS", cs)?;
        ckt.set_mosfet_geometry("M_snkP", 0.5e-6, 0.05e-6, m_sink)?;
        ckt.set_mosfet_geometry("M_snkN", 0.5e-6, 0.05e-6, m_sink)?;
        ckt.set_resistance("RL_P", rl)?;
        ckt.set_resistance("RL_N", rl)?;
        ckt.set_capacitance("CP_P", c_par)?;
        ckt.set_capacitance("CP_N", c_par)?;
        ckt.set_mosfet_geometry("M_bufP", w_buf, l, 2.0)?;
        ckt.set_mosfet_geometry("M_bufN", w_buf, l, 2.0)?;
        ckt.set_mosfet_geometry("M_bsnkP", 0.5e-6, 0.05e-6, m_sink / 2.0)?;
        ckt.set_mosfet_geometry("M_bsnkN", 0.5e-6, 0.05e-6, m_sink / 2.0)?;
        ckt.set_resistance("RT_P", x[11].max(1.0))?;
        ckt.set_resistance("RT_N", x[11].max(1.0))?;
        ckt.set_mosfet_geometry("M_decap1", x[8], x[9].max(l), 85_500.0)?;
        ckt.set_mosfet_geometry("M_decap2", x[8], x[9].max(l), 85_500.0)?;
        ckt.set_mosfet_geometry("M_dummy", x[10], l, 1.0)?;
        Ok(())
    }

    /// Instantiates the candidate `x`: clones the prebuilt template and
    /// re-sizes devices and parasitics in place (no netlist rebuild; the
    /// topology fingerprint is unchanged so pooled solver state carries
    /// across candidates).
    #[allow(clippy::type_complexity)]
    fn build(&self, x: &[f64]) -> Result<(Circuit, usize, usize), SpiceError> {
        let mut ckt = self.template.clone();
        self.resize(&mut ckt, x)?;
        update_parasitics(&mut ckt, &self.parasitics)?;
        Ok((ckt, self.outs.0, self.outs.1))
    }

    /// Expanded MOS count (array-aware), ~173k as in the paper's Table V.
    pub fn device_count(&self) -> f64 {
        let x = self.nominal();
        self.build(&x)
            .map(|(c, _, _)| c.expanded_mosfet_count())
            .unwrap_or(0.0)
    }
}

impl SizingProblem for Ctle {
    fn dim(&self) -> usize {
        12
    }

    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let u = 1e-6;
        (
            vec![
                1.0 * u,
                0.02 * u,
                50.0,
                10e-15,
                50.0,
                100.0,
                1.0 * u,
                0.0,
                0.1 * u,
                0.02 * u,
                0.1 * u,
                40.0,
            ],
            vec![
                40.0 * u,
                0.2 * u,
                2000.0,
                500e-15,
                1000.0,
                3000.0,
                30.0 * u,
                50e-15,
                8.0 * u,
                0.5 * u,
                8.0 * u,
                70.0,
            ],
        )
    }

    fn num_constraints(&self) -> usize {
        14
    }

    fn name(&self) -> &str {
        "ctle"
    }

    fn variable_names(&self) -> Vec<String> {
        [
            "w_in", "l_in", "rs", "cs", "rl", "m_sink", "w_buf", "c_par", "w_decap", "l_decap",
            "w_dummy", "r_term",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    fn nominal(&self) -> Vec<f64> {
        self.nominal()
    }

    fn num_corners(&self) -> usize {
        self.corners.len()
    }

    fn corner_name(&self, k: usize) -> String {
        self.corners.corners[k].label()
    }

    fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
        // Deterministic fault-plane scope, keyed by candidate bits × corner.
        let _scope = spice::fault::candidate_scope(spice::fault::candidate_key(x, k as u64));
        self.plane(k).evaluate_plane(x)
    }

    fn evaluate(&self, x: &[f64]) -> SpecResult {
        opt::evaluate_worst_case(self, x)
    }
}

impl Ctle {
    /// Runs the full measurement suite on this plane's corner — the
    /// single-scenario evaluation every corner of the plane shares.
    fn evaluate_plane(&self, x: &[f64]) -> SpecResult {
        let m = SizingProblem::num_constraints(self);
        let (ckt, op_n, on_n) = match self.build(x) {
            Ok(v) => v,
            Err(e) => {
                return SpecResult::failed_with(m, crate::diag_from_spice(&e, "ctle netlist"))
            }
        };
        // One pooled workspace per evaluation; the DC solve reuses the
        // recorded solver state of previous candidates.
        let mut ws = spice::lease_workspace(&ckt);
        let dc = match spice::op_with_workspace(&ckt, &self.opts, None, &mut ws) {
            Ok(dc) => dc,
            Err(e) => return SpecResult::failed_with(m, crate::diag_from_spice(&e, "ctle op")),
        };
        let power = match dc.source_current(&ckt, "VDD") {
            Ok(i) => -i * self.tech.vdd,
            Err(e) => return SpecResult::failed_with(m, crate::diag_from_spice(&e, "ctle power")),
        };
        let out_cm = 0.5 * (dc.voltage(op_n) + dc.voltage(on_n));
        let offset = (dc.voltage(op_n) - dc.voltage(on_n)).abs();
        let sat_margin = ["M_inP", "M_inN", "M_snkP", "M_snkN", "M_bufP", "M_bufN"]
            .iter()
            .map(|n| dc.mos_op(n).map(|mo| mo.vsat_margin).unwrap_or(-1.0))
            .fold(f64::INFINITY, f64::min);

        let freqs = spice::log_freqs(1e7, 2e10, 8);
        let ac = match spice::ac_with_workspace(&ckt, &self.opts, &dc, &freqs, &mut ws) {
            Ok(ac) => ac,
            Err(e) => return SpecResult::failed_with(m, crate::diag_from_spice(&e, "ctle ac")),
        };
        let mag = ac.diff_magnitude(op_n, on_n);
        let dc_gain_db = measure::db(mag[0]);
        let (f_peak, m_peak) = measure::peak(&freqs, &mag);
        let peak_db = measure::db(m_peak);
        let peaking = peak_db - dc_gain_db;
        let nyq_gain_db = measure::db(measure::sample_response(&freqs, &mag, self.f_nyquist));
        // Bandwidth: −3 dB below the peak, searched beyond the peak.
        let bw = {
            let start = freqs.iter().position(|&f| f >= f_peak).unwrap_or(0);
            measure::crossing_frequency(
                &freqs[start..],
                &mag[start..],
                m_peak * std::f64::consts::FRAC_1_SQRT_2,
            )
        };

        let constraints = vec![
            // 1/2. DC gain window: −10 dB … −1 dB.
            (-10.0 - dc_gain_db) / 6.0,
            (dc_gain_db - (-1.0)) / 6.0,
            // 3/4. Peaking window: 2 … 10 dB.
            (2.0 - peaking) / 4.0,
            (peaking - 10.0) / 4.0,
            // 5/6. Peak frequency window: 1.5 … 8 GHz.
            (1.5e9 - f_peak) / 2e9,
            (f_peak - 8e9) / 4e9,
            // 7. Nyquist boost: gain at 4 GHz at least 1 dB above DC.
            ((dc_gain_db + 1.0) - nyq_gain_db) / 4.0,
            // 8. Bandwidth > 6 GHz.
            match bw {
                Some(f) => (6e9 - f) / 6e9,
                None => -0.5, // no crossing inside the sweep: BW beyond 20 GHz
            },
            // 9. Power < 3 mW.
            (power - 3e-3) / 3e-3,
            // 10/11. Output common mode window: 0.25 … 0.48 V.
            (0.25 - out_cm) / 0.2,
            (out_cm - 0.48) / 0.2,
            // 12. Offset < 1 mV.
            (offset - 1e-3) / 1e-3,
            // 13. Saturation margins > 0.
            -sat_margin / 0.1,
            // 14. Nyquist gain above −6 dB absolute.
            (-6.0 - nyq_gain_db) / 6.0,
        ];
        SpecResult {
            failure: None,
            objective: power,
            constraints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_constraints_twelve_vars() {
        let ctle = Ctle::new();
        assert_eq!(ctle.dim(), 12);
        assert_eq!(ctle.num_constraints(), 14);
    }

    #[test]
    fn device_count_matches_paper_scale() {
        let ctle = Ctle::new();
        let n = ctle.device_count();
        assert!(n > 160_000.0 && n < 180_000.0, "count {n}");
    }

    #[test]
    fn nominal_peaks() {
        let ctle = Ctle::new();
        let spec = ctle.evaluate(&ctle.nominal());
        assert!(!spec.is_failure(), "nominal CTLE must simulate");
        // The equalization shape must be present: peaking above 2 dB.
        assert!(
            spec.constraints[2] <= 0.0,
            "peaking-min violated: {}",
            spec.constraints[2]
        );
        assert!(
            spec.constraints[3] <= 0.0,
            "peaking-max violated: {}",
            spec.constraints[3]
        );
    }

    #[test]
    fn nominal_corner_is_bit_identical_to_legacy_path() {
        let legacy = Ctle::new();
        let cornered = Ctle::with_corners(CornerSet::pvt5());
        let x = legacy.nominal();
        let a = legacy.evaluate(&x);
        let b = cornered.evaluate_corner(&x, 0);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        for (p, q) in a.constraints.iter().zip(&b.constraints) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn five_corner_plane_evaluates_everywhere() {
        let ctle = Ctle::with_corners(CornerSet::pvt5());
        assert_eq!(ctle.num_corners(), 5);
        let x = ctle.nominal();
        for k in 0..ctle.num_corners() {
            let spec = ctle.evaluate_corner(&x, k);
            assert_eq!(spec.constraints.len(), 14);
            assert!(
                !spec.is_failure(),
                "corner {} must simulate",
                ctle.corner_name(k)
            );
        }
        let worst = ctle.evaluate(&x);
        assert!(!worst.is_failure());
        let nom = ctle.evaluate_corner(&x, 0);
        for (w, n) in worst.constraints.iter().zip(&nom.constraints) {
            assert!(w >= n, "worst case can only tighten: {w} < {n}");
        }
    }

    #[test]
    fn removing_degeneration_kills_peaking() {
        let ctle = Ctle::new();
        let mut x = ctle.nominal();
        x[2] = 50.0; // minimal Rs: nearly no degeneration -> little peaking
        x[3] = 10e-15;
        let spec = ctle.evaluate(&x);
        // With negligible degeneration the zero moves far out: the peaking
        // window constraint must react (looser or violated).
        let nominal_spec = ctle.evaluate(&ctle.nominal());
        assert!(spec.constraints[2] > nominal_spec.constraints[2]);
    }
}
