//! Property-based tests on the factorization kernels.

use linalg::{
    gemm, gemm_naive, gemm_prepacked_with, gemm_with, pack_b_into, Cholesky, CholeskyWorkspace,
    ComplexLu, ComplexLuWorkspace, CscComplexMatrix, CscMatrix, Epilogue, FactorError, GemmOp,
    GemmWorkspace, Lu, LuWorkspace, Matrix, NoEpilogue, PackedB, SparseComplexLu, SparseLu,
    SupernodalMode, C64, GEMM_PARALLEL_MIN_WORK,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// The thread-count override is process-global; every test that flips it
/// holds this lock so concurrent property tests never observe each
/// other's setting mid-comparison.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// A post-layout-style grid conductance matrix: a `rows`×`cols` mesh with
/// nearest-neighbor, diagonal, and pitch-2 coupling conductances jittered
/// from the seed stream, plus a unit-order ground conductance on every
/// node. The ground term keeps the matrix diagonally dominant by a margin
/// far above the value perturbations the tests apply, so the partial
/// pivot search always lands on the diagonal — a prerequisite for the
/// bit-identity test below, which compares factorizations of *different*
/// values on the same pattern. This is the workload class the supernodal
/// engine dispatches on: its factor fills into dense trailing blocks that
/// form wide supernodes.
fn mesh_matrix(rows: usize, cols: usize, seed: &[f64]) -> Matrix {
    fn couple(dense: &mut Matrix, a: usize, b: usize, g: f64) {
        dense[(a, b)] -= g;
        dense[(b, a)] -= g;
        dense[(a, a)] += g;
        dense[(b, b)] += g;
    }
    let n = rows * cols;
    let mut dense = Matrix::zeros(n, n);
    let jit = |k: usize| 0.5 + 0.45 * seed[k % seed.len()].abs();
    for r in 0..rows {
        for c in 0..cols {
            let k = r * cols + c;
            dense[(k, k)] += 2.0 + jit(7 * k);
            let steps: [(usize, bool, f64); 6] = [
                (1, c + 1 < cols, 1.0),
                (cols, true, 1.0),
                (cols + 1, c + 1 < cols, 0.5),
                (2, c + 2 < cols, 0.25),
                (2 * cols, true, 0.25),
                (2 * cols + 2, c + 2 < cols, 0.2),
            ];
            for (j, &(st, ok, g0)) in steps.iter().enumerate() {
                if ok && k + st < n {
                    couple(&mut dense, k, k + st, g0 * jit(6 * k + j));
                }
            }
        }
    }
    dense
}

/// Random diagonally dominant matrix (guaranteed non-singular).
fn dominant_matrix(n: usize, seed: &[f64]) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let v = seed[(i * n + j) % seed.len()];
        if i == j {
            n as f64 + 1.0 + v.abs()
        } else {
            v
        }
    })
}

/// Random *sparse* well-conditioned `G + jωC`-shaped complex system: a
/// strongly dominant real diagonal plus an `ω`-scaled imaginary part, with
/// sparse off-diagonals (~25% fill). The pattern depends only on the seed,
/// never on `ω` — the AC-sweep invariant the sparse complex kernel relies
/// on.
fn sparse_ac_matrix(n: usize, omega: f64, seed: &[f64]) -> Vec<Vec<C64>> {
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let v = seed[(i * n + j) % seed.len()];
                    let w = seed[(i + j * n + 11) % seed.len()];
                    if i == j {
                        C64::new(n as f64 + 1.0 + v.abs(), omega * (0.1 + w.abs()))
                    } else if ((v * 100.0).abs() as usize).is_multiple_of(4) {
                        C64::new(v * 0.3, omega * w * 0.1)
                    } else {
                        C64::ZERO
                    }
                })
                .collect()
        })
        .collect()
}

fn complex_rhs(n: usize, seed: &[f64]) -> Vec<C64> {
    (0..n)
        .map(|i| C64::new(seed[i % seed.len()], seed[(i + 5) % seed.len()]))
        .collect()
}

/// Random *sparse* diagonally dominant matrix: each off-diagonal entry
/// exists only when the seed stream says so (~25% fill).
fn sparse_dominant_matrix(n: usize, seed: &[f64]) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let v = seed[(i * n + j) % seed.len()];
        if i == j {
            n as f64 + 1.0 + v.abs()
        } else if ((v * 100.0).abs() as usize).is_multiple_of(4) {
            v
        } else {
            0.0
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LU solve residual is tiny for diagonally dominant systems.
    #[test]
    fn lu_solves_dominant_systems(
        n in 1usize..12,
        seed in proptest::collection::vec(-1.0..1.0f64, 16..200),
        rhs in proptest::collection::vec(-10.0..10.0f64, 12),
    ) {
        let a = dominant_matrix(n, &seed);
        let b = &rhs[..n];
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(b);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(b) {
            prop_assert!((ri - bi).abs() < 1e-8);
        }
    }

    /// The in-place workspace kernels agree with the allocating `Lu` path
    /// far below 1e-12 (they perform identical operations).
    #[test]
    fn lu_factor_into_agrees_with_factor(
        n in 1usize..12,
        seed in proptest::collection::vec(-1.0..1.0f64, 16..200),
        rhs in proptest::collection::vec(-10.0..10.0f64, 12),
    ) {
        let a = dominant_matrix(n, &seed);
        let b = &rhs[..n];
        let x_owned = Lu::factor(&a).unwrap().solve(b);
        let mut ws = LuWorkspace::new(n);
        Lu::factor_into(&a, &mut ws).unwrap();
        let mut x_ws = Vec::new();
        ws.solve_into(b, &mut x_ws).unwrap();
        for (u, v) in x_owned.iter().zip(&x_ws) {
            prop_assert!((u - v).abs() < 1e-12);
        }
    }

    /// Workspace reuse across differently sized systems stays correct.
    #[test]
    fn lu_workspace_reuse_is_sound(
        sizes in proptest::collection::vec(1usize..10, 2..6),
        seed in proptest::collection::vec(-1.0..1.0f64, 32..200),
    ) {
        let mut ws = LuWorkspace::new(1);
        let mut x = Vec::new();
        for &n in &sizes {
            let a = dominant_matrix(n, &seed);
            let b: Vec<f64> = (0..n).map(|i| seed[i % seed.len()] * 3.0).collect();
            Lu::factor_into(&a, &mut ws).unwrap();
            ws.solve_into(&b, &mut x).unwrap();
            let r = a.matvec(&x);
            for (ri, bi) in r.iter().zip(&b) {
                prop_assert!((ri - bi).abs() < 1e-8);
            }
        }
    }

    /// The in-place Cholesky kernels agree with the allocating path.
    #[test]
    fn cholesky_factor_into_agrees_with_factor(
        n in 1usize..10,
        seed in proptest::collection::vec(-2.0..2.0f64, 16..150),
        rhs in proptest::collection::vec(-5.0..5.0f64, 10),
    ) {
        let g = Matrix::from_fn(n, n, |i, j| seed[(i * n + j) % seed.len()]);
        let mut a = g.transpose().matmul(&g);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let b = &rhs[..n];
        let ch = Cholesky::factor(&a).unwrap();
        let mut ws = CholeskyWorkspace::new(n);
        Cholesky::factor_into(&a, &mut ws).unwrap();
        let mut x_ws = Vec::new();
        ws.solve_into(b, &mut x_ws).unwrap();
        for (u, v) in ch.solve(b).iter().zip(&x_ws) {
            prop_assert!((u - v).abs() < 1e-12);
        }
        prop_assert!((ch.log_det() - ws.log_det()).abs() < 1e-12);
    }

    /// det(A·A) = det(A)² through the LU determinant.
    #[test]
    fn lu_det_is_multiplicative(
        n in 1usize..6,
        seed in proptest::collection::vec(-1.0..1.0f64, 16..80),
    ) {
        let a = dominant_matrix(n, &seed);
        let aa = a.matmul(&a);
        let da = Lu::factor(&a).unwrap().det();
        let daa = Lu::factor(&aa).unwrap().det();
        prop_assert!((daa - da * da).abs() < 1e-6 * da.abs().max(1.0) * da.abs().max(1.0));
    }

    /// Cholesky of GᵀG + I always succeeds and solves correctly.
    #[test]
    fn cholesky_solves_gram_systems(
        n in 1usize..10,
        seed in proptest::collection::vec(-2.0..2.0f64, 16..150),
        rhs in proptest::collection::vec(-5.0..5.0f64, 10),
    ) {
        let g = Matrix::from_fn(n, n, |i, j| seed[(i * n + j) % seed.len()]);
        let mut a = g.transpose().matmul(&g);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let b = &rhs[..n];
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(b);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(b) {
            prop_assert!((ri - bi).abs() < 1e-7);
        }
        // log|A| finite and consistent with the LU determinant.
        let det_lu = Lu::factor(&a).unwrap().det();
        prop_assert!((ch.log_det() - det_lu.ln()).abs() < 1e-6);
    }

    /// Matrix transpose is an involution and matmul distributes over it.
    #[test]
    fn transpose_involution(
        rows in 1usize..8,
        cols in 1usize..8,
        seed in proptest::collection::vec(-3.0..3.0f64, 64),
    ) {
        let a = Matrix::from_fn(rows, cols, |i, j| seed[(i * cols + j) % seed.len()]);
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        // (A·Aᵀ)ᵀ = A·Aᵀ (symmetry of Gram matrices).
        let g = a.matmul(&a.transpose());
        let gt = g.transpose();
        prop_assert!((&g - &gt).max_abs() < 1e-12);
    }

    /// The sparse `refactor_into` path agrees with the dense
    /// `Lu::factor_into` path within 1e-10 on random sparse systems — the
    /// contract that lets the simulator auto-select between them.
    #[test]
    fn sparse_refactor_agrees_with_dense_factor_into(
        n in 1usize..14,
        seed in proptest::collection::vec(-1.0..1.0f64, 16..250),
        shift in proptest::collection::vec(-0.4..0.4f64, 16..250),
        rhs in proptest::collection::vec(-10.0..10.0f64, 14),
    ) {
        let dense0 = sparse_dominant_matrix(n, &seed);
        let b = &rhs[..n];
        let a0 = CscMatrix::from_dense(&dense0);
        let mut slu = SparseLu::new();
        slu.factor(&a0).unwrap();

        // Perturb the values on the fixed pattern and refactor.
        let mut a1 = a0.clone();
        for (k, v) in a1.values_mut().iter_mut().enumerate() {
            *v += shift[k % shift.len()] * 0.1;
        }
        let dense1 = a1.to_dense();
        slu.refactor_into(&a1).unwrap();
        let mut x_sparse = Vec::new();
        slu.solve_into(b, &mut x_sparse).unwrap();

        let mut ws = LuWorkspace::new(n);
        Lu::factor_into(&dense1, &mut ws).unwrap();
        let mut x_dense = Vec::new();
        ws.solve_into(b, &mut x_dense).unwrap();
        for (s, d) in x_sparse.iter().zip(&x_dense) {
            prop_assert!((s - d).abs() <= 1e-10 * d.abs().max(1.0), "{} vs {}", s, d);
        }
    }

    /// Singular-detection parity: when the dense path reports a singular
    /// matrix, so does the sparse path (and vice versa on these inputs).
    #[test]
    fn sparse_and_dense_agree_on_singularity(
        n in 2usize..10,
        seed in proptest::collection::vec(-1.0..1.0f64, 16..200),
        kill_row in 0usize..10,
        kill in 0usize..2,
    ) {
        // Construct an exactly singular matrix by zeroing one row or one
        // column of a sparse non-singular one: both kernels must flag it
        // (a zero row/column survives elimination exactly, so this probes
        // the pivot checks without floating-point cancellation luck).
        let mut dense = sparse_dominant_matrix(n, &seed);
        let dst = kill_row % n;
        for j in 0..n {
            if kill == 0 {
                dense[(dst, j)] = 0.0;
            } else {
                dense[(j, dst)] = 0.0;
            }
        }
        let mut ws = LuWorkspace::new(n);
        let dense_result = Lu::factor_into(&dense, &mut ws);
        let mut slu = SparseLu::new();
        // from_dense drops exact zeros; a fully zeroed row is structural.
        let sparse_result = slu.factor(&CscMatrix::from_dense(&dense));
        prop_assert!(
            matches!(dense_result, Err(FactorError::Singular { .. })),
            "dense path must flag singular, got {:?}", dense_result
        );
        prop_assert!(
            matches!(sparse_result, Err(FactorError::Singular { .. })),
            "sparse path must flag singular, got {:?}", sparse_result
        );
        // And the same pipelines succeed on the unmodified matrix.
        let healthy = sparse_dominant_matrix(n, &seed);
        prop_assert!(Lu::factor_into(&healthy, &mut ws).is_ok());
        prop_assert!(slu.factor(&CscMatrix::from_dense(&healthy)).is_ok());
    }

    /// Checked Cholesky solves match the panicking ones and reject bad
    /// shapes (the `try_*` mirror of the LU API).
    #[test]
    fn cholesky_try_solve_matches_solve(
        n in 1usize..9,
        seed in proptest::collection::vec(-2.0..2.0f64, 16..150),
        rhs in proptest::collection::vec(-5.0..5.0f64, 9),
    ) {
        let g = Matrix::from_fn(n, n, |i, j| seed[(i * n + j) % seed.len()]);
        let mut a = g.transpose().matmul(&g);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let b = &rhs[..n];
        let ch = Cholesky::factor(&a).unwrap();
        prop_assert_eq!(ch.try_solve(b).unwrap(), ch.solve(b));
        let mut ws = CholeskyWorkspace::new(n);
        Cholesky::factor_into(&a, &mut ws).unwrap();
        let mut x_ws = Vec::new();
        ws.solve_into(b, &mut x_ws).unwrap();
        prop_assert_eq!(ws.try_solve(b).unwrap(), x_ws);
        let bad = vec![0.0; n + 1];
        prop_assert!(ch.try_solve(&bad).is_err());
        prop_assert!(ws.try_solve(&bad).is_err());
        let eye = Matrix::identity(n);
        let inv = ch.try_solve_matrix(&eye).unwrap();
        prop_assert!((&a.matmul(&inv) - &eye).max_abs() < 1e-7);
        prop_assert!(ch.try_solve_matrix(&Matrix::zeros(n + 1, 1)).is_err());
        prop_assert!(ws.try_solve_matrix(&Matrix::zeros(n + 1, 1)).is_err());
    }

    /// Complex LU solves diagonally dominant complex systems.
    #[test]
    fn complex_lu_solves(
        n in 1usize..8,
        seed in proptest::collection::vec(-1.0..1.0f64, 32..200),
    ) {
        let a: Vec<Vec<C64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        let re = seed[(i * n + j) % seed.len()];
                        let im = seed[(i + j * n + 7) % seed.len()];
                        if i == j {
                            C64::new(re + n as f64 + 2.0, im)
                        } else {
                            C64::new(re * 0.3, im * 0.3)
                        }
                    })
                    .collect()
            })
            .collect();
        let b: Vec<C64> =
            (0..n).map(|i| C64::new(seed[i % seed.len()], seed[(i + 3) % seed.len()])).collect();
        let lu = ComplexLu::factor(a.clone()).unwrap();
        let x = lu.solve(&b);
        for i in 0..n {
            let mut s = C64::ZERO;
            for j in 0..n {
                s += a[i][j] * x[j];
            }
            prop_assert!((s - b[i]).abs() < 1e-8);
        }
        // The checked variants agree with the panicking ones and reject
        // bad shapes (the `try_*` mirror of the real LU API).
        prop_assert_eq!(lu.try_solve(&b).unwrap(), x.clone());
        prop_assert!(lu.try_solve(&vec![C64::ZERO; n + 1]).is_err());
        let bm: Vec<Vec<C64>> = b.iter().map(|&v| vec![v]).collect();
        let xm = lu.try_solve_matrix(&bm).unwrap();
        for (xi, row) in x.iter().zip(&xm) {
            prop_assert_eq!(*xi, row[0]);
        }
        prop_assert!(lu.try_solve_matrix(&vec![vec![C64::ZERO]; n + 1]).is_err());
    }

    /// The sparse complex kernel agrees with the dense complex workspace
    /// kernel within 1e-10 on random well-conditioned `G + jωC` systems —
    /// forward *and* transpose (adjoint) solves — the contract that lets
    /// the AC/noise engine auto-select between them.
    #[test]
    fn sparse_complex_agrees_with_dense_complex(
        n in 1usize..14,
        omega in 0.0..4.0f64,
        seed in proptest::collection::vec(-1.0..1.0f64, 16..250),
    ) {
        let dense = sparse_ac_matrix(n, omega, &seed);
        let b = complex_rhs(n, &seed);
        let a = CscComplexMatrix::from_dense_rows(&dense);
        let mut slu = SparseComplexLu::new();
        slu.factor(&a).unwrap();
        let mut ws = ComplexLuWorkspace::new(n);
        ComplexLu::factor_into(&dense, &mut ws).unwrap();

        let (mut xs, mut xd) = (Vec::new(), Vec::new());
        slu.solve_into(&b, &mut xs).unwrap();
        ws.solve_into(&b, &mut xd).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            prop_assert!((*s - *d).abs() <= 1e-10 * d.abs().max(1.0), "{} vs {}", s, d);
        }
        let (mut ys, mut yd) = (Vec::new(), Vec::new());
        slu.solve_transpose_into(&b, &mut ys).unwrap();
        ws.solve_transpose_into(&b, &mut yd).unwrap();
        for (s, d) in ys.iter().zip(&yd) {
            prop_assert!((*s - *d).abs() <= 1e-10 * d.abs().max(1.0), "adjoint {} vs {}", s, d);
        }
        // The dense workspace factors bit-identically to the owning
        // `ComplexLu::factor` path (shared elimination).
        let lu = ComplexLu::factor(dense.clone()).unwrap();
        let x_own = lu.solve(&b);
        for (w, o) in xd.iter().zip(&x_own) {
            prop_assert_eq!(w.re.to_bits(), o.re.to_bits());
            prop_assert_eq!(w.im.to_bits(), o.im.to_bits());
        }
    }

    /// Singular-detection parity for the complex kernels: when the dense
    /// path reports a singular matrix, so does the sparse path (and both
    /// succeed on the unmodified system).
    #[test]
    fn sparse_and_dense_complex_agree_on_singularity(
        n in 2usize..10,
        omega in 0.0..4.0f64,
        seed in proptest::collection::vec(-1.0..1.0f64, 16..200),
        kill_row in 0usize..10,
        kill in 0usize..2,
    ) {
        let mut dense = sparse_ac_matrix(n, omega, &seed);
        let dst = kill_row % n;
        for j in 0..n {
            if kill == 0 {
                dense[dst][j] = C64::ZERO;
            } else {
                dense[j][dst] = C64::ZERO;
            }
        }
        let mut ws = ComplexLuWorkspace::new(n);
        let dense_result = ComplexLu::factor_into(&dense, &mut ws);
        let mut slu = SparseComplexLu::new();
        // from_dense_rows drops exact zeros; a zeroed row is structural.
        let sparse_result = slu.factor(&CscComplexMatrix::from_dense_rows(&dense));
        prop_assert!(
            matches!(dense_result, Err(FactorError::Singular { .. })),
            "dense complex path must flag singular, got {:?}", dense_result
        );
        prop_assert!(
            matches!(sparse_result, Err(FactorError::Singular { .. })),
            "sparse complex path must flag singular, got {:?}", sparse_result
        );
        let healthy = sparse_ac_matrix(n, omega, &seed);
        prop_assert!(ComplexLu::factor_into(&healthy, &mut ws).is_ok());
        prop_assert!(slu.factor(&CscComplexMatrix::from_dense_rows(&healthy)).is_ok());
    }

    /// Across a frequency sweep on a fixed pattern, the scan-free
    /// `refactor_into` replay produces **bit-identical** solutions to a
    /// fresh pivoting `factor` at every point: on these strongly
    /// diagonally dominant systems the pivot search lands on the same
    /// (diagonal) sequence the recording pinned, so the two paths perform
    /// the same arithmetic in the same order.
    #[test]
    fn complex_refactor_bit_agrees_with_fresh_factor_across_sweep(
        n in 1usize..12,
        seed in proptest::collection::vec(-1.0..1.0f64, 16..250),
        omegas in proptest::collection::vec(0.0..4.0f64, 1..8),
    ) {
        let b = complex_rhs(n, &seed);
        let mut sweep_lu = SparseComplexLu::new();
        sweep_lu.factor(&CscComplexMatrix::from_dense_rows(&sparse_ac_matrix(n, 0.5, &seed))).unwrap();
        let (mut x_replay, mut x_fresh) = (Vec::new(), Vec::new());
        for &omega in &omegas {
            let a = CscComplexMatrix::from_dense_rows(&sparse_ac_matrix(n, omega, &seed));
            sweep_lu.refactor_into(&a).unwrap();
            sweep_lu.solve_into(&b, &mut x_replay).unwrap();
            let mut fresh = SparseComplexLu::new();
            fresh.factor(&a).unwrap();
            fresh.solve_into(&b, &mut x_fresh).unwrap();
            for (r, f) in x_replay.iter().zip(&x_fresh) {
                prop_assert_eq!(r.re.to_bits(), f.re.to_bits());
                prop_assert_eq!(r.im.to_bits(), f.im.to_bits());
            }
        }
    }
}

/// Builds a matrix with the effective shape `(rows, cols)` under `op`,
/// filled from the seed stream.
fn gemm_operand(op: GemmOp, rows: usize, cols: usize, seed: &[f64], offset: usize) -> Matrix {
    let (r, c) = match op {
        GemmOp::NoTrans => (rows, cols),
        GemmOp::Trans => (cols, rows),
    };
    Matrix::from_fn(r, c, |i, j| seed[(i * c + j + offset) % seed.len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The blocked GEMM agrees with the naive reference to ≤1e-12 relative
    /// for every op combination, alpha/beta case, and sizes straddling the
    /// naive-dispatch cutoff (`m·n·k` here spans ~1 … 64·GEMM_NAIVE_CUTOFF).
    #[test]
    fn gemm_blocked_agrees_with_naive(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        ops in 0usize..4,
        alpha in -2.0..2.0f64,
        beta_sel in 0usize..4,
        seed in proptest::collection::vec(-1.0..1.0f64, 32..200),
    ) {
        let op_a = if ops & 1 == 0 { GemmOp::NoTrans } else { GemmOp::Trans };
        let op_b = if ops & 2 == 0 { GemmOp::NoTrans } else { GemmOp::Trans };
        let beta = [0.0, 1.0, -0.75, 0.5][beta_sel];
        let a = gemm_operand(op_a, m, k, &seed, 0);
        let b = gemm_operand(op_b, k, n, &seed, 7);
        let c0 = Matrix::from_fn(m, n, |i, j| seed[(3 * i + 5 * j + 11) % seed.len()]);
        let mut ws = GemmWorkspace::new();
        let mut c_blocked = c0.clone();
        gemm(op_a, op_b, alpha, &a, &b, beta, &mut c_blocked, &mut ws);
        let mut c_naive = c0.clone();
        gemm_naive(op_a, op_b, alpha, &a, &b, beta, &mut c_naive);
        for (x, y) in c_blocked.as_slice().iter().zip(c_naive.as_slice()) {
            let scale = 1.0f64.max(y.abs());
            prop_assert!((x - y).abs() <= 1e-12 * scale, "{} vs {}", x, y);
        }
    }

    /// The fused epilogue is exactly one application per element after the
    /// value is final: `gemm_with(epilogue)` must match `gemm` followed by
    /// the same transformation as a separate pass — bit for bit, on both
    /// sides of the blocking cutoff.
    #[test]
    fn gemm_fused_epilogue_matches_separate_pass(
        m in 1usize..36,
        n in 1usize..36,
        k in 1usize..36,
        seed in proptest::collection::vec(-1.0..1.0f64, 32..200),
    ) {
        /// An affine per-column epilogue standing in for bias+activation.
        struct ColAffine<'a> {
            shift: &'a [f64],
        }
        impl Epilogue for ColAffine<'_> {
            fn apply(&mut self, _row: usize, col0: usize, seg: &mut [f64]) {
                let shift = &self.shift[col0..col0 + seg.len()];
                for (v, &s) in seg.iter_mut().zip(shift) {
                    *v = (*v + s).tanh();
                }
            }
        }
        let a = gemm_operand(GemmOp::NoTrans, m, k, &seed, 3);
        let b = gemm_operand(GemmOp::NoTrans, k, n, &seed, 13);
        let shift: Vec<f64> = (0..n).map(|j| seed[(j + 5) % seed.len()]).collect();
        let mut ws = GemmWorkspace::new();
        let mut fused = Matrix::default();
        gemm_with(
            GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0,
            &mut fused, &mut ws, &mut ColAffine { shift: &shift },
        );
        let mut separate = Matrix::default();
        gemm(GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0, &mut separate, &mut ws);
        for i in 0..m {
            for (v, &s) in separate.row_mut(i).iter_mut().zip(&shift) {
                *v = (*v + s).tanh();
            }
        }
        for (x, y) in fused.as_slice().iter().zip(separate.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

proptest! {
    // Threaded cases multiply large matrices; fewer cases keep the suite
    // fast while the dimension ranges still straddle every tile boundary.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The threaded GEMM is **bit-identical** to the serial path for every
    /// op combination and alpha/beta case, at even and odd thread counts.
    /// Dimensions are drawn to clear `GEMM_PARALLEL_MIN_WORK` (so the
    /// parallel split really engages) while straddling the MR/NR/MC tile
    /// boundaries (64..130 covers multiples, off-by-one, and remainders).
    #[test]
    fn gemm_threaded_is_bit_identical_to_serial(
        m in 64usize..130,
        n in 64usize..100,
        k in 16usize..40,
        ops in 0usize..4,
        alpha in -2.0..2.0f64,
        beta_sel in 0usize..4,
        threads_sel in 0usize..3,
        seed in proptest::collection::vec(-1.0..1.0f64, 32..200),
    ) {
        // The dimension floors guarantee m·n·k ≥ GEMM_PARALLEL_MIN_WORK
        // (64·64·16 is exactly the cutoff), so the split always engages.
        assert!(m * n * k >= GEMM_PARALLEL_MIN_WORK);
        let threads = [2usize, 3, 7][threads_sel];
        let op_a = if ops & 1 == 0 { GemmOp::NoTrans } else { GemmOp::Trans };
        let op_b = if ops & 2 == 0 { GemmOp::NoTrans } else { GemmOp::Trans };
        let beta = [0.0, 1.0, -0.75, 0.5][beta_sel];
        let a = gemm_operand(op_a, m, k, &seed, 0);
        let b = gemm_operand(op_b, k, n, &seed, 7);
        let c0 = Matrix::from_fn(m, n, |i, j| seed[(3 * i + 5 * j + 11) % seed.len()]);
        let mut ws = GemmWorkspace::new();

        let _lock = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        linalg::pool::set_max_threads(1);
        let mut c_serial = c0.clone();
        gemm(op_a, op_b, alpha, &a, &b, beta, &mut c_serial, &mut ws);
        linalg::pool::set_max_threads(threads);
        let mut c_threaded = c0.clone();
        gemm(op_a, op_b, alpha, &a, &b, beta, &mut c_threaded, &mut ws);
        linalg::pool::set_max_threads(0);

        for (x, y) in c_threaded.as_slice().iter().zip(c_serial.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Same bit-identity for the fused-epilogue and prepacked entry points
    /// (the two paths the `nn` hot loop actually drives): the epilogue is
    /// applied exactly once per final element no matter how the middle of
    /// the product was split across workers.
    #[test]
    fn gemm_threaded_epilogue_and_prepacked_match_serial(
        m in 64usize..130,
        n in 64usize..100,
        k in 16usize..40,
        threads_sel in 0usize..3,
        seed in proptest::collection::vec(-1.0..1.0f64, 32..200),
    ) {
        assert!(m * n * k >= GEMM_PARALLEL_MIN_WORK);
        let threads = [2usize, 3, 7][threads_sel];
        /// An affine per-column epilogue standing in for bias+activation.
        struct ColAffine<'a> {
            shift: &'a [f64],
        }
        impl Epilogue for ColAffine<'_> {
            fn apply(&mut self, _row: usize, col0: usize, seg: &mut [f64]) {
                let shift = &self.shift[col0..col0 + seg.len()];
                for (v, &s) in seg.iter_mut().zip(shift) {
                    *v = (*v + s).tanh();
                }
            }
        }
        let a = gemm_operand(GemmOp::NoTrans, m, k, &seed, 3);
        let b = gemm_operand(GemmOp::NoTrans, k, n, &seed, 13);
        let shift: Vec<f64> = (0..n).map(|j| seed[(j + 5) % seed.len()]).collect();
        let mut ws = GemmWorkspace::new();
        let mut packed = PackedB::default();
        pack_b_into(GemmOp::NoTrans, &b, &mut packed);

        let _lock = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let run = |threads: usize, ws: &mut GemmWorkspace, packed: &PackedB| {
            linalg::pool::set_max_threads(threads);
            let mut fused = Matrix::default();
            gemm_with(
                GemmOp::NoTrans, GemmOp::NoTrans, 1.0, &a, &b, 0.0,
                &mut fused, ws, &mut ColAffine { shift: &shift },
            );
            let mut pre = Matrix::from_fn(m, n, |i, j| seed[(i + 2 * j) % seed.len()]);
            gemm_prepacked_with(
                GemmOp::NoTrans, 1.0, &a, packed, 0.5, &mut pre, ws, &mut NoEpilogue,
            );
            linalg::pool::set_max_threads(0);
            (fused, pre)
        };
        let (fused_s, pre_s) = run(1, &mut ws, &packed);
        let (fused_t, pre_t) = run(threads, &mut ws, &packed);

        for (x, y) in fused_t.as_slice().iter().zip(fused_s.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in pre_t.as_slice().iter().zip(pre_s.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The supernodal blocked replay and the scalar Gilbert–Peierls replay
    /// agree to 1e-10 relative on mesh systems straddling the Auto
    /// dispatch boundary (n = 16…121 around `SUPERNODAL_MIN_N` = 64, with
    /// panel flop shares on both sides of the threshold) — whichever path
    /// Auto picks, and on both forced paths. The kernels regroup the same
    /// updates differently (TRSM + GEMM batches vs per-column axpys), so
    /// bitwise equality is not expected here; see the refactor test below
    /// for the bit-level contract within the blocked path.
    #[test]
    fn supernodal_agrees_with_scalar_across_dispatch_boundary(
        rows in 4usize..12,
        cols in 4usize..12,
        seed in proptest::collection::vec(-1.0..1.0f64, 16..250),
        rhs in proptest::collection::vec(-10.0..10.0f64, 144),
    ) {
        let n = rows * cols;
        let a = CscMatrix::from_dense(&mesh_matrix(rows, cols, &seed));
        let b = &rhs[..n];
        let modes = [
            SupernodalMode::ForceScalar,
            SupernodalMode::Auto,
            SupernodalMode::ForceBlocked,
        ];
        let mut xs: Vec<Vec<f64>> = Vec::new();
        for mode in modes {
            let mut slu = SparseLu::new();
            slu.set_supernodal_mode(mode);
            slu.factor(&a).unwrap();
            let mut x = Vec::new();
            slu.solve_into(b, &mut x).unwrap();
            xs.push(x);
        }
        for x in &xs[1..] {
            for (s, d) in x.iter().zip(&xs[0]) {
                prop_assert!(
                    (s - d).abs() <= 1e-10 * d.abs().max(1.0),
                    "{} vs {}", s, d
                );
            }
        }
    }

    /// Within the blocked path, the scan-free `refactor_into` replay is
    /// **bit-identical** to a fresh pivoting `factor` on the perturbed
    /// values: `factor` re-runs the blocked replay once the scalar
    /// pivoting pass has pinned the pattern, so both paths perform the
    /// same panel arithmetic in the same order. (Diagonal dominance keeps
    /// the fresh pivot search on the recorded sequence.)
    #[test]
    fn supernodal_refactor_bit_agrees_with_fresh_factor_on_meshes(
        rows in 6usize..11,
        cols in 6usize..11,
        seed in proptest::collection::vec(-1.0..1.0f64, 16..250),
        shift in proptest::collection::vec(-0.2..0.2f64, 16..250),
        rhs in proptest::collection::vec(-10.0..10.0f64, 121),
    ) {
        let n = rows * cols;
        let a0 = CscMatrix::from_dense(&mesh_matrix(rows, cols, &seed));
        let b = &rhs[..n];
        let mut sweep = SparseLu::new();
        sweep.set_supernodal_mode(SupernodalMode::ForceBlocked);
        sweep.factor(&a0).unwrap();
        prop_assert!(sweep.supernodal_active());

        // Perturb the values multiplicatively on the fixed pattern (±4%
        // preserves diagonal dominance) and replay.
        let mut a1 = a0.clone();
        for (k, v) in a1.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + 0.2 * shift[k % shift.len()];
        }
        sweep.refactor_into(&a1).unwrap();
        let mut x_replay = Vec::new();
        sweep.solve_into(b, &mut x_replay).unwrap();

        let mut fresh = SparseLu::new();
        fresh.set_supernodal_mode(SupernodalMode::ForceBlocked);
        fresh.factor(&a1).unwrap();
        let mut x_fresh = Vec::new();
        fresh.solve_into(b, &mut x_fresh).unwrap();
        for (r, f) in x_replay.iter().zip(&x_fresh) {
            prop_assert_eq!(r.to_bits(), f.to_bits());
        }
    }
}
