//! Exact GP regression.

use linalg::{Cholesky, Matrix};

use crate::kernel::RbfKernel;

/// Error from GP fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Shapes of inputs and targets disagree, or the training set is empty.
    Shape {
        /// Explanation.
        reason: String,
    },
    /// The kernel matrix was not positive definite even after jitter.
    NotPositiveDefinite,
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::Shape { reason } => write!(f, "bad training data: {reason}"),
            GpError::NotPositiveDefinite => {
                write!(
                    f,
                    "kernel matrix is not positive definite (duplicate points?)"
                )
            }
        }
    }
}

impl std::error::Error for GpError {}

/// An exact Gaussian-process regressor with an RBF kernel.
///
/// Targets are internally centered on their mean, so the prior mean is the
/// empirical mean of the data rather than zero. See the
/// [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct GpRegressor {
    kernel: RbfKernel,
    noise: f64,
    x: Matrix,
    /// α = (K + σₙ²I)⁻¹ (y − ȳ)
    alpha: Vec<f64>,
    chol: Cholesky,
    y_mean: f64,
    /// Cached log marginal likelihood of the training data.
    lml: f64,
}

impl GpRegressor {
    /// Fits a GP to `n` rows of `x` with targets `y` and observation-noise
    /// variance `noise`.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::Shape`] on inconsistent or empty data and
    /// [`GpError::NotPositiveDefinite`] when the Gram matrix cannot be
    /// factored even after escalating jitter.
    pub fn fit(x: Matrix, y: Vec<f64>, kernel: RbfKernel, noise: f64) -> Result<Self, GpError> {
        let _fit = telemetry::span_with(telemetry::SpanId::GpFit, x.rows() as u64);
        let n = x.rows();
        if n == 0 {
            return Err(GpError::Shape {
                reason: "empty training set".to_string(),
            });
        }
        if y.len() != n {
            return Err(GpError::Shape {
                reason: format!("{} rows but {} targets", n, y.len()),
            });
        }
        if x.cols() != kernel.dim() {
            return Err(GpError::Shape {
                reason: format!("{}-dim inputs but {}-dim kernel", x.cols(), kernel.dim()),
            });
        }
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        let mut gram = Matrix::from_fn(n, n, |i, j| kernel.eval(x.row(i), x.row(j)));
        // Escalating jitter keeps nearly duplicate rows factorable.
        let mut chol = None;
        let mut jitter = noise.max(1e-10);
        for _ in 0..8 {
            let mut k = gram.clone();
            for i in 0..n {
                k[(i, i)] += jitter;
            }
            match Cholesky::factor(&k) {
                Ok(c) => {
                    chol = Some(c);
                    gram = k;
                    break;
                }
                Err(_) => jitter *= 10.0,
            }
        }
        let chol = chol.ok_or(GpError::NotPositiveDefinite)?;
        let alpha = chol.solve(&yc);

        // log p(y|X) = −½ yᵀα − ½ log|K| − n/2 log 2π
        let fit_term: f64 = -0.5 * yc.iter().zip(&alpha).map(|(a, b)| a * b).sum::<f64>();
        let lml =
            fit_term - 0.5 * chol.log_det() - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        let _ = gram; // Gram matrix no longer needed after factorization.
        Ok(GpRegressor {
            kernel,
            noise: jitter,
            x,
            alpha,
            chol,
            y_mean,
            lml,
        })
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// True if the model holds no training points (cannot happen after a
    /// successful [`GpRegressor::fit`]).
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// Posterior mean and variance at a query point.
    ///
    /// # Panics
    ///
    /// Panics if the query dimensionality disagrees with the training data.
    pub fn predict(&self, q: &[f64]) -> (f64, f64) {
        assert_eq!(q.len(), self.kernel.dim(), "query dimension mismatch");
        let n = self.len();
        let kstar: Vec<f64> = (0..n).map(|i| self.kernel.eval(self.x.row(i), q)).collect();
        let mean = self.y_mean
            + kstar
                .iter()
                .zip(&self.alpha)
                .map(|(a, b)| a * b)
                .sum::<f64>();
        // var = k(q,q) − k*ᵀ (K+σ²I)⁻¹ k*, via the triangular solve L v = k*.
        let v = self.chol.solve_lower(&kstar);
        let var = self.kernel.eval(q, q) - v.iter().map(|x| x * x).sum::<f64>();
        (mean, var.max(0.0))
    }

    /// Log marginal likelihood of the training data under the fitted
    /// hyperparameters.
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.lml
    }

    /// Observation-noise variance actually used (input noise plus any jitter
    /// escalation).
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Fits GPs over a small grid of isotropic hyperparameters and keeps the
    /// one with the highest log marginal likelihood. Inputs are expected to
    /// be normalized to approximately the unit cube.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors if every candidate fails.
    pub fn fit_hyperopt(x: Matrix, y: Vec<f64>) -> Result<Self, GpError> {
        let dim = x.cols().max(1);
        let y_var = {
            let m = y.iter().sum::<f64>() / y.len().max(1) as f64;
            (y.iter().map(|v| (v - m).powi(2)).sum::<f64>() / y.len().max(1) as f64).max(1e-12)
        };
        let mut best: Option<GpRegressor> = None;
        for &ls in &[0.1, 0.2, 0.5, 1.0, 2.0] {
            for &var_scale in &[0.5, 1.0, 2.0] {
                let kernel = RbfKernel::isotropic(dim, ls, y_var * var_scale);
                if let Ok(gp) = GpRegressor::fit(x.clone(), y.clone(), kernel, 1e-6 * y_var) {
                    let better = best
                        .as_ref()
                        .is_none_or(|b| gp.log_marginal_likelihood() > b.log_marginal_likelihood());
                    if better {
                        best = Some(gp);
                    }
                }
            }
        }
        best.ok_or(GpError::NotPositiveDefinite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_1d() -> (Matrix, Vec<f64>) {
        let xs: Vec<f64> = (0..8).map(|i| i as f64 / 7.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x).sin()).collect();
        (Matrix::from_fn(8, 1, |i, _| xs[i]), ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (x, y) = training_1d();
        let gp = GpRegressor::fit(
            x.clone(),
            y.clone(),
            RbfKernel::isotropic(1, 0.3, 1.0),
            1e-9,
        )
        .unwrap();
        for i in 0..x.rows() {
            let (mean, var) = gp.predict(x.row(i));
            assert!(
                (mean - y[i]).abs() < 1e-3,
                "mean at train pt {i}: {mean} vs {}",
                y[i]
            );
            assert!(var < 1e-4, "var at train pt {i}: {var}");
        }
    }

    #[test]
    fn reverts_to_prior_far_away() {
        let (x, y) = training_1d();
        let kernel = RbfKernel::isotropic(1, 0.1, 2.0);
        let gp = GpRegressor::fit(x, y.clone(), kernel, 1e-9).unwrap();
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let (mean, var) = gp.predict(&[100.0]);
        assert!((mean - y_mean).abs() < 1e-6);
        assert!((var - 2.0).abs() < 1e-6);
    }

    #[test]
    fn variance_grows_between_points() {
        let (x, y) = training_1d();
        let gp = GpRegressor::fit(x, y, RbfKernel::isotropic(1, 0.15, 1.0), 1e-9).unwrap();
        let (_, var_at) = gp.predict(&[2.0 / 7.0]);
        let (_, var_between) = gp.predict(&[2.5 / 7.0]);
        assert!(var_between > var_at);
    }

    #[test]
    fn interpolation_accuracy_midpoints() {
        let (x, y) = training_1d();
        let gp = GpRegressor::fit(x, y, RbfKernel::isotropic(1, 0.4, 1.0), 1e-9).unwrap();
        for i in 0..7 {
            let q = (i as f64 + 0.5) / 7.0;
            let truth = (3.0 * q).sin();
            let (mean, _) = gp.predict(&[q]);
            assert!((mean - truth).abs() < 0.02, "q={q}: {mean} vs {truth}");
        }
    }

    #[test]
    fn hyperopt_picks_reasonable_model() {
        let (x, y) = training_1d();
        let gp = GpRegressor::fit_hyperopt(x, y).unwrap();
        let (mean, _) = gp.predict(&[0.5]);
        assert!((mean - (1.5f64).sin()).abs() < 0.05, "hyperopt mean {mean}");
    }

    #[test]
    fn lml_prefers_true_noise_level() {
        // Data with visible noise: a too-rigid (tiny-noise) model should
        // have lower marginal likelihood than a matched-noise one.
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 19.0).collect();
        // Deterministic pseudo-noise.
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x + 0.05 * ((i * 2654435761usize % 1000) as f64 / 500.0 - 1.0))
            .collect();
        let x = Matrix::from_fn(20, 1, |i, _| xs[i]);
        let k = RbfKernel::isotropic(1, 0.5, 1.0);
        let matched = GpRegressor::fit(x.clone(), ys.clone(), k.clone(), 2.5e-3).unwrap();
        let rigid = GpRegressor::fit(x, ys, k, 1e-12).unwrap();
        assert!(matched.log_marginal_likelihood() > rigid.log_marginal_likelihood());
    }

    #[test]
    fn duplicate_points_survive_via_jitter() {
        let x = Matrix::from_rows(&[&[0.5], &[0.5], &[0.6]]);
        let y = vec![1.0, 1.0, 2.0];
        let gp = GpRegressor::fit(x, y, RbfKernel::isotropic(1, 0.3, 1.0), 1e-10).unwrap();
        let (mean, _) = gp.predict(&[0.5]);
        assert!(mean.is_finite());
    }

    #[test]
    fn shape_errors() {
        let x = Matrix::zeros(0, 1);
        assert!(matches!(
            GpRegressor::fit(x, vec![], RbfKernel::isotropic(1, 1.0, 1.0), 1e-6),
            Err(GpError::Shape { .. })
        ));
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        assert!(GpRegressor::fit(
            x.clone(),
            vec![1.0],
            RbfKernel::isotropic(1, 1.0, 1.0),
            1e-6
        )
        .is_err());
        assert!(
            GpRegressor::fit(x, vec![1.0, 2.0], RbfKernel::isotropic(2, 1.0, 1.0), 1e-6).is_err()
        );
    }

    #[test]
    fn multidimensional_fit() {
        // f(a,b) = a + 2b on a 4x4 grid.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                let (a, b) = (i as f64 / 3.0, j as f64 / 3.0);
                rows.push(vec![a, b]);
                y.push(a + 2.0 * b);
            }
        }
        let x = Matrix::from_fn(16, 2, |i, j| rows[i][j]);
        let gp = GpRegressor::fit(x, y, RbfKernel::isotropic(2, 0.8, 4.0), 1e-9).unwrap();
        let (mean, _) = gp.predict(&[0.5, 0.5]);
        assert!((mean - 1.5).abs() < 0.05, "2d mean {mean}");
    }
}
