//! Criterion micro-benchmarks of the surrogate substrates: one critic
//! training pass, one actor training pass, one GP fit — the per-iteration
//! "modeling time" ingredients of the paper's runtime tables.

use criterion::{criterion_group, criterion_main, Criterion};
use dnn_opt::{Actor, Critic, DnnOptConfig};
use gp::{GpRegressor, RbfKernel};
use linalg::Matrix;
use nn::{Activation, Adam, Mlp, TrainWorkspace};
use opt::Fom;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One MSE gradient step, allocating path vs preallocated workspace path:
/// the kernel repeated `critic_epochs + actor_epochs` times per DNN-Opt
/// iteration.
fn bench_train_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = Matrix::from_fn(128, 40, |_, _| rng.gen::<f64>());
    let y = Matrix::from_fn(128, 30, |_, _| rng.gen::<f64>());

    c.bench_function("mlp_train_step_alloc_b128", |b| {
        let mut net = Mlp::new(&[40, 48, 48, 30], Activation::Relu, &mut rng);
        let mut adam = Adam::new(3e-3);
        b.iter(|| nn::train_step_mse(&mut net, &mut adam, &x, &y))
    });

    c.bench_function("mlp_train_step_workspace_b128", |b| {
        let mut net = Mlp::new(&[40, 48, 48, 30], Activation::Relu, &mut rng);
        let mut adam = Adam::new(3e-3);
        let mut ws = TrainWorkspace::new();
        b.iter(|| nn::train_step_mse_ws(&mut net, &mut adam, &x, &y, &mut ws))
    });
}

fn synth(n: usize, d: usize, m: usize, rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen()).collect())
        .collect();
    let fs: Vec<Vec<f64>> = xs
        .iter()
        .map(|x| {
            (0..m)
                .map(|k| x.iter().map(|v| (v - 0.1 * k as f64).powi(2)).sum::<f64>())
                .collect()
        })
        .collect();
    (xs, fs)
}

fn bench_models(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let (xs, fs) = synth(150, 20, 30, &mut rng);
    let cfg = DnnOptConfig::default();

    c.bench_function("critic_train_n150_d20_m30", |b| {
        b.iter(|| Critic::train(&cfg, &xs, &fs, &mut rng))
    });

    let critic = Critic::train(&cfg, &xs, &fs, &mut rng);
    let fom = Fom::uniform(1.0, 29);
    let elite: Vec<Vec<f64>> = xs[..10].to_vec();
    c.bench_function("actor_train_elite10", |b| {
        b.iter(|| {
            Actor::train(
                &cfg, &critic, &fom, &elite, &[0.0; 20], &[1.0; 20], &mut rng,
            )
        })
    });

    c.bench_function("gp_fit_n200_d20", |b| {
        let x = Matrix::from_fn(200, 20, |_, _| rng.gen());
        let y: Vec<f64> = (0..200).map(|_| rng.gen()).collect();
        b.iter(|| {
            GpRegressor::fit(
                x.clone(),
                y.clone(),
                RbfKernel::isotropic(20, 0.5, 1.0),
                1e-6,
            )
            .unwrap()
        })
    });

    c.bench_function("gp_predict_n200", |b| {
        let x = Matrix::from_fn(200, 20, |_, _| rng.gen());
        let y: Vec<f64> = (0..200).map(|_| rng.gen()).collect();
        let gp = GpRegressor::fit(x, y, RbfKernel::isotropic(20, 0.5, 1.0), 1e-6).unwrap();
        let q: Vec<f64> = (0..20).map(|_| rng.gen()).collect();
        b.iter(|| gp.predict(&q))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_train_step, bench_models
}
criterion_main!(benches);
