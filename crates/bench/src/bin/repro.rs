//! Regenerates every table and figure of the DNN-Opt paper.
//!
//! ```text
//! repro table1          # Table I   — OTA design variables and ranges
//! repro table3          # Table III — latch design variables and ranges
//! repro ota             # Table II + Figure 3 (writes results/fig3.csv)
//! repro latch           # Table IV + Figure 4 (writes results/fig4.csv)
//! repro table5          # Table V   — industrial circuits, SA vs DNN-Opt
//! repro ablation        # §II-B claim: pseudo-sample critic vs d-input net
//! repro baseline [file] # re-time the Newton/GEMM/training/evaluation
//!                       # kernels and merge the rows into
//!                       # BENCH_baseline.json
//! repro all             # everything
//! ```
//!
//! Scale knobs via the environment: `REPEATS` (default 3; paper 10),
//! `BUDGET` (default 500; paper 500), `DE_BUDGET` (default 2000; paper
//! 10000). See EXPERIMENTS.md for calibration notes.

use bench::{ascii_plot, building_block_suite, secs, write_traces_csv, MethodRuns, Scale};
use circuits::{Ctle, FoldedCascodeOta, InverterChain, Ldo, LevelShifter, StrongArmLatch};
use dnn_opt::{DnnOpt, DnnOptConfig, ReducedProblem, SensitivityReport};
use opt::{Fom, Optimizer, SimulatedAnnealing, SizingProblem, StopPolicy};

fn print_bounds_table(title: &str, problem: &dyn SizingProblem) {
    println!("\n=== {title} ===");
    let (lb, ub) = problem.bounds();
    let names = problem.variable_names();
    println!("{:<10} {:>14} {:>14}", "Parameter", "LB", "UB");
    for i in 0..problem.dim() {
        println!("{:<10} {:>14.4e} {:>14.4e}", names[i], lb[i], ub[i]);
    }
    println!(
        "variables: {}, constraints: {}",
        problem.dim(),
        problem.num_constraints()
    );
}

fn print_stats_table(title: &str, methods: &[MethodRuns], scale: &Scale, obj_unit: (&str, f64)) {
    println!("\n=== {title} (repeats = {}) ===", scale.repeats);
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>12} {:>12} {:>11} {:>10}",
        "Algorithm",
        "success",
        "#sims",
        &format!("min {}", obj_unit.0),
        &format!("max {}", obj_unit.0),
        &format!("mean {}", obj_unit.0),
        "model(s)",
        "sim(s)"
    );
    for m in methods {
        let sims = m
            .mean_sims_to_feasible()
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| {
                format!(">{}", m.runs.first().map(|r| r.history.len()).unwrap_or(0))
            });
        let (mn, mx, mean) = m
            .objective_stats()
            .map(|(a, b, c)| {
                (
                    format!("{:.3}", a * obj_unit.1),
                    format!("{:.3}", b * obj_unit.1),
                    format!("{:.3}", c * obj_unit.1),
                )
            })
            .unwrap_or(("NA".into(), "NA".into(), "NA".into()));
        println!(
            "{:<10} {:>9}/{:<2} {:>10} {:>12} {:>12} {:>12} {:>11} {:>10}",
            m.name,
            m.successes(),
            scale.repeats,
            sims,
            mn,
            mx,
            mean,
            secs(m.model_time()),
            secs(m.sim_time()),
        );
    }
}

fn run_ota(scale: &Scale) {
    let ota = FoldedCascodeOta::new();
    // Eq. 4 weights: objective in ~[0.5, 5] mW scaled to ~[0.05, 0.5];
    // constraint weights 0.25 keep typical violations inside the linear
    // band of the min/max clipping (see EXPERIMENTS.md).
    let fom = Fom::new(100.0, vec![0.25; ota.num_constraints()]);
    eprintln!("[ota] running Table II / Fig. 3 suite...");
    let methods = building_block_suite(&ota, &fom, scale, StopPolicy::Exhaust);
    print_stats_table(
        "Table II — folded-cascode OTA",
        &methods,
        scale,
        ("mW", 1e3),
    );
    write_traces_csv("results/fig3.csv", &methods, scale.budget).expect("write fig3.csv");
    println!(
        "\n{}",
        ascii_plot(&methods, scale.budget, "Figure 3 — OTA mean FoM")
    );
    println!("series written to results/fig3.csv");
}

fn run_latch(scale: &Scale) {
    let latch = StrongArmLatch::new();
    // Objective is power in W (µW range); w0 scales it to ~0.1–1.
    let fom = Fom::new(3e4, vec![0.25; latch.num_constraints()]);
    eprintln!("[latch] running Table IV / Fig. 4 suite...");
    let methods = building_block_suite(&latch, &fom, scale, StopPolicy::Exhaust);
    print_stats_table("Table IV — StrongARM latch", &methods, scale, ("uW", 1e6));
    write_traces_csv("results/fig4.csv", &methods, scale.budget).expect("write fig4.csv");
    println!(
        "\n{}",
        ascii_plot(&methods, scale.budget, "Figure 4 — latch mean FoM")
    );
    println!("series written to results/fig4.csv");
}

fn industrial_row(
    name: &str,
    problem: &dyn SizingProblem,
    device_count: f64,
    fom: &Fom,
    scale: &Scale,
    sa_budget: usize,
    dnn_budget: usize,
) {
    // Sensitivity pruning (paper §II-C) around the nominal design.
    let nominal = problem.nominal();
    let rep = SensitivityReport::compute(problem, &nominal, 0.05);
    let critical = rep.critical_variables(0.1);
    let reduced = ReducedProblem::new(problem, nominal, critical.clone());
    eprintln!(
        "[{name}] {} -> {} critical variables",
        problem.dim(),
        critical.len()
    );

    let sa = SimulatedAnnealing::default();
    let dnn = DnnOpt::new(DnnOptConfig::default());
    let mut sa_sims = Vec::new();
    let mut dnn_sims = Vec::new();
    for rep_i in 0..scale.repeats {
        let r = sa.run(
            &reduced,
            fom,
            sa_budget,
            StopPolicy::FirstFeasible,
            rep_i as u64,
        );
        sa_sims.push(r.sims_to_feasible());
        let r = dnn.run(
            &reduced,
            fom,
            dnn_budget,
            StopPolicy::FirstFeasible,
            rep_i as u64,
        );
        dnn_sims.push(r.sims_to_feasible());
    }
    let fmt = |v: &[Option<usize>], budget: usize| {
        let ok: Vec<f64> = v.iter().filter_map(|s| s.map(|n| n as f64)).collect();
        if ok.is_empty() {
            format!(">{budget}")
        } else if ok.len() < v.len() {
            format!(
                "{:.0} ({}/{} ok)",
                ok.iter().sum::<f64>() / ok.len() as f64,
                ok.len(),
                v.len()
            )
        } else {
            format!("{:.0}", ok.iter().sum::<f64>() / ok.len() as f64)
        }
    };
    println!(
        "{:<15} {:>9} {:>8} {:>14} {:>14}",
        name,
        device_count as u64,
        critical.len(),
        fmt(&sa_sims, sa_budget),
        fmt(&dnn_sims, dnn_budget),
    );
}

fn run_table5(scale: &Scale) {
    println!(
        "\n=== Table V — industrial circuits (sims to meet constraints; repeats = {}) ===",
        scale.repeats
    );
    println!(
        "{:<15} {:>9} {:>8} {:>14} {:>14}",
        "Circuit", "MOS", "critical", "SA", "DNN-Opt"
    );
    let sa_budget = scale.de_budget.max(1000);
    let dnn_budget = scale.budget;

    let inv = InverterChain::new();
    let fom = Fom::new(1.0, vec![0.5; inv.num_constraints()]);
    industrial_row(
        "Inverter Chain",
        &inv,
        8.0,
        &fom,
        scale,
        sa_budget,
        dnn_budget,
    );

    let ls = LevelShifter::new();
    let fom = Fom::new(1.0, vec![0.5; ls.num_constraints()]);
    industrial_row(
        "Level Shifter",
        &ls,
        ls.device_count(),
        &fom,
        scale,
        sa_budget,
        dnn_budget,
    );

    let ldo = Ldo::new();
    let fom = Fom::new(1e3, vec![0.5; ldo.num_constraints()]);
    industrial_row(
        "LDO",
        &ldo,
        ldo.device_count(),
        &fom,
        scale,
        sa_budget,
        dnn_budget,
    );

    let ctle = Ctle::new();
    let fom = Fom::new(100.0, vec![0.5; ctle.num_constraints()]);
    industrial_row(
        "CTLE",
        &ctle,
        ctle.device_count(),
        &fom,
        scale,
        sa_budget,
        dnn_budget,
    );
}

/// §II-B ablation: critic with (x, Δx) pseudo-samples vs a d-input network
/// on raw samples, on synthetic Bayesmark-like regression landscapes.
fn run_ablation() {
    use linalg::Matrix;
    use nn::{Activation, Adam, Mlp};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    println!("\n=== Ablation — critic input representation (paper §II-B) ===");
    println!("test-RMSE of spec prediction, mean over 3 landscapes (lower is better)\n");
    let mut rng = StdRng::seed_from_u64(0);
    type Landscape<'a> = (&'a str, Box<dyn Fn(&[f64]) -> f64>);
    let landscapes: Vec<Landscape> = vec![
        (
            "quadratic",
            Box::new(|x: &[f64]| x.iter().map(|v| (v - 0.4) * (v - 0.4)).sum()),
        ),
        (
            "rosenbrock",
            Box::new(|x: &[f64]| {
                (0..x.len() - 1)
                    .map(|i| 1.0 * (x[i + 1] - x[i] * x[i]).powi(2) + (1.0 - x[i]).powi(2))
                    .sum()
            }),
        ),
        (
            "rastrigin-ish",
            Box::new(|x: &[f64]| x.iter().map(|v| v * v - 0.3 * (6.0 * v).cos() + 0.3).sum()),
        ),
    ];
    let d = 5;
    let n_train = 60;
    println!(
        "{:<14} {:>16} {:>16}",
        "landscape", "2d pseudo-sample", "d-input raw"
    );
    for (name, f) in &landscapes {
        // Training designs.
        let xs: Vec<Vec<f64>> = (0..n_train)
            .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let fs: Vec<Vec<f64>> = xs.iter().map(|x| vec![f(x)]).collect();
        // (a) DNN-Opt critic (2d input, pseudo-samples).
        let cfg = DnnOptConfig {
            critic_epochs: 800,
            critic_batch: 256,
            ..Default::default()
        };
        let critic = dnn_opt::Critic::train(&cfg, &xs, &fs, &mut rng);
        // (b) d-input network on raw samples, matched step budget.
        let mut raw_net = Mlp::new(&[d, cfg.hidden, cfg.hidden, 1], Activation::Relu, &mut rng);
        let mut adam = Adam::new(cfg.critic_lr);
        let x_mat = Matrix::from_fn(n_train, d, |i, j| xs[i][j]);
        let y_mean: f64 = fs.iter().map(|v| v[0]).sum::<f64>() / n_train as f64;
        let y_std: f64 = (fs.iter().map(|v| (v[0] - y_mean).powi(2)).sum::<f64>() / n_train as f64)
            .sqrt()
            .max(1e-12);
        let y_mat = Matrix::from_fn(n_train, 1, |i, _| (fs[i][0] - y_mean) / y_std);
        for _ in 0..cfg.critic_epochs {
            nn::train_step_mse(&mut raw_net, &mut adam, &x_mat, &y_mat);
        }
        // Test on fresh points.
        let mut se_critic = 0.0;
        let mut se_raw = 0.0;
        let n_test = 200;
        for _ in 0..n_test {
            let x: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();
            let truth = f(&x);
            // Critic queried as a step from the nearest training design.
            let nearest = xs
                .iter()
                .min_by(|a, b| {
                    let da: f64 = a.iter().zip(&x).map(|(p, q)| (p - q) * (p - q)).sum();
                    let db: f64 = b.iter().zip(&x).map(|(p, q)| (p - q) * (p - q)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            let dx: Vec<f64> = x.iter().zip(nearest).map(|(a, b)| a - b).collect();
            let pred_c = critic.predict_one(nearest, &dx)[0];
            se_critic += (pred_c - truth) * (pred_c - truth);
            let xm = Matrix::from_vec(1, d, x.clone());
            let pred_r = raw_net.forward(&xm)[(0, 0)] * y_std + y_mean;
            se_raw += (pred_r - truth) * (pred_r - truth);
        }
        println!(
            "{:<14} {:>16.4} {:>16.4}",
            name,
            (se_critic / n_test as f64).sqrt(),
            (se_raw / n_test as f64).sqrt()
        );
    }
    println!("\n(The 2d pseudo-sample representation should win on every landscape,");
    println!(" reproducing the paper's Bayesmark-based architecture claim.)");
}

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let scale = Scale::from_env();
    eprintln!(
        "scale: repeats={} budget={} de_budget={} (paper: 10/500/10000; set REPEATS/BUDGET/DE_BUDGET)",
        scale.repeats, scale.budget, scale.de_budget
    );
    match cmd.as_str() {
        "table1" => print_bounds_table(
            "Table I — folded-cascode OTA parameters",
            &FoldedCascodeOta::new(),
        ),
        "table3" => print_bounds_table(
            "Table III — StrongARM latch parameters",
            &StrongArmLatch::new(),
        ),
        "ota" | "table2" | "fig3" => run_ota(&scale),
        "latch" | "table4" | "fig4" => run_latch(&scale),
        "table5" => run_table5(&scale),
        "ablation" => run_ablation(),
        "baseline" => {
            let path = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "BENCH_baseline.json".to_string());
            eprintln!("re-timing Newton, GEMM, training and evaluation kernels...");
            bench::baseline::refresh(&path).expect("write baseline file");
            println!("baseline rows merged into {path}");
        }
        "all" => {
            print_bounds_table(
                "Table I — folded-cascode OTA parameters",
                &FoldedCascodeOta::new(),
            );
            print_bounds_table(
                "Table III — StrongARM latch parameters",
                &StrongArmLatch::new(),
            );
            run_ota(&scale);
            run_latch(&scale);
            run_table5(&scale);
            run_ablation();
        }
        other => {
            eprintln!(
                "unknown command {other}; use table1|table3|ota|latch|table5|ablation|baseline|all"
            );
            std::process::exit(2);
        }
    }
}
