//! Technology parameter sets.
//!
//! The paper's building blocks use a 180 nm CMOS process and its industrial
//! circuits "a very advanced technology node". Both PDKs are proprietary, so
//! this module provides generic Level-1+ parameter sets with representative
//! magnitudes: a 180nm-class card (1.8 V) and a FinFET-era-class card
//! (0.75 V, higher drive, stronger channel-length modulation). These are the
//! documented SPICE/PDK substitutions from DESIGN.md — absolute performance
//! numbers differ from silicon, but the optimization landscape (headroom,
//! gain/speed/power/noise trade-offs) is preserved.

use spice::{MosModel, MosPolarity};

/// A process card: device models plus the nominal supply.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Display name.
    pub name: &'static str,
    /// NMOS model card.
    pub nmos: MosModel,
    /// PMOS model card.
    pub pmos: MosModel,
    /// Nominal supply voltage \[V\].
    pub vdd: f64,
    /// Minimum drawn channel length \[m\].
    pub l_min: f64,
}

/// Generic 180nm-class process (1.8 V) used by the folded-cascode OTA and
/// the StrongARM latch experiments.
pub fn tech_180nm() -> Technology {
    let nmos = MosModel {
        polarity: MosPolarity::Nmos,
        vth0: 0.45,
        kp: 300e-6,
        clm: 0.03e-6,
        gamma: 0.40,
        phi: 0.80,
        nsub: 1.4,
        cox: 8.5e-3,
        cov: 3.0e-10,
        cj: 1.0e-3,
        ldiff: 0.5e-6,
        kf: 4.0e-25,
        af: 1.0,
        noise_gamma: 2.0 / 3.0,
    };
    let pmos = MosModel {
        polarity: MosPolarity::Pmos,
        vth0: 0.45,
        kp: 80e-6,
        kf: 1.5e-25,
        ..nmos.clone()
    };
    Technology {
        name: "generic-180nm",
        nmos,
        pmos,
        vdd: 1.8,
        l_min: 0.18e-6,
    }
}

/// Generic advanced-node-class process (0.75 V) used by the industrial
/// circuits (inverter chain, level shifter, LDO, CTLE).
pub fn tech_advanced() -> Technology {
    let nmos = MosModel {
        polarity: MosPolarity::Nmos,
        vth0: 0.30,
        kp: 650e-6,
        clm: 0.012e-6,
        gamma: 0.25,
        phi: 0.85,
        nsub: 1.35,
        cox: 2.4e-2,
        cov: 6.0e-10,
        cj: 2.0e-3,
        ldiff: 0.06e-6,
        kf: 8.0e-25,
        af: 1.0,
        noise_gamma: 1.0,
    };
    let pmos = MosModel {
        polarity: MosPolarity::Pmos,
        vth0: 0.30,
        kp: 500e-6,
        kf: 3.0e-25,
        ..nmos.clone()
    };
    Technology {
        name: "generic-advanced",
        nmos,
        pmos,
        vdd: 0.75,
        l_min: 0.02e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice::mos::eval_mos;

    #[test]
    fn cards_are_physical() {
        for t in [tech_180nm(), tech_advanced()] {
            assert!(t.vdd > 0.0);
            assert!(t.l_min > 0.0);
            assert!(t.nmos.vth0 < t.vdd, "{}: vth must leave headroom", t.name);
            assert!(t.pmos.kp <= t.nmos.kp, "{}: holes are slower", t.name);
            assert_eq!(t.nmos.polarity, MosPolarity::Nmos);
            assert_eq!(t.pmos.polarity, MosPolarity::Pmos);
        }
    }

    #[test]
    fn drive_current_magnitudes_are_sane() {
        // A 10/0.18 µm NMOS at full gate drive in 180nm should carry
        // hundreds of µA to a few mA.
        let t = tech_180nm();
        let e = eval_mos(&t.nmos, 10e-6, 0.18e-6, 1.0, t.vdd, t.vdd, 0.0);
        assert!(e.id > 100e-6 && e.id < 50e-3, "id = {}", e.id);
        // Advanced node: stronger per-µm drive at a lower supply.
        let ta = tech_advanced();
        let ea = eval_mos(&ta.nmos, 1e-6, 0.02e-6, 1.0, ta.vdd, ta.vdd, 0.0);
        assert!(ea.id > 100e-6, "advanced id = {}", ea.id);
    }

    #[test]
    fn advanced_node_has_more_clm() {
        let t180 = tech_180nm();
        let tadv = tech_advanced();
        // At the respective minimum lengths, the advanced node's lambda is
        // larger (worse intrinsic gain), as in real scaled processes.
        assert!(tadv.nmos.lambda(tadv.l_min) > t180.nmos.lambda(t180.l_min));
    }
}
