//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — [`Criterion::bench_function`], [`Bencher::iter`], the
//! [`criterion_group!`]/[`criterion_main!`] macros and [`black_box`] — with
//! a simple but honest measurement loop: a calibration phase picks a batch
//! size so one sample lasts ≳2 ms, then `sample_size` samples are timed and
//! min/median/mean are reported.
//!
//! Results are printed to stdout in a `name  time: [...]` format, and when
//! the `CRITERION_JSON` environment variable names a file, one JSON object
//! per benchmark is appended to it (used to record `BENCH_baseline.json`).

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to group target functions.
pub struct Criterion {
    sample_size: usize,
    /// Target wall-clock per sample during measurement.
    sample_target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            sample_target: Duration::from_millis(2),
        }
    }
}

/// Timing loop handle passed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher<'a> {
    cfg: &'a Criterion,
    /// Per-iteration nanoseconds of each measured sample.
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, keeping its return value alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count whose batch lasts about the
        // per-sample target.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.cfg.sample_target || iters_per_sample >= 1 << 30 {
                break;
            }
            // Grow geometrically toward the target.
            let grow = if elapsed.is_zero() {
                8.0
            } else {
                (self.cfg.sample_target.as_secs_f64() / elapsed.as_secs_f64()).clamp(1.5, 8.0)
            };
            iters_per_sample =
                ((iters_per_sample as f64 * grow).ceil() as u64).max(iters_per_sample + 1);
        }
        // Measure.
        self.samples.clear();
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples.push(ns);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark (builder style, as
    /// criterion's `Criterion::sample_size`).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            cfg: self,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            println!("{id:<40} (no samples — Bencher::iter never called)");
            return self;
        }
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = s[0];
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{id:<40} time: [{} {} {}]  (min median mean, {} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            s.len()
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(
                    file,
                    "{{\"name\":\"{id}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"mean_ns\":{mean:.1}}}"
                );
            }
        }
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        // Keep the target tiny so the test is fast.
        c.sample_target = Duration::from_micros(50);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(3u64).wrapping_mul(7));
        });
        assert!(ran);
    }

    #[test]
    fn formatting_scales() {
        assert!(fmt_ns(5.0).ends_with("ns"));
        assert!(fmt_ns(5.0e3).ends_with("µs"));
        assert!(fmt_ns(5.0e6).ends_with("ms"));
        assert!(fmt_ns(5.0e9).ends_with('s'));
    }
}
