//! Zero-cost-when-disabled telemetry plane for the whole workspace.
//!
//! Every production crate reports into this one: hierarchical **spans**
//! (`run → generation → candidate → corner → analysis → solve →
//! factor/gemm`) with RAII guards and monotonic-clock timing, plus
//! **counters and log2-bucket histograms** ([`Metric`]) for the solver,
//! pool and training internals. Three **sinks** render the result: a
//! pretty summary ([`Summary`], absorbed into `opt`'s `RunReport`), a
//! JSONL event stream, and Chrome `trace_event` JSON loadable in
//! `chrome://tracing` or Perfetto — selected by the `DNNOPT_TRACE`
//! environment variable (`summary`, `jsonl[:path]`, `chrome:<path>`).
//!
//! # Zero-cost contract
//!
//! The plane follows the same discipline as `spice::fault`:
//!
//! - **Disabled** (the default): every instrumentation site costs exactly
//!   one relaxed-ordering atomic load ([`enabled`]) and branches away.
//!   `BENCH_baseline.json` is recorded with the hooks compiled in to pin
//!   this.
//! - **Enabled**: spans read the monotonic clock and counters do relaxed
//!   atomic adds into a per-worker-slot shard — no locks on the hot path
//!   (the per-slot event buffers take an uncontended mutex only when an
//!   event sink is active). Telemetry reads clocks but **never feeds
//!   numerics**: optimization histories are bit-identical with tracing on
//!   or off at any thread count (`tests/telemetry.rs`).
//!
//! # Threading
//!
//! Aggregation is sharded by worker slot: `linalg::pool` workers tag
//! themselves with [`set_thread_slot`], the caller/main thread is slot 0,
//! and all increments go to the owning shard — disjoint cache lines, no
//! contention. Shards are merged by [`snapshot`]/[`finish`] into one
//! [`Summary`]; span events carry the slot as the Chrome `tid`, so pool
//! workers' spans interleave correctly in the trace viewer.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

mod hist;
mod sink;

pub use hist::{bucket_floor, bucket_of, Histogram, HIST_BUCKETS};
pub use sink::{MetricStat, SpanStat, Summary};

// ---------------------------------------------------------------------------
// The enable gate.

/// Gate not yet initialized from the environment.
const UNINIT: u8 = 0;
/// Telemetry off: instrumentation sites cost one atomic load.
const OFF: u8 = 1;
/// Telemetry on.
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// True when an event sink (JSONL/Chrome) is collecting span events, so
/// span guards know whether to buffer begin/end records.
static EVENTS: AtomicBool = AtomicBool::new(false);

/// The installed sink, if any. Written by [`install`], read by [`finish`].
static SINK: Mutex<Option<SinkKind>> = Mutex::new(None);

/// Where [`finish`] sends the collected trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkKind {
    /// Aggregates only: no event buffering; [`finish`] returns the merged
    /// [`Summary`] for the caller to print (the `RunReport` path).
    Summary,
    /// One JSON object per span event plus metric/meta lines, written to
    /// the given file, or to stderr when `None`.
    Jsonl(Option<String>),
    /// Chrome `trace_event` JSON array written to the given file.
    Chrome(String),
}

/// Whether telemetry is currently collecting. The branch every
/// instrumentation site takes: one relaxed atomic load once initialized
/// (the first call lazily reads `DNNOPT_TRACE`).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_slow(),
    }
}

#[cold]
fn init_slow() -> bool {
    install(sink_from_env());
    STATE.load(Ordering::Relaxed) == ON
}

/// Parses `DNNOPT_TRACE`: `summary` (aggregates only), `jsonl[:path]`
/// (event stream), `chrome:<path>` (trace viewer JSON). Unset, empty,
/// `0` or `off` disable the plane; any other value falls back to
/// `summary` so a typo degrades to the cheapest mode instead of
/// aborting a run.
pub fn sink_from_env() -> Option<SinkKind> {
    let v = std::env::var("DNNOPT_TRACE").ok()?;
    match v.as_str() {
        "" | "0" | "off" => None,
        "jsonl" => Some(SinkKind::Jsonl(None)),
        s => {
            if let Some(path) = s.strip_prefix("jsonl:") {
                Some(SinkKind::Jsonl(Some(path.to_string())))
            } else if let Some(path) = s.strip_prefix("chrome:") {
                Some(SinkKind::Chrome(path.to_string()))
            } else {
                Some(SinkKind::Summary)
            }
        }
    }
}

/// Installs (or, with `None`, removes) the trace sink programmatically,
/// overriding whatever `DNNOPT_TRACE` said. Used by tests and benches;
/// normal runs go through the lazy environment path in [`enabled`].
pub fn install(sink: Option<SinkKind>) {
    let events = matches!(sink, Some(SinkKind::Jsonl(_)) | Some(SinkKind::Chrome(_)));
    let on = sink.is_some();
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = sink;
    EVENTS.store(events, Ordering::Relaxed);
    STATE.store(if on { ON } else { OFF }, Ordering::Release);
}

/// Initializes the plane from `DNNOPT_TRACE` right now (idempotent; the
/// first instrumentation site would do it lazily anyway).
pub fn init_from_env() {
    if STATE.load(Ordering::Relaxed) == UNINIT {
        install(sink_from_env());
    }
}

// ---------------------------------------------------------------------------
// Clock and thread slots.

/// Monotonic nanoseconds since the first telemetry call in the process.
pub(crate) fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The telemetry clock (monotonic nanoseconds, process-relative), for
/// instrumentation sites that measure cross-thread latencies — e.g. the
/// pool stamps a job's post time so workers can histogram dispatch
/// latency. Only meaningful while telemetry is enabled.
pub fn clock_ns() -> u64 {
    now_ns()
}

/// Shards: one per pool worker slot (slot 0 is the caller/main thread),
/// with the last shard shared by any overflow threads.
pub(crate) const MAX_SLOTS: usize = 33;

thread_local! {
    static SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    /// Current span nesting depth on this thread.
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Tags the current thread with its pool worker slot so its counters land
/// in a private shard and its span events carry a stable Chrome `tid`.
/// Called by `linalg::pool`'s worker loop; the dispatching caller is
/// always slot 0.
pub fn set_thread_slot(slot: usize) {
    SLOT.with(|c| c.set(slot.min(MAX_SLOTS - 1)));
}

fn slot() -> usize {
    SLOT.with(|c| c.get())
}

/// Current span nesting depth on the calling thread (0 outside any span).
/// Exposed for the nesting-invariant tests.
pub fn current_depth() -> u32 {
    DEPTH.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// Metrics.

/// Every counter/histogram the workspace records. Fixed at compile time so
/// per-slot shards are plain arrays and recording is a relaxed atomic add.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Newton iterations per solve (`spice` DC/transient kernels).
    NewtonIterations,
    /// Gmin-stepping ladder escalations (one per gmin rung retried).
    GminSteps,
    /// Source-stepping ladder escalations (one per source scale retried).
    SourceSteps,
    /// Transient step halvings.
    StepHalvings,
    /// Full pivoting sparse factorizations (fresh session).
    SparseFactors,
    /// Scan-free sparse refactorizations (`refactor_into`).
    SparseRefactors,
    /// Workspace-pool checkouts that reused a pooled workspace.
    WorkspaceHits,
    /// Workspace-pool checkouts that built a workspace from scratch.
    WorkspaceMisses,
    /// Floating-point operations per GEMM call (`2·m·n·k`).
    GemmFlops,
    /// Worker count per threaded GEMM dispatch (recorded when > 1).
    GemmSplitWidth,
    /// Nanoseconds from pool job post to a worker picking it up.
    PoolDispatchNs,
    /// Nanoseconds a pool slot spent running its share of a job.
    PoolBusyNs,
    /// Deterministic fault-plane injections that fired.
    FaultsInjected,
    /// MLP training steps (one fused forward/backward/update).
    TrainSteps,
    /// Network freeze transitions (critic handed to the actor).
    ModelFreezes,
    /// Supernodes (width ≥ 2 dense column blocks) detected per sparse
    /// symbolic plan.
    SparseSupernodes,
    /// Dense-block floating-point operations per supernodal (blocked)
    /// numeric factorization — the work routed through TRSM/GEMM panels
    /// instead of scalar column updates.
    SparseBlockFlops,
    /// Sparse numeric-path dispatch decisions: recorded once per symbolic
    /// plan with `v = 1` when the supernodal (blocked) path was selected
    /// and `v = 0` for scalar Gilbert–Peierls (count = decisions, sum =
    /// blocked selections).
    SparseBlockedDispatch,
    /// Fill-explosion-guard bailouts in the minimum-degree ordering: the
    /// elimination-clique simulation exceeded its fill budget and the
    /// ordering fell back to the natural order (trading factorization
    /// fill for ordering time). Worth investigating when a workload
    /// triggers it systematically.
    SparseFillGuardFallbacks,
    /// Supernodal numeric replays dispatched over the shared pool as
    /// independent etree subtree tasks (`v` = worker count used).
    SparseParallelReplays,
}

/// Number of [`Metric`] variants.
pub const NUM_METRICS: usize = 20;

impl Metric {
    /// Every metric, in declaration order.
    pub const ALL: [Metric; NUM_METRICS] = [
        Metric::NewtonIterations,
        Metric::GminSteps,
        Metric::SourceSteps,
        Metric::StepHalvings,
        Metric::SparseFactors,
        Metric::SparseRefactors,
        Metric::WorkspaceHits,
        Metric::WorkspaceMisses,
        Metric::GemmFlops,
        Metric::GemmSplitWidth,
        Metric::PoolDispatchNs,
        Metric::PoolBusyNs,
        Metric::FaultsInjected,
        Metric::TrainSteps,
        Metric::ModelFreezes,
        Metric::SparseSupernodes,
        Metric::SparseBlockFlops,
        Metric::SparseBlockedDispatch,
        Metric::SparseFillGuardFallbacks,
        Metric::SparseParallelReplays,
    ];

    /// Stable snake_case name (JSONL field, summary row).
    pub fn label(self) -> &'static str {
        match self {
            Metric::NewtonIterations => "newton_iterations",
            Metric::GminSteps => "gmin_steps",
            Metric::SourceSteps => "source_steps",
            Metric::StepHalvings => "step_halvings",
            Metric::SparseFactors => "sparse_factors",
            Metric::SparseRefactors => "sparse_refactors",
            Metric::WorkspaceHits => "workspace_hits",
            Metric::WorkspaceMisses => "workspace_misses",
            Metric::GemmFlops => "gemm_flops",
            Metric::GemmSplitWidth => "gemm_split_width",
            Metric::PoolDispatchNs => "pool_dispatch_ns",
            Metric::PoolBusyNs => "pool_busy_ns",
            Metric::FaultsInjected => "faults_injected",
            Metric::TrainSteps => "train_steps",
            Metric::ModelFreezes => "model_freezes",
            Metric::SparseSupernodes => "sparse_supernodes",
            Metric::SparseBlockFlops => "sparse_block_flops",
            Metric::SparseBlockedDispatch => "sparse_blocked_dispatch",
            Metric::SparseFillGuardFallbacks => "sparse_fill_guard_fallbacks",
            Metric::SparseParallelReplays => "sparse_parallel_replays",
        }
    }
}

/// Records one observation of `m` (count += 1, sum += v, log2 bucket += 1)
/// into the calling thread's shard. Pure counters record `v = 1`. Costs
/// one atomic load when telemetry is disabled.
#[inline]
pub fn record(m: Metric, v: u64) {
    if !enabled() {
        return;
    }
    let sh = &SHARDS[slot()];
    let i = m as usize;
    sh.metric_count[i].fetch_add(1, Ordering::Relaxed);
    sh.metric_sum[i].fetch_add(v, Ordering::Relaxed);
    sh.metric_hist[i][hist::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Spans.

/// Every span the workspace opens, from the whole optimizer run down to a
/// single sparse factorization. Fixed at compile time for the same reason
/// as [`Metric`]; the hierarchy is enforced by call sites, not the enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SpanId {
    /// One full optimizer run (`core::DnnOpt::run` and friends).
    Run,
    /// One optimizer iteration/generation inside a run.
    Generation,
    /// One batch handed to the population evaluator.
    EvalBatch,
    /// One worker slot's share of a parallel fan-out (`opt::parallel`).
    GridSlot,
    /// One candidate's evaluation.
    Candidate,
    /// One PVT corner of a candidate.
    Corner,
    /// One analysis unit of a corner (the deepest grid level).
    Analysis,
    /// One circuit testbench body (`circuits`).
    Testbench,
    /// One Newton solve (`spice` DC/transient kernel).
    Solve,
    /// Matrix assembly/stamping for one Newton iteration.
    Assembly,
    /// One pivoting sparse factorization.
    Factor,
    /// One scan-free sparse refactorization.
    Refactor,
    /// One blocked GEMM at or above the parallel work cutoff.
    Gemm,
    /// One critic training pass.
    CriticTrain,
    /// One actor training pass.
    ActorTrain,
    /// One GP regressor fit.
    GpFit,
    /// One pool slot executing one dispatched job (`linalg::pool`).
    PoolJob,
    /// Instant marker: a deterministic fault injection fired.
    Fault,
}

/// Number of [`SpanId`] variants.
pub const NUM_SPANS: usize = 18;

impl SpanId {
    /// Every span id, in declaration order.
    pub const ALL: [SpanId; NUM_SPANS] = [
        SpanId::Run,
        SpanId::Generation,
        SpanId::EvalBatch,
        SpanId::GridSlot,
        SpanId::Candidate,
        SpanId::Corner,
        SpanId::Analysis,
        SpanId::Testbench,
        SpanId::Solve,
        SpanId::Assembly,
        SpanId::Factor,
        SpanId::Refactor,
        SpanId::Gemm,
        SpanId::CriticTrain,
        SpanId::ActorTrain,
        SpanId::GpFit,
        SpanId::PoolJob,
        SpanId::Fault,
    ];

    /// Stable name (Chrome event name, JSONL field, summary row).
    pub fn label(self) -> &'static str {
        match self {
            SpanId::Run => "run",
            SpanId::Generation => "generation",
            SpanId::EvalBatch => "eval_batch",
            SpanId::GridSlot => "grid_slot",
            SpanId::Candidate => "candidate",
            SpanId::Corner => "corner",
            SpanId::Analysis => "analysis",
            SpanId::Testbench => "testbench",
            SpanId::Solve => "solve",
            SpanId::Assembly => "assembly",
            SpanId::Factor => "factor",
            SpanId::Refactor => "refactor",
            SpanId::Gemm => "gemm",
            SpanId::CriticTrain => "critic_train",
            SpanId::ActorTrain => "actor_train",
            SpanId::GpFit => "gp_fit",
            SpanId::PoolJob => "pool_job",
            SpanId::Fault => "fault",
        }
    }
}

/// A buffered span event (JSONL/Chrome sinks only).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub ts_ns: u64,
    /// Argument attached to the span (`u64::MAX` = none).
    pub arg: u64,
    pub id: SpanId,
    /// `'B'`, `'E'` or `'I'` (Chrome phase).
    pub ph: u8,
    pub tid: u8,
}

/// RAII guard returned by [`span`]: records duration (and, with an event
/// sink, begin/end events) when dropped. A no-op when telemetry was
/// disabled at open.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    id: SpanId,
    start_ns: u64,
    arg: u64,
    active: bool,
}

/// Opens a span with no argument. See [`span_with`].
#[inline]
pub fn span(id: SpanId) -> Span {
    span_with(id, u64::MAX)
}

/// Opens a span carrying an argument (candidate/corner/analysis index,
/// worker slot, …) shown in the trace viewer. Costs one atomic load when
/// telemetry is disabled. Guards must nest: a span opened inside another
/// must drop first (ordinary Rust scoping guarantees this).
#[inline]
pub fn span_with(id: SpanId, arg: u64) -> Span {
    if !enabled() {
        return Span {
            id,
            start_ns: 0,
            arg,
            active: false,
        };
    }
    let start_ns = now_ns();
    let depth = DEPTH.with(|c| {
        let d = c.get() + 1;
        c.set(d);
        d
    });
    let sh = &SHARDS[slot()];
    sh.max_depth.fetch_max(depth as u64, Ordering::Relaxed);
    if EVENTS.load(Ordering::Relaxed) {
        sh.push_event(Event {
            ts_ns: start_ns,
            arg,
            id,
            ph: b'B',
            tid: slot() as u8,
        });
    }
    Span {
        id,
        start_ns,
        arg,
        active: true,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end_ns = now_ns();
        DEPTH.with(|c| c.set(c.get().saturating_sub(1)));
        let sh = &SHARDS[slot()];
        let i = self.id as usize;
        sh.span_count[i].fetch_add(1, Ordering::Relaxed);
        sh.span_ns[i].fetch_add(end_ns - self.start_ns, Ordering::Relaxed);
        if EVENTS.load(Ordering::Relaxed) {
            sh.push_event(Event {
                ts_ns: end_ns,
                arg: self.arg,
                id: self.id,
                ph: b'E',
                tid: slot() as u8,
            });
        }
    }
}

/// Emits an instant event (a point-in-time marker, e.g. a fault-plane
/// injection) and counts it under the span id. Costs one atomic load when
/// telemetry is disabled.
#[inline]
pub fn instant(id: SpanId, arg: u64) {
    if !enabled() {
        return;
    }
    let sh = &SHARDS[slot()];
    sh.span_count[id as usize].fetch_add(1, Ordering::Relaxed);
    if EVENTS.load(Ordering::Relaxed) {
        sh.push_event(Event {
            ts_ns: now_ns(),
            arg,
            id,
            ph: b'I',
            tid: slot() as u8,
        });
    }
}

// ---------------------------------------------------------------------------
// Per-slot shards.

/// Cap on buffered events per shard (~12 MB at 24 B/event): long traced
/// runs stop buffering instead of exhausting memory, and the overflow is
/// reported as `dropped` in the summary and sink metadata.
const EVENT_CAP: usize = 1 << 19;

pub(crate) struct Shard {
    pub(crate) metric_count: [AtomicU64; NUM_METRICS],
    pub(crate) metric_sum: [AtomicU64; NUM_METRICS],
    pub(crate) metric_hist: [[AtomicU64; HIST_BUCKETS]; NUM_METRICS],
    pub(crate) span_count: [AtomicU64; NUM_SPANS],
    pub(crate) span_ns: [AtomicU64; NUM_SPANS],
    pub(crate) max_depth: AtomicU64,
    pub(crate) dropped: AtomicU64,
    /// Only the owning thread pushes; [`finish`]/[`reset`] drain. The lock
    /// is therefore uncontended on the hot path.
    pub(crate) events: Mutex<Vec<Event>>,
}

impl Shard {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const Z: AtomicU64 = AtomicU64::new(0);
        #[allow(clippy::declare_interior_mutable_const)]
        const ROW: [AtomicU64; HIST_BUCKETS] = [Z; HIST_BUCKETS];
        Shard {
            metric_count: [Z; NUM_METRICS],
            metric_sum: [Z; NUM_METRICS],
            metric_hist: [ROW; NUM_METRICS],
            span_count: [Z; NUM_SPANS],
            span_ns: [Z; NUM_SPANS],
            max_depth: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    fn push_event(&self, ev: Event) {
        let mut buf = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() >= EVENT_CAP {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            buf.push(ev);
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)] // array-init seed
const EMPTY_SHARD: Shard = Shard::new();
pub(crate) static SHARDS: [Shard; MAX_SLOTS] = [EMPTY_SHARD; MAX_SLOTS];

// ---------------------------------------------------------------------------
// Export.

/// Merges every shard into one [`Summary`] without draining events or
/// touching the sink. Cheap enough to call mid-run.
pub fn snapshot() -> Summary {
    sink::merge_shards(&SHARDS)
}

/// Zeroes all aggregates and drops all buffered events. Test isolation
/// only — concurrent recorders may interleave, so call it quiesced.
pub fn reset() {
    for sh in &SHARDS {
        for a in sh
            .metric_count
            .iter()
            .chain(&sh.metric_sum)
            .chain(sh.metric_hist.iter().flatten())
            .chain(&sh.span_count)
            .chain(&sh.span_ns)
        {
            a.store(0, Ordering::Relaxed);
        }
        sh.max_depth.store(0, Ordering::Relaxed);
        sh.dropped.store(0, Ordering::Relaxed);
        sh.events.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Flushes the installed sink: merges all shards, drains buffered events,
/// writes the JSONL/Chrome output if one was selected, and returns the
/// merged [`Summary`] (`None` when telemetry is disabled). Aggregates are
/// left in place so repeated snapshots stay monotone; events are drained.
pub fn finish() -> Option<Summary> {
    if STATE.load(Ordering::Relaxed) != ON {
        return None;
    }
    let summary = snapshot();
    let mut events: Vec<Event> = Vec::new();
    for sh in &SHARDS {
        events.append(&mut sh.events.lock().unwrap_or_else(|e| e.into_inner()));
    }
    events.sort_by_key(|e| e.ts_ns);
    let sink = SINK.lock().unwrap_or_else(|e| e.into_inner()).clone();
    match sink {
        Some(SinkKind::Jsonl(path)) => {
            if let Err(e) = sink::write_jsonl(path.as_deref(), &events, &summary) {
                eprintln!("telemetry: failed to write JSONL trace: {e}");
            }
        }
        Some(SinkKind::Chrome(path)) => {
            if let Err(e) = sink::write_chrome(&path, &events, &summary) {
                eprintln!("telemetry: failed to write Chrome trace: {e}");
            }
        }
        Some(SinkKind::Summary) | None => {}
    }
    Some(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global telemetry state.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_plane_records_nothing() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(None);
        reset();
        record(Metric::NewtonIterations, 5);
        {
            let _s = span(SpanId::Solve);
        }
        assert!(!enabled());
        let sum = snapshot();
        assert!(sum.spans.is_empty());
        assert!(sum.metrics.is_empty());
        assert!(finish().is_none());
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(Some(SinkKind::Summary));
        reset();
        assert_eq!(current_depth(), 0);
        {
            let _run = span(SpanId::Run);
            assert_eq!(current_depth(), 1);
            for g in 0..3 {
                let _gen = span_with(SpanId::Generation, g);
                assert_eq!(current_depth(), 2);
            }
        }
        assert_eq!(current_depth(), 0);
        let sum = snapshot();
        assert_eq!(sum.span_count(SpanId::Run), 1);
        assert_eq!(sum.span_count(SpanId::Generation), 3);
        assert!(sum.max_depth >= 2);
        install(None);
        reset();
    }

    #[test]
    fn metrics_land_in_histograms() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(Some(SinkKind::Summary));
        reset();
        for v in [1u64, 2, 3, 900] {
            record(Metric::NewtonIterations, v);
        }
        let sum = snapshot();
        let h = sum.metric(Metric::NewtonIterations);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 906);
        assert_eq!(h.buckets[bucket_of(1)], 1);
        assert_eq!(h.buckets[bucket_of(2)], 2); // 2 and 3 share a bucket
        assert_eq!(h.buckets[bucket_of(900)], 1);
        install(None);
        reset();
    }

    #[test]
    fn event_sink_buffers_balanced_events() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(Some(SinkKind::Jsonl(None)));
        reset();
        {
            let _a = span(SpanId::Candidate);
            let _b = span(SpanId::Corner);
            instant(SpanId::Fault, 7);
        }
        let begins: usize = SHARDS
            .iter()
            .map(|sh| {
                sh.events
                    .lock()
                    .unwrap()
                    .iter()
                    .filter(|e| e.ph == b'B')
                    .count()
            })
            .sum();
        let ends: usize = SHARDS
            .iter()
            .map(|sh| {
                sh.events
                    .lock()
                    .unwrap()
                    .iter()
                    .filter(|e| e.ph == b'E')
                    .count()
            })
            .sum();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2);
        install(None);
        reset();
    }

    #[test]
    fn env_parsing_covers_the_matrix() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("DNNOPT_TRACE", "summary");
        assert_eq!(sink_from_env(), Some(SinkKind::Summary));
        std::env::set_var("DNNOPT_TRACE", "jsonl:/tmp/x.jsonl");
        assert_eq!(
            sink_from_env(),
            Some(SinkKind::Jsonl(Some("/tmp/x.jsonl".into())))
        );
        std::env::set_var("DNNOPT_TRACE", "chrome:/tmp/x.json");
        assert_eq!(
            sink_from_env(),
            Some(SinkKind::Chrome("/tmp/x.json".into()))
        );
        std::env::set_var("DNNOPT_TRACE", "off");
        assert_eq!(sink_from_env(), None);
        std::env::remove_var("DNNOPT_TRACE");
        assert_eq!(sink_from_env(), None);
    }
}
