//! GASPAD: GP-assisted evolutionary optimization, after Liu et al.,
//! "GASPAD: A general and efficient mm-wave IC synthesis method based on
//! surrogate model assisted evolutionary algorithm", IEEE TCAD 2014.
//!
//! Structure (surrogate-model-aware evolutionary search): keep a population
//! of the best designs; each iteration breed a full generation of DE
//! offspring, *prescreen* them with a GP fitted on the FoM landscape, and
//! spend exactly one real simulation on the offspring with the best
//! lower-confidence-bound. Constraint handling rides on the FoM (Eq. 4)
//! exactly as in the DNN-Opt comparison protocol.

use std::time::{Duration, Instant};

use gp::lower_confidence_bound;
use linalg::Matrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::bo_wei::{best_lengthscale, fit_plain};
use crate::de::finish_with_model_time;
use crate::fom::Fom;
use crate::history::{Evaluator, RunResult, StopPolicy};
use crate::problem::{to_unit, SizingProblem};
use crate::sampling::latin_hypercube;
use crate::Optimizer;

/// Configuration for [`Gaspad`].
#[derive(Debug, Clone)]
pub struct Gaspad {
    /// Initial LHS samples; 0 means `max(2·d, 20)`.
    pub n_init: usize,
    /// Evolution population size; 0 means `max(20, 3·d)`.
    pub population: usize,
    /// DE differential weight.
    pub f: f64,
    /// DE crossover rate.
    pub cr: f64,
    /// LCB exploration factor κ.
    pub kappa: f64,
    /// Maximum GP training points (most recent window).
    pub max_train: usize,
    /// Re-tune the GP lengthscale every this many iterations.
    pub refit_every: usize,
}

impl Default for Gaspad {
    fn default() -> Self {
        Gaspad {
            n_init: 0,
            population: 0,
            f: 0.6,
            cr: 0.35,
            kappa: 2.0,
            max_train: 220,
            refit_every: 20,
        }
    }
}

impl Optimizer for Gaspad {
    fn name(&self) -> &'static str {
        "GASPAD"
    }

    fn run(
        &self,
        problem: &dyn SizingProblem,
        fom: &Fom,
        budget: usize,
        stop: StopPolicy,
        seed: u64,
    ) -> RunResult {
        let t0 = Instant::now();
        let mut model_time = Duration::ZERO;
        let mut rng = StdRng::seed_from_u64(seed);
        let (lb, ub) = problem.bounds();
        let d = problem.dim();
        let np = if self.population > 0 {
            self.population
        } else {
            (3 * d).max(20)
        };
        let n_init = if self.n_init > 0 {
            self.n_init
        } else {
            (2 * d).max(20)
        }
        .min(budget);
        let mut ev = Evaluator::new(problem, fom, budget);

        for x in latin_hypercube(&mut rng, &lb, &ub, n_init) {
            if ev.exhausted() {
                break;
            }
            let e = ev.evaluate(&x);
            if stop == StopPolicy::FirstFeasible && e.feasible {
                return finish_with_model_time(self.name(), ev, t0, model_time);
            }
        }

        let mut lengthscale = 0.5;
        let mut iter = 0usize;
        while !ev.exhausted() {
            let history = ev.history().entries();
            // Population = best `np` designs so far.
            let mut order: Vec<usize> = (0..history.len()).collect();
            order.sort_by(|&a, &b| history[a].fom.partial_cmp(&history[b].fom).unwrap());
            order.truncate(np.min(history.len()));
            let pop: Vec<Vec<f64>> = order.iter().map(|&i| history[i].x.clone()).collect();

            // GP on FoM over the most recent window.
            let start = history.len().saturating_sub(self.max_train);
            let window = &history[start..];
            let xs = Matrix::from_fn(window.len(), d, |i, j| to_unit(&window[i].x, &lb, &ub)[j]);
            // Robust-clip the FoM targets: failure penalties are cliffs of
            // ~1e14 that would otherwise flatten the whole GP landscape.
            let raw_ys: Vec<f64> = window.iter().map(|e| e.fom).collect();
            let (clo, chi) = crate::problem::robust_clip_bounds(&raw_ys);
            let ys: Vec<f64> = raw_ys.iter().map(|y| y.clamp(clo, chi)).collect();
            let tm = Instant::now();
            if iter.is_multiple_of(self.refit_every) {
                lengthscale = best_lengthscale(&xs, &ys).unwrap_or(lengthscale);
            }
            let gp = fit_plain(&xs, &ys, lengthscale);
            model_time += tm.elapsed();

            // Breed one offspring per population member; prescreen with LCB.
            let npop = pop.len();
            let mut best_child: Option<(Vec<f64>, f64)> = None;
            for i in 0..npop {
                let mut pick = || rng.gen_range(0..npop);
                let (r1, r2) = (pick(), pick());
                let jrand = rng.gen_range(0..d);
                let mut child = pop[i].clone();
                for j in 0..d {
                    if j == jrand || rng.gen::<f64>() < self.cr {
                        // DE/best/1: mutate around the incumbent best.
                        let v = pop[0][j] + self.f * (pop[r1][j] - pop[r2][j]);
                        child[j] = v.clamp(lb[j], ub[j]);
                    }
                }
                let score = match &gp {
                    Some(g) => {
                        let (mean, var) = g.predict(&to_unit(&child, &lb, &ub));
                        lower_confidence_bound(mean, var, self.kappa)
                    }
                    None => rng.gen::<f64>(), // degenerate GP: random pick
                };
                if best_child.as_ref().is_none_or(|(_, s)| score < *s) {
                    best_child = Some((child, score));
                }
            }
            let (child, _) = best_child.expect("population is non-empty");
            let e = ev.evaluate(&child);
            if stop == StopPolicy::FirstFeasible && e.feasible {
                break;
            }
            iter += 1;
        }
        finish_with_model_time(self.name(), ev, t0, model_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_problems::Sphere;
    use crate::random::RandomSearch;

    #[test]
    fn beats_random_search() {
        let p = Sphere { d: 5 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let run = Gaspad::default().run(&p, &fom, 120, StopPolicy::Exhaust, 4);
        let rnd = RandomSearch.run(&p, &fom, 120, StopPolicy::Exhaust, 4);
        assert!(
            run.history.best().unwrap().fom < rnd.history.best().unwrap().fom,
            "GASPAD {} vs random {}",
            run.history.best().unwrap().fom,
            rnd.history.best().unwrap().fom
        );
    }

    #[test]
    fn spends_one_sim_per_iteration_after_init() {
        let p = Sphere { d: 3 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let g = Gaspad {
            n_init: 20,
            ..Default::default()
        };
        let run = g.run(&p, &fom, 50, StopPolicy::Exhaust, 7);
        // 20 init + 30 iterations = exactly the budget.
        assert_eq!(run.history.len(), 50);
        assert!(run.model_time > Duration::ZERO);
    }

    #[test]
    fn first_feasible_stop_works() {
        let p = Sphere { d: 3 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let run = Gaspad::default().run(&p, &fom, 200, StopPolicy::FirstFeasible, 9);
        assert!(run.sims_to_feasible().is_some());
        assert!(run.history.len() <= 200);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let p = Sphere { d: 2 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let a = Gaspad::default().run(&p, &fom, 60, StopPolicy::Exhaust, 11);
        let b = Gaspad::default().run(&p, &fom, 60, StopPolicy::Exhaust, 11);
        assert_eq!(a.history.best_trace(), b.history.best_trace());
    }
}
