//! MNA stamping infrastructure shared by all analyses.
//!
//! Unknown ordering: the first `num_nodes − 1` unknowns are the voltages of
//! nodes `1..num_nodes` (ground is eliminated); the remaining unknowns are
//! branch currents of voltage-source-like devices in registration order.
//!
//! Sign conventions (KCL written as "sum of currents leaving each node = 0",
//! moved sources to the right-hand side):
//!
//! - conductance `g` between `a`,`b`: classic 4-point stamp;
//! - current `i` flowing `p → n` *through a device*: `z[p] -= i`, `z[n] += i`;
//! - voltage source branch current is defined flowing from `p` into the
//!   source and out of `n`.

use linalg::{Matrix, C64};

use crate::mos::MosEval;
use crate::netlist::{Circuit, Device, NodeId};
use crate::waveform::Waveform;

/// An MNA stamp sink: the destination of assembly writes.
///
/// The write *sequence* of an assembly pass is fixed by the circuit
/// topology — every stamp method touches the same matrix positions in the
/// same order regardless of device values — which is what makes replaying
/// a recorded sequence sound. Three monomorphized implementations exist,
/// so each assembly path compiles to straight-line code with no per-write
/// dispatch:
///
/// - [`RealStamper`]: classic `a[(i, j)] += v` into the dense matrix;
/// - [`RecordStamper`]: logs each `(row, col)` once to learn the sequence,
///   which becomes a CSC pattern plus a stamp→slot map;
/// - [`SlotStamper`]: replays through the slot map —
///   `values[slots[cursor]] += v` — assembling straight into the CSC value
///   array with no index search at all.
pub trait Stamp {
    /// Number of nodes including ground.
    fn num_nodes(&self) -> usize;

    /// One matrix write.
    fn add_a(&mut self, i: usize, j: usize, v: f64);

    /// One right-hand-side write.
    fn add_z(&mut self, i: usize, v: f64);

    /// Matrix row/column of a node, or `None` for ground.
    #[inline]
    fn node_idx(&self, n: NodeId) -> Option<usize> {
        if n == 0 {
            None
        } else {
            Some(n - 1)
        }
    }

    /// Matrix row/column of a branch current.
    #[inline]
    fn branch_idx(&self, branch: usize) -> usize {
        self.num_nodes() - 1 + branch
    }

    /// Stamps a conductance between two nodes.
    fn conductance(&mut self, a: NodeId, b: NodeId, g: f64) {
        let (ia, ib) = (self.node_idx(a), self.node_idx(b));
        if let Some(i) = ia {
            self.add_a(i, i, g);
        }
        if let Some(j) = ib {
            self.add_a(j, j, g);
        }
        if let (Some(i), Some(j)) = (ia, ib) {
            self.add_a(i, j, -g);
            self.add_a(j, i, -g);
        }
    }

    /// Stamps a fixed current `i` flowing from `p` through the device to
    /// `n`.
    fn current_source(&mut self, p: NodeId, n: NodeId, i: f64) {
        if let Some(ip) = self.node_idx(p) {
            self.add_z(ip, -i);
        }
        if let Some(inn) = self.node_idx(n) {
            self.add_z(inn, i);
        }
    }

    /// Stamps a VCCS: current `gm·v(cp,cn)` flowing `p → n`.
    fn vccs(&mut self, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gm: f64) {
        let (ip, inn) = (self.node_idx(p), self.node_idx(n));
        let (icp, icn) = (self.node_idx(cp), self.node_idx(cn));
        if let Some(i) = ip {
            if let Some(j) = icp {
                self.add_a(i, j, gm);
            }
            if let Some(j) = icn {
                self.add_a(i, j, -gm);
            }
        }
        if let Some(i) = inn {
            if let Some(j) = icp {
                self.add_a(i, j, -gm);
            }
            if let Some(j) = icn {
                self.add_a(i, j, gm);
            }
        }
    }

    /// Stamps a voltage source of value `v` with the given branch.
    fn vsource(&mut self, branch: usize, p: NodeId, n: NodeId, v: f64) {
        let br = self.branch_idx(branch);
        if let Some(i) = self.node_idx(p) {
            self.add_a(i, br, 1.0);
            self.add_a(br, i, 1.0);
        }
        if let Some(i) = self.node_idx(n) {
            self.add_a(i, br, -1.0);
            self.add_a(br, i, -1.0);
        }
        self.add_z(br, v);
    }

    /// Stamps a VCVS `v(p,n) = gain·v(cp,cn)` with the given branch.
    fn vcvs(&mut self, branch: usize, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gain: f64) {
        let br = self.branch_idx(branch);
        if let Some(i) = self.node_idx(p) {
            self.add_a(i, br, 1.0);
            self.add_a(br, i, 1.0);
        }
        if let Some(i) = self.node_idx(n) {
            self.add_a(i, br, -1.0);
            self.add_a(br, i, -1.0);
        }
        if let Some(j) = self.node_idx(cp) {
            self.add_a(br, j, -gain);
        }
        if let Some(j) = self.node_idx(cn) {
            self.add_a(br, j, gain);
        }
    }

    /// Adds `gmin` from every non-ground node to ground (diagonal loading).
    fn load_gmin(&mut self, gmin: f64) {
        for i in 0..(self.num_nodes() - 1) {
            self.add_a(i, i, gmin);
        }
    }
}

/// Dense real MNA system `A·x = z` under assembly.
#[derive(Debug, Clone)]
pub struct RealStamper {
    /// Number of nodes including ground.
    n_nodes: usize,
    /// System matrix.
    pub a: Matrix,
    /// Right-hand side.
    pub z: Vec<f64>,
}

impl Stamp for RealStamper {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    #[inline]
    fn add_a(&mut self, i: usize, j: usize, v: f64) {
        self.a[(i, j)] += v;
    }

    #[inline]
    fn add_z(&mut self, i: usize, v: f64) {
        self.z[i] += v;
    }
}

impl RealStamper {
    /// Creates a zeroed system for the circuit.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.num_unknowns();
        RealStamper {
            n_nodes: circuit.num_nodes(),
            a: Matrix::zeros(n, n),
            z: vec![0.0; n],
        }
    }

    /// Zeroes the system for re-assembly.
    pub fn clear(&mut self) {
        self.a.as_mut_slice().fill(0.0);
        self.z.fill(0.0);
    }

    /// Number of nodes (including ground) the stamper was built for.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Matrix row/column of a node, or `None` for ground.
    #[inline]
    pub fn node_idx(&self, n: NodeId) -> Option<usize> {
        Stamp::node_idx(self, n)
    }

    /// Matrix row/column of a branch current.
    #[inline]
    pub fn branch_idx(&self, branch: usize) -> usize {
        Stamp::branch_idx(self, branch)
    }

    /// Stamps a conductance between two nodes.
    pub fn conductance(&mut self, a: NodeId, b: NodeId, g: f64) {
        Stamp::conductance(self, a, b, g);
    }

    /// Stamps a fixed current `i` flowing from `p` through the device to `n`.
    pub fn current_source(&mut self, p: NodeId, n: NodeId, i: f64) {
        Stamp::current_source(self, p, n, i);
    }

    /// Stamps a VCCS: current `gm·v(cp,cn)` flowing `p → n`.
    pub fn vccs(&mut self, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gm: f64) {
        Stamp::vccs(self, p, n, cp, cn, gm);
    }

    /// Stamps a voltage source of value `v` with the given branch.
    pub fn vsource(&mut self, branch: usize, p: NodeId, n: NodeId, v: f64) {
        Stamp::vsource(self, branch, p, n, v);
    }

    /// Stamps a VCVS `v(p,n) = gain·v(cp,cn)` with the given branch.
    pub fn vcvs(&mut self, branch: usize, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gain: f64) {
        Stamp::vcvs(self, branch, p, n, cp, cn, gain);
    }

    /// Adds `gmin` from every non-ground node to ground (diagonal loading).
    pub fn load_gmin(&mut self, gmin: f64) {
        Stamp::load_gmin(self, gmin);
    }
}

/// Write-sequence recorder: one assembly pass through this sink yields the
/// ordered `(row, col)` coordinates of every matrix write, from which
/// `linalg::CscMatrix::from_coordinates` builds the sparse pattern and the
/// stamp→slot map.
#[derive(Debug, Clone)]
pub(crate) struct RecordStamper {
    n_nodes: usize,
    /// Ordered matrix-write coordinates.
    pub(crate) writes: Vec<(usize, usize)>,
}

impl RecordStamper {
    /// Creates a recorder for the circuit.
    pub(crate) fn new(circuit: &Circuit) -> Self {
        RecordStamper {
            n_nodes: circuit.num_nodes(),
            writes: Vec::new(),
        }
    }
}

impl Stamp for RecordStamper {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    #[inline]
    fn add_a(&mut self, i: usize, j: usize, v: f64) {
        let _ = v;
        self.writes.push((i, j));
    }

    #[inline]
    fn add_z(&mut self, _i: usize, _v: f64) {}
}

/// Slot-map stamper: assembles directly into a CSC value array by
/// replaying the recorded write sequence (`values[slots[cursor]] += v`).
/// The borrowed buffers live in `NewtonWorkspace`'s sparse plan.
#[derive(Debug)]
pub(crate) struct SlotStamper<'a> {
    n_nodes: usize,
    /// Per-write CSC value index, in stamp order.
    slots: &'a [u32],
    /// CSC value array under assembly.
    values: &'a mut [f64],
    /// Right-hand side.
    z: &'a mut [f64],
    /// Index of the next write.
    cursor: usize,
}

impl<'a> SlotStamper<'a> {
    /// Creates a slot stamper over zeroed buffers.
    pub(crate) fn new(
        n_nodes: usize,
        slots: &'a [u32],
        values: &'a mut [f64],
        z: &'a mut [f64],
    ) -> Self {
        values.fill(0.0);
        z.fill(0.0);
        Self::resume(n_nodes, slots, values, z)
    }

    /// Creates a slot stamper that accumulates *on top of* the buffers'
    /// current contents — the varying-segment replay of a split assembly,
    /// where `values`/`z` were preloaded with the constant part.
    pub(crate) fn resume(
        n_nodes: usize,
        slots: &'a [u32],
        values: &'a mut [f64],
        z: &'a mut [f64],
    ) -> Self {
        SlotStamper {
            n_nodes,
            slots,
            values,
            z,
            cursor: 0,
        }
    }

    /// True if the assembly pass consumed the slot map exactly (a mismatch
    /// in either direction means the write sequence drifted from the
    /// recording and the caller must fall back to the dense kernel).
    pub(crate) fn complete(&self) -> bool {
        self.cursor == self.slots.len()
    }
}

impl Stamp for SlotStamper<'_> {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    #[inline]
    fn add_a(&mut self, _i: usize, _j: usize, v: f64) {
        // A drifted sequence may emit *more* writes than were recorded;
        // swallow the excess (the cursor overrun makes `complete()` report
        // the drift) instead of indexing past the slot map.
        if let Some(&slot) = self.slots.get(self.cursor) {
            self.values[slot as usize] += v;
        }
        self.cursor += 1;
    }

    #[inline]
    fn add_z(&mut self, i: usize, v: f64) {
        self.z[i] += v;
    }
}

/// How source values are sampled during resistive assembly.
#[derive(Debug, Clone, Copy)]
pub enum SourceEval {
    /// DC values (waveform at its `dc_value`), scaled by the factor
    /// (source stepping uses scale < 1).
    Dc {
        /// Source scale factor in `[0, 1]`.
        scale: f64,
    },
    /// Transient values at time `t`.
    Time {
        /// Simulation time \[s\].
        t: f64,
    },
}

impl SourceEval {
    fn value(self, wave: &Waveform) -> f64 {
        match self {
            SourceEval::Dc { scale } => wave.dc_value() * scale,
            SourceEval::Time { t } => wave.value(t),
        }
    }
}

/// Extracts node voltage from an unknown vector (`x[node-1]`, ground = 0).
#[inline]
pub fn node_voltage(x: &[f64], n: NodeId) -> f64 {
    if n == 0 {
        0.0
    } else {
        x[n - 1]
    }
}

/// One linearized-system assembly routine, generic over the stamp sink so
/// each destination (dense matrix, write recorder, CSC slot map) gets its
/// own monomorphized, dispatch-free copy. Implementors capture whatever
/// state the assembly needs (circuit, gmin, source evaluation, transient
/// companion models); the Newton engine calls [`Assemble::assemble`] once
/// per iteration.
///
/// # Constant/varying write split
///
/// Within one Newton solve only the MOS linearizations depend on the
/// unknown vector `x`; every other stamp (gmin loading, linear devices,
/// sources at the solve's time/scale, capacitor companion models) is
/// constant across the solve's iterations. Implementors that advertise
/// [`Assemble::supports_split`] expose the two segments separately so the
/// sparse slot-map engine can assemble the constant part **once per
/// solve** and replay only the varying slots per iteration:
///
/// - [`Assemble::assemble_constant`] stamps the x-independent writes;
/// - [`Assemble::assemble_varying`] stamps the x-dependent writes.
///
/// The union of the two write sequences must cover exactly the positions
/// [`Assemble::assemble`] touches, and both sequences must be
/// value-independent (fixed by the topology), like the full sequence.
pub(crate) trait Assemble {
    /// Stamps the full linearized system at the unknown vector `x`.
    fn assemble<S: Stamp>(&mut self, x: &[f64], st: &mut S);

    /// True when the implementor distinguishes constant from x-dependent
    /// writes (see the trait docs).
    fn supports_split(&self) -> bool {
        false
    }

    /// Stamps the x-independent writes. Only called when
    /// [`Assemble::supports_split`] returns true.
    fn assemble_constant<S: Stamp>(&mut self, st: &mut S) {
        let _ = st;
    }

    /// Stamps the x-dependent writes. Only called when
    /// [`Assemble::supports_split`] returns true.
    fn assemble_varying<S: Stamp>(&mut self, x: &[f64], st: &mut S) {
        self.assemble(x, st);
    }
}

/// Which devices a resistive assembly walk stamps. The linear/MOS split is
/// what lets the slot-map engine replay only the x-dependent writes per
/// Newton iteration (see [`Assemble`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeviceFilter {
    /// Every device (the classic full assembly).
    All,
    /// Linear (x-independent) devices only: resistors, sources, controlled
    /// sources. Their stamps never read the unknown vector.
    LinearOnly,
    /// MOSFET linearizations only — the stamps that change with `x`.
    MosOnly,
}

/// Shared assembly walk: stamps every device selected by `filter` and
/// hands each stamped device's MOSFET evaluation (or `None`) to `sink`,
/// letting callers choose whether to collect them.
fn stamp_resistive_impl<S: Stamp>(
    circuit: &Circuit,
    x: &[f64],
    sources: SourceEval,
    st: &mut S,
    filter: DeviceFilter,
    mut sink: impl FnMut(Option<MosEval>),
) {
    for dev in circuit.devices() {
        if let Device::Mosfet {
            d,
            g,
            s,
            b,
            model,
            w,
            l,
            m,
            ..
        } = dev
        {
            if filter == DeviceFilter::LinearOnly {
                continue;
            }
            let vd = node_voltage(x, *d);
            let vg = node_voltage(x, *g);
            let vs = node_voltage(x, *s);
            let vb = node_voltage(x, *b);
            let e = crate::mos::eval_mos(model, *w, *l, *m, vg - vs, vd - vs, vb - vs);
            // Norton companion: i(v) ≈ ieq + gm·vgs + gds·vds + gmb·vbs.
            let vgs = vg - vs;
            let vds = vd - vs;
            let vbs = vb - vs;
            let ieq = e.id - e.gm * vgs - e.gds * vds - e.gmb * vbs;
            st.vccs(*d, *s, *g, *s, e.gm);
            st.conductance(*d, *s, e.gds);
            st.vccs(*d, *s, *b, *s, e.gmb);
            st.current_source(*d, *s, ieq);
            sink(Some(e));
            continue;
        }
        if filter == DeviceFilter::MosOnly {
            continue;
        }
        match dev {
            Device::Resistor { a, b, g, .. } => {
                st.conductance(*a, *b, *g);
                sink(None);
            }
            Device::Capacitor { .. } => {
                // Open circuit in DC; handled by the transient/AC engines.
                sink(None);
            }
            Device::VSource {
                p, n, wave, branch, ..
            } => {
                st.vsource(*branch, *p, *n, sources.value(wave));
                sink(None);
            }
            Device::ISource { p, n, wave, .. } => {
                st.current_source(*p, *n, sources.value(wave));
                sink(None);
            }
            Device::Vcvs {
                p,
                n,
                cp,
                cn,
                gain,
                branch,
                ..
            } => {
                st.vcvs(*branch, *p, *n, *cp, *cn, *gain);
                sink(None);
            }
            Device::Vccs {
                p, n, cp, cn, gm, ..
            } => {
                st.vccs(*p, *n, *cp, *cn, *gm);
                sink(None);
            }
            Device::Mosfet { .. } => unreachable!("handled above"),
        }
    }
}

/// Stamps the *resistive* (memoryless) part of every device, linearized at
/// the unknown vector `x`. Returns the MOSFET evaluations in device order
/// (`None` for non-MOS devices) so callers can check convergence and build
/// operating-point reports.
pub fn stamp_resistive(
    circuit: &Circuit,
    x: &[f64],
    sources: SourceEval,
    st: &mut RealStamper,
) -> Vec<Option<MosEval>> {
    let mut evals = Vec::with_capacity(circuit.devices().len());
    stamp_resistive_impl(circuit, x, sources, st, DeviceFilter::All, |e| {
        evals.push(e)
    });
    evals
}

/// Allocation-free variant of [`stamp_resistive`] for the Newton hot loop,
/// which only needs the assembled system, not the per-device evaluations.
pub fn stamp_resistive_system<S: Stamp>(
    circuit: &Circuit,
    x: &[f64],
    sources: SourceEval,
    st: &mut S,
) {
    stamp_resistive_impl(circuit, x, sources, st, DeviceFilter::All, |_| {});
}

/// Stamps only the linear (x-independent) devices — the constant segment
/// of a split assembly. Linear stamps never read the unknown vector.
pub(crate) fn stamp_resistive_linear<S: Stamp>(circuit: &Circuit, sources: SourceEval, st: &mut S) {
    stamp_resistive_impl(circuit, &[], sources, st, DeviceFilter::LinearOnly, |_| {});
}

/// Stamps only the MOSFET linearizations at `x` — the varying segment of a
/// split assembly.
pub(crate) fn stamp_resistive_mos<S: Stamp>(circuit: &Circuit, x: &[f64], st: &mut S) {
    stamp_resistive_impl(
        circuit,
        x,
        SourceEval::Dc { scale: 1.0 },
        st,
        DeviceFilter::MosOnly,
        |_| {},
    );
}

/// A complex MNA stamp sink: the frequency-domain mirror of [`Stamp`].
///
/// The write *sequence* of a small-signal assembly pass is fixed by the
/// circuit topology — ω enters the stamped *values* (`jωC` admittances)
/// but never the touched positions or their order — which is what lets one
/// recorded pass serve every frequency point of a sweep. Three
/// monomorphized implementations exist:
///
/// - [`ComplexStamper`]: classic dense `a[i][j] += y` assembly (the
///   universal fallback);
/// - [`ComplexRecordStamper`]: logs each `(row, col)` once to learn the
///   sequence, which becomes a CSC pattern plus a stamp→slot map;
/// - [`ComplexSlotStamper`]: replays through the slot map —
///   `values[slots[cursor]] += y` — assembling straight into the complex
///   CSC value array with no index search at all.
pub trait ComplexStamp {
    /// Number of nodes including ground.
    fn num_nodes(&self) -> usize;

    /// One matrix write.
    fn add_a(&mut self, i: usize, j: usize, v: C64);

    /// One right-hand-side write.
    fn add_z(&mut self, i: usize, v: C64);

    /// Matrix row/column of a node, or `None` for ground.
    #[inline]
    fn node_idx(&self, n: NodeId) -> Option<usize> {
        if n == 0 {
            None
        } else {
            Some(n - 1)
        }
    }

    /// Matrix row/column of a branch current.
    #[inline]
    fn branch_idx(&self, branch: usize) -> usize {
        self.num_nodes() - 1 + branch
    }

    /// Stamps a complex admittance between two nodes.
    fn admittance(&mut self, a: NodeId, b: NodeId, y: C64) {
        let (ia, ib) = (self.node_idx(a), self.node_idx(b));
        if let Some(i) = ia {
            self.add_a(i, i, y);
        }
        if let Some(j) = ib {
            self.add_a(j, j, y);
        }
        if let (Some(i), Some(j)) = (ia, ib) {
            self.add_a(i, j, -y);
            self.add_a(j, i, -y);
        }
    }

    /// Stamps a real VCCS.
    fn vccs(&mut self, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gm: f64) {
        let g = C64::real(gm);
        let (ip, inn) = (self.node_idx(p), self.node_idx(n));
        let (icp, icn) = (self.node_idx(cp), self.node_idx(cn));
        if let Some(i) = ip {
            if let Some(j) = icp {
                self.add_a(i, j, g);
            }
            if let Some(j) = icn {
                self.add_a(i, j, -g);
            }
        }
        if let Some(i) = inn {
            if let Some(j) = icp {
                self.add_a(i, j, -g);
            }
            if let Some(j) = icn {
                self.add_a(i, j, g);
            }
        }
    }

    /// Stamps a voltage source with complex value `v`.
    fn vsource(&mut self, branch: usize, p: NodeId, n: NodeId, v: C64) {
        let br = self.branch_idx(branch);
        if let Some(i) = self.node_idx(p) {
            self.add_a(i, br, C64::ONE);
            self.add_a(br, i, C64::ONE);
        }
        if let Some(i) = self.node_idx(n) {
            self.add_a(i, br, -C64::ONE);
            self.add_a(br, i, -C64::ONE);
        }
        self.add_z(br, v);
    }

    /// Stamps a VCVS.
    fn vcvs(&mut self, branch: usize, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gain: f64) {
        let br = self.branch_idx(branch);
        if let Some(i) = self.node_idx(p) {
            self.add_a(i, br, C64::ONE);
            self.add_a(br, i, C64::ONE);
        }
        if let Some(i) = self.node_idx(n) {
            self.add_a(i, br, -C64::ONE);
            self.add_a(br, i, -C64::ONE);
        }
        if let Some(j) = self.node_idx(cp) {
            self.add_a(br, j, -C64::real(gain));
        }
        if let Some(j) = self.node_idx(cn) {
            self.add_a(br, j, C64::real(gain));
        }
    }

    /// Stamps an AC current source `i` flowing `p → n`.
    fn current_source(&mut self, p: NodeId, n: NodeId, i: C64) {
        if let Some(ip) = self.node_idx(p) {
            self.add_z(ip, -i);
        }
        if let Some(inn) = self.node_idx(n) {
            self.add_z(inn, i);
        }
    }

    /// Adds `gmin` diagonal loading on node rows.
    fn load_gmin(&mut self, gmin: f64) {
        for i in 0..(self.num_nodes() - 1) {
            self.add_a(i, i, C64::real(gmin));
        }
    }
}

/// One small-signal assembly routine, generic over the complex stamp sink
/// so each destination (dense rows, write recorder, CSC slot map) gets its
/// own monomorphized, dispatch-free copy — the complex mirror of
/// [`Assemble`]. Implementors capture the circuit, operating point, and ω;
/// the AC/noise engines call [`AssembleComplex::assemble`] once per
/// frequency point.
pub(crate) trait AssembleComplex {
    /// Stamps the full small-signal system.
    fn assemble<S: ComplexStamp>(&mut self, st: &mut S);
}

/// Dense complex MNA system for AC/noise analyses.
#[derive(Debug, Clone)]
pub struct ComplexStamper {
    n_nodes: usize,
    /// System matrix rows.
    pub a: Vec<Vec<C64>>,
    /// Right-hand side.
    pub z: Vec<C64>,
}

impl ComplexStamp for ComplexStamper {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    #[inline]
    fn add_a(&mut self, i: usize, j: usize, v: C64) {
        self.a[i][j] += v;
    }

    #[inline]
    fn add_z(&mut self, i: usize, v: C64) {
        self.z[i] += v;
    }
}

impl ComplexStamper {
    /// Creates a zeroed system for the circuit.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.num_unknowns();
        ComplexStamper {
            n_nodes: circuit.num_nodes(),
            a: vec![vec![C64::ZERO; n]; n],
            z: vec![C64::ZERO; n],
        }
    }

    /// Zeroes the system for re-assembly.
    pub fn clear(&mut self) {
        for row in &mut self.a {
            row.fill(C64::ZERO);
        }
        self.z.fill(C64::ZERO);
    }

    /// Matrix row/column of a node, or `None` for ground.
    #[inline]
    pub fn node_idx(&self, n: NodeId) -> Option<usize> {
        ComplexStamp::node_idx(self, n)
    }

    /// Matrix row/column of a branch current.
    #[inline]
    pub fn branch_idx(&self, branch: usize) -> usize {
        ComplexStamp::branch_idx(self, branch)
    }

    /// Stamps a complex admittance between two nodes.
    pub fn admittance(&mut self, a: NodeId, b: NodeId, y: C64) {
        ComplexStamp::admittance(self, a, b, y);
    }

    /// Stamps a real VCCS.
    pub fn vccs(&mut self, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gm: f64) {
        ComplexStamp::vccs(self, p, n, cp, cn, gm);
    }

    /// Stamps a voltage source with complex value `v`.
    pub fn vsource(&mut self, branch: usize, p: NodeId, n: NodeId, v: C64) {
        ComplexStamp::vsource(self, branch, p, n, v);
    }

    /// Stamps a VCVS.
    pub fn vcvs(&mut self, branch: usize, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gain: f64) {
        ComplexStamp::vcvs(self, branch, p, n, cp, cn, gain);
    }

    /// Stamps an AC current source `i` flowing `p → n`.
    pub fn current_source(&mut self, p: NodeId, n: NodeId, i: C64) {
        ComplexStamp::current_source(self, p, n, i);
    }

    /// Adds `gmin` diagonal loading on node rows.
    pub fn load_gmin(&mut self, gmin: f64) {
        ComplexStamp::load_gmin(self, gmin);
    }
}

/// Complex write-sequence recorder: one small-signal assembly pass through
/// this sink yields the ordered `(row, col)` coordinates of every matrix
/// write, from which `linalg::CscComplexMatrix::from_coordinates` builds
/// the sparse pattern and the stamp→slot map. The sequence is ω- and
/// value-independent, so a single recording serves the whole sweep.
#[derive(Debug, Clone)]
pub(crate) struct ComplexRecordStamper {
    n_nodes: usize,
    /// Ordered matrix-write coordinates.
    pub(crate) writes: Vec<(usize, usize)>,
}

impl ComplexRecordStamper {
    /// Creates a recorder for the circuit.
    pub(crate) fn new(circuit: &Circuit) -> Self {
        ComplexRecordStamper {
            n_nodes: circuit.num_nodes(),
            writes: Vec::new(),
        }
    }
}

impl ComplexStamp for ComplexRecordStamper {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    #[inline]
    fn add_a(&mut self, i: usize, j: usize, v: C64) {
        let _ = v;
        self.writes.push((i, j));
    }

    #[inline]
    fn add_z(&mut self, _i: usize, _v: C64) {}
}

/// Complex slot-map stamper: assembles directly into a complex CSC value
/// array by replaying the recorded write sequence
/// (`values[slots[cursor]] += y`). The borrowed buffers live in the AC
/// workspace's sparse plan.
#[derive(Debug)]
pub(crate) struct ComplexSlotStamper<'a> {
    n_nodes: usize,
    /// Per-write CSC value index, in stamp order.
    slots: &'a [u32],
    /// Complex CSC value array under assembly.
    values: &'a mut [C64],
    /// Right-hand side.
    z: &'a mut [C64],
    /// Index of the next write.
    cursor: usize,
}

impl<'a> ComplexSlotStamper<'a> {
    /// Creates a slot stamper over zeroed buffers.
    pub(crate) fn new(
        n_nodes: usize,
        slots: &'a [u32],
        values: &'a mut [C64],
        z: &'a mut [C64],
    ) -> Self {
        values.fill(C64::ZERO);
        z.fill(C64::ZERO);
        ComplexSlotStamper {
            n_nodes,
            slots,
            values,
            z,
            cursor: 0,
        }
    }

    /// True if the assembly pass consumed the slot map exactly (a mismatch
    /// in either direction means the write sequence drifted from the
    /// recording and the caller must fall back to the dense kernel).
    pub(crate) fn complete(&self) -> bool {
        self.cursor == self.slots.len()
    }
}

impl ComplexStamp for ComplexSlotStamper<'_> {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    #[inline]
    fn add_a(&mut self, _i: usize, _j: usize, v: C64) {
        // A drifted sequence may emit *more* writes than were recorded;
        // swallow the excess (the cursor overrun makes `complete()` report
        // the drift) instead of indexing past the slot map.
        if let Some(&slot) = self.slots.get(self.cursor) {
            self.values[slot as usize] += v;
        }
        self.cursor += 1;
    }

    #[inline]
    fn add_z(&mut self, i: usize, v: C64) {
        self.z[i] += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GND;

    #[test]
    fn conductance_stamp_pattern() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor("R", a, b, 0.5).unwrap(); // g = 2
        let mut st = RealStamper::new(&c);
        stamp_resistive(&c, &[0.0, 0.0], SourceEval::Dc { scale: 1.0 }, &mut st);
        assert_eq!(st.a[(0, 0)], 2.0);
        assert_eq!(st.a[(1, 1)], 2.0);
        assert_eq!(st.a[(0, 1)], -2.0);
        assert_eq!(st.a[(1, 0)], -2.0);
    }

    #[test]
    fn grounded_conductance_stamps_diagonal_only() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R", a, GND, 1.0).unwrap();
        let mut st = RealStamper::new(&c);
        stamp_resistive(&c, &[0.0], SourceEval::Dc { scale: 1.0 }, &mut st);
        assert_eq!(st.a[(0, 0)], 1.0);
    }

    #[test]
    fn vsource_branch_rows() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V", a, GND, Waveform::Dc(3.0)).unwrap();
        let mut st = RealStamper::new(&c);
        stamp_resistive(&c, &[0.0, 0.0], SourceEval::Dc { scale: 1.0 }, &mut st);
        // node row gets +1 on branch column; branch row +1 on node column.
        assert_eq!(st.a[(0, 1)], 1.0);
        assert_eq!(st.a[(1, 0)], 1.0);
        assert_eq!(st.z[1], 3.0);
    }

    #[test]
    fn source_scaling() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V", a, GND, Waveform::Dc(2.0)).unwrap();
        let mut st = RealStamper::new(&c);
        stamp_resistive(&c, &[0.0, 0.0], SourceEval::Dc { scale: 0.25 }, &mut st);
        assert_eq!(st.z[1], 0.5);
    }

    #[test]
    fn isource_rhs_signs() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_isource("I", a, b, Waveform::Dc(1e-3)).unwrap();
        let mut st = RealStamper::new(&c);
        stamp_resistive(&c, &[0.0, 0.0], SourceEval::Dc { scale: 1.0 }, &mut st);
        assert_eq!(st.z[0], -1e-3);
        assert_eq!(st.z[1], 1e-3);
    }

    #[test]
    fn split_assembly_covers_the_full_system() {
        // Mixed circuit: linear front-end plus MOS load. Constant + varying
        // passes must reproduce the full assembly exactly (the MOS device
        // is registered last, so the per-cell accumulation order of the
        // split walk matches the full walk bit for bit).
        use crate::mos::{MosModel, MosPolarity};
        let m = MosModel {
            polarity: MosPolarity::Nmos,
            vth0: 0.45,
            kp: 300e-6,
            clm: 0.02e-6,
            gamma: 0.4,
            phi: 0.8,
            nsub: 1.4,
            cox: 8.5e-3,
            cov: 3e-10,
            cj: 1e-3,
            ldiff: 0.4e-6,
            kf: 1e-26,
            af: 1.0,
            noise_gamma: 2.0 / 3.0,
        };
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let d = c.node("d");
        c.add_vsource("V1", vdd, GND, Waveform::Dc(1.8)).unwrap();
        c.add_resistor("R1", vdd, d, 10e3).unwrap();
        c.add_mosfet("M1", d, d, GND, GND, &m, 4e-6, 0.5e-6, 1.0)
            .unwrap();
        let x = vec![1.8, 0.6, 0.0];

        let mut full = RealStamper::new(&c);
        stamp_resistive_system(&c, &x, SourceEval::Dc { scale: 1.0 }, &mut full);

        let mut split = RealStamper::new(&c);
        stamp_resistive_linear(&c, SourceEval::Dc { scale: 1.0 }, &mut split);
        stamp_resistive_mos(&c, &x, &mut split);

        assert_eq!(full.a, split.a);
        assert_eq!(full.z, split.z);
    }

    #[test]
    fn gmin_loading_touches_node_rows_only() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V", a, GND, Waveform::Dc(1.0)).unwrap();
        let mut st = RealStamper::new(&c);
        st.load_gmin(1e-9);
        assert_eq!(st.a[(0, 0)], 1e-9);
        assert_eq!(st.a[(1, 1)], 0.0);
    }
}
