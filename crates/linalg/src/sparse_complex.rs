//! Sparse complex LU for the simulator's frequency-domain MNA systems.
//!
//! AC and noise analyses solve `(G + jωC)·x = b` at every frequency point.
//! The *pattern* of that system is fixed by the circuit topology — only the
//! values change with ω — which is exactly the split the real
//! [`crate::SparseLu`] exploits across Newton iterations. This module is
//! the complex mirror:
//!
//! - [`CscComplexMatrix`] stores the system in compressed-sparse-column
//!   form over [`C64`] values, sharing the pattern/slot-map construction of
//!   [`crate::CscMatrix::from_coordinates`], so an assembly pass that
//!   replays a recorded write sequence lands every contribution with
//!   `values[slot] += y` and no index search.
//! - [`SparseComplexLu::factor`] runs the same left-looking
//!   Gilbert–Peierls elimination with partial pivoting over the same
//!   deterministic minimum-degree preordering, recording reach sets, fill
//!   positions, and the pivot sequence.
//! - [`SparseComplexLu::refactor_into`] replays the recording on the next
//!   frequency point's values — no pivot search, no reachability DFS.
//! - [`SparseComplexLu::solve_transpose_into`] solves `Aᵀ·y = b` with the
//!   *same* factors, which is all the noise analysis' adjoint system needs:
//!   the transpose shares the symbolic plan and the numeric factorization
//!   of the forward system, so AC and noise split one factorization per
//!   frequency point.
//!
//! The intended rhythm (mirrored by `spice`'s AC workspace): analyze the
//! pattern once per topology, `factor` at the first frequency point of a
//! sweep to pin the pivot sequence, then `refactor_into` every subsequent
//! point.

use crate::complex::C64;
use crate::sparse::{min_degree_order_pattern, pattern_from_coordinates};
use crate::FactorError;

/// Pivots with magnitude smaller than this are treated as singular — the
/// same absolute threshold the dense [`crate::ComplexLu`] uses, so the two
/// paths agree on what "singular" means.
const PIVOT_EPS: f64 = 1e-300;

/// A square sparse complex matrix in compressed-sparse-column (CSC) form.
///
/// The pattern (`col_ptr`/`row_idx`) is fixed at construction; only the
/// value array changes between factorizations (one assembly per frequency
/// point).
#[derive(Debug, Clone)]
pub struct CscComplexMatrix {
    n: usize,
    /// Column start offsets, length `n + 1`.
    col_ptr: Vec<usize>,
    /// Row index of each stored entry, column-major, rows ascending.
    row_idx: Vec<usize>,
    /// Entry values, aligned with `row_idx`.
    values: Vec<C64>,
}

impl CscComplexMatrix {
    /// Builds the pattern holding every coordinate in `coords` (duplicates
    /// allowed — they share a slot) with all values zero. Returns the
    /// matrix and a *slot map*: `slots[k]` is the index into
    /// [`CscComplexMatrix::values`] backing `coords[k]`, so a caller
    /// replaying the same write sequence can assemble with
    /// `values[slots[k]] += y`. Same construction (and same slot indices)
    /// as the real [`crate::CscMatrix::from_coordinates`].
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_coordinates(n: usize, coords: &[(usize, usize)]) -> (Self, Vec<u32>) {
        let (col_ptr, row_idx, slots) = pattern_from_coordinates(n, coords);
        let nnz = row_idx.len();
        let mat = CscComplexMatrix {
            n,
            col_ptr,
            row_idx,
            values: vec![C64::ZERO; nnz],
        };
        (mat, slots)
    }

    /// Builds a CSC matrix from the exact nonzero pattern (and values) of a
    /// dense row-major matrix. Test/bench helper.
    ///
    /// # Panics
    ///
    /// Panics on ragged or non-square input.
    pub fn from_dense_rows(a: &[Vec<C64>]) -> Self {
        let n = a.len();
        assert!(
            a.iter().all(|row| row.len() == n),
            "CscComplexMatrix requires a square matrix"
        );
        let coords: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| a[i][j] != C64::ZERO)
            .collect();
        let (mut m, slots) = CscComplexMatrix::from_coordinates(n, &coords);
        for (&(i, j), &s) in coords.iter().zip(&slots) {
            m.values[s as usize] = a[i][j];
        }
        m
    }

    /// Dimension of the (square) matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Stored values (column-major, aligned with the pattern).
    pub fn values(&self) -> &[C64] {
        &self.values
    }

    /// Mutable access to the stored values, for slot-map assembly.
    pub fn values_mut(&mut self) -> &mut [C64] {
        &mut self.values
    }

    /// Zeroes every stored value, keeping the pattern.
    pub fn set_zero(&mut self) {
        self.values.fill(C64::ZERO);
    }

    /// Densifies the matrix into row-major rows (test helper).
    pub fn to_dense_rows(&self) -> Vec<Vec<C64>> {
        let mut m = vec![vec![C64::ZERO; self.n]; self.n];
        for c in 0..self.n {
            for t in self.col_ptr[c]..self.col_ptr[c + 1] {
                m[self.row_idx[t]][c] += self.values[t];
            }
        }
        m
    }
}

/// Sparse complex LU factorization with a recorded elimination pattern.
///
/// Storage conventions are identical to the real [`crate::SparseLu`]:
/// `L` is unit lower triangular with *original* row indices, `U` upper
/// triangular with *pivotal positions*, reciprocal pivots in `inv_diag`.
///
/// # Example
///
/// ```
/// use linalg::{C64, CscComplexMatrix, SparseComplexLu};
///
/// // [2+j 1; 1 3] over an explicit pattern.
/// let (mut a, slots) =
///     CscComplexMatrix::from_coordinates(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
/// let vals = [C64::new(2.0, 1.0), C64::ONE, C64::ONE, C64::real(3.0)];
/// for (s, v) in slots.iter().zip(vals) {
///     a.values_mut()[*s as usize] += v;
/// }
/// let mut lu = SparseComplexLu::new();
/// lu.factor(&a).expect("non-singular");
/// let mut x = Vec::new();
/// lu.solve_into(&[C64::real(3.0), C64::real(5.0)], &mut x).unwrap();
/// let r0 = a.to_dense_rows();
/// let ax0 = r0[0][0] * x[0] + r0[0][1] * x[1];
/// assert!((ax0 - C64::real(3.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseComplexLu {
    n: usize,
    /// Fill-reducing column preorder: step `k` factors column `q[k]` of `A`.
    q: Vec<usize>,
    /// `p[k]` = original row pivotal at step `k`.
    p: Vec<usize>,
    /// Inverse row permutation: `pinv[orig_row]` = pivotal step, or
    /// `usize::MAX` while unassigned during factorization.
    pinv: Vec<usize>,
    /// L pattern/values, column-major; rows are *original* indices,
    /// strictly-below-diagonal entries only.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<C64>,
    /// U pattern/values, column-major; rows are *pivotal positions* `< k`,
    /// stored ascending so a refactor replay is a valid elimination order.
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<C64>,
    /// Reciprocal pivots.
    inv_diag: Vec<C64>,
    /// Dense accumulator indexed by original row.
    work: Vec<C64>,
    /// DFS visitation stamps (stamp = current step).
    flag: Vec<usize>,
    /// DFS stack of `(node, next-child offset)` frames.
    dfs: Vec<(usize, usize)>,
    /// Reach set of the current column, in DFS post-order.
    pattern: Vec<usize>,
    /// Scratch for sorting the pivotal part of a reach set.
    upper: Vec<(usize, usize)>,
    /// Column ordering computed for the current pattern.
    analyzed: bool,
    /// A successful numeric factorization is stored.
    factored: bool,
}

impl SparseComplexLu {
    /// Creates an empty factorization object; all storage is grown on first
    /// use and reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dimension of the (last) factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// True once a successful numeric factorization is stored.
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// Number of stored `L` plus `U` entries (diagonal included), i.e. the
    /// fill the elimination produced.
    pub fn factor_nnz(&self) -> usize {
        self.l_rows.len() + self.u_rows.len() + self.n
    }

    /// Computes the fill-reducing column ordering for `a`'s pattern. Called
    /// automatically by [`SparseComplexLu::factor`] when needed; calling it
    /// again re-analyzes (use after the pattern itself changed).
    pub fn analyze(&mut self, a: &CscComplexMatrix) {
        self.q = min_degree_order_pattern(a.n, &a.col_ptr, &a.row_idx);
        self.n = a.n;
        self.analyzed = true;
        self.factored = false;
    }

    /// Full numeric factorization with partial pivoting, recording the
    /// elimination pattern for subsequent [`SparseComplexLu::
    /// refactor_into`] calls. Deterministic: the pivot choice depends only
    /// on `a`'s values (largest magnitude, ties broken toward the smallest
    /// original row index).
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Singular`] when no acceptable pivot exists at
    /// some step (structural or numerical singularity).
    pub fn factor(&mut self, a: &CscComplexMatrix) -> Result<(), FactorError> {
        if !self.analyzed || self.n != a.n || self.q.len() != a.n {
            self.analyze(a);
        }
        let n = a.n;
        self.factored = false;
        self.p.clear();
        self.p.resize(n, 0);
        self.pinv.clear();
        self.pinv.resize(n, usize::MAX);
        self.l_colptr.clear();
        self.l_colptr.push(0);
        self.l_rows.clear();
        self.l_vals.clear();
        self.u_colptr.clear();
        self.u_colptr.push(0);
        self.u_rows.clear();
        self.u_vals.clear();
        self.inv_diag.clear();
        self.inv_diag.resize(n, C64::ZERO);
        self.work.clear();
        self.work.resize(n, C64::ZERO);
        self.flag.clear();
        self.flag.resize(n, usize::MAX);

        for k in 0..n {
            let col = self.q[k];
            // --- Symbolic: reach of A(:, col) through the graph of L.
            self.pattern.clear();
            for t in a.col_ptr[col]..a.col_ptr[col + 1] {
                let root = a.row_idx[t];
                if self.flag[root] == k {
                    continue;
                }
                // Iterative DFS; nodes are pushed to `pattern` post-order.
                self.dfs.push((root, 0));
                self.flag[root] = k;
                while let Some(&mut (node, ref mut child)) = self.dfs.last_mut() {
                    let step = self.pinv[node];
                    let descend = if step != usize::MAX {
                        let lo = self.l_colptr[step];
                        let hi = self.l_colptr[step + 1];
                        let mut next = None;
                        while lo + *child < hi {
                            let cand = self.l_rows[lo + *child];
                            *child += 1;
                            if self.flag[cand] != k {
                                self.flag[cand] = k;
                                next = Some(cand);
                                break;
                            }
                        }
                        next
                    } else {
                        None
                    };
                    match descend {
                        Some(c) => self.dfs.push((c, 0)),
                        None => {
                            self.pattern.push(node);
                            self.dfs.pop();
                        }
                    }
                }
            }
            // --- Numeric: scatter A(:, col), then eliminate with every
            // pivotal column in the reach, in ascending pivotal order (a
            // valid topological order of the elimination DAG).
            for t in a.col_ptr[col]..a.col_ptr[col + 1] {
                self.work[a.row_idx[t]] += a.values[t];
            }
            self.upper.clear();
            self.upper.extend(
                self.pattern
                    .iter()
                    .filter(|&&i| self.pinv[i] != usize::MAX)
                    .map(|&i| (self.pinv[i], i)),
            );
            self.upper.sort_unstable();
            for &(step, orig) in &self.upper {
                let ux = self.work[orig];
                self.u_rows.push(step);
                self.u_vals.push(ux);
                if ux != C64::ZERO {
                    for t in self.l_colptr[step]..self.l_colptr[step + 1] {
                        self.work[self.l_rows[t]] -= ux * self.l_vals[t];
                    }
                }
            }
            self.u_colptr.push(self.u_rows.len());
            // --- Pivot: largest magnitude among non-pivotal reach entries,
            // smallest original index on ties.
            let mut piv = usize::MAX;
            let mut piv_abs = -1.0;
            for &i in &self.pattern {
                if self.pinv[i] != usize::MAX {
                    continue;
                }
                let v = self.work[i].abs();
                if v > piv_abs || (v == piv_abs && i < piv) {
                    piv_abs = v;
                    piv = i;
                }
            }
            if piv == usize::MAX || !(piv_abs > PIVOT_EPS) {
                // Leave the accumulator clean for the next attempt.
                for &i in &self.pattern {
                    self.work[i] = C64::ZERO;
                }
                return Err(FactorError::Singular { pivot: k });
            }
            let inv = self.work[piv].recip();
            self.inv_diag[k] = inv;
            self.p[k] = piv;
            self.pinv[piv] = k;
            for &i in &self.pattern {
                if i != piv && self.pinv[i] == usize::MAX {
                    self.l_rows.push(i);
                    self.l_vals.push(self.work[i] * inv);
                }
            }
            self.l_colptr.push(self.l_rows.len());
            for &i in &self.pattern {
                self.work[i] = C64::ZERO;
            }
        }
        self.factored = true;
        Ok(())
    }

    /// Numeric refactorization on new values with the *same pattern*:
    /// replays the recorded elimination — fixed pivot sequence, fixed fill
    /// positions — with no pivot search and no reachability analysis. This
    /// is the per-frequency-point hot path of an AC sweep.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if no *completed* recorded
    /// factorization exists (never factored, or the last
    /// [`SparseComplexLu::factor`] failed partway) or `a` has a different
    /// dimension, and [`FactorError::Singular`] if a recorded pivot
    /// position collapses numerically (callers typically recover with a
    /// fresh [`SparseComplexLu::factor`]). After an error the previous
    /// numeric factors are invalid.
    pub fn refactor_into(&mut self, a: &CscComplexMatrix) -> Result<(), FactorError> {
        // A *complete* recording is required: after a failed `factor` the
        // column pointers stop at the singular step, so replaying them
        // would walk off the recorded pattern.
        if self.n != a.n || self.l_colptr.len() != a.n + 1 || self.u_colptr.len() != a.n + 1 {
            return Err(FactorError::Shape {
                rows: a.n,
                cols: self.n,
            });
        }
        self.factored = false;
        let work = &mut self.work[..self.n];
        for k in 0..self.n {
            let col = self.q[k];
            // The recorded pattern of this column is exactly
            // {U rows, pivot, L rows}; clear those positions, scatter A.
            for t in self.u_colptr[k]..self.u_colptr[k + 1] {
                work[self.p[self.u_rows[t]]] = C64::ZERO;
            }
            work[self.p[k]] = C64::ZERO;
            for t in self.l_colptr[k]..self.l_colptr[k + 1] {
                work[self.l_rows[t]] = C64::ZERO;
            }
            for t in a.col_ptr[col]..a.col_ptr[col + 1] {
                work[a.row_idx[t]] += a.values[t];
            }
            for t in self.u_colptr[k]..self.u_colptr[k + 1] {
                let step = self.u_rows[t];
                let ux = work[self.p[step]];
                self.u_vals[t] = ux;
                if ux != C64::ZERO {
                    for s in self.l_colptr[step]..self.l_colptr[step + 1] {
                        work[self.l_rows[s]] -= ux * self.l_vals[s];
                    }
                }
            }
            let diag = work[self.p[k]];
            if !(diag.abs() > PIVOT_EPS) {
                return Err(FactorError::Singular { pivot: k });
            }
            let inv = diag.recip();
            self.inv_diag[k] = inv;
            for t in self.l_colptr[k]..self.l_colptr[k + 1] {
                self.l_vals[t] = work[self.l_rows[t]] * inv;
            }
        }
        self.factored = true;
        Ok(())
    }

    /// Solves `A·x = b` with the stored factors, writing into `x` (resized,
    /// reusing capacity). Allocation-free once buffers have capacity.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if no successful factorization is
    /// stored or `b.len()` differs from the factored dimension.
    pub fn solve_into(&mut self, b: &[C64], x: &mut Vec<C64>) -> Result<(), FactorError> {
        let n = self.n;
        if !self.factored || b.len() != n {
            return Err(FactorError::Shape {
                rows: b.len(),
                cols: n,
            });
        }
        let w = &mut self.work[..n];
        w.copy_from_slice(b);
        // Forward substitution with unit L: y[k] lives at w[p[k]].
        for k in 0..n {
            let yk = w[self.p[k]];
            if yk != C64::ZERO {
                for t in self.l_colptr[k]..self.l_colptr[k + 1] {
                    w[self.l_rows[t]] -= self.l_vals[t] * yk;
                }
            }
        }
        // Back substitution with U (rows are pivotal positions).
        for k in (0..n).rev() {
            let v = w[self.p[k]] * self.inv_diag[k];
            w[self.p[k]] = v;
            if v != C64::ZERO {
                for t in self.u_colptr[k]..self.u_colptr[k + 1] {
                    w[self.p[self.u_rows[t]]] -= self.u_vals[t] * v;
                }
            }
        }
        // Undo the column permutation.
        x.clear();
        x.resize(n, C64::ZERO);
        for k in 0..n {
            x[self.q[k]] = w[self.p[k]];
        }
        // Leave the accumulator clean for the next factor/refactor.
        w.fill(C64::ZERO);
        Ok(())
    }

    /// Solves the *transposed* system `Aᵀ·y = b` with the stored factors —
    /// the adjoint solve of the noise analysis. With `A⁻¹ = Q U⁻¹ L⁻¹ P`
    /// (the permuted factorization recorded by [`SparseComplexLu::
    /// factor`]), the transpose inverse is `Pᵀ L⁻ᵀ U⁻ᵀ Qᵀ`: a forward
    /// substitution with `Uᵀ`, a back substitution with `Lᵀ`, both on the
    /// same factor storage. No transposed matrix is ever built.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if no successful factorization is
    /// stored or `b.len()` differs from the factored dimension.
    pub fn solve_transpose_into(&mut self, b: &[C64], y: &mut Vec<C64>) -> Result<(), FactorError> {
        let n = self.n;
        if !self.factored || b.len() != n {
            return Err(FactorError::Shape {
                rows: b.len(),
                cols: n,
            });
        }
        let w = &mut self.work[..n];
        // Forward substitution with Uᵀ (lower triangular in pivotal
        // coordinates): c[k] = (b[q[k]] − Σ U[j,k]·c[j]) / U[k,k].
        for k in 0..n {
            let mut s = b[self.q[k]];
            for t in self.u_colptr[k]..self.u_colptr[k + 1] {
                s -= self.u_vals[t] * w[self.u_rows[t]];
            }
            w[k] = s * self.inv_diag[k];
        }
        // Back substitution with Lᵀ (unit upper in pivotal coordinates):
        // L's column k holds original rows i with pivotal step pinv[i] > k.
        for k in (0..n).rev() {
            let mut s = w[k];
            for t in self.l_colptr[k]..self.l_colptr[k + 1] {
                s -= self.l_vals[t] * w[self.pinv[self.l_rows[t]]];
            }
            w[k] = s;
        }
        // Undo the row permutation: y[p[k]] = w[k].
        y.clear();
        y.resize(n, C64::ZERO);
        for k in 0..n {
            y[self.p[k]] = w[k];
        }
        w.fill(C64::ZERO);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random `G + jωC`-flavored test system: strong
    /// real diagonal, sparse complex off-diagonals.
    fn ac_like(n: usize, omega: f64, salt: u64) -> Vec<Vec<C64>> {
        let mut s = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        };
        let mut m = vec![vec![C64::ZERO; n]; n];
        for i in 0..n {
            m[i][i] = C64::new(3.0 + next().abs(), omega * (0.1 + next().abs()));
            if i + 1 < n {
                m[i][i + 1] = C64::new(next() * 0.5, omega * next() * 0.2);
                m[i + 1][i] = C64::new(next() * 0.5, omega * next() * 0.2);
            }
            if i > 0 && i % 5 == 0 {
                m[0][i] = C64::new(next() * 0.3, 0.0);
                m[i][0] = C64::new(next() * 0.3, 0.0);
            }
        }
        m
    }

    fn residual(a: &[Vec<C64>], x: &[C64], b: &[C64]) -> f64 {
        let n = a.len();
        (0..n)
            .map(|i| {
                let mut s = C64::ZERO;
                for j in 0..n {
                    s += a[i][j] * x[j];
                }
                (s - b[i]).abs()
            })
            .fold(0.0, f64::max)
    }

    fn rhs(n: usize) -> Vec<C64> {
        (0..n)
            .map(|i| C64::new((i as f64 * 0.3).sin() + 1.0, (i as f64 * 0.7).cos()))
            .collect()
    }

    #[test]
    fn factor_and_solve_small_sizes() {
        for n in [1usize, 2, 5, 17, 40] {
            let dense = ac_like(n, 2.0, n as u64);
            let a = CscComplexMatrix::from_dense_rows(&dense);
            let mut lu = SparseComplexLu::new();
            lu.factor(&a).unwrap();
            let b = rhs(n);
            let mut x = Vec::new();
            lu.solve_into(&b, &mut x).unwrap();
            assert!(residual(&dense, &x, &b) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn refactor_tracks_omega_sweep() {
        let n = 26;
        let mut lu = SparseComplexLu::new();
        let mut x = Vec::new();
        let b = rhs(n);
        // The pattern is fixed; values change with omega, as in an AC sweep.
        let a0 = CscComplexMatrix::from_dense_rows(&ac_like(n, 1.0, 9));
        lu.factor(&a0).unwrap();
        for step in 1..8 {
            let omega = 1.0 + step as f64 * 3.0;
            let dense = ac_like(n, omega, 9);
            let a = CscComplexMatrix::from_dense_rows(&dense);
            assert_eq!(a.nnz(), a0.nnz(), "pattern must be omega-independent");
            lu.refactor_into(&a).unwrap();
            lu.solve_into(&b, &mut x).unwrap();
            assert!(residual(&dense, &x, &b) < 1e-9, "omega = {omega}");
        }
    }

    #[test]
    fn transpose_solve_is_adjoint_of_forward() {
        let n = 19;
        let dense = ac_like(n, 4.0, 3);
        let a = CscComplexMatrix::from_dense_rows(&dense);
        let mut lu = SparseComplexLu::new();
        lu.factor(&a).unwrap();
        let b = rhs(n);
        let mut y = Vec::new();
        lu.solve_transpose_into(&b, &mut y).unwrap();
        // Residual of the transposed system: (Aᵀ y)_i = Σ_j a[j][i]·y[j].
        let r = (0..n)
            .map(|i| {
                let mut s = C64::ZERO;
                for j in 0..n {
                    s += dense[j][i] * y[j];
                }
                (s - b[i]).abs()
            })
            .fold(0.0, f64::max);
        assert!(r < 1e-9, "transpose residual {r}");
        // And a forward solve still works afterwards (shared accumulator).
        let mut x = Vec::new();
        lu.solve_into(&b, &mut x).unwrap();
        assert!(residual(&dense, &x, &b) < 1e-9);
    }

    #[test]
    fn slot_map_assembly_roundtrip() {
        let coords = [(0, 0), (1, 1), (0, 0), (2, 1), (1, 1)];
        let (mut m, slots) = CscComplexMatrix::from_coordinates(3, &coords);
        assert_eq!(m.nnz(), 3);
        for &s in &slots {
            m.values_mut()[s as usize] += C64::new(1.0, 0.5);
        }
        let d = m.to_dense_rows();
        assert_eq!(d[0][0], C64::new(2.0, 1.0));
        assert_eq!(d[1][1], C64::new(2.0, 1.0));
        assert_eq!(d[2][1], C64::new(1.0, 0.5));
        // The complex pattern matches the real one built from the same
        // coordinates (shared construction).
        let (rm, rslots) = crate::CscMatrix::from_coordinates(3, &coords);
        assert_eq!(rm.nnz(), m.nnz());
        assert_eq!(rslots, slots);
    }

    #[test]
    fn detects_singularity_and_recovers() {
        // Structural: empty column.
        let (a, _) = CscComplexMatrix::from_coordinates(2, &[(0, 0), (1, 0)]);
        let mut lu = SparseComplexLu::new();
        assert!(matches!(lu.factor(&a), Err(FactorError::Singular { .. })));
        // Refactor on the incomplete recording is a shape error, not a
        // panic.
        assert!(matches!(
            lu.refactor_into(&a),
            Err(FactorError::Shape { .. })
        ));
        // Numerical: dependent rows.
        let dense = vec![
            vec![C64::new(1.0, 1.0), C64::new(2.0, 2.0)],
            vec![C64::new(2.0, 2.0), C64::new(4.0, 4.0)],
        ];
        let a = CscComplexMatrix::from_dense_rows(&dense);
        assert!(matches!(lu.factor(&a), Err(FactorError::Singular { .. })));
        // Refactor reports singularity when a pivot collapses to zero.
        let good = ac_like(4, 1.0, 8);
        let mut a = CscComplexMatrix::from_dense_rows(&good);
        lu.factor(&a).unwrap();
        a.set_zero();
        assert!(matches!(
            lu.refactor_into(&a),
            Err(FactorError::Singular { .. })
        ));
        assert!(!lu.is_factored());
        assert!(lu.solve_into(&rhs(4), &mut Vec::new()).is_err());
        // A later successful factor restores the object.
        let a = CscComplexMatrix::from_dense_rows(&good);
        lu.factor(&a).unwrap();
        let mut x = Vec::new();
        lu.solve_into(&rhs(4), &mut x).unwrap();
        assert!(residual(&good, &x, &rhs(4)) < 1e-9);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // MNA voltage-source block: zero on the branch diagonal.
        let dense = vec![
            vec![C64::new(1e-3, 1e-4), C64::ONE],
            vec![C64::ONE, C64::ZERO],
        ];
        let a = CscComplexMatrix::from_dense_rows(&dense);
        let mut lu = SparseComplexLu::new();
        lu.factor(&a).unwrap();
        let b = [C64::ZERO, C64::real(2.0)];
        let mut x = Vec::new();
        lu.solve_into(&b, &mut x).unwrap();
        assert!(residual(&dense, &x, &b) < 1e-12);
    }

    #[test]
    fn solve_rejects_bad_shapes() {
        let mut lu = SparseComplexLu::new();
        assert!(lu.solve_into(&[C64::ONE], &mut Vec::new()).is_err());
        assert!(lu
            .solve_transpose_into(&[C64::ONE], &mut Vec::new())
            .is_err());
        let dense = ac_like(3, 1.0, 1);
        let a = CscComplexMatrix::from_dense_rows(&dense);
        lu.factor(&a).unwrap();
        assert!(lu.solve_into(&rhs(2), &mut Vec::new()).is_err());
        assert!(lu.solve_transpose_into(&rhs(2), &mut Vec::new()).is_err());
        let b2 = CscComplexMatrix::from_dense_rows(&ac_like(2, 1.0, 1));
        assert!(matches!(
            lu.refactor_into(&b2),
            Err(FactorError::Shape { .. })
        ));
    }
}
