//! Source waveforms for DC, transient and AC excitation.

/// Time-domain waveform of an independent source.
///
/// # Example
///
/// ```
/// use spice::Waveform;
///
/// let clk = Waveform::pulse(0.0, 1.8, 1e-9, 50e-12, 50e-12, 4e-9, 10e-9);
/// assert_eq!(clk.value(0.0), 0.0);
/// assert!((clk.value(2e-9) - 1.8).abs() < 1e-12);
/// assert_eq!(clk.dc_value(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE-style pulse.
    Pulse {
        /// Initial value.
        v0: f64,
        /// Pulsed value.
        v1: f64,
        /// Delay before the first edge.
        delay: f64,
        /// Rise time (0 is snapped to a tiny nonzero ramp).
        rise: f64,
        /// Fall time.
        fall: f64,
        /// Pulse width at `v1`.
        width: f64,
        /// Repetition period; `f64::INFINITY` for a single pulse.
        period: f64,
    },
    /// Sinusoid `offset + ampl*sin(2πf(t-delay))` for `t >= delay`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Start delay.
        delay: f64,
    },
    /// Piece-wise linear interpolation through `(t, v)` points; clamped at
    /// the end values outside the range.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Convenience constructor for [`Waveform::Pulse`].
    #[allow(clippy::too_many_arguments)]
    pub fn pulse(
        v0: f64,
        v1: f64,
        delay: f64,
        rise: f64,
        fall: f64,
        width: f64,
        period: f64,
    ) -> Self {
        Waveform::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
            period,
        }
    }

    /// Value at the start of time, used as the operating-point value.
    pub fn dc_value(&self) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse { v0, .. } => *v0,
            Waveform::Sin { offset, .. } => *offset,
            Waveform::Pwl(points) => points.first().map_or(0.0, |p| p.1),
        }
    }

    /// Value at time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v0;
                }
                let mut tau = t - delay;
                if period.is_finite() && *period > 0.0 {
                    tau %= period;
                }
                // Snap degenerate edges to a 1 ps ramp so derivatives stay finite.
                let rise = rise.max(1e-12);
                let fall = fall.max(1e-12);
                if tau < rise {
                    v0 + (v1 - v0) * tau / rise
                } else if tau < rise + width {
                    *v1
                } else if tau < rise + width + fall {
                    v1 + (v0 - v1) * (tau - rise - width) / fall
                } else {
                    *v0
                }
            }
            Waveform::Sin {
                offset,
                ampl,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + ampl * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t >= t0 && t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// Times at which the waveform has corners inside `(0, t_stop)`;
    /// the transient engine shrinks steps around these to avoid skipping
    /// edges.
    pub fn breakpoints(&self, t_stop: f64) -> Vec<f64> {
        let mut bp = Vec::new();
        match self {
            Waveform::Dc(_) | Waveform::Sin { .. } => {}
            Waveform::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let rise = rise.max(1e-12);
                let fall = fall.max(1e-12);
                let mut t0 = *delay;
                loop {
                    for c in [t0, t0 + rise, t0 + rise + width, t0 + rise + width + fall] {
                        if c > 0.0 && c < t_stop {
                            bp.push(c);
                        }
                    }
                    if !(period.is_finite() && *period > 0.0) {
                        break;
                    }
                    t0 += period;
                    if t0 >= t_stop {
                        break;
                    }
                }
            }
            Waveform::Pwl(points) => {
                bp.extend(
                    points
                        .iter()
                        .map(|p| p.0)
                        .filter(|&t| t > 0.0 && t < t_stop),
                );
            }
        }
        bp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(1.5);
        assert_eq!(w.value(0.0), 1.5);
        assert_eq!(w.value(1e9), 1.5);
        assert_eq!(w.dc_value(), 1.5);
        assert!(w.breakpoints(1.0).is_empty());
    }

    #[test]
    fn pulse_edges() {
        let w = Waveform::pulse(0.0, 1.0, 1.0, 0.1, 0.2, 2.0, f64::INFINITY);
        assert_eq!(w.value(0.5), 0.0);
        assert!((w.value(1.05) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.value(2.0), 1.0); // flat top
        assert!((w.value(3.2) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.value(5.0), 0.0); // back to v0
    }

    #[test]
    fn pulse_periodicity() {
        let w = Waveform::pulse(0.0, 1.0, 0.0, 0.1, 0.1, 0.3, 1.0);
        assert!((w.value(0.2) - 1.0).abs() < 1e-12);
        assert!((w.value(1.2) - 1.0).abs() < 1e-12);
        assert!((w.value(2.2) - 1.0).abs() < 1e-12);
        assert_eq!(w.value(0.9), 0.0);
    }

    #[test]
    fn sin_waveform() {
        let w = Waveform::Sin {
            offset: 1.0,
            ampl: 0.5,
            freq: 1.0,
            delay: 0.0,
        };
        assert!((w.value(0.0) - 1.0).abs() < 1e-12);
        assert!((w.value(0.25) - 1.5).abs() < 1e-12);
        assert!((w.value(0.75) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sin_delay_holds_offset() {
        let w = Waveform::Sin {
            offset: 0.9,
            ampl: 0.5,
            freq: 10.0,
            delay: 1.0,
        };
        assert_eq!(w.value(0.5), 0.9);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)]);
        assert_eq!(w.value(-1.0), 0.0);
        assert!((w.value(0.5) - 1.0).abs() < 1e-12);
        assert_eq!(w.value(2.0), 2.0);
        assert_eq!(w.value(10.0), 2.0);
    }

    #[test]
    fn breakpoints_respect_stop_time() {
        let w = Waveform::pulse(0.0, 1.0, 1.0, 0.1, 0.1, 0.5, f64::INFINITY);
        let bp = w.breakpoints(1.3);
        assert!(bp.iter().all(|&t| t > 0.0 && t < 1.3));
        assert!(bp.contains(&1.0));
        assert!(bp.iter().any(|&t| (t - 1.1).abs() < 1e-12));
    }

    #[test]
    fn zero_rise_time_is_snapped() {
        let w = Waveform::pulse(0.0, 1.0, 0.0, 0.0, 0.0, 1.0, f64::INFINITY);
        assert!((w.value(1e-12) - 1.0).abs() < 1e-9);
    }
}
