//! **DNN-Opt**: an RL-inspired two-stage deep-neural-network black-box
//! optimizer for analog circuit sizing.
//!
//! Reproduction of Budak et al., *"DNN-Opt: An RL Inspired Optimization for
//! Analog Circuit Sizing using Deep Neural Networks"*, DAC 2021. The
//! algorithm borrows the actor-critic structure of DDPG but repurposes it
//! for non-MDP black-box optimization:
//!
//! - a **critic** `Q(x, Δx) → [f0, f1, …, fm]` serves as a cheap SPICE
//!   proxy, trained each iteration on up to `N²` *pseudo-samples* built
//!   from all ordered pairs of simulated designs ([`pseudo`], Eq. 2) with
//!   the MSE loss of Eq. 3;
//! - an **actor** `µ(x) → Δx` proposes design improvements, trained through
//!   the frozen critic to minimize the clipped figure of merit
//!   ([`opt::Fom`], Eq. 4) plus a quadratic penalty that keeps proposals
//!   inside the elite population's bounding box (Eq. 5–6);
//! - an **elite population** restricts the search region, and exactly one
//!   new SPICE simulation per iteration is chosen by the critic's ranking
//!   of the actor's candidates (Eq. 8);
//! - **sensitivity analysis** ([`SensitivityReport`], Eq. 7) prunes the
//!   variable space of large industrial circuits before optimization.
//!
//! The optimizer implements [`opt::Optimizer`], so it plugs into the same
//! harness as the paper's baselines (DE, BO-wEI, GASPAD, simulated
//! annealing).
//!
//! ```
//! use dnn_opt::{DnnOpt, DnnOptConfig};
//! use opt::{Fom, Optimizer, SizingProblem, SpecResult, StopPolicy};
//!
//! // A toy constrained problem standing in for a circuit.
//! struct Toy;
//! impl SizingProblem for Toy {
//!     fn dim(&self) -> usize { 3 }
//!     fn bounds(&self) -> (Vec<f64>, Vec<f64>) { (vec![0.0; 3], vec![1.0; 3]) }
//!     fn num_constraints(&self) -> usize { 1 }
//!     fn evaluate(&self, x: &[f64]) -> SpecResult {
//!         SpecResult { failure: None,
//!             objective: x.iter().map(|v| (v - 0.6) * (v - 0.6)).sum(),
//!             constraints: vec![0.3 - x[0]],
//!         }
//!     }
//! }
//!
//! let optimizer = DnnOpt::new(DnnOptConfig { critic_epochs: 10, actor_epochs: 10, ..Default::default() });
//! let fom = Fom::uniform(1.0, 1);
//! let run = optimizer.run(&Toy, &fom, 40, StopPolicy::Exhaust, 0);
//! assert_eq!(run.history.len(), 40);
//! ```

mod actor;
mod config;
mod critic;
mod elite;
mod optimizer;
pub mod pseudo;
mod sensitivity;

pub use actor::Actor;
pub use config::DnnOptConfig;
pub use critic::Critic;
pub use elite::{elite_indices, restricted_bounds};
pub use optimizer::DnnOpt;
pub use sensitivity::{ReducedProblem, SensitivityReport};
