//! Bayesian Optimization with weighted Expected Improvement (BO-wEI),
//! after Lyu et al., "Multi-objective Bayesian optimization for analog/RF
//! circuit synthesis", DAC 2018 — the paper's constrained-BO baseline.
//!
//! Per iteration the method fits one GP to the objective and one GP to each
//! constraint (on inputs normalized to the unit cube), then maximizes the
//! acquisition
//!
//! ```text
//! α(x) = wEI(x) · Π_i PoF_i(x)        (a feasible design is known)
//! α(x) = Π_i PoF_i(x)                 (no feasible design yet)
//! ```
//!
//! with an inner DE on the cheap surrogate. Fidelity/cost trade-offs versus
//! the original (documented in DESIGN.md): training inputs are windowed to
//! the best `max_train` points, and kernel hyperparameters are re-tuned
//! every `refit_every` iterations instead of every iteration.

use std::time::{Duration, Instant};

use gp::{probability_of_feasibility, weighted_expected_improvement, GpRegressor, RbfKernel};
use linalg::Matrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::de::finish_with_model_time;
use crate::fom::Fom;
use crate::history::{Evaluation, Evaluator, RunResult, StopPolicy};
use crate::problem::{to_unit, SizingProblem};
use crate::sampling::latin_hypercube;
use crate::Optimizer;

/// Configuration for [`BoWei`].
#[derive(Debug, Clone)]
pub struct BoWei {
    /// Initial LHS samples; 0 means `max(2·d, 20)`.
    pub n_init: usize,
    /// Exploitation weight `w` of the weighted EI.
    pub w: f64,
    /// Maximum training points per GP (best-FoM window).
    pub max_train: usize,
    /// Re-tune kernel hyperparameters every this many iterations.
    pub refit_every: usize,
    /// Inner-DE population for acquisition maximization.
    pub acq_pop: usize,
    /// Inner-DE generations for acquisition maximization.
    pub acq_gens: usize,
}

impl Default for BoWei {
    fn default() -> Self {
        BoWei {
            n_init: 0,
            w: 0.5,
            max_train: 220,
            refit_every: 20,
            acq_pop: 24,
            acq_gens: 25,
        }
    }
}

/// Selects up to `cap` training indices: all points if they fit, otherwise
/// the best-FoM points (they shape the region BO should refine).
fn training_window(history: &[Evaluation], cap: usize) -> Vec<usize> {
    if history.len() <= cap {
        return (0..history.len()).collect();
    }
    let mut idx: Vec<usize> = (0..history.len()).collect();
    idx.sort_by(|&a, &b| history[a].fom.partial_cmp(&history[b].fom).unwrap());
    idx.truncate(cap);
    idx
}

impl Optimizer for BoWei {
    fn name(&self) -> &'static str {
        "BO-wEI"
    }

    fn run(
        &self,
        problem: &dyn SizingProblem,
        fom: &Fom,
        budget: usize,
        stop: StopPolicy,
        seed: u64,
    ) -> RunResult {
        let t0 = Instant::now();
        let mut model_time = Duration::ZERO;
        let mut rng = StdRng::seed_from_u64(seed);
        let (lb, ub) = problem.bounds();
        let d = problem.dim();
        let m = problem.num_constraints();
        let n_init = if self.n_init > 0 {
            self.n_init
        } else {
            (2 * d).max(20)
        }
        .min(budget);
        let mut ev = Evaluator::new(problem, fom, budget);

        for x in latin_hypercube(&mut rng, &lb, &ub, n_init) {
            if ev.exhausted() {
                break;
            }
            let e = ev.evaluate(&x);
            if stop == StopPolicy::FirstFeasible && e.feasible {
                return finish_with_model_time(self.name(), ev, t0, model_time);
            }
        }

        let mut lengthscale = 0.5;
        let mut iter = 0usize;
        while !ev.exhausted() {
            let history = ev.history().entries().to_vec();
            let idx = training_window(&history, self.max_train);
            let n = idx.len();
            let xs = Matrix::from_fn(n, d, |i, j| to_unit(&history[idx[i]].x, &lb, &ub)[j]);

            let tm = Instant::now();
            // Objective GP: hyper-tuned periodically, cached lengthscale
            // otherwise.
            let y_obj: Vec<f64> = {
                let raw: Vec<f64> = idx.iter().map(|&i| history[i].spec.objective).collect();
                let (clo, chi) = crate::problem::robust_clip_bounds(&raw);
                raw.iter().map(|y| y.clamp(clo, chi)).collect()
            };
            let obj_gp = if iter.is_multiple_of(self.refit_every) {
                let g = GpRegressor::fit_hyperopt(xs.clone(), y_obj.clone());
                if let Ok(ref gg) = g {
                    // Probe the chosen lengthscale through a 1-point predict
                    // is not possible; track via LML re-fit instead: keep a
                    // small grid ourselves.
                    lengthscale = best_lengthscale(&xs, &y_obj).unwrap_or(lengthscale);
                    let _ = gg;
                }
                g.ok()
            } else {
                fit_plain(&xs, &y_obj, lengthscale)
            };
            // Constraint GPs share the cached lengthscale.
            let mut con_gps: Vec<Option<GpRegressor>> = Vec::with_capacity(m);
            for c in 0..m {
                let raw: Vec<f64> = idx
                    .iter()
                    .map(|&i| history[i].spec.constraints[c])
                    .collect();
                let (clo, chi) = crate::problem::robust_clip_bounds(&raw);
                let yc: Vec<f64> = raw.iter().map(|y| y.clamp(clo, chi)).collect();
                con_gps.push(fit_plain(&xs, &yc, lengthscale));
            }
            model_time += tm.elapsed();

            let best_feasible_obj = history
                .iter()
                .filter(|e| e.feasible)
                .map(|e| e.spec.objective)
                .fold(f64::INFINITY, f64::min);

            // Acquisition (to maximize).
            let acq = |u: &[f64]| -> f64 {
                let mut pof = 1.0;
                for g in con_gps.iter().flatten() {
                    let (mean, var) = g.predict(u);
                    pof *= probability_of_feasibility(mean, var);
                }
                if best_feasible_obj.is_finite() {
                    let wei = obj_gp
                        .as_ref()
                        .map(|g| {
                            let (mean, var) = g.predict(u);
                            weighted_expected_improvement(mean, var, best_feasible_obj, self.w)
                        })
                        .unwrap_or(1.0);
                    wei * pof
                } else {
                    pof
                }
            };

            // Inner DE in the unit cube on the surrogate.
            let next_u = maximize_with_de(&acq, d, self.acq_pop, self.acq_gens, &mut rng);
            let next: Vec<f64> = next_u
                .iter()
                .enumerate()
                .map(|(j, &u)| lb[j] + u * (ub[j] - lb[j]))
                .collect();
            let e = ev.evaluate(&next);
            if stop == StopPolicy::FirstFeasible && e.feasible {
                break;
            }
            iter += 1;
        }
        finish_with_model_time(self.name(), ev, t0, model_time)
    }
}

/// Fits a plain GP with a fixed isotropic lengthscale and data-scaled
/// variance; `None` when the fit fails (degenerate data).
pub(crate) fn fit_plain(x: &Matrix, y: &[f64], lengthscale: f64) -> Option<GpRegressor> {
    let n = y.len().max(1) as f64;
    let mean = y.iter().sum::<f64>() / n;
    let var = (y.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).max(1e-12);
    let kernel = RbfKernel::isotropic(x.cols().max(1), lengthscale, var);
    GpRegressor::fit(x.clone(), y.to_vec(), kernel, 1e-6 * var).ok()
}

/// Small lengthscale grid search by log marginal likelihood.
pub(crate) fn best_lengthscale(x: &Matrix, y: &[f64]) -> Option<f64> {
    let mut best = None;
    for &ls in &[0.1, 0.2, 0.5, 1.0, 2.0] {
        if let Some(gp) = fit_plain(x, y, ls) {
            let lml = gp.log_marginal_likelihood();
            if best.is_none_or(|(_, b)| lml > b) {
                best = Some((ls, lml));
            }
        }
    }
    best.map(|(ls, _)| ls)
}

/// Maximizes a cheap function over the unit cube with a small DE.
pub(crate) fn maximize_with_de<R: Rng + ?Sized>(
    f: &dyn Fn(&[f64]) -> f64,
    d: usize,
    pop: usize,
    gens: usize,
    rng: &mut R,
) -> Vec<f64> {
    let np = pop.max(4);
    let mut xs: Vec<Vec<f64>> = (0..np)
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let mut fit: Vec<f64> = xs.iter().map(|x| f(x)).collect();
    for _ in 0..gens {
        for i in 0..np {
            let mut pick = || loop {
                let k = rng.gen_range(0..np);
                if k != i {
                    return k;
                }
            };
            let (r1, r2, r3) = {
                let a = pick();
                let b = loop {
                    let k = pick();
                    if k != a {
                        break k;
                    }
                };
                let c = loop {
                    let k = pick();
                    if k != a && k != b {
                        break k;
                    }
                };
                (a, b, c)
            };
            let jrand = rng.gen_range(0..d);
            let mut trial = xs[i].clone();
            for j in 0..d {
                if j == jrand || rng.gen::<f64>() < 0.9 {
                    trial[j] = (xs[r1][j] + 0.6 * (xs[r2][j] - xs[r3][j])).clamp(0.0, 1.0);
                }
            }
            let ft = f(&trial);
            if ft >= fit[i] {
                xs[i] = trial;
                fit[i] = ft;
            }
        }
    }
    let best = (0..np)
        .max_by(|&a, &b| fit[a].partial_cmp(&fit[b]).unwrap())
        .unwrap_or(0);
    xs[best].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_problems::Sphere;

    #[test]
    fn beats_random_on_sphere() {
        let p = Sphere { d: 4 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let bo = BoWei::default();
        let run = bo.run(&p, &fom, 80, StopPolicy::Exhaust, 3);
        let best = run.history.best().unwrap().fom;
        let rnd = crate::random::RandomSearch.run(&p, &fom, 80, StopPolicy::Exhaust, 3);
        let rnd_best = rnd.history.best().unwrap().fom;
        assert!(
            best <= rnd_best * 1.2,
            "BO {best} should be competitive with random {rnd_best}"
        );
        assert!(run.model_time > Duration::ZERO);
    }

    #[test]
    fn finds_feasible_quickly_on_easy_problem() {
        let p = Sphere { d: 3 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let bo = BoWei::default();
        let run = bo.run(&p, &fom, 120, StopPolicy::FirstFeasible, 1);
        assert!(run.sims_to_feasible().is_some());
    }

    #[test]
    fn respects_budget() {
        let p = Sphere { d: 2 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let bo = BoWei {
            acq_pop: 8,
            acq_gens: 5,
            ..Default::default()
        };
        let run = bo.run(&p, &fom, 45, StopPolicy::Exhaust, 2);
        assert_eq!(run.history.len(), 45);
    }

    #[test]
    fn training_window_caps_and_keeps_best() {
        let history: Vec<Evaluation> = (0..10)
            .map(|i| Evaluation {
                x: vec![i as f64],
                spec: crate::problem::SpecResult {
                    failure: None,
                    objective: 0.0,
                    constraints: vec![],
                },
                fom: (10 - i) as f64,
                feasible: false,
                corner_specs: Vec::new(),
            })
            .collect();
        let idx = training_window(&history, 3);
        assert_eq!(idx.len(), 3);
        // Best FoMs are the last entries (fom 1, 2, 3).
        assert!(idx.contains(&9) && idx.contains(&8) && idx.contains(&7));
        let all = training_window(&history, 100);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn inner_de_finds_peak() {
        let mut rng = StdRng::seed_from_u64(0);
        let peak = |x: &[f64]| -(x[0] - 0.73).powi(2) - (x[1] - 0.21).powi(2);
        let best = maximize_with_de(&peak, 2, 16, 40, &mut rng);
        assert!((best[0] - 0.73).abs() < 0.05);
        assert!((best[1] - 0.21).abs() < 0.05);
    }
}
