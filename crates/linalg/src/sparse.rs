//! KLU-style sparse LU for the circuit simulator's MNA systems.
//!
//! Modified-nodal-analysis matrices are ~95% structural zeros and, across a
//! Newton solve, only their *values* change — the sparsity pattern is fixed
//! by the circuit topology. This module exploits that split:
//!
//! - [`CscT`] stores the system in compressed-sparse-column form over any
//!   [`Scalar`] element type ([`CscMatrix`] = real, [`crate::
//!   CscComplexMatrix`] = complex). [`CscT::from_coordinates`] additionally
//!   returns a *slot map* so a stamper that replays the same write sequence
//!   every assembly can write each contribution straight into the value
//!   array (`values[slot] += g`) with no index search at all.
//! - [`SparseLuT::factor`] runs a left-looking Gilbert–Peierls LU with
//!   partial pivoting on top of a minimum-degree column preordering,
//!   recording the full elimination pattern (reach sets, fill positions,
//!   pivot sequence).
//! - [`SparseLuT::refactor_into`] replays that recording on new values:
//!   no pivot search, no reachability DFS, no per-pivot column scans —
//!   just gather/scatter over precomputed index lists. This is the
//!   per-Newton-iteration (and, for the complex instantiation, the
//!   per-frequency-point) kernel.
//! - [`SparseLuT::solve_transpose_into`] solves `Aᵀ·y = b` on the same
//!   factors — the noise analysis' adjoint system shares one
//!   factorization per frequency point with the forward AC solve.
//!
//! The whole numeric plane — scalar replay *and* the supernodal blocked
//! replay in `supernodal.rs` — is generic over [`Scalar`], so the real and
//! complex paths are one implementation and cannot drift.
//!
//! The intended rhythm (mirrored by `spice::NewtonWorkspace`): analyze the
//! pattern once per topology, `factor` once per solve to pin the pivot
//! sequence to the current value range, then `refactor_into` every
//! subsequent iteration.

use crate::scalar::Scalar;
use crate::supernodal::Supernodal;
use crate::{FactorError, Matrix, SupernodalMode};

/// Pivots smaller than this are treated as singular — the same absolute
/// threshold the dense [`crate::Lu`] and [`crate::ComplexLu`] use, so the
/// paths agree on what "singular" means.
pub(crate) const PIVOT_EPS: f64 = 1e-300;

/// A square sparse matrix in compressed-sparse-column (CSC) form, generic
/// over the element type ([`CscMatrix`] for `f64`,
/// [`crate::CscComplexMatrix`] for [`crate::C64`]).
///
/// The pattern (`col_ptr`/`row_idx`) is fixed at construction; only the
/// value array changes between factorizations.
#[derive(Debug, Clone)]
pub struct CscT<T: Scalar> {
    pub(crate) n: usize,
    /// Column start offsets, length `n + 1`.
    pub(crate) col_ptr: Vec<usize>,
    /// Row index of each stored entry, column-major, rows ascending.
    pub(crate) row_idx: Vec<usize>,
    /// Entry values, aligned with `row_idx`.
    pub(crate) values: Vec<T>,
}

/// Real CSC matrix (the DC/transient MNA system).
pub type CscMatrix = CscT<f64>;

/// Builds the CSC pattern arrays holding every coordinate in `coords`
/// (duplicates allowed — they share a slot). Returns `(col_ptr, row_idx,
/// slots)` where `slots[k]` is the value-array index backing `coords[k]`.
/// Shared by every [`CscT`] instantiation, so the real and complex
/// patterns built from the same coordinates get identical slot maps.
///
/// # Panics
///
/// Panics if any coordinate is out of range.
pub(crate) fn pattern_from_coordinates(
    n: usize,
    coords: &[(usize, usize)],
) -> (Vec<usize>, Vec<usize>, Vec<u32>) {
    for &(r, c) in coords {
        assert!(r < n && c < n, "coordinate ({r}, {c}) outside {n}x{n}");
    }
    // Unique (col, row) pairs in column-major order.
    let mut entries: Vec<(usize, usize)> = coords.iter().map(|&(r, c)| (c, r)).collect();
    entries.sort_unstable();
    entries.dedup();
    let mut col_ptr = vec![0usize; n + 1];
    for &(c, _) in &entries {
        col_ptr[c + 1] += 1;
    }
    for c in 0..n {
        col_ptr[c + 1] += col_ptr[c];
    }
    let row_idx: Vec<usize> = entries.iter().map(|&(_, r)| r).collect();
    let slots = coords
        .iter()
        .map(|&(r, c)| {
            let found = entries
                .binary_search(&(c, r))
                .expect("coordinate present by construction");
            u32::try_from(found).expect("slot index fits in u32")
        })
        .collect();
    (col_ptr, row_idx, slots)
}

impl<T: Scalar> CscT<T> {
    /// Builds the pattern holding every coordinate in `coords` (duplicates
    /// allowed — they share a slot) with all values zero. Returns the
    /// matrix and a *slot map*: `slots[k]` is the index into
    /// [`CscT::values`] backing `coords[k]`, so a caller replaying the
    /// same write sequence can assemble with `values[slots[k]] += v`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn from_coordinates(n: usize, coords: &[(usize, usize)]) -> (Self, Vec<u32>) {
        let (col_ptr, row_idx, slots) = pattern_from_coordinates(n, coords);
        let nnz = row_idx.len();
        let mat = CscT {
            n,
            col_ptr,
            row_idx,
            values: vec![T::ZERO; nnz],
        };
        (mat, slots)
    }

    /// Dimension of the (square) matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Stored values (column-major, aligned with the pattern).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the stored values, for slot-map assembly.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Swaps the value storage out (and back in), letting a stamper own the
    /// array during assembly without copying. The replacement must have the
    /// same length.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.nnz()`.
    pub fn swap_values(&mut self, values: &mut Vec<T>) {
        assert_eq!(values.len(), self.nnz(), "value array length mismatch");
        std::mem::swap(&mut self.values, values);
    }

    /// Zeroes every stored value, keeping the pattern.
    pub fn set_zero(&mut self) {
        self.values.fill(T::ZERO);
    }

    /// Entries of one column as `(row, value)` pairs.
    fn col(&self, c: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let range = self.col_ptr[c]..self.col_ptr[c + 1];
        self.row_idx[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&r, &v)| (r, v))
    }
}

impl CscMatrix {
    /// Builds a CSC matrix from the exact nonzero pattern (and values) of a
    /// dense matrix. Test/bench helper.
    ///
    /// # Panics
    ///
    /// Panics on non-square input.
    pub fn from_dense(a: &Matrix) -> Self {
        assert_eq!(a.rows(), a.cols(), "CscMatrix requires a square matrix");
        let n = a.rows();
        let coords: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| a[(i, j)] != 0.0)
            .collect();
        let (mut m, slots) = CscMatrix::from_coordinates(n, &coords);
        for (&(i, j), &s) in coords.iter().zip(&slots) {
            m.values[s as usize] = a[(i, j)];
        }
        m
    }

    /// Densifies the matrix (test helper).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for c in 0..self.n {
            for (r, v) in self.col(c) {
                m[(r, c)] += v;
            }
        }
        m
    }
}

/// Fill-explosion guard for [`min_degree_order_pattern`]: the clique
/// simulation may insert at most `FILL_GUARD_EDGE_FACTOR · |E₀| +
/// FILL_GUARD_NODE_FACTOR · n` new undirected edges before the ordering
/// bails out to the natural order. Measured headroom: RC grids/ladders up
/// to n = 2000 insert ≈ 2–4·|E₀| fill edges under min-degree (well-ordered
/// meshes fill ~O(n log n)), so 16× edges + 64·n leaves ≥ 4× margin for
/// every mesh workload while still catching the quadratic blowup a bad
/// tie-break cascade produces (where the quotient-graph walk itself turns
/// O(n³) and ordering costs more than the factorization it serves).
const FILL_GUARD_EDGE_FACTOR: usize = 16;
const FILL_GUARD_NODE_FACTOR: usize = 64;

/// Deterministic minimum-degree ordering on the symmetrized pattern
/// `(col_ptr, row_idx)` (ties broken toward the smallest index). This is
/// the AMD-style fill-reducing preordering applied to columns before
/// factorization; MNA patterns are near-symmetric, so ordering `A + Aᵀ`
/// works well. Shared by the real and complex sparse LU (the ordering
/// depends only on the pattern, never on values).
///
/// Guarded against fill explosion: when the elimination-clique simulation
/// inserts more edges than the [`FILL_GUARD_EDGE_FACTOR`] budget allows,
/// the pattern is densifying under min-degree anyway and the function
/// returns the natural order `0..n` instead of silently spending quadratic
/// time and memory on the quotient graph. The bailout is observable: it
/// records one [`telemetry::Metric::SparseFillGuardFallbacks`] count (the
/// fallback trades factorization fill for ordering time, which is worth
/// knowing about when a workload triggers it systematically).
pub(crate) fn min_degree_order_pattern(
    n: usize,
    col_ptr: &[usize],
    row_idx: &[usize],
) -> Vec<usize> {
    // Symmetric adjacency, excluding the diagonal.
    let mut adj: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
    let mut edges = 0usize;
    for c in 0..n {
        for &r in &row_idx[col_ptr[c]..col_ptr[c + 1]] {
            if r != c && adj[r].insert(c) {
                adj[c].insert(r);
                edges += 1;
            }
        }
    }
    let fill_budget = FILL_GUARD_EDGE_FACTOR * edges + FILL_GUARD_NODE_FACTOR * n;
    let mut fill = 0usize;
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    let mut scratch: Vec<usize> = Vec::new();
    for _ in 0..n {
        let v = (0..n)
            .filter(|&i| alive[i])
            .min_by_key(|&i| (adj[i].len(), i))
            .expect("an alive vertex remains");
        order.push(v);
        alive[v] = false;
        scratch.clear();
        scratch.extend(adj[v].iter().copied().filter(|&u| alive[u]));
        // Eliminating v turns its neighborhood into a clique.
        for (k, &u) in scratch.iter().enumerate() {
            adj[u].remove(&v);
            for &w in &scratch[k + 1..] {
                if adj[u].insert(w) {
                    adj[w].insert(u);
                    fill += 1;
                }
            }
        }
        if fill > fill_budget {
            telemetry::record(telemetry::Metric::SparseFillGuardFallbacks, 1);
            let mut natural: Vec<usize> = (0..n).collect();
            etree_postorder(n, col_ptr, row_idx, &mut natural);
            return natural;
        }
    }
    etree_postorder(n, col_ptr, row_idx, &mut order);
    order
}

/// Replaces `order` by its elimination-tree postorder: computes the etree
/// of the symmetrized pattern under `order` (Liu's algorithm with path
/// compression), then renumbers each subtree contiguously, children in
/// ascending order — fully deterministic. A postorder is fill-equivalent
/// to the input order (same elimination tree, same fill), but numbers the
/// columns of each fundamental supernode consecutively, which is what the
/// supernodal detection in `supernodal.rs` needs to find dense panels: the
/// raw min-degree order scatters structurally identical columns, leaving
/// mostly singleton supernodes.
fn etree_postorder(n: usize, col_ptr: &[usize], row_idx: &[usize], order: &mut [usize]) {
    if n == 0 {
        return;
    }
    let mut iperm = vec![0usize; n];
    for (k, &v) in order.iter().enumerate() {
        iperm[v] = k;
    }
    // Symmetrized adjacency in permuted coordinates (duplicate entries are
    // harmless to the etree walk).
    let mut aptr = vec![0usize; n + 1];
    for c in 0..n {
        for &r in &row_idx[col_ptr[c]..col_ptr[c + 1]] {
            if r != c {
                aptr[iperm[r] + 1] += 1;
                aptr[iperm[c] + 1] += 1;
            }
        }
    }
    for i in 0..n {
        aptr[i + 1] += aptr[i];
    }
    let mut anb = vec![0usize; aptr[n]];
    let mut pos = aptr.clone();
    for c in 0..n {
        for &r in &row_idx[col_ptr[c]..col_ptr[c + 1]] {
            if r != c {
                let (pc, pr) = (iperm[c], iperm[r]);
                anb[pos[pc]] = pr;
                pos[pc] += 1;
                anb[pos[pr]] = pc;
                pos[pr] += 1;
            }
        }
    }
    // Liu's elimination-tree algorithm with path compression.
    let mut parent = vec![usize::MAX; n];
    let mut ancestor = vec![usize::MAX; n];
    for k in 0..n {
        for t in aptr[k]..aptr[k + 1] {
            let mut i = anb[t];
            if i >= k {
                continue;
            }
            while ancestor[i] != usize::MAX && ancestor[i] != k {
                let next = ancestor[i];
                ancestor[i] = k;
                i = next;
            }
            if ancestor[i] == usize::MAX {
                ancestor[i] = k;
                parent[i] = k;
            }
        }
    }
    // Children lists (ascending because `i` ascends) + iterative DFS.
    let mut cdeg = vec![0usize; n];
    for i in 0..n {
        if parent[i] != usize::MAX {
            cdeg[parent[i]] += 1;
        }
    }
    let mut cptr = vec![0usize; n + 1];
    for i in 0..n {
        cptr[i + 1] = cptr[i] + cdeg[i];
    }
    let mut child = vec![0usize; cptr[n]];
    let mut cpos = cptr.clone();
    for i in 0..n {
        if parent[i] != usize::MAX {
            child[cpos[parent[i]]] = i;
            cpos[parent[i]] += 1;
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if parent[root] != usize::MAX {
            continue;
        }
        stack.push((root, 0));
        while let Some(&mut (node, ref mut ci)) = stack.last_mut() {
            if *ci < cdeg[node] {
                let c = child[cptr[node] + *ci];
                *ci += 1;
                stack.push((c, 0));
            } else {
                post.push(node);
                stack.pop();
            }
        }
    }
    debug_assert_eq!(post.len(), n);
    let old: Vec<usize> = order.to_vec();
    for (k, &pk) in post.iter().enumerate() {
        order[k] = old[pk];
    }
}

/// [`min_degree_order_pattern`] applied to a CSC matrix of any element
/// type (the ordering reads only the pattern).
fn min_degree_order<T: Scalar>(a: &CscT<T>) -> Vec<usize> {
    min_degree_order_pattern(a.n, &a.col_ptr, &a.row_idx)
}

/// Sparse LU factorization with a recorded elimination pattern, generic
/// over the element type ([`SparseLu`] for `f64`,
/// [`crate::SparseComplexLu`] for [`crate::C64`]).
///
/// `L` is unit lower triangular (unit diagonal implicit) and stored with
/// *original* row indices; `U` is upper triangular and stored with
/// *pivotal positions* (its rows were already pivotal when recorded). The
/// reciprocal pivots live in `inv_diag`.
///
/// # Example
///
/// ```
/// use linalg::{CscMatrix, SparseLu};
///
/// // [2 1; 1 3] with an off-diagonal pattern.
/// let (mut a, slots) =
///     CscMatrix::from_coordinates(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
/// for (s, v) in slots.iter().zip([2.0, 1.0, 1.0, 3.0]) {
///     a.values_mut()[*s as usize] += v;
/// }
/// let mut lu = SparseLu::new();
/// lu.factor(&a).expect("non-singular");
/// let mut x = Vec::new();
/// lu.solve_into(&[3.0, 5.0], &mut x).unwrap();
/// assert!((x[0] - 0.8).abs() < 1e-12 && (x[1] - 1.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseLuT<T: Scalar> {
    pub(crate) n: usize,
    /// Fill-reducing column preorder: step `k` factors column `q[k]` of `A`.
    pub(crate) q: Vec<usize>,
    /// `p[k]` = original row pivotal at step `k`.
    pub(crate) p: Vec<usize>,
    /// Inverse row permutation: `pinv[orig_row]` = pivotal step, or
    /// `usize::MAX` while unassigned during factorization.
    pub(crate) pinv: Vec<usize>,
    /// L pattern/values, column-major; rows are *original* indices,
    /// strictly-below-diagonal entries only.
    pub(crate) l_colptr: Vec<usize>,
    pub(crate) l_rows: Vec<usize>,
    pub(crate) l_vals: Vec<T>,
    /// U pattern/values, column-major; rows are *pivotal positions* `< k`,
    /// stored ascending so a refactor replay is a valid elimination order.
    pub(crate) u_colptr: Vec<usize>,
    pub(crate) u_rows: Vec<usize>,
    pub(crate) u_vals: Vec<T>,
    /// Reciprocal pivots.
    pub(crate) inv_diag: Vec<T>,
    /// Dense accumulator indexed by original row.
    pub(crate) work: Vec<T>,
    /// DFS visitation stamps (stamp = current step).
    flag: Vec<usize>,
    /// DFS stack of `(node, next-child offset)` frames.
    dfs: Vec<(usize, usize)>,
    /// Reach set of the current column, in DFS post-order.
    pattern: Vec<usize>,
    /// Scratch for sorting the pivotal part of a reach set.
    upper: Vec<(usize, usize)>,
    /// Column ordering computed for the current pattern.
    analyzed: bool,
    /// A successful numeric factorization is stored.
    pub(crate) factored: bool,
    /// Numeric-path selection policy (see [`SupernodalMode`]).
    mode: SupernodalMode,
    /// Blocked execution plan + scratch when the supernodal path is active
    /// for the currently recorded pattern.
    pub(crate) supernodal: Option<Box<Supernodal<T>>>,
}

/// Real sparse LU (the per-Newton-iteration DC/transient kernel).
pub type SparseLu = SparseLuT<f64>;

impl<T: Scalar> SparseLuT<T> {
    /// Creates an empty factorization object; all storage is grown on first
    /// use and reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dimension of the (last) factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// True once a successful numeric factorization is stored.
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// Number of stored `L` plus `U` entries (diagonal included), i.e. the
    /// fill the elimination produced.
    pub fn factor_nnz(&self) -> usize {
        self.l_rows.len() + self.u_rows.len() + self.n
    }

    /// Selects the numeric execution path for subsequent
    /// [`SparseLuT::factor`] calls (the plan is rebuilt at the next full
    /// factorization; a stored blocked plan is dropped immediately).
    pub fn set_supernodal_mode(&mut self, mode: SupernodalMode) {
        self.mode = mode;
        self.supernodal = None;
    }

    /// True when the supernodal (blocked) numeric path is active for the
    /// currently recorded pattern — i.e. [`SparseLuT::refactor_into`] will
    /// replay through dense panels and GEMM instead of scalar column
    /// updates.
    pub fn supernodal_active(&self) -> bool {
        self.supernodal.is_some()
    }

    /// Number of width-≥2 supernodes in the active blocked plan (0 when
    /// the scalar path is active). Diagnostic for tests and benches.
    pub fn wide_supernodes(&self) -> u64 {
        self.supernodal.as_ref().map_or(0, |s| s.wide_supernodes)
    }

    /// Number of independent subtree tasks in the active blocked plan's
    /// etree partition (0 when the scalar path is active). A plan with
    /// ≥ 2 tasks replays them over the shared pool when the thread budget
    /// allows. Diagnostic for tests and benches.
    pub fn parallel_tasks(&self) -> usize {
        self.supernodal.as_ref().map_or(0, |s| s.num_tasks())
    }

    /// Computes the fill-reducing column ordering for `a`'s pattern. Called
    /// automatically by [`SparseLuT::factor`] when needed; calling it again
    /// re-analyzes (use after the pattern itself changed).
    pub fn analyze(&mut self, a: &CscT<T>) {
        self.q = min_degree_order(a);
        self.n = a.n;
        self.analyzed = true;
        self.factored = false;
    }

    /// Full numeric factorization with partial pivoting, recording the
    /// elimination pattern for subsequent [`SparseLuT::refactor_into`]
    /// calls. Deterministic: the pivot choice depends only on `a`'s values
    /// (largest magnitude, ties broken toward the smallest original row
    /// index).
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Singular`] when no acceptable pivot exists at
    /// some step (structural or numerical singularity).
    pub fn factor(&mut self, a: &CscT<T>) -> Result<(), FactorError> {
        if !self.analyzed || self.n != a.n || self.q.len() != a.n {
            self.analyze(a);
        }
        let n = a.n;
        self.factored = false;
        // The recording is being rebuilt; any blocked plan over the old
        // pattern is stale.
        self.supernodal = None;
        self.p.clear();
        self.p.resize(n, 0);
        self.pinv.clear();
        self.pinv.resize(n, usize::MAX);
        self.l_colptr.clear();
        self.l_colptr.push(0);
        self.l_rows.clear();
        self.l_vals.clear();
        self.u_colptr.clear();
        self.u_colptr.push(0);
        self.u_rows.clear();
        self.u_vals.clear();
        self.inv_diag.clear();
        self.inv_diag.resize(n, T::ZERO);
        self.work.clear();
        self.work.resize(n, T::ZERO);
        self.flag.clear();
        self.flag.resize(n, usize::MAX);

        for k in 0..n {
            let col = self.q[k];
            // --- Symbolic: reach of A(:, col) through the graph of L.
            self.pattern.clear();
            for t in a.col_ptr[col]..a.col_ptr[col + 1] {
                let root = a.row_idx[t];
                if self.flag[root] == k {
                    continue;
                }
                // Iterative DFS; nodes are pushed to `pattern` post-order.
                self.dfs.push((root, 0));
                self.flag[root] = k;
                while let Some(&mut (node, ref mut child)) = self.dfs.last_mut() {
                    let step = self.pinv[node];
                    let descend = if step != usize::MAX {
                        let lo = self.l_colptr[step];
                        let hi = self.l_colptr[step + 1];
                        let mut next = None;
                        while lo + *child < hi {
                            let cand = self.l_rows[lo + *child];
                            *child += 1;
                            if self.flag[cand] != k {
                                self.flag[cand] = k;
                                next = Some(cand);
                                break;
                            }
                        }
                        next
                    } else {
                        None
                    };
                    match descend {
                        Some(c) => self.dfs.push((c, 0)),
                        None => {
                            self.pattern.push(node);
                            self.dfs.pop();
                        }
                    }
                }
            }
            // --- Numeric: scatter A(:, col), then eliminate with every
            // pivotal column in the reach, in ascending pivotal order (a
            // valid topological order of the elimination DAG).
            for t in a.col_ptr[col]..a.col_ptr[col + 1] {
                self.work[a.row_idx[t]] += a.values[t];
            }
            self.upper.clear();
            self.upper.extend(
                self.pattern
                    .iter()
                    .filter(|&&i| self.pinv[i] != usize::MAX)
                    .map(|&i| (self.pinv[i], i)),
            );
            self.upper.sort_unstable();
            for &(step, orig) in &self.upper {
                let ux = self.work[orig];
                self.u_rows.push(step);
                self.u_vals.push(ux);
                if ux != T::ZERO {
                    for t in self.l_colptr[step]..self.l_colptr[step + 1] {
                        self.work[self.l_rows[t]] -= ux * self.l_vals[t];
                    }
                }
            }
            self.u_colptr.push(self.u_rows.len());
            // --- Pivot: largest magnitude among non-pivotal reach entries,
            // smallest original index on ties.
            let mut piv = usize::MAX;
            let mut piv_abs = -1.0;
            for &i in &self.pattern {
                if self.pinv[i] != usize::MAX {
                    continue;
                }
                let v = self.work[i].mag();
                if v > piv_abs || (v == piv_abs && i < piv) {
                    piv_abs = v;
                    piv = i;
                }
            }
            if piv == usize::MAX || !(piv_abs > PIVOT_EPS) {
                // Leave the accumulator clean for the next attempt.
                for &i in &self.pattern {
                    self.work[i] = T::ZERO;
                }
                return Err(FactorError::Singular { pivot: k });
            }
            let inv = self.work[piv].recip();
            self.inv_diag[k] = inv;
            self.p[k] = piv;
            self.pinv[piv] = k;
            for &i in &self.pattern {
                if i != piv && self.pinv[i] == usize::MAX {
                    self.l_rows.push(i);
                    self.l_vals.push(self.work[i] * inv);
                }
            }
            self.l_colptr.push(self.l_rows.len());
            for &i in &self.pattern {
                self.work[i] = T::ZERO;
            }
        }
        self.factored = true;
        // With the pivot sequence and pattern pinned, decide the numeric
        // replay path. When the blocked path is selected, immediately
        // re-run the blocked replay on the same values so the *stored*
        // factors always come from blocked arithmetic — a later
        // `refactor_into` with identical values is then bit-identical to
        // this fresh factor.
        if let Some(mut sn) = Supernodal::build(self, self.mode) {
            let res = sn.refactor(self, a);
            self.supernodal = Some(sn);
            res?;
        }
        Ok(())
    }

    /// Numeric refactorization on new values with the *same pattern*:
    /// replays the recorded elimination — fixed pivot sequence, fixed fill
    /// positions — with no pivot search and no reachability analysis. This
    /// is the per-Newton-iteration (real) and per-frequency-point
    /// (complex) hot path.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if no *completed* recorded
    /// factorization exists (never factored, or the last [`SparseLuT::
    /// factor`] failed partway) or `a` has a different dimension, and
    /// [`FactorError::Singular`] if a recorded pivot position collapses
    /// numerically (callers typically recover with a fresh
    /// [`SparseLuT::factor`]). After an error the previous numeric factors
    /// are invalid.
    pub fn refactor_into(&mut self, a: &CscT<T>) -> Result<(), FactorError> {
        // A *complete* recording is required: after a failed `factor` the
        // column pointers stop at the singular step, so replaying them
        // would walk off the recorded pattern.
        if self.n != a.n || self.l_colptr.len() != a.n + 1 || self.u_colptr.len() != a.n + 1 {
            return Err(FactorError::Shape {
                rows: a.n,
                cols: self.n,
            });
        }
        if self.supernodal.is_some() {
            let mut sn = self.supernodal.take().expect("checked above");
            let res = sn.refactor(self, a);
            self.supernodal = Some(sn);
            return res;
        }
        self.factored = false;
        let work = &mut self.work[..self.n];
        for k in 0..self.n {
            let col = self.q[k];
            // The recorded pattern of this column is exactly
            // {U rows, pivot, L rows}; clear those positions, scatter A.
            for t in self.u_colptr[k]..self.u_colptr[k + 1] {
                work[self.p[self.u_rows[t]]] = T::ZERO;
            }
            work[self.p[k]] = T::ZERO;
            for t in self.l_colptr[k]..self.l_colptr[k + 1] {
                work[self.l_rows[t]] = T::ZERO;
            }
            for t in a.col_ptr[col]..a.col_ptr[col + 1] {
                work[a.row_idx[t]] += a.values[t];
            }
            for t in self.u_colptr[k]..self.u_colptr[k + 1] {
                let step = self.u_rows[t];
                let ux = work[self.p[step]];
                self.u_vals[t] = ux;
                if ux != T::ZERO {
                    for s in self.l_colptr[step]..self.l_colptr[step + 1] {
                        work[self.l_rows[s]] -= ux * self.l_vals[s];
                    }
                }
            }
            let diag = work[self.p[k]];
            if !(diag.mag() > PIVOT_EPS) {
                return Err(FactorError::Singular { pivot: k });
            }
            let inv = diag.recip();
            self.inv_diag[k] = inv;
            for t in self.l_colptr[k]..self.l_colptr[k + 1] {
                self.l_vals[t] = work[self.l_rows[t]] * inv;
            }
        }
        self.factored = true;
        Ok(())
    }

    /// Solves `A·x = b` with the stored factors, writing into `x` (resized,
    /// reusing capacity). Allocation-free once buffers have capacity.
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if no successful factorization is
    /// stored or `b.len()` differs from the factored dimension.
    pub fn solve_into(&mut self, b: &[T], x: &mut Vec<T>) -> Result<(), FactorError> {
        let n = self.n;
        if !self.factored || b.len() != n {
            return Err(FactorError::Shape {
                rows: b.len(),
                cols: n,
            });
        }
        let w = &mut self.work[..n];
        w.copy_from_slice(b);
        // Forward substitution with unit L: y[k] lives at w[p[k]].
        for k in 0..n {
            let yk = w[self.p[k]];
            if yk != T::ZERO {
                for t in self.l_colptr[k]..self.l_colptr[k + 1] {
                    w[self.l_rows[t]] -= self.l_vals[t] * yk;
                }
            }
        }
        // Back substitution with U (rows are pivotal positions).
        for k in (0..n).rev() {
            let v = w[self.p[k]] * self.inv_diag[k];
            w[self.p[k]] = v;
            if v != T::ZERO {
                for t in self.u_colptr[k]..self.u_colptr[k + 1] {
                    w[self.p[self.u_rows[t]]] -= self.u_vals[t] * v;
                }
            }
        }
        // Undo the column permutation.
        x.clear();
        x.resize(n, T::ZERO);
        for k in 0..n {
            x[self.q[k]] = w[self.p[k]];
        }
        // Leave the accumulator clean for the next factor/refactor.
        w.fill(T::ZERO);
        Ok(())
    }

    /// Solves the *transposed* system `Aᵀ·y = b` with the stored factors —
    /// the adjoint solve of the noise analysis. With `A⁻¹ = Q U⁻¹ L⁻¹ P`
    /// (the permuted factorization recorded by [`SparseLuT::factor`]), the
    /// transpose inverse is `Pᵀ L⁻ᵀ U⁻ᵀ Qᵀ`: a forward substitution with
    /// `Uᵀ`, a back substitution with `Lᵀ`, both on the same factor
    /// storage. No transposed matrix is ever built, and the factors may
    /// come from either the scalar or the supernodal blocked replay (both
    /// land in the same recorded arrays).
    ///
    /// # Errors
    ///
    /// Returns [`FactorError::Shape`] if no successful factorization is
    /// stored or `b.len()` differs from the factored dimension.
    pub fn solve_transpose_into(&mut self, b: &[T], y: &mut Vec<T>) -> Result<(), FactorError> {
        let n = self.n;
        if !self.factored || b.len() != n {
            return Err(FactorError::Shape {
                rows: b.len(),
                cols: n,
            });
        }
        let w = &mut self.work[..n];
        // Forward substitution with Uᵀ (lower triangular in pivotal
        // coordinates): c[k] = (b[q[k]] − Σ U[j,k]·c[j]) / U[k,k].
        for k in 0..n {
            let mut s = b[self.q[k]];
            for t in self.u_colptr[k]..self.u_colptr[k + 1] {
                s -= self.u_vals[t] * w[self.u_rows[t]];
            }
            w[k] = s * self.inv_diag[k];
        }
        // Back substitution with Lᵀ (unit upper in pivotal coordinates):
        // L's column k holds original rows i with pivotal step pinv[i] > k.
        for k in (0..n).rev() {
            let mut s = w[k];
            for t in self.l_colptr[k]..self.l_colptr[k + 1] {
                s -= self.l_vals[t] * w[self.pinv[self.l_rows[t]]];
            }
            w[k] = s;
        }
        // Undo the row permutation: y[p[k]] = w[k].
        y.clear();
        y.resize(n, T::ZERO);
        for k in 0..n {
            y[self.p[k]] = w[k];
        }
        w.fill(T::ZERO);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lu, LuWorkspace};

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(ax, bb)| (ax - bb).abs())
            .fold(0.0, f64::max)
    }

    /// Deterministic pseudo-random tridiagonal-plus-arrow test matrix with
    /// the flavor of an MNA system (strong diagonal, sparse off-diagonals).
    fn mna_like(n: usize, salt: u64) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        let mut s = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        };
        for i in 0..n {
            m[(i, i)] = 3.0 + next().abs();
            if i + 1 < n {
                m[(i, i + 1)] = next();
                m[(i + 1, i)] = next();
            }
            if i > 0 && i % 5 == 0 {
                m[(0, i)] = next();
                m[(i, 0)] = next();
            }
        }
        m
    }

    #[test]
    fn from_coordinates_builds_slot_map() {
        let coords = [(0, 0), (1, 1), (0, 0), (2, 1), (1, 1)];
        let (mut m, slots) = CscMatrix::from_coordinates(3, &coords);
        assert_eq!(m.nnz(), 3);
        assert_eq!(slots.len(), coords.len());
        // Duplicate coordinates share a slot.
        assert_eq!(slots[0], slots[2]);
        assert_eq!(slots[1], slots[4]);
        for &s in &slots {
            m.values_mut()[s as usize] += 1.0;
        }
        let d = m.to_dense();
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(2, 1)], 1.0);
    }

    #[test]
    fn factor_and_solve_matches_dense() {
        for n in [1usize, 2, 5, 17, 40] {
            let dense = mna_like(n, n as u64);
            let a = CscMatrix::from_dense(&dense);
            let mut lu = SparseLu::new();
            lu.factor(&a).unwrap();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin() + 1.0).collect();
            let mut x = Vec::new();
            lu.solve_into(&b, &mut x).unwrap();
            assert!(residual(&dense, &x, &b) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn refactor_reuses_pattern_for_new_values() {
        let n = 23;
        let dense0 = mna_like(n, 7);
        let a0 = CscMatrix::from_dense(&dense0);
        let mut lu = SparseLu::new();
        lu.factor(&a0).unwrap();
        // Same pattern, shifted values.
        let mut a1 = a0.clone();
        for v in a1.values_mut() {
            *v = *v * 1.5 + if *v != 0.0 { 0.25 } else { 0.0 };
        }
        let dense1 = a1.to_dense();
        lu.refactor_into(&a1).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut x = Vec::new();
        lu.solve_into(&b, &mut x).unwrap();
        assert!(residual(&dense1, &x, &b) < 1e-9);
        // And the refactor agrees with a fresh dense solve to tight tol.
        let mut ws = LuWorkspace::new(n);
        Lu::factor_into(&dense1, &mut ws).unwrap();
        let mut x_dense = Vec::new();
        ws.solve_into(&b, &mut x_dense).unwrap();
        for (s, d) in x.iter().zip(&x_dense) {
            assert!((s - d).abs() <= 1e-10 * d.abs().max(1.0), "{s} vs {d}");
        }
    }

    #[test]
    fn solve_transpose_matches_dense_transpose_solve() {
        let n = 29;
        let dense = mna_like(n, 13);
        let a = CscMatrix::from_dense(&dense);
        let mut lu = SparseLu::new();
        lu.factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).sin() + 0.25).collect();
        let mut y = Vec::new();
        lu.solve_transpose_into(&b, &mut y).unwrap();
        // Residual of the transposed system: (Aᵀ y)_i = Σ_j a[j][i]·y[j].
        let r = (0..n)
            .map(|i| {
                let s: f64 = (0..n).map(|j| dense[(j, i)] * y[j]).sum();
                (s - b[i]).abs()
            })
            .fold(0.0, f64::max);
        assert!(r < 1e-9, "transpose residual {r}");
        // A forward solve still works afterwards (shared accumulator).
        let mut x = Vec::new();
        lu.solve_into(&b, &mut x).unwrap();
        assert!(residual(&dense, &x, &b) < 1e-9);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // MNA-style voltage-source block: zero on the branch diagonal.
        let dense = Matrix::from_rows(&[&[1e-3, 1.0], &[1.0, 0.0]]);
        let a = CscMatrix::from_dense(&dense);
        let mut lu = SparseLu::new();
        lu.factor(&a).unwrap();
        let mut x = Vec::new();
        lu.solve_into(&[0.0, 2.0], &mut x).unwrap();
        assert!(residual(&dense, &x, &[0.0, 2.0]) < 1e-12);
    }

    #[test]
    fn detects_structural_and_numerical_singularity() {
        // Empty column.
        let (a, _) = CscMatrix::from_coordinates(2, &[(0, 0), (1, 0)]);
        let mut lu = SparseLu::new();
        assert!(matches!(lu.factor(&a), Err(FactorError::Singular { .. })));
        // Numerically dependent rows.
        let dense = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let a = CscMatrix::from_dense(&dense);
        assert!(matches!(lu.factor(&a), Err(FactorError::Singular { .. })));
        // Refactor reports singularity when a pivot collapses to zero.
        let good = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let mut a = CscMatrix::from_dense(&good);
        lu.factor(&a).unwrap();
        a.set_zero();
        assert!(matches!(
            lu.refactor_into(&a),
            Err(FactorError::Singular { .. })
        ));
        assert!(!lu.is_factored());
        assert!(lu.solve_into(&[1.0, 1.0], &mut Vec::new()).is_err());
    }

    #[test]
    fn refactor_after_failed_factor_errors_instead_of_panicking() {
        // factor() fails partway through a singular matrix; a subsequent
        // refactor on the incomplete recording must report Shape, not
        // panic, and a later successful factor restores the object.
        let singular = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[2.0, 4.0, 0.0], &[0.0, 0.0, 1.0]]);
        let a_bad = CscMatrix::from_dense(&singular);
        let mut lu = SparseLu::new();
        assert!(matches!(
            lu.factor(&a_bad),
            Err(FactorError::Singular { .. })
        ));
        assert!(matches!(
            lu.refactor_into(&a_bad),
            Err(FactorError::Shape { .. })
        ));
        let good = mna_like(3, 5);
        let a_good = CscMatrix::from_dense(&good);
        lu.factor(&a_good).unwrap();
        lu.refactor_into(&a_good).unwrap();
        let mut x = Vec::new();
        lu.solve_into(&[1.0, 2.0, 3.0], &mut x).unwrap();
        assert!(residual(&good, &x, &[1.0, 2.0, 3.0]) < 1e-9);
    }

    #[test]
    fn solve_rejects_bad_shapes() {
        let mut lu = SparseLu::new();
        assert!(lu.solve_into(&[1.0], &mut Vec::new()).is_err());
        assert!(lu.solve_transpose_into(&[1.0], &mut Vec::new()).is_err());
        let a = CscMatrix::from_dense(&Matrix::identity(3));
        lu.factor(&a).unwrap();
        assert!(lu.solve_into(&[1.0, 2.0], &mut Vec::new()).is_err());
        assert!(lu.solve_into(&[1.0, 2.0, 3.0], &mut Vec::new()).is_ok());
        // Refactor with a different dimension is a shape error.
        let b = CscMatrix::from_dense(&Matrix::identity(2));
        assert!(matches!(
            lu.refactor_into(&b),
            Err(FactorError::Shape { .. })
        ));
    }

    #[test]
    fn min_degree_order_is_a_permutation() {
        let dense = mna_like(31, 3);
        let a = CscMatrix::from_dense(&dense);
        let q = min_degree_order(&a);
        let mut seen = [false; 31];
        for &c in &q {
            assert!(!seen[c]);
            seen[c] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ordering_reduces_fill_on_arrow_matrix() {
        // Arrow pointing the wrong way: natural order fills completely,
        // min-degree keeps it O(n).
        let n = 30;
        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            dense[(i, i)] = 4.0;
            if i > 0 {
                dense[(0, i)] = 1.0;
                dense[(i, 0)] = 1.0;
            }
        }
        let a = CscMatrix::from_dense(&dense);
        let mut lu = SparseLu::new();
        lu.factor(&a).unwrap();
        assert!(
            lu.factor_nnz() <= a.nnz() + n,
            "fill {} for nnz {}",
            lu.factor_nnz(),
            a.nnz()
        );
        let b = vec![1.0; n];
        let mut x = Vec::new();
        lu.solve_into(&b, &mut x).unwrap();
        assert!(residual(&dense, &x, &b) < 1e-9);
    }

    #[test]
    fn factor_is_repeatable_and_reusable_across_sizes() {
        let mut lu = SparseLu::new();
        let mut x = Vec::new();
        for n in [4usize, 12, 6] {
            let dense = mna_like(n, 11);
            let a = CscMatrix::from_dense(&dense);
            lu.factor(&a).unwrap();
            let b = vec![1.0; n];
            lu.solve_into(&b, &mut x).unwrap();
            assert!(residual(&dense, &x, &b) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn forced_blocked_agrees_with_scalar_path() {
        for n in [1usize, 2, 5, 17, 40, 71] {
            let dense = mna_like(n, n as u64 + 100);
            let a = CscMatrix::from_dense(&dense);
            let mut scalar = SparseLu::new();
            scalar.set_supernodal_mode(SupernodalMode::ForceScalar);
            scalar.factor(&a).unwrap();
            let mut blocked = SparseLu::new();
            blocked.set_supernodal_mode(SupernodalMode::ForceBlocked);
            blocked.factor(&a).unwrap();
            assert!(blocked.supernodal_active(), "n = {n}");
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos() + 0.5).collect();
            let (mut xs, mut xb) = (Vec::new(), Vec::new());
            scalar.solve_into(&b, &mut xs).unwrap();
            blocked.solve_into(&b, &mut xb).unwrap();
            for (s, v) in xs.iter().zip(&xb) {
                assert!(
                    (s - v).abs() <= 1e-10 * s.abs().max(1.0),
                    "n = {n}: {s} vs {v}"
                );
            }
        }
    }

    #[test]
    fn forced_blocked_refactor_is_bit_identical_to_fresh_factor() {
        let n = 48;
        let dense = mna_like(n, 9);
        let a = CscMatrix::from_dense(&dense);
        let mut lu = SparseLu::new();
        lu.set_supernodal_mode(SupernodalMode::ForceBlocked);
        lu.factor(&a).unwrap();
        let (l0, u0, d0) = (lu.l_vals.clone(), lu.u_vals.clone(), lu.inv_diag.clone());
        lu.refactor_into(&a).unwrap();
        assert_eq!(lu.l_vals, l0);
        assert_eq!(lu.u_vals, u0);
        assert_eq!(lu.inv_diag, d0);
        // New values through the same pattern still agree with dense.
        let mut a1 = a.clone();
        for v in a1.values_mut() {
            *v *= 1.25;
        }
        lu.refactor_into(&a1).unwrap();
        let b = vec![1.0; n];
        let mut x = Vec::new();
        lu.solve_into(&b, &mut x).unwrap();
        assert!(residual(&a1.to_dense(), &x, &b) < 1e-9);
    }

    #[test]
    fn blocked_refactor_reports_singular_pivot_collapse() {
        let dense = mna_like(30, 4);
        let mut a = CscMatrix::from_dense(&dense);
        let mut lu = SparseLu::new();
        lu.set_supernodal_mode(SupernodalMode::ForceBlocked);
        lu.factor(&a).unwrap();
        a.set_zero();
        assert!(matches!(
            lu.refactor_into(&a),
            Err(FactorError::Singular { .. })
        ));
        assert!(!lu.is_factored());
    }

    #[test]
    fn swap_values_roundtrip() {
        let dense = mna_like(9, 2);
        let mut a = CscMatrix::from_dense(&dense);
        let mut stash = vec![0.0; a.nnz()];
        a.swap_values(&mut stash);
        assert!(a.values().iter().all(|&v| v == 0.0));
        a.swap_values(&mut stash);
        assert_eq!(a.to_dense(), dense);
    }
}
