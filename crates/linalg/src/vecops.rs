//! Small vector helpers shared across the workspace.
//!
//! These are free functions on slices rather than a vector newtype: the
//! optimization crates pass design points around as `Vec<f64>`/`&[f64]`, and
//! keeping them as plain slices avoids conversion churn at every API
//! boundary.

/// Dot product.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(linalg::vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Element-wise `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise `a + b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Scales a vector.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Clamps each element of `x` into `[lb[i], ub[i]]`.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn clamp_to(x: &[f64], lb: &[f64], ub: &[f64]) -> Vec<f64> {
    assert!(
        x.len() == lb.len() && x.len() == ub.len(),
        "clamp_to: length mismatch"
    );
    x.iter()
        .zip(lb.iter().zip(ub))
        .map(|(&v, (&lo, &hi))| v.clamp(lo, hi))
        .collect()
}

/// Maximum absolute difference between two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population standard deviation; 0 for slices shorter than 2.
pub fn std_dev(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    (a.iter().map(|x| (x - m).powi(2)).sum::<f64>() / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 2.0]), vec![2.0, 2.0]);
        assert_eq!(scale(&[1.0, -2.0], -2.0), vec![-2.0, 4.0]);
    }

    #[test]
    fn clamp_respects_bounds() {
        let out = clamp_to(&[-1.0, 0.5, 2.0], &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(out, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn diffs() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
    }
}
