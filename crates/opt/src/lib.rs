//! Constrained sizing-problem abstraction, figure of merit, and baseline
//! optimizers for the DNN-Opt reproduction.
//!
//! The paper compares DNN-Opt against four optimizers; all of them live
//! here behind the common [`Optimizer`] trait so the benchmark harness can
//! sweep them uniformly:
//!
//! | Paper baseline                       | Implementation |
//! |--------------------------------------|----------------|
//! | Differential Evolution               | [`DifferentialEvolution`] |
//! | BO-wEI (Lyu et al., DAC'18)          | [`BoWei`] |
//! | GASPAD (Liu et al., TCAD'14)         | [`Gaspad`] |
//! | Commercial Simulated Annealing tool  | [`SimulatedAnnealing`] |
//! | (sanity floor)                       | [`RandomSearch`] |
//!
//! Shared infrastructure: [`SizingProblem`] (paper Eq. 1), [`Fom`]
//! (paper Eq. 4), budget/history bookkeeping ([`Evaluator`], [`History`],
//! [`RunResult`]) and sampling helpers.
//!
//! # Example
//!
//! ```
//! use opt::{DifferentialEvolution, Fom, Optimizer, SizingProblem, SpecResult, StopPolicy};
//!
//! struct Toy;
//! impl SizingProblem for Toy {
//!     fn dim(&self) -> usize { 2 }
//!     fn bounds(&self) -> (Vec<f64>, Vec<f64>) { (vec![-1.0; 2], vec![1.0; 2]) }
//!     fn num_constraints(&self) -> usize { 1 }
//!     fn evaluate(&self, x: &[f64]) -> SpecResult {
//!         SpecResult { failure: None,
//!             objective: x[0] * x[0] + x[1] * x[1],
//!             constraints: vec![0.25 - x[0]], // require x0 >= 0.25
//!         }
//!     }
//! }
//!
//! let fom = Fom::uniform(1.0, 1);
//! let run = DifferentialEvolution::default().run(&Toy, &fom, 400, StopPolicy::Exhaust, 0);
//! let best = run.history.best_feasible().expect("feasible design found");
//! assert!(best.x[0] >= 0.25);
//! assert!(best.spec.objective < 0.1);
//! ```

mod bo_wei;
mod de;
mod failure;
mod fom;
mod gaspad;
mod history;
pub mod parallel;
mod problem;
mod random;
mod sa;
pub mod sampling;

pub use bo_wei::BoWei;
pub use de::DifferentialEvolution;
pub use failure::{FailureDiag, FailureKind, RecoveryStage};
pub use fom::Fom;
pub use gaspad::Gaspad;
pub use history::{
    Evaluation, Evaluator, History, RobustnessReport, RunReport, RunResult, StopPolicy,
};
pub use problem::{
    evaluate_worst_case, from_unit, robust_clip_bounds, to_unit, AnalysisSpec, SizingProblem,
    SpecResult, FAILURE_PENALTY,
};
pub use random::RandomSearch;
pub use sa::SimulatedAnnealing;

/// A budgeted black-box optimizer for [`SizingProblem`]s.
///
/// Implementations must be deterministic given `seed` and must never exceed
/// `budget` calls to [`SizingProblem::evaluate`].
pub trait Optimizer {
    /// Short display name used in tables and figures.
    fn name(&self) -> &'static str;

    /// Runs the optimizer.
    fn run(
        &self,
        problem: &dyn SizingProblem,
        fom: &Fom,
        budget: usize,
        stop: StopPolicy,
        seed: u64,
    ) -> RunResult;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_problems::Sphere;

    /// All optimizers obey the budget and the Optimizer contract.
    #[test]
    fn optimizer_contract_budget() {
        let p = Sphere { d: 3 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let opts: Vec<Box<dyn Optimizer>> = vec![
            Box::new(DifferentialEvolution::default()),
            Box::new(SimulatedAnnealing::default()),
            Box::new(RandomSearch),
            Box::new(BoWei {
                acq_pop: 8,
                acq_gens: 4,
                ..Default::default()
            }),
            Box::new(Gaspad::default()),
        ];
        for o in &opts {
            let run = o.run(&p, &fom, 60, StopPolicy::Exhaust, 0);
            assert_eq!(run.history.len(), 60, "{} overshot budget", o.name());
            assert!(!o.name().is_empty());
        }
    }

    /// Determinism across the whole suite.
    #[test]
    fn optimizer_contract_determinism() {
        let p = Sphere { d: 2 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let opts: Vec<Box<dyn Optimizer>> = vec![
            Box::new(DifferentialEvolution::default()),
            Box::new(SimulatedAnnealing::default()),
            Box::new(RandomSearch),
            Box::new(Gaspad::default()),
        ];
        for o in &opts {
            let a = o.run(&p, &fom, 40, StopPolicy::Exhaust, 17);
            let b = o.run(&p, &fom, 40, StopPolicy::Exhaust, 17);
            assert_eq!(
                a.history.best_trace(),
                b.history.best_trace(),
                "{}",
                o.name()
            );
        }
    }
}
