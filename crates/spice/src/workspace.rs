//! Reusable solver state for the Newton-Raphson engines.
//!
//! The DC and transient engines linearize and solve the same-sized MNA
//! system every Newton iteration, every gmin/source-stepping retry, and
//! every transient timestep. A [`NewtonWorkspace`] owns all of that state —
//! the [`RealStamper`], the dense LU factors, the sparse solver state, and
//! the solution scratch vector — so the hot loop performs **zero heap
//! allocations** per iteration.
//!
//! # Sparse pipeline
//!
//! MNA matrices are mostly structural zeros, and their sparsity *pattern*
//! is fixed by the circuit topology: it is identical across Newton
//! iterations, gmin/source-stepping retries, sweep points, transient
//! timesteps, and even across candidates of the same sizing testbench. The
//! workspace exploits this by keeping, per assembly kind (DC-resistive /
//! transient), a cached [`SparsePlan`]:
//!
//! 1. one *recorded* assembly pass learns the stamp-write sequence;
//! 2. the sequence becomes a CSC pattern plus a stamp→slot map
//!    ([`linalg::CscMatrix::from_coordinates`]), so later assemblies write
//!    straight into the CSC value array;
//! 3. [`linalg::SparseLu`] runs one pivoting factorization per Newton
//!    solve (first iteration) and a scan-free
//!    [`linalg::SparseLu::refactor_into`] on every subsequent iteration.
//!
//! Whether a circuit uses the sparse or the dense kernel is decided
//! automatically from its size and assembled density, with the dense
//! kernel kept as the universal fallback. The plan cache is keyed by
//! [`Circuit::topology_id`], so a pooled workspace handed a *different*
//! same-sized topology rebuilds its plans instead of corrupting results.
//!
//! # Workspace pool
//!
//! For sizing loops, [`lease_workspace`] checks a workspace out of a
//! process-wide pool keyed by topology fingerprint, so the recorded
//! patterns and factor storage are reused across candidate evaluations —
//! including across the worker threads of `opt`'s parallel population
//! evaluation, where each worker leases its own workspace (bit-identical
//! results are preserved: the pivot sequence is re-derived from each
//! candidate's own first Newton iteration, never inherited from whichever
//! candidate used the workspace before).

use std::sync::Mutex;

use linalg::{
    ComplexLu, ComplexLuWorkspace, CscComplexMatrix, CscMatrix, LuWorkspace, SparseComplexLu,
    SparseLu, SupernodalMode, C64,
};

use crate::netlist::Circuit;
use crate::stamp::{
    Assemble, AssembleComplex, ComplexRecordStamper, ComplexSlotStamper, ComplexStamper,
    RealStamper, RecordStamper, SlotStamper,
};

/// Systems smaller than this always use the dense kernel (the sparse
/// machinery's per-column bookkeeping only pays off once the O(n³) dense
/// elimination dominates). Measured against the supernodal engine on
/// banded dominant systems (`probe_dense_sparse_crossover` in the bench
/// crate): below n ≈ 16–24 the two kernels are within noise of each
/// other at MNA-like densities, so the simpler dense path keeps the
/// small-circuit hot loop.
const SPARSE_MIN_UNKNOWNS: usize = 24;

/// Assembled densities above this fraction keep the dense kernel. The
/// measured refactor-vs-`factor_into` crossover sits at ≈0.45 density
/// for n = 16–64 (dense wins 1.1–3× above it, sparse wins up to 3.7×
/// below it with the supernodal blocked replay on Auto dispatch); 0.45
/// takes the sparse side of the band.
const SPARSE_MAX_DENSITY: f64 = 0.45;

/// Upper bound on pooled workspaces kept alive for reuse.
const POOL_CAP: usize = 64;

/// Which assembly closure a Newton solve runs. The transient system stamps
/// capacitor companion models on top of the resistive stamps, so the two
/// kinds have different write sequences and carry separate sparse plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StampKind {
    /// Resistive (DC operating point / DC sweep) assembly.
    Dc = 0,
    /// Transient assembly (resistive + capacitor companions).
    Tran = 1,
}

/// Which solver kernel a Newton solve should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SolveMode {
    /// Dense `LuWorkspace` path.
    Dense,
    /// Sparse slot-map assembly + `SparseLu` path.
    Sparse,
}

/// Outcome of one sparse assemble+factor step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SparseStep {
    /// Factors are ready; solve with [`NewtonWorkspace::sparse_solve`].
    Factored,
    /// The system is numerically singular even after re-pivoting (the
    /// caller falls back to the dense kernel, whose different elimination
    /// order may still survive).
    Singular,
    /// The plan was invalidated (write-sequence drift); the caller should
    /// fall back to the dense kernel for the rest of this solve.
    Fallback,
}

/// Which solver kernel factored the current AC/noise frequency point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcKernel {
    /// Sparse complex slot-map assembly + `SparseComplexLu`.
    Sparse,
    /// Dense `ComplexStamper` + `ComplexLuWorkspace` fallback.
    Dense,
}

/// A cached decision + state for one `(topology, kind)` pair.
#[derive(Debug, Clone)]
struct SparsePlan {
    /// Topology fingerprint the plan was recorded for.
    topo: u64,
    /// Unknown count the plan was recorded for.
    n: usize,
    /// Sparse state, or `None` when the dense kernel was selected.
    sparse: Option<SparseState>,
}

/// Recorded stamp→slot map plus the sparse factorization state.
#[derive(Debug, Clone)]
struct SparseState {
    /// Per-write CSC value index of the x-*varying* assembly segment, in
    /// stamp order — the full write sequence when the assembly has no
    /// constant/varying split.
    var_slots: Vec<u32>,
    /// Constant-segment preload (split assemblies only): the x-independent
    /// writes are assembled once per Newton solve and copied in before
    /// each iteration's varying replay.
    preload: Option<PreloadState>,
    /// The MNA system in CSC form (pattern fixed, values per assembly).
    csc: CscMatrix,
    /// Symbolic + numeric LU state.
    lu: SparseLu,
    /// Solve session of the last *pivoting* factorization. A new session
    /// (new candidate/analysis handed to this workspace) forces one fresh
    /// pivot selection so results never depend on which candidate used the
    /// workspace before; within a session — across Newton iterations, gmin
    /// and source-stepping retries, and transient timesteps — the pivot
    /// sequence is reused by the scan-free refactorization.
    pivot_session: u64,
}

/// The constant (x-independent) half of a split assembly: slot map,
/// pre-assembled CSC values and right-hand side. Refreshed once per Newton
/// solve — every transient timestep re-stamps its sources and capacitor
/// companions here exactly once, and the per-iteration replay touches only
/// the MOS slots on top of a copy of these buffers.
#[derive(Debug, Clone)]
struct PreloadState {
    /// Per-write CSC value index of the constant segment, in stamp order.
    const_slots: Vec<u32>,
    /// CSC value array holding only the constant contributions.
    values: Vec<f64>,
    /// Right-hand side of the constant contributions.
    z: Vec<f64>,
    /// [`NewtonWorkspace::solve_id`] the buffers were assembled for.
    solve_id: u64,
}

/// A cached complex sparse plan for the AC/noise small-signal pattern.
/// AC and noise assemble the *same* matrix (source `ac_mag` values only
/// touch the right-hand side), so one plan serves both analyses.
#[derive(Debug, Clone)]
struct AcPlan {
    /// Topology fingerprint the plan was recorded for.
    topo: u64,
    /// Unknown count the plan was recorded for.
    n: usize,
    /// Sparse state, or `None` when the dense kernel was selected.
    sparse: Option<AcSparseState>,
}

/// Recorded complex stamp→slot map plus the sparse factorization state.
#[derive(Debug, Clone)]
struct AcSparseState {
    /// Per-write CSC value index, in stamp order.
    slots: Vec<u32>,
    /// The small-signal system `G + jωC` in CSC form (pattern fixed,
    /// values re-assembled per frequency point).
    csc: CscComplexMatrix,
    /// Symbolic + numeric complex LU state.
    lu: SparseComplexLu,
    /// Solve session of the last *pivoting* factorization — the same
    /// determinism boundary as [`SparseState::pivot_session`]: each AC
    /// sweep / noise analysis re-derives the pivot sequence from its own
    /// first frequency point, never inheriting it from whichever sweep
    /// used the pooled workspace before.
    pivot_session: u64,
}

/// Preallocated state for the frequency-domain analyses (AC sweeps and the
/// noise adjoint solver) on one circuit topology. Lives inside
/// [`NewtonWorkspace`] (created on first AC/noise use), so the process-wide
/// topology-keyed pool shares it across candidate evaluations exactly like
/// the real-valued Newton state.
///
/// Per sweep the rhythm is: one recorded assembly pass learns the complex
/// write sequence (cache hit for a pooled topology), the first frequency
/// point runs a pivoting [`SparseComplexLu::factor`], and every subsequent
/// point pays only slot-map assembly plus the scan-free
/// [`SparseComplexLu::refactor_into`] — the pattern of `G + jωC` is fixed
/// per topology, only the values change with ω. The dense
/// [`ComplexLuWorkspace`] path remains the universal fallback (small or
/// dense systems, write-sequence drift, sparse-singular points).
#[derive(Debug, Clone)]
pub(crate) struct AcWorkspace {
    /// Dense fallback state, created on the first frequency point that
    /// actually runs the dense kernel — sparse-selected topologies never
    /// allocate the two O(n²) complex buffers.
    dense: Option<Box<DenseAcState>>,
    /// Right-hand side of the sparse slot-map assembly.
    z: Vec<C64>,
    /// Unknown count the buffers are sized for.
    n: usize,
    /// Cached sparse plan for the AC/noise pattern.
    plan: Option<AcPlan>,
}

/// The dense fallback kernel's buffers: the system under assembly and the
/// complex LU factor storage (no per-point matrix clone).
#[derive(Debug, Clone)]
struct DenseAcState {
    st: ComplexStamper,
    clu: ComplexLuWorkspace,
}

impl AcWorkspace {
    /// Creates an AC workspace sized for `circuit`.
    fn new(circuit: &Circuit) -> Self {
        let n = circuit.num_unknowns();
        AcWorkspace {
            dense: None,
            z: vec![C64::ZERO; n],
            n,
            plan: None,
        }
    }

    /// Assembles the small-signal system for one frequency point (via
    /// `assemble`) and factors it, picking the sparse kernel when the
    /// cached plan selected it and falling back to the dense kernel
    /// otherwise. The first point of a solve `session` runs a full
    /// pivoting factorization; later points replay the recorded pivots
    /// with [`SparseComplexLu::refactor_into`].
    ///
    /// On a plan miss (new topology for this workspace) one extra
    /// *recorded* assembly pass learns the write sequence and builds the
    /// CSC pattern + slot map; sparse vs dense is selected by size and
    /// assembled density exactly like the Newton engine.
    ///
    /// Returns the kernel that factored the point, or `Err(())` when the
    /// system is singular under both eliminations.
    pub(crate) fn factor_point<A: AssembleComplex>(
        &mut self,
        circuit: &Circuit,
        session: u64,
        assemble: &mut A,
    ) -> Result<AcKernel, ()> {
        let topo = circuit.topology_id();
        let n = circuit.num_unknowns();
        let plan_stale = self
            .plan
            .as_ref()
            .is_none_or(|p| p.topo != topo || p.n != n);
        if plan_stale {
            let sparse = if n < SPARSE_MIN_UNKNOWNS {
                None
            } else {
                let mut rec = ComplexRecordStamper::new(circuit);
                assemble.assemble(&mut rec);
                let (csc, slots) = CscComplexMatrix::from_coordinates(n, &rec.writes);
                let density = csc.nnz() as f64 / (n * n) as f64;
                if density > SPARSE_MAX_DENSITY {
                    None
                } else {
                    // `DNNOPT_SUPERNODAL` pins the numeric replay path
                    // (CI determinism suites, experiments); default Auto.
                    let mut lu = SparseComplexLu::new();
                    lu.set_supernodal_mode(SupernodalMode::from_env());
                    Some(AcSparseState {
                        slots,
                        csc,
                        lu,
                        pivot_session: 0,
                    })
                }
            };
            self.plan = Some(AcPlan { topo, n, sparse });
        }
        let plan = self.plan.as_mut().expect("plan ensured above");
        if let Some(state) = plan.sparse.as_mut() {
            let complete = {
                let mut st = ComplexSlotStamper::new(
                    circuit.num_nodes(),
                    &state.slots,
                    state.csc.values_mut(),
                    &mut self.z,
                );
                assemble.assemble(&mut st);
                st.complete()
            };
            if !complete {
                // Write-sequence drift (should not happen for a
                // fingerprint-matched topology): demote the plan to the
                // dense kernel — the topology/n key stays cached, so later
                // points and sweeps go straight to the dense path instead
                // of re-recording every call.
                plan.sparse = None;
            } else {
                let fresh = state.pivot_session != session || !state.lu.is_factored();
                telemetry::record(
                    if fresh {
                        telemetry::Metric::SparseFactors
                    } else {
                        telemetry::Metric::SparseRefactors
                    },
                    1,
                );
                let factored = if fresh {
                    let _f = telemetry::span(telemetry::SpanId::Factor);
                    state.lu.factor(&state.csc).is_ok()
                } else {
                    let _f = telemetry::span(telemetry::SpanId::Refactor);
                    state.lu.refactor_into(&state.csc).is_ok()
                        || state.lu.factor(&state.csc).is_ok()
                };
                if factored {
                    state.pivot_session = session;
                    return Ok(AcKernel::Sparse);
                }
                // Numerically singular under the sparse elimination order;
                // the dense elimination below may still survive.
            }
        }
        let dense = self.dense.get_or_insert_with(|| {
            Box::new(DenseAcState {
                st: ComplexStamper::new(circuit),
                clu: ComplexLuWorkspace::new(n),
            })
        });
        dense.st.clear();
        assemble.assemble(&mut dense.st);
        ComplexLu::factor_into(&dense.st.a, &mut dense.clu).map_err(|_| ())?;
        Ok(AcKernel::Dense)
    }

    /// Solves the factored point's system `A·x = z` (right-hand side from
    /// the same assembly pass) into `x`.
    pub(crate) fn solve(&mut self, kernel: AcKernel, x: &mut Vec<C64>) -> bool {
        match kernel {
            AcKernel::Sparse => {
                let Some(state) = self.plan.as_mut().and_then(|p| p.sparse.as_mut()) else {
                    return false;
                };
                state.lu.solve_into(&self.z, x).is_ok()
            }
            AcKernel::Dense => {
                let Some(d) = self.dense.as_mut() else {
                    return false;
                };
                d.clu.solve_into(&d.st.z, x).is_ok()
            }
        }
    }

    /// Solves the factored point's *transposed* system `Aᵀ·y = e` into `y`
    /// — the noise analysis' adjoint solve, sharing the forward
    /// factorization.
    pub(crate) fn solve_transpose(
        &mut self,
        kernel: AcKernel,
        e: &[C64],
        y: &mut Vec<C64>,
    ) -> bool {
        match kernel {
            AcKernel::Sparse => {
                let Some(state) = self.plan.as_mut().and_then(|p| p.sparse.as_mut()) else {
                    return false;
                };
                state.lu.solve_transpose_into(e, y).is_ok()
            }
            AcKernel::Dense => {
                let Some(d) = self.dense.as_mut() else {
                    return false;
                };
                d.clu.solve_transpose_into(e, y).is_ok()
            }
        }
    }

    /// True if the cached plan for `topo` selected the sparse kernel
    /// (diagnostics/tests).
    fn uses_sparse(&self, topo: u64) -> bool {
        self.plan
            .as_ref()
            .is_some_and(|p| p.topo == topo && p.sparse.is_some())
    }
}

/// Preallocated state for repeated Newton solves on one circuit topology.
///
/// # Example
///
/// ```
/// use spice::{Circuit, NewtonWorkspace, SimOptions, Waveform, GND};
///
/// let mut c = Circuit::new();
/// let a = c.node("a");
/// c.add_vsource("V1", a, GND, Waveform::Dc(2.0)).unwrap();
/// c.add_resistor("R1", a, GND, 1e3).unwrap();
/// let mut ws = NewtonWorkspace::new(&c);
/// // Repeated solves reuse the same buffers.
/// for _ in 0..3 {
///     let op = spice::op_with_workspace(&c, &SimOptions::default(), None, &mut ws).unwrap();
///     assert!((op.voltage(a) - 2.0).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct NewtonWorkspace {
    /// The MNA system under assembly.
    pub(crate) st: RealStamper,
    /// Dense LU factors of the linearized system.
    pub(crate) lu: LuWorkspace,
    /// Newton-step solution buffer.
    pub(crate) x_new: Vec<f64>,
    /// Unknown count the buffers are sized for.
    n: usize,
    /// Topology fingerprint of the circuit last ensured.
    topo: u64,
    /// Monotonic solve-session id (see [`SparseState::pivot_session`]).
    session: u64,
    /// Monotonic Newton-solve id: bumped once per `newton_loop` call (each
    /// DC attempt, each gmin/source-stepping rung, each transient
    /// timestep). The refresh boundary of [`PreloadState`] — the constant
    /// assembly segment is valid for exactly one solve.
    solve_id: u64,
    /// Cached sparse plans, indexed by [`StampKind`].
    plans: [Option<SparsePlan>; 2],
    /// Frequency-domain (AC/noise) state, created on first use so
    /// DC/transient-only circuits never pay for the complex buffers.
    ac: Option<Box<AcWorkspace>>,
}

impl NewtonWorkspace {
    /// Creates a workspace sized for `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.num_unknowns();
        NewtonWorkspace {
            st: RealStamper::new(circuit),
            lu: LuWorkspace::new(n),
            x_new: vec![0.0; n],
            n,
            topo: circuit.topology_id(),
            session: 1,
            solve_id: 1,
            plans: [None, None],
            ac: None,
        }
    }

    /// Number of unknowns the workspace is currently sized for.
    pub fn num_unknowns(&self) -> usize {
        self.n
    }

    /// Topology fingerprint of the circuit this workspace last targeted
    /// (see [`Circuit::topology_id`]).
    pub fn topology_id(&self) -> u64 {
        self.topo
    }

    /// Re-targets the workspace at `circuit`, rebuilding buffers only when
    /// the unknown count changed. Sparse plans are keyed by topology and
    /// revalidated lazily, so they survive this when the topology matches.
    pub(crate) fn ensure(&mut self, circuit: &Circuit) {
        let n = circuit.num_unknowns();
        if n != self.n || self.st.num_nodes() != circuit.num_nodes() {
            let plans = std::mem::take(&mut self.plans);
            let session = self.session;
            let solve_id = self.solve_id;
            *self = NewtonWorkspace::new(circuit);
            // Keep the recorded plans: they are fingerprint-keyed, so a
            // later solve on the old topology can still reuse them. The
            // session and solve counters survive so stale pivot sequences
            // and constant preloads stay stale.
            self.plans = plans;
            self.session = session;
            self.solve_id = solve_id;
        }
        self.topo = circuit.topology_id();
    }

    /// Starts a new solve session: the next sparse factorization of each
    /// pattern re-derives its pivot sequence from the incoming values.
    /// Called by every public solve entry point (`op_with_workspace`,
    /// `transient_with_workspace`, `ac_with_workspace`,
    /// `noise_with_workspace`), i.e. whenever the workspace may have been
    /// handed a different candidate's circuit — the determinism boundary
    /// for workspace pooling.
    pub(crate) fn begin_session(&mut self) {
        self.session = self.session.wrapping_add(1);
    }

    /// Current solve-session id (the pivot-reuse boundary).
    pub(crate) fn session(&self) -> u64 {
        self.session
    }

    /// Starts a new Newton solve: the next [`NewtonWorkspace::sparse_step`]
    /// of a split plan re-assembles the constant segment before replaying
    /// the varying slots. Called once per `newton_loop` invocation — the
    /// constant part (sources at this solve's time/scale, capacitor
    /// companions at this timestep's state) is fixed across the solve's
    /// iterations but not beyond it.
    pub(crate) fn begin_solve(&mut self) {
        self.solve_id = self.solve_id.wrapping_add(1);
    }

    /// The frequency-domain workspace, created (or re-sized) for `circuit`
    /// on demand.
    pub(crate) fn ac_mut(&mut self, circuit: &Circuit) -> &mut AcWorkspace {
        let n = circuit.num_unknowns();
        if self.ac.as_ref().is_none_or(|ac| ac.n != n) {
            self.ac = Some(Box::new(AcWorkspace::new(circuit)));
        }
        self.ac.as_mut().expect("ac workspace ensured above")
    }

    /// True if the cached AC/noise plan for the current topology selected
    /// the sparse complex kernel (diagnostics/tests).
    pub fn uses_sparse_ac(&self) -> bool {
        self.ac.as_ref().is_some_and(|ac| ac.uses_sparse(self.topo))
    }

    /// Decides (and caches) the solver kernel for `(circuit, kind)`. On a
    /// cache miss this runs one *recorded* assembly pass (via `assemble` at
    /// `x0`) to learn the write sequence, builds the CSC pattern and slot
    /// map, and selects sparse vs dense by size and density.
    pub(crate) fn prepare<A: Assemble>(
        &mut self,
        circuit: &Circuit,
        kind: StampKind,
        assemble: &mut A,
        x0: &[f64],
    ) -> SolveMode {
        let topo = circuit.topology_id();
        let n = circuit.num_unknowns();
        if let Some(plan) = &self.plans[kind as usize] {
            if plan.topo == topo && plan.n == n {
                return if plan.sparse.is_some() {
                    SolveMode::Sparse
                } else {
                    SolveMode::Dense
                };
            }
        }
        let sparse = if n < SPARSE_MIN_UNKNOWNS {
            None
        } else {
            // Record the write sequence. Split-capable assemblies record
            // the constant segment first, then the varying one, so the
            // concatenated coordinates build one CSC pattern whose slot
            // map splits cleanly at the segment boundary.
            let mut rec = RecordStamper::new(circuit);
            let const_writes = if assemble.supports_split() {
                assemble.assemble_constant(&mut rec);
                let cl = rec.writes.len();
                assemble.assemble_varying(x0, &mut rec);
                Some(cl)
            } else {
                assemble.assemble(x0, &mut rec);
                None
            };
            let (csc, slots) = CscMatrix::from_coordinates(n, &rec.writes);
            let density = csc.nnz() as f64 / (n * n) as f64;
            if density > SPARSE_MAX_DENSITY {
                None
            } else {
                let (preload, var_slots) = match const_writes {
                    Some(cl) => (
                        Some(PreloadState {
                            const_slots: slots[..cl].to_vec(),
                            values: vec![0.0; csc.nnz()],
                            z: vec![0.0; n],
                            solve_id: 0,
                        }),
                        slots[cl..].to_vec(),
                    ),
                    None => (None, slots),
                };
                // `DNNOPT_SUPERNODAL` pins the numeric replay path (CI
                // determinism suites, experiments); default Auto.
                let mut lu = SparseLu::new();
                lu.set_supernodal_mode(SupernodalMode::from_env());
                Some(SparseState {
                    var_slots,
                    preload,
                    csc,
                    lu,
                    pivot_session: 0,
                })
            }
        };
        let mode = if sparse.is_some() {
            SolveMode::Sparse
        } else {
            SolveMode::Dense
        };
        self.plans[kind as usize] = Some(SparsePlan { topo, n, sparse });
        mode
    }

    /// One sparse Newton step: slot-map assembly at `x`, then numeric
    /// factorization. The first factorization of a solve session is a full
    /// pivoting one, so the pivot sequence depends only on the candidate
    /// being solved (bit-identical results whether or not the workspace was
    /// reused); every later iteration, retry, and timestep of the session
    /// runs the scan-free refactorization, falling back to a pivoting
    /// factor if a recorded pivot collapses numerically.
    ///
    /// Split plans assemble only the x-*varying* (MOS) slots here: the
    /// constant segment is assembled once per Newton solve (the first
    /// iteration after [`NewtonWorkspace::begin_solve`]) and copied in
    /// before each varying replay.
    pub(crate) fn sparse_step<A: Assemble>(
        &mut self,
        kind: StampKind,
        x: &[f64],
        assemble: &mut A,
    ) -> SparseStep {
        let Some(plan) = self.plans[kind as usize].as_mut() else {
            return SparseStep::Fallback;
        };
        let Some(state) = plan.sparse.as_mut() else {
            return SparseStep::Fallback;
        };
        let complete = if let Some(pre) = state.preload.as_mut() {
            if pre.solve_id != self.solve_id {
                // New Newton solve (new timestep / gmin rung / source
                // scale): re-stamp the constant segment once.
                let ok = {
                    let mut st = SlotStamper::new(
                        self.st.num_nodes(),
                        &pre.const_slots,
                        &mut pre.values,
                        &mut pre.z,
                    );
                    assemble.assemble_constant(&mut st);
                    st.complete()
                };
                if !ok {
                    self.plans[kind as usize] = None;
                    return SparseStep::Fallback;
                }
                pre.solve_id = self.solve_id;
            }
            // Preload the constant part, then replay only the MOS slots.
            state.csc.values_mut().copy_from_slice(&pre.values);
            self.st.z.copy_from_slice(&pre.z);
            let mut st = SlotStamper::resume(
                self.st.num_nodes(),
                &state.var_slots,
                state.csc.values_mut(),
                &mut self.st.z,
            );
            assemble.assemble_varying(x, &mut st);
            st.complete()
        } else {
            let mut st = SlotStamper::new(
                self.st.num_nodes(),
                &state.var_slots,
                state.csc.values_mut(),
                &mut self.st.z,
            );
            assemble.assemble(x, &mut st);
            st.complete()
        };
        if !complete {
            // The write sequence drifted from the recording (should not
            // happen for a fingerprint-matched topology); drop the plan and
            // let the caller run the dense kernel.
            self.plans[kind as usize] = None;
            return SparseStep::Fallback;
        }
        let fresh = state.pivot_session != self.session || !state.lu.is_factored();
        telemetry::record(
            if fresh {
                telemetry::Metric::SparseFactors
            } else {
                telemetry::Metric::SparseRefactors
            },
            1,
        );
        let factored = if fresh {
            let _f = telemetry::span(telemetry::SpanId::Factor);
            state.lu.factor(&state.csc).is_ok()
        } else {
            let _f = telemetry::span(telemetry::SpanId::Refactor);
            state.lu.refactor_into(&state.csc).is_ok() || state.lu.factor(&state.csc).is_ok()
        };
        if factored {
            state.pivot_session = self.session;
            SparseStep::Factored
        } else {
            SparseStep::Singular
        }
    }

    /// Solves the sparse-assembled system into the step buffer. Returns
    /// `false` if no sparse factorization is available.
    pub(crate) fn sparse_solve(&mut self, kind: StampKind) -> bool {
        let Some(state) = self.plans[kind as usize]
            .as_mut()
            .and_then(|p| p.sparse.as_mut())
        else {
            return false;
        };
        state.lu.solve_into(&self.st.z, &mut self.x_new).is_ok()
    }

    /// True if the `(current topology, kind)` pair resolved to the sparse
    /// kernel (diagnostics/tests).
    pub fn uses_sparse(&self, kind_is_tran: bool) -> bool {
        let idx = usize::from(kind_is_tran);
        self.plans[idx]
            .as_ref()
            .is_some_and(|p| p.topo == self.topo && p.sparse.is_some())
    }

    /// True if the `(current topology, kind)` pair's sparse kernel is
    /// running the supernodal *blocked* numeric replay — post-layout-scale
    /// systems whose recorded pattern formed dense panels under
    /// [`linalg::SupernodalMode::Auto`] dispatch (diagnostics/tests).
    pub fn uses_blocked_sparse(&self, kind_is_tran: bool) -> bool {
        let idx = usize::from(kind_is_tran);
        self.plans[idx].as_ref().is_some_and(|p| {
            p.topo == self.topo
                && p.sparse
                    .as_ref()
                    .is_some_and(|st| st.lu.supernodal_active())
        })
    }
}

/// Process-wide pool of workspaces, keyed by topology fingerprint.
static POOL: Mutex<Vec<NewtonWorkspace>> = Mutex::new(Vec::new());

/// A [`NewtonWorkspace`] checked out of the process-wide pool; returns to
/// the pool on drop. Dereferences to the workspace.
#[derive(Debug)]
pub struct PooledWorkspace {
    ws: Option<NewtonWorkspace>,
}

impl std::ops::Deref for PooledWorkspace {
    type Target = NewtonWorkspace;
    fn deref(&self) -> &NewtonWorkspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl std::ops::DerefMut for PooledWorkspace {
    fn deref_mut(&mut self) -> &mut NewtonWorkspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledWorkspace {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            let mut pool = POOL
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // FIFO eviction: returning workspaces displace the oldest
            // entries, so long-running processes that cycle through many
            // topologies keep pooling the ones currently in use instead of
            // pinning whichever came first.
            if pool.len() >= POOL_CAP {
                pool.remove(0);
            }
            pool.push(ws);
        }
    }
}

/// Checks a workspace out of the process-wide pool, preferring one whose
/// recorded solver state (stamp→slot maps, factor storage) was built for
/// the same circuit topology. Used by every analysis entry point that is
/// not handed an explicit workspace, and by the sizing testbenches so
/// population evaluation reuses simulator state across candidates — on one
/// thread or many, without changing any result (see the module docs).
pub fn lease_workspace(circuit: &Circuit) -> PooledWorkspace {
    let topo = circuit.topology_id();
    let n = circuit.num_unknowns();
    let reused = {
        let mut pool = POOL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        pool.iter()
            .position(|w| w.topo == topo && w.num_unknowns() == n)
            .map(|i| pool.swap_remove(i))
    };
    telemetry::record(
        if reused.is_some() {
            telemetry::Metric::WorkspaceHits
        } else {
            telemetry::Metric::WorkspaceMisses
        },
        1,
    );
    let mut ws = reused.unwrap_or_else(|| NewtonWorkspace::new(circuit));
    ws.ensure(circuit);
    PooledWorkspace { ws: Some(ws) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GND;
    use crate::waveform::Waveform;

    #[test]
    fn workspace_adapts_to_circuit_growth() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, GND, Waveform::Dc(1.0)).unwrap();
        c.add_resistor("R1", a, GND, 1e3).unwrap();
        let mut ws = NewtonWorkspace::new(&c);
        assert_eq!(ws.num_unknowns(), c.num_unknowns());
        let b = c.node("b");
        c.add_resistor("R2", a, b, 1e3).unwrap();
        c.add_resistor("R3", b, GND, 1e3).unwrap();
        ws.ensure(&c);
        assert_eq!(ws.num_unknowns(), c.num_unknowns());
        assert_eq!(ws.topology_id(), c.topology_id());
    }

    #[test]
    fn pool_reuses_matching_topology() {
        let mut c = Circuit::new();
        let a = c.node("pool_test_a");
        c.add_vsource("V1", a, GND, Waveform::Dc(1.0)).unwrap();
        c.add_resistor("R1", a, GND, 1e3).unwrap();
        let first_ptr;
        {
            let ws = lease_workspace(&c);
            first_ptr = &*ws as *const NewtonWorkspace as usize;
            let _ = first_ptr;
        } // returned to the pool
        {
            let ws2 = lease_workspace(&c);
            assert_eq!(ws2.topology_id(), c.topology_id());
            assert_eq!(ws2.num_unknowns(), c.num_unknowns());
        }
        // A different topology gets a correctly sized workspace too.
        let mut c2 = Circuit::new();
        let b = c2.node("pool_test_b");
        c2.add_vsource("V1", b, GND, Waveform::Dc(1.0)).unwrap();
        c2.add_resistor("R1", b, GND, 1e3).unwrap();
        c2.add_capacitor("C1", b, GND, 1e-12).unwrap();
        let ws3 = lease_workspace(&c2);
        assert_eq!(ws3.topology_id(), c2.topology_id());
    }
}
