//! Thread-count invariance: the whole stack — population fan-out over the
//! shared worker pool, the hierarchical candidate×corner×analysis grid,
//! *and* the threaded GEMM under critic/actor training — must produce
//! bit-identical results at **any** thread count, not just serial vs "8".
//!
//! `tests/parallel_determinism.rs` pins serial ≡ 8-thread for the
//! optimizer histories; this suite sweeps the awkward counts (1, 2, 7 —
//! even splits, odd splits, more workers than work) and additionally pins
//! the trained critic itself: two critics trained at different GEMM
//! thread counts must agree to the last bit on every probe prediction,
//! which can only happen if their weights are bit-identical.

use circuits::tech::CornerSet;
use circuits::FoldedCascodeOta;
use dnn_opt::{Critic, DnnOpt, DnnOptConfig};
use linalg::Matrix;
use opt::{
    parallel, DifferentialEvolution, Fom, Optimizer, RunResult, SizingProblem, SpecResult,
    StopPolicy,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use spice::{Circuit, SimOptions, Waveform, GND};

/// The `tests/parallel_determinism.rs` sparse-ladder fixture: a 30-stage
/// diode-connected-NMOS ladder whose DC + AC + noise suite runs the real
/// sparse solver pipeline through pool-leased workspaces.
struct SparseLadder;

impl SparseLadder {
    fn evaluate_at(x: &[f64], vdd: f64) -> SpecResult {
        let nmos = spice::MosModel {
            polarity: spice::MosPolarity::Nmos,
            vth0: 0.45,
            kp: 300e-6,
            clm: 0.02e-6,
            gamma: 0.4,
            phi: 0.8,
            nsub: 1.4,
            cox: 8.5e-3,
            cov: 3e-10,
            cj: 1e-3,
            ldiff: 0.4e-6,
            kf: 1e-26,
            af: 1.0,
            noise_gamma: 2.0 / 3.0,
        };
        let mut ckt = Circuit::new();
        let vdd_node = ckt.node("vdd");
        ckt.add_vsource_ac("VDD", vdd_node, GND, Waveform::Dc(vdd), 1.0)
            .unwrap();
        let mut prev = vdd_node;
        for i in 0..30 {
            let d = ckt.node(&format!("d{i}"));
            ckt.add_resistor(&format!("R{i}"), prev, d, 2e3 + 6e3 * x[1])
                .unwrap();
            ckt.add_mosfet(
                &format!("M{i}"),
                d,
                d,
                GND,
                GND,
                &nmos,
                (1.0 + 9.0 * x[0]) * 1e-6,
                0.5e-6,
                1.0,
            )
            .unwrap();
            prev = d;
        }
        let mut ws = spice::lease_workspace(&ckt);
        let Ok(op) = spice::op_with_workspace(&ckt, &SimOptions::default(), None, &mut ws) else {
            return SpecResult::failed(1);
        };
        let mid = ckt.find_node("d14").unwrap();
        let end = ckt.find_node("d29").unwrap();
        let freqs = [1e3, 1e6, 1e9];
        let Ok(sweep) =
            spice::ac_with_workspace(&ckt, &SimOptions::default(), &op, &freqs, &mut ws)
        else {
            return SpecResult::failed(1);
        };
        let ripple = sweep.voltage(2, end).abs();
        let Ok(nres) = spice::noise_with_workspace(
            &ckt,
            &SimOptions::default(),
            &op,
            end,
            GND,
            &freqs,
            &mut ws,
        ) else {
            return SpecResult::failed(1);
        };
        SpecResult {
            failure: None,
            objective: op.voltage(end) + ripple + 1e3 * nres.total_rms(),
            constraints: vec![0.9 - op.voltage(mid)],
        }
    }
}

impl SizingProblem for SparseLadder {
    fn dim(&self) -> usize {
        2
    }
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; 2], vec![1.0; 2])
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn evaluate(&self, x: &[f64]) -> SpecResult {
        Self::evaluate_at(x, 1.8)
    }
    fn name(&self) -> &str {
        "sparse-ladder"
    }
}

/// The ladder with a three-corner supply plane: candidates expand into the
/// candidate×corner grid, whose round-robin worker assignment varies with
/// thread count while the recorded histories must not.
struct CorneredLadder;

const LADDER_SUPPLIES: [f64; 3] = [1.62, 1.8, 1.98];

impl SizingProblem for CorneredLadder {
    fn dim(&self) -> usize {
        2
    }
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; 2], vec![1.0; 2])
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn num_corners(&self) -> usize {
        LADDER_SUPPLIES.len()
    }
    fn corner_name(&self, k: usize) -> String {
        format!("vdd{:.2}", LADDER_SUPPLIES[k])
    }
    fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
        SparseLadder::evaluate_at(x, LADDER_SUPPLIES[k])
    }
    fn evaluate(&self, x: &[f64]) -> SpecResult {
        opt::evaluate_worst_case(self, x)
    }
    fn name(&self) -> &str {
        "cornered-ladder"
    }
}

/// Exact (bitwise) history comparison, including per-corner records and
/// failure diagnoses (`SpecResult`'s `PartialEq` covers the diagnosis).
fn assert_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.history.len(), b.history.len(), "{label}: history length");
    for (i, (ea, eb)) in a
        .history
        .entries()
        .iter()
        .zip(b.history.entries())
        .enumerate()
    {
        assert_eq!(ea.x, eb.x, "{label}: design #{i}");
        assert_eq!(ea.fom.to_bits(), eb.fom.to_bits(), "{label}: fom #{i}");
        assert_eq!(ea.spec, eb.spec, "{label}: spec (incl. diagnosis) #{i}");
        assert_eq!(ea.corner_specs, eb.corner_specs, "{label}: corners #{i}");
    }
    assert_eq!(
        a.history.best_trace(),
        b.history.best_trace(),
        "{label}: best trace"
    );
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

fn quick_cfg() -> DnnOptConfig {
    DnnOptConfig {
        critic_epochs: 60,
        actor_epochs: 20,
        critic_batch: 64,
        hidden: 16,
        ..Default::default()
    }
}

/// One test covers everything so the global thread-count override is never
/// raced by a concurrently running test.
#[test]
fn runs_are_bit_identical_at_every_thread_count() {
    // --- Full optimizer runs over the real simulator stack.
    let ladder_fom = Fom::uniform(1.0, 1);
    let dnn: Box<dyn Optimizer> = Box::new(DnnOpt::new(quick_cfg()));
    let de: Box<dyn Optimizer> = Box::new(DifferentialEvolution::default());

    let runs_at = |threads: usize| -> Vec<(RunResult, &'static str)> {
        parallel::set_max_threads(threads);
        let mut runs = vec![
            (
                dnn.run(&SparseLadder, &ladder_fom, 36, StopPolicy::Exhaust, 5),
                "dnn-opt ladder",
            ),
            (
                de.run(&SparseLadder, &ladder_fom, 48, StopPolicy::Exhaust, 5),
                "de ladder",
            ),
            (
                dnn.run(&CorneredLadder, &ladder_fom, 24, StopPolicy::Exhaust, 7),
                "dnn-opt cornered ladder",
            ),
            (
                de.run(&CorneredLadder, &ladder_fom, 36, StopPolicy::Exhaust, 7),
                "de cornered ladder",
            ),
        ];
        // The OTA runs the two-analysis unit grid (candidate × corner ×
        // analysis) — the deepest level of the hierarchical scheduler.
        let ota = FoldedCascodeOta::with_corners(CornerSet::pvt5());
        let ota_fom = Fom::new(100.0, vec![0.25; SizingProblem::num_constraints(&ota)]);
        runs.push((
            de.run(&ota, &ota_fom, 12, StopPolicy::Exhaust, 3),
            "de ota unit grid",
        ));
        parallel::set_max_threads(0);
        runs
    };

    let reference = runs_at(THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        let candidate = runs_at(threads);
        for ((a, label), (b, _)) in reference.iter().zip(&candidate) {
            assert_identical(a, b, &format!("{label} @ {threads} threads"));
        }
    }

    // --- The trained critic itself. Training shapes are chosen to clear
    // the threaded-GEMM work cutoff (256×64 batches over a width-40
    // input), so the forward/backward GEMMs really run split across the
    // pool at threads > 1. Bit-identical probe predictions at every
    // thread count ⇒ bit-identical weights.
    let dim = 20;
    let n = 40;
    let mut rng = StdRng::seed_from_u64(13);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let fs: Vec<Vec<f64>> = xs
        .iter()
        .map(|x| {
            let f0: f64 = x.iter().map(|v| (v - 0.4) * (v - 0.4)).sum();
            vec![f0, x[0] - 0.5]
        })
        .collect();
    let cfg = DnnOptConfig {
        critic_epochs: 40,
        critic_batch: 256,
        hidden: 64,
        ..Default::default()
    };
    let mut probe_rng = StdRng::seed_from_u64(99);
    let probes = Matrix::from_fn(32, 2 * dim, |_, _| probe_rng.gen::<f64>());

    let critic_bits_at = |threads: usize| -> Vec<u64> {
        parallel::set_max_threads(threads);
        let mut train_rng = StdRng::seed_from_u64(21);
        let critic = Critic::train(&cfg, &xs, &fs, &mut train_rng);
        parallel::set_max_threads(0);
        let pred = critic.predict(&probes);
        (0..pred.rows())
            .flat_map(|i| pred.row(i).iter().map(|v| v.to_bits()).collect::<Vec<_>>())
            .collect()
    };

    let reference_bits = critic_bits_at(THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        assert_eq!(
            critic_bits_at(threads),
            reference_bits,
            "critic weights must be bit-identical at {threads} threads"
        );
    }

    // --- The etree-parallel supernodal replay through the full AC + noise
    // pipeline. The post-layout RC mesh engages the blocked complex replay
    // (pinned via `DNNOPT_SUPERNODAL`, read when the pooled workspace
    // first builds its solver plan), and the replay's elimination-tree
    // task partition fans out over the shared pool at threads > 1 — the
    // solved sweep voltages and the integrated output noise must stay
    // bit-identical at 1 / 2 / 8 workers.
    std::env::set_var("DNNOPT_SUPERNODAL", "force_blocked");
    let mesh_ac_bits = |threads: usize| -> Vec<u64> {
        parallel::set_max_threads(threads);
        let ckt = circuits::mesh::build_rc_grid(500);
        let mut ws = spice::lease_workspace(&ckt);
        let op = spice::op_with_workspace(&ckt, &SimOptions::default(), None, &mut ws).unwrap();
        let freqs = [1e6, 1e8, 1e9];
        let sweep =
            spice::ac_with_workspace(&ckt, &SimOptions::default(), &op, &freqs, &mut ws).unwrap();
        assert!(
            ws.uses_sparse_ac(),
            "mesh AC must run the sparse complex kernel"
        );
        let mid = ckt.find_node("g250").unwrap();
        let out = ckt.find_node("g498").unwrap();
        let nres = spice::noise_with_workspace(
            &ckt,
            &SimOptions::default(),
            &op,
            out,
            GND,
            &freqs,
            &mut ws,
        )
        .unwrap();
        parallel::set_max_threads(0);
        let mut bits = Vec::new();
        for i in 0..freqs.len() {
            for &node in &[mid, out] {
                let v = sweep.voltage(i, node);
                bits.push(v.re.to_bits());
                bits.push(v.im.to_bits());
            }
        }
        bits.push(nres.total_rms().to_bits());
        bits
    };
    let mesh_reference = mesh_ac_bits(1);
    for threads in [2usize, 8] {
        assert_eq!(
            mesh_ac_bits(threads),
            mesh_reference,
            "mesh AC + noise must be bit-identical at {threads} threads"
        );
    }
    std::env::remove_var("DNNOPT_SUPERNODAL");
}
