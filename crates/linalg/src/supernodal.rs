//! Supernodal (blocked) numeric execution for [`SparseLu`].
//!
//! The scalar Gilbert–Peierls replay in `sparse.rs` touches one column at a
//! time through index lists — ideal for the very sparse leading region of
//! an MNA factorization, hopeless for the dense trailing blocks that
//! fill-in produces on post-layout parasitic meshes. This module detects
//! *supernodes* — runs of consecutive pivotal columns whose below-diagonal
//! structure is identical or nested — from the recorded symbolic pattern
//! and replays the numeric factorization as a **hybrid**:
//!
//! - columns in narrow supernodes (width < [`PANEL_MIN_WIDTH`]) replay with
//!   the exact scalar Gilbert–Peierls column kernel — recorded index lists,
//!   no panel overhead. On extraction-style meshes two thirds of the
//!   columns are such singletons, but they carry under 15% of the flops.
//!   When a narrow supernode feeds a later panel, its just-computed L
//!   values are mirrored into dense mini-blocks through a precomputed
//!   scatter map so the panel can batch it like any other updater;
//! - each wide supernode's columns are gathered into a dense working panel
//!   (rows = the union of the supernode's U rows, its own pivotal block,
//!   and its below-diagonal rows). *Every* earlier supernode with recorded
//!   U entries in the panel then applies as one batch, in ascending
//!   pivotal order: a unit-lower triangular solve (TRSM) against the
//!   updater's diagonal block finalizes the panel's U rows, and a product
//!   with the updater's sub-diagonal block retires the rows below — both
//!   blocked through the [`crate::gemm`] micro-kernel the training engine
//!   uses (serial inside grid workers per the two-level thread budget),
//!   with a fused multiply-scatter fallback for small batches. Precomputed
//!   per-pair row maps and reached-column lists keep the gathers direct
//!   and skip columns whose contribution is exactly zero;
//! - the panel itself is factored dense blocked right-looking
//!   ([`PANEL_NB`]-column blocks retired against the trailing columns via
//!   TRSM + one gemm product), then scattered back into the recorded
//!   `l_vals`/`u_vals`/`inv_diag` arrays through a precomputed store map,
//!   so [`SparseLu::solve_into`] and later scalar columns are unchanged.
//!
//! Supernodes may be *relaxed*: a column whose structure is nested (not
//! identical) within its neighbor joins the panel, and the union positions
//! it does not own hold exact `0.0`. Those relaxed zeros are harmless by
//! construction — every product that could write a nonzero into a position
//! outside the recorded Gilbert–Peierls pattern has at least one exactly-
//! zero operand (otherwise the position would have filled in symbolically),
//! so relaxed positions stay `0.0` bitwise and are never scattered back.
//!
//! Determinism: the plan is a pure function of the recorded pattern, the
//! panel walk is sequential, and the only parallel kernel ([`crate::gemm`])
//! is bit-identical to serial at any thread count — so the blocked replay
//! satisfies the same serial ≡ parallel contract as the scalar one. To keep
//! *fresh factor ≡ refactor* bit-identity on this path,
//! [`SparseLu::factor`] re-runs the blocked replay on the same values
//! immediately after the scalar pivoting pass pins the pattern: stored
//! factors always come from blocked arithmetic whenever the blocked plan is
//! active.

use crate::sparse::{CscMatrix, SparseLu, PIVOT_EPS};
use crate::{gemm, FactorError, GemmOp, GemmWorkspace, Matrix};

/// Which numeric path [`SparseLu`] runs after the symbolic pattern is
/// recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SupernodalMode {
    /// Dispatch by measured symbolic statistics (the flop share carried by
    /// wide-supernode columns) — the default.
    #[default]
    Auto,
    /// Always replay with scalar Gilbert–Peierls column updates.
    ForceScalar,
    /// Always build and run the blocked panel replay (benchmark/test hook;
    /// correct at any size, profitable only with real supernodes).
    ForceBlocked,
}

/// Systems below this dimension never take the blocked path under
/// [`SupernodalMode::Auto`]: panel gather/scatter overhead beats any GEMM
/// win when the whole factor fits in a few cache lines.
const SUPERNODAL_MIN_N: usize = 64;

/// Auto dispatch requires at least this fraction (×1/256) of the scalar
/// replay's flops to live in columns of wide supernodes — below it the
/// pattern has no dense trailing structure and the scalar replay wins
/// everywhere. 128/256 = 50%.
const MIN_PANEL_FLOP_FRAC_256: u64 = 128;

/// Panel width cap. Wider panels help GEMM but grow the relaxed-zero
/// overhead; with the blocked panel factor 192 lets the dense trailing
/// block of a post-layout mesh factorization form a handful of panels
/// while the active column block stays in cache.
const MAX_WIDTH: usize = 192;

/// Supernodes at least this wide get dense panels; anything narrower
/// replays with the scalar column kernel (and mirrors into dense
/// mini-blocks when a panel consumes it). Below ~6 columns a panel is all
/// gather/scatter overhead.
const PANEL_MIN_WIDTH: usize = 6;

/// Auto dispatch also requires the wide panels' dense L slots to stay
/// within this factor of the recorded L entries they hold — beyond it the
/// plan is relaxation padding, not dense structure.
const MAX_PANEL_PAD_RATIO: u64 = 2;

/// Column-block width of the dense blocked panel factorization and the
/// blocked batch TRSM: blocks this wide are factored (or solved) with
/// in-block rank-1 updates, then the rows below the block are retired via
/// one gemm product.
const PANEL_NB: usize = 32;

/// Relaxed-supernode slack: a column may join a panel whose row union
/// differs from the column's own below structure by at most this many rows
/// on either side. Grows with the width already accumulated — a wide panel
/// amortizes a few extra structural zeros over much more dense arithmetic,
/// a pair of columns cannot.
fn relax_rows(width: usize) -> usize {
    4 + width / 3
}

/// The supernodal execution plan plus all numeric scratch. Built once per
/// recorded pattern by [`Supernodal::build`]; [`Supernodal::refactor`]
/// replays new values through it.
#[derive(Debug, Clone, Default)]
pub(crate) struct Supernodal {
    /// Supernode boundaries over pivotal steps: supernode `s` covers
    /// columns `sn_ptr[s]..sn_ptr[s + 1]`.
    sn_ptr: Vec<u32>,
    /// Pivotal step → owning supernode id.
    col_sn: Vec<u32>,
    /// Below-diagonal rows per supernode (pivotal, sorted, all ≥ the
    /// supernode's end column), concatenated; offsets in `b_ptr`.
    b_ptr: Vec<u32>,
    b_rows: Vec<u32>,
    /// Target-side U rows per *panel* supernode (pivotal, sorted, all < the
    /// supernode's start column), concatenated; offsets in `u_ptr`. Narrow
    /// supernodes have empty segments.
    u_ptr: Vec<u32>,
    u_rows: Vec<u32>,
    /// Updater supernode ids per panel supernode (every width — narrow
    /// updaters batch through their dense mini-blocks), ascending,
    /// concatenated; offsets in `up_ptr`.
    up_ptr: Vec<u32>,
    up_ids: Vec<u32>,
    /// Per (panel, wide-updater) pair, parallel to `up_ids`: the panel row
    /// of each updater pivotal column (`width(us)` entries) followed by the
    /// panel row of each updater below row (`|B(us)|` entries);
    /// `u32::MAX` = outside the panel (the contribution is exactly zero).
    /// Precomputing these at build time removes two dependent indirections
    /// (`pos[p[..]]`) from every gather/scatter element of the hot batch
    /// loop. Offsets in `pair_ptr`.
    pair_ptr: Vec<u32>,
    pair_idx: Vec<u32>,
    /// Per (panel, wide-updater) pair, parallel to `up_ids`: the panel
    /// columns whose recorded U lists intersect the updater's pivotal
    /// range. Columns outside the list receive exactly-zero contributions
    /// from the updater (the position would have filled in symbolically
    /// otherwise), so the batch gathers, solves, multiplies, and scatters
    /// only these. Offsets in `pc_ptr`.
    pc_ptr: Vec<u32>,
    pc_idx: Vec<u32>,
    /// Per panel supernode: the panel row feeding every recorded
    /// `u_vals`/`l_vals` slot of its columns, in scatter order (U range
    /// then L range, column by column). Narrow supernodes have empty
    /// segments. Offsets in `store_ptr`.
    store_ptr: Vec<u32>,
    store_idx: Vec<u32>,
    /// Per *narrow* supernode that updates at least one panel: the
    /// destination of each of its recorded L slots (column-major over the
    /// supernode's columns, recorded order within a column) inside its
    /// dense blocks — `< ws²` indexes `ldiag`, else `ldiag`-offset into
    /// `lbelow`. Filled right after the scalar columns compute, so batches
    /// can consume every updater through the same dense path. Offsets in
    /// `nfill_ptr` (empty for panels and for narrow supernodes no panel
    /// reads).
    nfill_ptr: Vec<u32>,
    nfill_idx: Vec<u32>,
    /// Estimated dense-block flops per numeric replay (telemetry).
    block_flops: u64,
    /// Supernodes of width ≥ 2 (telemetry / dispatch statistics).
    pub(crate) wide_supernodes: u64,
    /// Largest panel area, for sizing the working buffer once.
    max_panel: usize,

    // ---- numeric scratch ----
    /// Dense working panel, column-major (`nr` rows per column).
    w: Vec<f64>,
    /// Original row → panel row for the supernode being processed
    /// (`u32::MAX` = absent).
    pos: Vec<u32>,
    /// Per-panel-supernode unit-lower diagonal block (w×w; diagonal 1,
    /// upper 0). Empty for narrow supernodes.
    ldiag: Vec<Matrix>,
    /// Per-panel-supernode sub-diagonal block (|B|×w), scaled multipliers.
    /// Empty for narrow supernodes.
    lbelow: Vec<Matrix>,
    /// Gathered U block of the updater being applied (w_s × w_target).
    ub: Matrix,
    /// GEMM result buffer (|B(updater)| × w_target).
    y: Matrix,
    /// One dense panel row, accumulated contiguously by the fused
    /// small-product path before the strided subtract into the panel.
    trow: Vec<f64>,
    /// Packed `L21` block of the blocked panel factor (rows below the
    /// current column block × block width).
    lpk: Matrix,
    /// Packed solved rows of the blocked batch TRSM (block width × target
    /// columns).
    bpk: Matrix,
    gws: GemmWorkspace,
}

/// Batch products at or above this flop count go through the
/// [`crate::gemm`] micro-kernel (packed, near-peak on the dense trailing
/// blocks); smaller ones run a fused multiply-scatter loop that skips
/// relaxed-zero multipliers and rows outside the panel — for the many
/// small updates of a mesh factorization the packing and the discarded
/// rows cost more than they save.
const GEMM_MIN_FLOPS: usize = 1 << 14;

impl Supernodal {
    /// Detects supernodes on the recorded pattern of `lu`, computes the
    /// dispatch statistics, and returns the blocked plan when selected
    /// (`None` = scalar replay). Records the `SparseSupernodes` and
    /// `SparseBlockedDispatch` telemetry rows either way.
    pub(crate) fn build(lu: &SparseLu, mode: SupernodalMode) -> Option<Box<Supernodal>> {
        let n = lu.n;
        let skip_detection = matches!(mode, SupernodalMode::ForceScalar)
            || (matches!(mode, SupernodalMode::Auto) && n < SUPERNODAL_MIN_N);
        if skip_detection {
            telemetry::record(telemetry::Metric::SparseBlockedDispatch, 0);
            return None;
        }
        let mut sn = Box::new(Supernodal::detect(lu));
        telemetry::record(telemetry::Metric::SparseSupernodes, sn.wide_supernodes);
        let blocked = match mode {
            SupernodalMode::ForceBlocked => true,
            SupernodalMode::ForceScalar => false,
            SupernodalMode::Auto => {
                // Measured symbolic statistic: the share of the scalar
                // replay's flops carried by wide-supernode columns — the
                // work the panels can turn into dense arithmetic.
                let (mut total, mut panel) = (0u64, 0u64);
                for j in 0..n {
                    let mut col = 0u64;
                    for t in lu.u_colptr[j]..lu.u_colptr[j + 1] {
                        let k = lu.u_rows[t];
                        col += 1 + 2 * (lu.l_colptr[k + 1] - lu.l_colptr[k]) as u64;
                    }
                    total += col;
                    if sn.width(sn.col_sn[j] as usize) >= PANEL_MIN_WIDTH {
                        panel += col;
                    }
                }
                // Relaxation-padding guard: the dense L slots the wide
                // panels would allocate vs the recorded L entries they
                // actually hold. Banded patterns chain into "wide"
                // relaxed supernodes whose panels are mostly structural
                // zeros — flop share alone would engage the blocked path
                // there and lose to padding.
                let (mut slots, mut ents) = (0u64, 0u64);
                for s in 0..sn.num_supernodes() {
                    let w = sn.width(s) as u64;
                    if (w as usize) < PANEL_MIN_WIDTH {
                        continue;
                    }
                    let blen = (sn.b_ptr[s + 1] - sn.b_ptr[s]) as u64;
                    slots += w * (w - 1) / 2 + w * blen;
                    let (s0, s1) = (sn.sn_ptr[s] as usize, sn.sn_ptr[s + 1] as usize);
                    ents += (lu.l_colptr[s1] - lu.l_colptr[s0]) as u64;
                }
                panel * 256 >= total * MIN_PANEL_FLOP_FRAC_256
                    && slots <= ents.saturating_mul(MAX_PANEL_PAD_RATIO)
            }
        };
        telemetry::record(telemetry::Metric::SparseBlockedDispatch, u64::from(blocked));
        if !blocked {
            return None;
        }
        sn.finish_structures(lu);
        Some(sn)
    }

    fn num_supernodes(&self) -> usize {
        self.sn_ptr.len().saturating_sub(1)
    }

    fn width(&self, s: usize) -> usize {
        (self.sn_ptr[s + 1] - self.sn_ptr[s]) as usize
    }

    /// Greedy left-to-right supernode partition: column `k` joins the
    /// current panel when row `k` is in the panel's below structure and the
    /// symmetric difference between the panel union and `k`'s own below
    /// rows is within [`relax_rows`] on each side.
    fn detect(lu: &SparseLu) -> Supernodal {
        let n = lu.n;
        let mut sn = Supernodal::default();
        // Per-column below rows in pivotal coordinates, segment-sorted
        // (the recorded `l_rows` are original indices in DFS order).
        let mut bl_rows: Vec<u32> = lu.l_rows.iter().map(|&r| lu.pinv[r] as u32).collect();
        for k in 0..n {
            bl_rows[lu.l_colptr[k]..lu.l_colptr[k + 1]].sort_unstable();
        }
        sn.col_sn = vec![0; n];
        sn.sn_ptr.push(0);
        sn.b_ptr.push(0);
        let mut cur: Vec<u32> = Vec::new(); // union of below rows, > last col
        let mut tmp: Vec<u32> = Vec::new();
        let mut wide = 0u64;
        let close = |sn: &mut Supernodal, cur: &mut Vec<u32>, end: usize, wide: &mut u64| {
            // Close the open supernode (columns sn_ptr.last()..end).
            let start = *sn.sn_ptr.last().unwrap() as usize;
            if end > start {
                if end - start >= 2 {
                    *wide += 1;
                }
                sn.sn_ptr.push(end as u32);
                sn.b_rows.extend_from_slice(cur);
                sn.b_ptr.push(sn.b_rows.len() as u32);
            }
        };
        for k in 0..n {
            let bk = &bl_rows[lu.l_colptr[k]..lu.l_colptr[k + 1]];
            let start = *sn.sn_ptr.last().unwrap() as usize;
            let width = k - start;
            let mut merged = false;
            if width > 0 && width < MAX_WIDTH {
                // cur \ {k} merged with bk, counting the two-sided slack.
                let k_in = cur.binary_search(&(k as u32)).is_ok();
                if k_in {
                    tmp.clear();
                    let mut extra_prev = 0usize; // rows bk adds to the panel
                    let mut extra_new = 0usize; // panel rows k doesn't own
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < cur.len() || j < bk.len() {
                        let a = if i < cur.len() { cur[i] } else { u32::MAX };
                        let b = if j < bk.len() { bk[j] } else { u32::MAX };
                        if a == k as u32 {
                            i += 1; // absorbed as the new diagonal row
                        } else if a == b {
                            tmp.push(a);
                            i += 1;
                            j += 1;
                        } else if a < b {
                            tmp.push(a);
                            extra_new += 1;
                            i += 1;
                        } else {
                            tmp.push(b);
                            extra_prev += 1;
                            j += 1;
                        }
                    }
                    if extra_prev <= relax_rows(width) && extra_new <= relax_rows(width) {
                        std::mem::swap(&mut cur, &mut tmp);
                        merged = true;
                    }
                }
            }
            if !merged && k > start {
                close(&mut sn, &mut cur, k, &mut wide);
                cur.clear();
                cur.extend_from_slice(bk);
            } else if k == start {
                cur.clear();
                cur.extend_from_slice(bk);
            }
            let id = (sn.sn_ptr.len() - 1) as u32;
            sn.col_sn[k] = id;
        }
        close(&mut sn, &mut cur, n, &mut wide);
        sn.wide_supernodes = wide;
        sn
    }

    /// Builds the target-side structures (U rows, wide-updater lists, panel
    /// storage, flop estimate) once the partition is fixed and the blocked
    /// path is selected. Narrow supernodes get empty segments — they never
    /// form panels.
    fn finish_structures(&mut self, lu: &SparseLu) {
        let nsn = self.num_supernodes();
        let n = lu.n;
        self.u_ptr.push(0);
        self.up_ptr.push(0);
        self.pair_ptr.push(0);
        self.pc_ptr.push(0);
        self.store_ptr.push(0);
        let mut mark = vec![u32::MAX; n];
        // Pivotal step → panel row for the panel under construction
        // (`u32::MAX` = not a panel row). Built and cleared per panel.
        let mut pos_step = vec![u32::MAX; n];
        let mut flops = 0u64;
        for s in 0..nsn {
            let (s0, s1) = (self.sn_ptr[s] as usize, self.sn_ptr[s + 1] as usize);
            let w = s1 - s0;
            if w < PANEL_MIN_WIDTH {
                self.u_ptr.push(self.u_rows.len() as u32);
                self.up_ptr.push(self.up_ids.len() as u32);
                self.store_ptr.push(self.store_idx.len() as u32);
                continue;
            }
            // Union of recorded U rows below s0, stamp-deduplicated.
            let before = self.u_rows.len();
            for k in s0..s1 {
                for t in lu.u_colptr[k]..lu.u_colptr[k + 1] {
                    let step = lu.u_rows[t];
                    if step < s0 && mark[step] != s as u32 {
                        mark[step] = s as u32;
                        self.u_rows.push(step as u32);
                    }
                }
            }
            self.u_rows[before..].sort_unstable();
            self.u_ptr.push(self.u_rows.len() as u32);
            // Updater supernodes owning the U rows — every width; narrow
            // ones batch through their dense mini-blocks (sorted rows give
            // non-decreasing ids; dedup adjacent).
            let mut last = u32::MAX;
            for t in before..self.u_rows.len() {
                let id = self.col_sn[self.u_rows[t] as usize];
                if id != last {
                    self.up_ids.push(id);
                    last = id;
                }
            }
            let up_before = *self.up_ptr.last().unwrap() as usize;
            self.up_ptr.push(self.up_ids.len() as u32);
            let ulen = self.u_rows.len() - before;
            let blen = (self.b_ptr[s + 1] - self.b_ptr[s]) as usize;
            let nr = ulen + w + blen;
            self.max_panel = self.max_panel.max(nr * w);
            // Panel row map in pivotal-step coordinates, used to freeze the
            // batch and scatter index maps below.
            for (i, &row) in self.u_rows[before..].iter().enumerate() {
                pos_step[row as usize] = i as u32;
            }
            for k in s0..s1 {
                pos_step[k] = (ulen + k - s0) as u32;
            }
            let (bb0, bb1) = (self.b_ptr[s] as usize, self.b_ptr[s + 1] as usize);
            for (i, &row) in self.b_rows[bb0..bb1].iter().enumerate() {
                pos_step[row as usize] = (ulen + w + i) as u32;
            }
            // Per-updater index maps + flop estimate: TRSM + GEMM per wide
            // updater, plus the dense right-looking panel factor.
            for t in up_before..self.up_ids.len() {
                let us = self.up_ids[t] as usize;
                let (t0, t1) = (self.sn_ptr[us] as usize, self.sn_ptr[us + 1] as usize);
                let ws = t1 - t0;
                for step in t0..t1 {
                    self.pair_idx.push(pos_step[step]);
                }
                for &row in &self.b_rows[self.b_ptr[us] as usize..self.b_ptr[us + 1] as usize] {
                    self.pair_idx.push(pos_step[row as usize]);
                }
                self.pair_ptr.push(self.pair_idx.len() as u32);
                // Panel columns this updater actually reaches (recorded U
                // entries are ascending per column, so one partition_point
                // suffices).
                for jj in 0..w {
                    let useg = &lu.u_rows[lu.u_colptr[s0 + jj]..lu.u_colptr[s0 + jj + 1]];
                    let at = useg.partition_point(|&step| step < t0);
                    if at < useg.len() && useg[at] < t1 {
                        self.pc_idx.push(jj as u32);
                    }
                }
                let wc = self.pc_idx.len() - *self.pc_ptr.last().unwrap() as usize;
                self.pc_ptr.push(self.pc_idx.len() as u32);
                let bs = (self.b_ptr[us + 1] - self.b_ptr[us]) as usize;
                flops += (ws * ws * wc + 2 * bs * ws * wc) as u64;
            }
            flops += (w * w * (blen + w)) as u64;
            // Scatter-order map from panel rows into the recorded factor
            // arrays.
            for k in s0..s1 {
                for t in lu.u_colptr[k]..lu.u_colptr[k + 1] {
                    self.store_idx.push(pos_step[lu.u_rows[t]]);
                }
                for t in lu.l_colptr[k]..lu.l_colptr[k + 1] {
                    self.store_idx.push(pos_step[lu.pinv[lu.l_rows[t]]]);
                }
            }
            self.store_ptr.push(self.store_idx.len() as u32);
            // Clear the step map for the next panel.
            for &row in &self.u_rows[before..] {
                pos_step[row as usize] = u32::MAX;
            }
            for k in s0..s1 {
                pos_step[k] = u32::MAX;
            }
            for &row in &self.b_rows[bb0..bb1] {
                pos_step[row as usize] = u32::MAX;
            }
        }
        self.block_flops = flops;
        // Dense value storage: every supernode some panel reads (and every
        // panel) gets a unit-lower diagonal block (diagonal and upper part
        // fixed once here) and a sub-diagonal panel.
        let mut used = vec![false; nsn];
        for &id in &self.up_ids {
            used[id as usize] = true;
        }
        self.ldiag = (0..nsn)
            .map(|s| {
                let w = self.width(s);
                if w < PANEL_MIN_WIDTH && !used[s] {
                    return Matrix::zeros(0, 0);
                }
                Matrix::from_fn(w, w, |i, j| if i == j { 1.0 } else { 0.0 })
            })
            .collect();
        self.lbelow = (0..nsn)
            .map(|s| {
                let w = self.width(s);
                if w < PANEL_MIN_WIDTH && !used[s] {
                    return Matrix::zeros(0, 0);
                }
                let blen = (self.b_ptr[s + 1] - self.b_ptr[s]) as usize;
                Matrix::zeros(blen.max(1), w)
            })
            .collect();
        // Narrow-supernode fill maps: recorded L slot → dense block slot.
        self.nfill_ptr.push(0);
        for s in 0..nsn {
            let (s0, s1) = (self.sn_ptr[s] as usize, self.sn_ptr[s + 1] as usize);
            let ws = s1 - s0;
            if ws >= PANEL_MIN_WIDTH || !used[s] {
                self.nfill_ptr.push(self.nfill_idx.len() as u32);
                continue;
            }
            let brows = &self.b_rows[self.b_ptr[s] as usize..self.b_ptr[s + 1] as usize];
            for k in s0..s1 {
                let cc = k - s0;
                for t in lu.l_colptr[k]..lu.l_colptr[k + 1] {
                    let step = lu.pinv[lu.l_rows[t]];
                    let dest = if step < s1 {
                        (step - s0) * ws + cc
                    } else {
                        let bi = brows.partition_point(|&r| (r as usize) < step);
                        debug_assert_eq!(brows[bi] as usize, step);
                        ws * ws + bi * ws + cc
                    };
                    self.nfill_idx.push(dest as u32);
                }
            }
            self.nfill_ptr.push(self.nfill_idx.len() as u32);
        }
        self.w = vec![0.0; self.max_panel];
        self.pos = vec![u32::MAX; n];
        self.trow = vec![0.0; MAX_WIDTH];
    }

    /// Hybrid numeric replay of new values through the blocked plan (see
    /// the module docs for the shape).
    ///
    /// # Errors
    ///
    /// [`FactorError::Singular`] when a recorded pivot position collapses
    /// numerically (same contract as the scalar replay).
    pub(crate) fn refactor(&mut self, lu: &mut SparseLu, a: &CscMatrix) -> Result<(), FactorError> {
        lu.factored = false;
        let nsn = self.num_supernodes();
        for s in 0..nsn {
            let (s0, s1) = (self.sn_ptr[s] as usize, self.sn_ptr[s + 1] as usize);
            if s1 - s0 < PANEL_MIN_WIDTH {
                for k in s0..s1 {
                    Self::scalar_column(lu, a, k)?;
                }
                self.fill_narrow(lu, s);
            } else {
                self.panel(lu, a, s)?;
            }
        }
        telemetry::record(telemetry::Metric::SparseBlockFlops, self.block_flops);
        lu.factored = true;
        Ok(())
    }

    /// One column of the scalar Gilbert–Peierls replay — identical
    /// arithmetic, in the identical order, to [`SparseLu::refactor_into`]'s
    /// loop body (bit-compatibility between the paths depends on it).
    #[inline]
    fn scalar_column(lu: &mut SparseLu, a: &CscMatrix, k: usize) -> Result<(), FactorError> {
        let work = &mut lu.work[..lu.n];
        let col = lu.q[k];
        for t in lu.u_colptr[k]..lu.u_colptr[k + 1] {
            work[lu.p[lu.u_rows[t]]] = 0.0;
        }
        work[lu.p[k]] = 0.0;
        for t in lu.l_colptr[k]..lu.l_colptr[k + 1] {
            work[lu.l_rows[t]] = 0.0;
        }
        for t in a.col_ptr[col]..a.col_ptr[col + 1] {
            work[a.row_idx[t]] += a.values[t];
        }
        for t in lu.u_colptr[k]..lu.u_colptr[k + 1] {
            let step = lu.u_rows[t];
            let ux = work[lu.p[step]];
            lu.u_vals[t] = ux;
            if ux != 0.0 {
                for s in lu.l_colptr[step]..lu.l_colptr[step + 1] {
                    work[lu.l_rows[s]] -= ux * lu.l_vals[s];
                }
            }
        }
        let diag = work[lu.p[k]];
        if !(diag.abs() > PIVOT_EPS) {
            return Err(FactorError::Singular { pivot: k });
        }
        let inv = 1.0 / diag;
        lu.inv_diag[k] = inv;
        for t in lu.l_colptr[k]..lu.l_colptr[k + 1] {
            lu.l_vals[t] = work[lu.l_rows[t]] * inv;
        }
        Ok(())
    }

    /// Processes one wide supernode through its dense panel.
    fn panel(&mut self, lu: &mut SparseLu, a: &CscMatrix, s: usize) -> Result<(), FactorError> {
        let (s0, s1) = (self.sn_ptr[s] as usize, self.sn_ptr[s + 1] as usize);
        let w = s1 - s0;
        let (ub0, ub1) = (self.u_ptr[s] as usize, self.u_ptr[s + 1] as usize);
        let (bb0, bb1) = (self.b_ptr[s] as usize, self.b_ptr[s + 1] as usize);
        let (ulen, blen) = (ub1 - ub0, bb1 - bb0);
        let nr = ulen + w + blen;
        // Panel row map (original row coordinates): U rows, the pivotal
        // block, below rows.
        for (i, &row) in self.u_rows[ub0..ub1].iter().enumerate() {
            self.pos[lu.p[row as usize]] = i as u32;
        }
        for k in s0..s1 {
            self.pos[lu.p[k]] = (ulen + k - s0) as u32;
        }
        for (i, &row) in self.b_rows[bb0..bb1].iter().enumerate() {
            self.pos[lu.p[row as usize]] = (ulen + w + i) as u32;
        }
        {
            let wbuf = &mut self.w[..nr * w];
            wbuf.fill(0.0);
            // Gather A's columns (every entry is inside the recorded reach,
            // hence inside the panel).
            for jj in 0..w {
                let col = lu.q[s0 + jj];
                let wcol = &mut wbuf[jj * nr..(jj + 1) * nr];
                for t in a.col_ptr[col]..a.col_ptr[col + 1] {
                    wcol[self.pos[a.row_idx[t]] as usize] += a.values[t];
                }
            }
        }
        // Apply every earlier supernode with recorded U entries in this
        // panel, in ascending pivotal order, as a dense batch.
        for t in self.up_ptr[s] as usize..self.up_ptr[s + 1] as usize {
            let us = self.up_ids[t] as usize;
            self.batch_wide(s, nr, us, t);
        }
        // Dense blocked right-looking factor of the panel's trapezoid:
        // factor `PANEL_NB`-column blocks with rank-1 updates kept inside
        // the block, then retire each block against the trailing columns
        // as a unit-lower TRSM on their U rows plus one [`crate::gemm`]
        // product on the rows below — the O(w²·nr) sweep of the plain
        // right-looking loop becomes O(w²·nr/PANEL_NB) panel traffic.
        let mut jb = 0;
        while jb < w {
            let nb = PANEL_NB.min(w - jb);
            for jj in jb..jb + nb {
                let wbuf = &mut self.w[..nr * w];
                let dr = ulen + jj;
                let diag = wbuf[jj * nr + dr];
                if !(diag.abs() > PIVOT_EPS) {
                    self.clear_pos(lu, s);
                    return Err(FactorError::Singular { pivot: s0 + jj });
                }
                let inv = 1.0 / diag;
                lu.inv_diag[s0 + jj] = inv;
                for r in jj * nr + dr + 1..(jj + 1) * nr {
                    wbuf[r] *= inv;
                }
                for cc in jj + 1..jb + nb {
                    let (left, right) = wbuf.split_at_mut(cc * nr);
                    let colj = &left[jj * nr..(jj + 1) * nr];
                    let colc = &mut right[..nr];
                    let u = colc[dr];
                    if u != 0.0 {
                        for r in dr + 1..nr {
                            colc[r] -= u * colj[r];
                        }
                    }
                }
            }
            let tc = jb + nb;
            if tc >= w {
                break;
            }
            let m = nr - (ulen + tc);
            let tcols = w - tc;
            if m > 0 && 2 * m * nb * tcols >= GEMM_MIN_FLOPS {
                let wbuf = &mut self.w[..nr * w];
                // TRSM only on the trailing columns' U rows; the rows
                // below get the packed product.
                for cc in tc..w {
                    let (left, right) = wbuf.split_at_mut(cc * nr);
                    let colc = &mut right[..nr];
                    for jj in jb..jb + nb {
                        let u = colc[ulen + jj];
                        if u != 0.0 {
                            let colj = &left[jj * nr..(jj + 1) * nr];
                            for r in ulen + jj + 1..ulen + tc {
                                colc[r] -= u * colj[r];
                            }
                        }
                    }
                }
                self.lpk.reshape_zeroed(m, nb);
                let lpk = self.lpk.as_mut_slice();
                for bj in 0..nb {
                    let colj = &wbuf[(jb + bj) * nr + ulen + tc..(jb + bj + 1) * nr];
                    for (r, &v) in colj.iter().enumerate() {
                        lpk[r * nb + bj] = v;
                    }
                }
                self.ub.reshape_zeroed(nb, tcols);
                let upk = self.ub.as_mut_slice();
                for (ci, cc) in (tc..w).enumerate() {
                    let colc = &wbuf[cc * nr + ulen + jb..];
                    for bj in 0..nb {
                        upk[bj * tcols + ci] = colc[bj];
                    }
                }
                gemm(
                    GemmOp::NoTrans,
                    GemmOp::NoTrans,
                    1.0,
                    &self.lpk,
                    &self.ub,
                    0.0,
                    &mut self.y,
                    &mut self.gws,
                );
                let y = self.y.as_slice();
                let wbuf = &mut self.w[..nr * w];
                for (ci, cc) in (tc..w).enumerate() {
                    let colc = &mut wbuf[cc * nr + ulen + tc..(cc + 1) * nr];
                    for (r, v) in colc.iter_mut().enumerate() {
                        *v -= y[r * tcols + ci];
                    }
                }
            } else {
                // Small trailer: one combined TRSM + update pass per
                // column.
                let wbuf = &mut self.w[..nr * w];
                for cc in tc..w {
                    let (left, right) = wbuf.split_at_mut(cc * nr);
                    let colc = &mut right[..nr];
                    for jj in jb..jb + nb {
                        let u = colc[ulen + jj];
                        if u != 0.0 {
                            let colj = &left[jj * nr..(jj + 1) * nr];
                            for r in ulen + jj + 1..nr {
                                colc[r] -= u * colj[r];
                            }
                        }
                    }
                }
            }
            jb = tc;
        }
        let wbuf = &mut self.w[..nr * w];
        // Store the supernode's blocks for later batch updates.
        {
            let ld = self.ldiag[s].as_mut_slice();
            let lb = self.lbelow[s].as_mut_slice();
            for cc in 0..w {
                let wcol = &wbuf[cc * nr..(cc + 1) * nr];
                for rr in cc + 1..w {
                    ld[rr * w + cc] = wcol[ulen + rr];
                }
                for bi in 0..blen {
                    lb[bi * w + cc] = wcol[ulen + w + bi];
                }
            }
        }
        // Scatter back into the recorded factor arrays (solve_into, later
        // scalar columns, and later panel axpys all read this storage)
        // through the precomputed scatter-order map.
        let mut si = self.store_ptr[s] as usize;
        for jj in 0..w {
            let k = s0 + jj;
            let wcol = &wbuf[jj * nr..(jj + 1) * nr];
            for t in lu.u_colptr[k]..lu.u_colptr[k + 1] {
                lu.u_vals[t] = wcol[self.store_idx[si] as usize];
                si += 1;
            }
            for t in lu.l_colptr[k]..lu.l_colptr[k + 1] {
                lu.l_vals[t] = wcol[self.store_idx[si] as usize];
                si += 1;
            }
        }
        self.clear_pos(lu, s);
        Ok(())
    }

    /// Mirrors a just-computed narrow supernode's recorded L values into
    /// its dense `ldiag`/`lbelow` blocks through the precomputed `nfill`
    /// scatter map, so later panels can batch it like any wide updater.
    fn fill_narrow(&mut self, lu: &SparseLu, s: usize) {
        let (f0, f1) = (self.nfill_ptr[s] as usize, self.nfill_ptr[s + 1] as usize);
        if f0 == f1 {
            return;
        }
        let (s0, s1) = (self.sn_ptr[s] as usize, self.sn_ptr[s + 1] as usize);
        let sq = (s1 - s0) * (s1 - s0);
        let ld = self.ldiag[s].as_mut_slice();
        let lb = self.lbelow[s].as_mut_slice();
        let mut fi = f0;
        for k in s0..s1 {
            for t in lu.l_colptr[k]..lu.l_colptr[k + 1] {
                let dest = self.nfill_idx[fi] as usize;
                fi += 1;
                if dest < sq {
                    ld[dest] = lu.l_vals[t];
                } else {
                    lb[dest - sq] = lu.l_vals[t];
                }
            }
        }
    }

    /// Applies updater supernode `us` to panel supernode `s` as a batch:
    /// gather the U block, finalize it with a unit-lower TRSM against the
    /// updater's diagonal block, write it back, then subtract the product
    /// of the updater's sub-diagonal block with it. `pair` indexes the
    /// precomputed gather/scatter maps in `pair_idx`. Large products go
    /// through the [`crate::gemm`] micro-kernel; small ones run a fused
    /// multiply-scatter that skips relaxed-zero multipliers and rows
    /// outside the panel.
    #[inline]
    fn batch_wide(&mut self, s: usize, nr: usize, us: usize, pair: usize) {
        let w = (self.sn_ptr[s + 1] - self.sn_ptr[s]) as usize;
        let (t0, t1) = (self.sn_ptr[us] as usize, self.sn_ptr[us + 1] as usize);
        let ws = t1 - t0;
        let blen = (self.b_ptr[us + 1] - self.b_ptr[us]) as usize;
        let pr = self.pair_ptr[pair] as usize;
        let (ub_map, y_map) = self.pair_idx[pr..pr + ws + blen].split_at(ws);
        // Compressed panel columns: only these receive nonzero
        // contributions from this updater.
        let cols = &self.pc_idx[self.pc_ptr[pair] as usize..self.pc_ptr[pair + 1] as usize];
        let wc = cols.len();
        let wbuf = &mut self.w[..nr * w];
        if ws == 1 {
            // Singleton updater: the panel already holds its finalized U
            // row (no intra-supernode dependency), so skip the
            // gather/TRSM round-trip and fuse the rank-1 update directly.
            if blen == 0 {
                return;
            }
            let pu = ub_map[0] as usize;
            let lb = self.lbelow[us].as_slice();
            let trow = &mut self.trow[..wc];
            for (ci, v) in trow.iter_mut().enumerate() {
                *v = wbuf[cols[ci] as usize * nr + pu];
            }
            for (bi, &p) in y_map.iter().enumerate() {
                if p == u32::MAX {
                    continue;
                }
                let l = lb[bi];
                if l != 0.0 {
                    for (ci, v) in trow.iter().enumerate() {
                        wbuf[cols[ci] as usize * nr + p as usize] -= l * *v;
                    }
                }
            }
            return;
        }
        // Gather the U block (absent rows carry exact zeros).
        self.ub.reshape_zeroed(ws, wc);
        let ub = self.ub.as_mut_slice();
        for (jj, &p) in ub_map.iter().enumerate() {
            if p != u32::MAX {
                for (ci, v) in ub[jj * wc..(jj + 1) * wc].iter_mut().enumerate() {
                    *v = wbuf[cols[ci] as usize * nr + p as usize];
                }
            }
        }
        // TRSM with the updater's unit-lower diagonal block: finalizes
        // U(updater columns, reached panel columns). Blocked like the
        // panel factor — scalar solves on `PANEL_NB`-row diagonal blocks,
        // the rows below each block retired through one [`crate::gemm`]
        // product (the dominant cost once updaters grow past ~64 columns).
        let ld = self.ldiag[us].as_slice();
        let mut b0 = 0;
        while b0 < ws {
            let bn = PANEL_NB.min(ws - b0);
            for jj in b0 + 1..b0 + bn {
                for kk in b0..jj {
                    let l = ld[jj * ws + kk];
                    if l != 0.0 {
                        for ci in 0..wc {
                            let v = l * ub[kk * wc + ci];
                            ub[jj * wc + ci] -= v;
                        }
                    }
                }
            }
            let below = ws - (b0 + bn);
            if below == 0 {
                break;
            }
            if 2 * below * bn * wc >= GEMM_MIN_FLOPS {
                self.lpk.reshape_zeroed(below, bn);
                let lpk = self.lpk.as_mut_slice();
                for (r, row) in (b0 + bn..ws).enumerate() {
                    lpk[r * bn..(r + 1) * bn]
                        .copy_from_slice(&ld[row * ws + b0..row * ws + b0 + bn]);
                }
                self.bpk.reshape_zeroed(bn, wc);
                self.bpk
                    .as_mut_slice()
                    .copy_from_slice(&ub[b0 * wc..(b0 + bn) * wc]);
                gemm(
                    GemmOp::NoTrans,
                    GemmOp::NoTrans,
                    1.0,
                    &self.lpk,
                    &self.bpk,
                    0.0,
                    &mut self.y,
                    &mut self.gws,
                );
                let y = self.y.as_slice();
                for (v, yv) in ub[(b0 + bn) * wc..ws * wc].iter_mut().zip(y) {
                    *v -= yv;
                }
            } else {
                for jj in b0 + bn..ws {
                    for kk in b0..b0 + bn {
                        let l = ld[jj * ws + kk];
                        if l != 0.0 {
                            for ci in 0..wc {
                                let v = l * ub[kk * wc + ci];
                                ub[jj * wc + ci] -= v;
                            }
                        }
                    }
                }
            }
            b0 += bn;
        }
        // Write the finalized U rows back into the panel.
        for (jj, &p) in ub_map.iter().enumerate() {
            if p != u32::MAX {
                for (ci, v) in ub[jj * wc..(jj + 1) * wc].iter().enumerate() {
                    wbuf[cols[ci] as usize * nr + p as usize] = *v;
                }
            }
        }
        if blen == 0 {
            return;
        }
        let lb = self.lbelow[us].as_slice();
        if 2 * blen * ws * wc >= GEMM_MIN_FLOPS {
            // Dense trailing blocks: the packed micro-kernel wins.
            gemm(
                GemmOp::NoTrans,
                GemmOp::NoTrans,
                1.0,
                &self.lbelow[us],
                &self.ub,
                0.0,
                &mut self.y,
                &mut self.gws,
            );
            let y = self.y.as_slice();
            for (bi, &p) in y_map.iter().enumerate() {
                if p != u32::MAX {
                    for (ci, yv) in y[bi * wc..(bi + 1) * wc].iter().enumerate() {
                        wbuf[cols[ci] as usize * nr + p as usize] -= yv;
                    }
                }
            }
        } else {
            // Fused small product: one accumulated panel row at a time,
            // contiguous in the reached columns, skipping zero multipliers
            // (relaxed padding) and rows outside the panel entirely.
            let trow = &mut self.trow[..wc];
            for (bi, &p) in y_map.iter().enumerate() {
                if p == u32::MAX {
                    continue;
                }
                trow.fill(0.0);
                for kk in 0..ws {
                    let l = lb[bi * ws + kk];
                    if l != 0.0 {
                        let urow = &ub[kk * wc..(kk + 1) * wc];
                        for (ci, v) in trow.iter_mut().enumerate() {
                            *v += l * urow[ci];
                        }
                    }
                }
                for (ci, v) in trow.iter().enumerate() {
                    wbuf[cols[ci] as usize * nr + p as usize] -= *v;
                }
            }
        }
    }

    /// Resets the row map entries of supernode `s`'s panel.
    fn clear_pos(&mut self, lu: &SparseLu, s: usize) {
        for &row in &self.u_rows[self.u_ptr[s] as usize..self.u_ptr[s + 1] as usize] {
            self.pos[lu.p[row as usize]] = u32::MAX;
        }
        for k in self.sn_ptr[s] as usize..self.sn_ptr[s + 1] as usize {
            self.pos[lu.p[k]] = u32::MAX;
        }
        for &row in &self.b_rows[self.b_ptr[s] as usize..self.b_ptr[s + 1] as usize] {
            self.pos[lu.p[row as usize]] = u32::MAX;
        }
    }
}

#[cfg(test)]
mod probe {
    use super::*;

    fn grid_matrix(rows: usize, cols: usize) -> CscMatrix {
        let n = rows * cols;
        let mut dense = Matrix::zeros(n, n);
        for r in 0..rows {
            for c in 0..cols {
                let k = r * cols + c;
                dense[(k, k)] = 4.0 + (k as f64) * 1e-3;
                if c + 1 < cols {
                    dense[(k, k + 1)] = -1.0 - (k as f64) * 1e-5;
                    dense[(k + 1, k)] = -1.0 - (k as f64) * 1e-5;
                }
                if r + 1 < rows {
                    dense[(k, k + cols)] = -1.0 - (k as f64) * 2e-5;
                    dense[(k + cols, k)] = -1.0 - (k as f64) * 2e-5;
                }
                if c + 3 < cols {
                    dense[(k, k + 3)] = -0.125 - (k as f64) * 1e-5;
                    dense[(k + 3, k)] = -0.125 - (k as f64) * 1e-5;
                    dense[(k, k)] += 0.125;
                    dense[(k + 3, k + 3)] += 0.125;
                }
                if r + 3 < rows {
                    dense[(k, k + 3 * cols)] = -0.125 - (k as f64) * 2e-5;
                    dense[(k + 3 * cols, k)] = -0.125 - (k as f64) * 2e-5;
                    dense[(k, k)] += 0.125;
                    dense[(k + 3 * cols, k + 3 * cols)] += 0.125;
                }
                if c + 2 < cols {
                    dense[(k, k + 2)] = -0.25 - (k as f64) * 1e-5;
                    dense[(k + 2, k)] = -0.25 - (k as f64) * 1e-5;
                    dense[(k, k)] += 0.25;
                    dense[(k + 2, k + 2)] += 0.25;
                }
                if r + 2 < rows {
                    dense[(k, k + 2 * cols)] = -0.25 - (k as f64) * 2e-5;
                    dense[(k + 2 * cols, k)] = -0.25 - (k as f64) * 2e-5;
                    dense[(k, k)] += 0.25;
                    dense[(k + 2 * cols, k + 2 * cols)] += 0.25;
                }
                if r + 1 < rows && c + 1 < cols {
                    dense[(k, k + cols + 1)] = -0.5 - (k as f64) * 1e-5;
                    dense[(k + cols + 1, k)] = -0.5 - (k as f64) * 1e-5;
                    dense[(k + 1, k + cols)] = -0.5 - (k as f64) * 2e-5;
                    dense[(k + cols, k + 1)] = -0.5 - (k as f64) * 2e-5;
                    dense[(k, k)] += 1.0;
                    dense[(k + 1, k + 1)] += 1.0;
                    dense[(k + cols, k + cols)] += 1.0;
                    dense[(k + cols + 1, k + cols + 1)] += 1.0;
                }
            }
        }
        CscMatrix::from_dense(&dense)
    }

    /// Auto dispatch quality: engages on mesh patterns whose factors have
    /// dense trailing structure, declines on banded patterns (whose
    /// relaxed panels would be padding-dominated) and below
    /// [`SUPERNODAL_MIN_N`].
    #[test]
    fn auto_dispatch_engages_on_meshes_not_bands() {
        let mut lu = SparseLu::new();
        lu.factor(&grid_matrix(23, 23)).unwrap();
        assert!(lu.supernodal_active(), "mesh must dispatch blocked");

        let n = 128;
        let band = Matrix::from_fn(n, n, |i, j| {
            let d = i.abs_diff(j);
            if d == 0 {
                4.0 + i as f64 * 0.01
            } else if d <= 2 {
                -1.0 - ((i * 7 + j) % 5) as f64 * 0.05
            } else {
                0.0
            }
        });
        let mut lu = SparseLu::new();
        lu.factor(&CscMatrix::from_dense(&band)).unwrap();
        assert!(!lu.supernodal_active(), "banded patterns must stay scalar");

        let mut lu = SparseLu::new();
        lu.factor(&grid_matrix(7, 7)).unwrap();
        assert!(
            !lu.supernodal_active(),
            "systems below SUPERNODAL_MIN_N must stay scalar"
        );
    }

    /// Diagnostic (run with `--ignored --nocapture`): supernode width
    /// histogram and the flop share carried by panel columns on grid
    /// Laplacians — the statistics the Auto dispatch thresholds were tuned
    /// against.
    #[test]
    #[ignore]
    fn print_mesh_supernode_stats() {
        for side in [15usize, 23, 32] {
            let a = grid_matrix(side, side);
            let n = side * side;
            let mut lu = SparseLu::new();
            lu.set_supernodal_mode(SupernodalMode::ForceBlocked);
            lu.factor(&a).unwrap();
            let sn = lu.supernodal.as_ref().unwrap();
            let nsn = sn.num_supernodes();
            let mut hist = std::collections::BTreeMap::new();
            for s in 0..nsn {
                *hist.entry(sn.width(s)).or_insert(0usize) += 1;
            }
            let (mut total, mut panel) = (0u64, 0u64);
            for j in 0..n {
                let mut col = 0u64;
                for t in lu.u_colptr[j]..lu.u_colptr[j + 1] {
                    let k = lu.u_rows[t];
                    col += 1 + 2 * (lu.l_colptr[k + 1] - lu.l_colptr[k]) as u64;
                }
                total += col;
                if sn.width(sn.col_sn[j] as usize) >= PANEL_MIN_WIDTH {
                    panel += col;
                }
            }
            eprintln!(
                "n={n}: {nsn} supernodes ({} wide), panel-col flops {panel}/{total}, \
                 plan_flops={}, widths {hist:?}",
                sn.wide_supernodes, sn.block_flops
            );
        }
    }
}
