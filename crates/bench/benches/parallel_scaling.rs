//! Criterion benchmarks of the deterministic nested-parallelism plane:
//! the threaded GEMM split, critic training over it, and the
//! candidate×corner×analysis population grid — each at 1/2/4/8 workers.
//!
//! On a single-core host every thread count times the same arithmetic
//! plus dispatch overhead (the scheduler is static, so there is no
//! speedup to find); on a multi-core host the same rows show the
//! scaling. `repro baseline` records the host's core count next to every
//! row so the two regimes are never confused.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dnn_opt::{Critic, DnnOptConfig};
use linalg::{gemm, GemmOp, GemmWorkspace, Matrix};
use opt::{parallel, Evaluator, Fom, SizingProblem};
use rand::{rngs::StdRng, Rng, SeedableRng};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One panel-spanning square product, comfortably past
/// `GEMM_PARALLEL_MIN_WORK` so the static row split engages.
fn bench_gemm_parallel(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let a = Matrix::from_fn(256, 256, |_, _| rng.gen::<f64>() - 0.5);
    let b = Matrix::from_fn(256, 256, |_, _| rng.gen::<f64>() - 0.5);
    for threads in THREAD_COUNTS {
        c.bench_function(
            &format!("gemm_parallel_256x256x256_nn_t{threads}"),
            |bench| {
                linalg::pool::set_max_threads(threads);
                let mut ws = GemmWorkspace::new();
                let mut out = Matrix::default();
                bench.iter(|| {
                    gemm(
                        GemmOp::NoTrans,
                        GemmOp::NoTrans,
                        1.0,
                        black_box(&a),
                        black_box(&b),
                        0.0,
                        &mut out,
                        &mut ws,
                    );
                    black_box(out.as_slice()[0])
                });
                linalg::pool::set_max_threads(0);
            },
        );
    }
}

/// The critic training pass (same body and seed as
/// `benches/model_kernels.rs`) with the GEMM thread budget swept — the
/// 73.5 ms hot loop the threaded engine targets.
fn bench_critic_train_mt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let xs: Vec<Vec<f64>> = (0..150)
        .map(|_| (0..20).map(|_| rng.gen()).collect())
        .collect();
    let fs: Vec<Vec<f64>> = xs
        .iter()
        .map(|xv| {
            (0..30)
                .map(|j| xv.iter().map(|v| (v - 0.1 * j as f64).powi(2)).sum::<f64>())
                .collect()
        })
        .collect();
    let cfg = DnnOptConfig::default();
    for threads in THREAD_COUNTS {
        c.bench_function(&format!("critic_train_n150_d20_m30_mt{threads}"), |b| {
            parallel::set_max_threads(threads);
            b.iter(|| Critic::train(&cfg, &xs, &fs, &mut rng));
            parallel::set_max_threads(0);
        });
    }
}

/// The 16-candidate OTA population through the hierarchical
/// candidate×corner×analysis grid at fixed worker counts (same population
/// as the `population_eval_16_ota_*` baseline rows).
fn bench_population_grid(c: &mut Criterion) {
    let ota = circuits::FoldedCascodeOta::new();
    let fom = Fom::uniform(1.0, ota.num_constraints());
    let (lb, ub) = ota.bounds();
    let nominal = ota.nominal();
    let pop: Vec<Vec<f64>> = (0..16)
        .map(|i| {
            let t = (i as f64 / 15.0 - 0.5) * 0.1;
            nominal
                .iter()
                .zip(lb.iter().zip(&ub))
                .map(|(&v, (&l, &u))| (v + t * (u - l)).clamp(l, u))
                .collect()
        })
        .collect();
    for threads in THREAD_COUNTS {
        c.bench_function(&format!("population_eval_16_ota_t{threads}"), |b| {
            parallel::set_max_threads(threads);
            b.iter(|| {
                let mut ev = Evaluator::new(&ota, &fom, pop.len());
                black_box(ev.evaluate_batch(&pop).len())
            });
            parallel::set_max_threads(0);
        });
    }
}

criterion_group!(
    benches,
    bench_gemm_parallel,
    bench_critic_train_mt,
    bench_population_grid
);
criterion_main!(benches);
