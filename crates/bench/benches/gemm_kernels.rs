//! Criterion micro-benchmarks of the dense GEMM engine: the naive
//! reference triple loop vs the cache-blocked, register-tiled kernel on
//! the exact product shapes of the critic/actor training loop, plus a
//! multi-panel shape that exercises the MC/KC blocking.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use linalg::{gemm, gemm_naive, GemmOp, GemmWorkspace, Matrix};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One `(label, m, n, k, op_a, op_b)` row per benchmarked product shape:
/// the critic's batch-128 forward (`x·Wᵀ`), its weight gradient
/// (`δᵀ·x`), and a panel-spanning square product.
type Shape = (&'static str, usize, usize, usize, GemmOp, GemmOp);

const SHAPES: [Shape; 5] = [
    ("10x48x20_nt", 10, 48, 20, GemmOp::NoTrans, GemmOp::Trans),
    ("48x48x10_tn", 48, 48, 10, GemmOp::Trans, GemmOp::NoTrans),
    ("128x48x40_nt", 128, 48, 40, GemmOp::NoTrans, GemmOp::Trans),
    ("48x40x128_tn", 48, 40, 128, GemmOp::Trans, GemmOp::NoTrans),
    (
        "160x160x160_nn",
        160,
        160,
        160,
        GemmOp::NoTrans,
        GemmOp::NoTrans,
    ),
];

fn operand(op: GemmOp, rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let (r, c) = match op {
        GemmOp::NoTrans => (rows, cols),
        GemmOp::Trans => (cols, rows),
    };
    Matrix::from_fn(r, c, |_, _| rng.gen::<f64>() - 0.5)
}

fn bench_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    for (label, m, n, k, op_a, op_b) in SHAPES {
        let a = operand(op_a, m, k, &mut rng);
        let b = operand(op_b, k, n, &mut rng);
        c.bench_function(&format!("gemm_kernel_naive_{label}"), |bench| {
            let mut out = Matrix::default();
            bench.iter(|| {
                gemm_naive(op_a, op_b, 1.0, black_box(&a), black_box(&b), 0.0, &mut out);
                black_box(out.as_slice()[0])
            })
        });
        c.bench_function(&format!("gemm_kernel_blocked_{label}"), |bench| {
            let mut ws = GemmWorkspace::new();
            let mut out = Matrix::default();
            bench.iter(|| {
                gemm(
                    op_a,
                    op_b,
                    1.0,
                    black_box(&a),
                    black_box(&b),
                    0.0,
                    &mut out,
                    &mut ws,
                );
                black_box(out.as_slice()[0])
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm
}
criterion_main!(benches);
