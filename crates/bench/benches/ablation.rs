//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! pseudo-sample construction cost (full N² vs subsampled) and the cost of
//! the restricted-bounds machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use dnn_opt::pseudo::{all_pseudo_samples, sample_pseudo_batch};
use dnn_opt::restricted_bounds;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn bench_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let xs: Vec<Vec<f64>> = (0..120)
        .map(|_| (0..20).map(|_| rng.gen()).collect())
        .collect();
    let fs: Vec<Vec<f64>> = (0..120)
        .map(|_| (0..30).map(|_| rng.gen()).collect())
        .collect();

    c.bench_function("pseudo_full_14400_pairs", |b| {
        b.iter(|| all_pseudo_samples(&xs, &fs))
    });

    c.bench_function("pseudo_subsample_1024", |b| {
        b.iter(|| sample_pseudo_batch(&xs, &fs, 1024, &mut rng))
    });

    c.bench_function("restricted_bounds_elite10_d20", |b| {
        let elite = &xs[..10];
        b.iter(|| restricted_bounds(elite))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
