//! The constrained sizing-problem abstraction (paper Eq. 1).

use crate::failure::FailureDiag;

/// Penalty magnitude a failed evaluation reports for the objective and
/// every constraint. Finite by design: surrogate models can ingest the
/// cliff (after robust clipping) where a NaN would poison training.
pub const FAILURE_PENALTY: f64 = 1e12;

/// Result of one expensive evaluation: the objective and the constraint
/// values in `fi(x) ≤ 0` form (negative/zero = satisfied).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecResult {
    /// Objective value `f0(x)` to minimize.
    pub objective: f64,
    /// Constraint values `fi(x)`; feasible when all are `≤ 0`.
    pub constraints: Vec<f64>,
    /// Structured diagnosis when this result is a failure placeholder;
    /// `None` for successful evaluations (and for legacy failure paths that
    /// carry no taxonomy). Boxed to keep the success hot path small.
    pub failure: Option<Box<FailureDiag>>,
}

impl SpecResult {
    /// True if every constraint is satisfied.
    pub fn feasible(&self) -> bool {
        self.constraints.iter().all(|&c| c <= 0.0)
    }

    /// The full spec vector `[f0, f1, …, fm]` as the critic network sees it.
    pub fn as_vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(1 + self.constraints.len());
        v.push(self.objective);
        v.extend_from_slice(&self.constraints);
        v
    }

    /// Builds a result from the `[f0, f1, …, fm]` vector layout.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn from_vector(v: &[f64]) -> Self {
        assert!(!v.is_empty(), "spec vector needs at least the objective");
        SpecResult {
            objective: v[0],
            constraints: v[1..].to_vec(),
            failure: None,
        }
    }

    /// A deliberately terrible result used when a simulation fails: large
    /// objective and every constraint maximally violated. Keeps optimizer
    /// loops total (no `Result` plumbing through every algorithm) while
    /// making failed regions strongly repellent.
    pub fn failed(num_constraints: usize) -> Self {
        SpecResult {
            objective: FAILURE_PENALTY,
            constraints: vec![FAILURE_PENALTY; num_constraints],
            failure: None,
        }
    }

    /// The failure placeholder of [`SpecResult::failed`] carrying a
    /// structured diagnosis of *why* the evaluation failed.
    pub fn failed_with(num_constraints: usize, diag: FailureDiag) -> Self {
        SpecResult {
            failure: Some(Box::new(diag)),
            ..SpecResult::failed(num_constraints)
        }
    }

    /// The structured failure diagnosis, if one was recorded.
    pub fn failure_diag(&self) -> Option<&FailureDiag> {
        self.failure.as_deref()
    }

    /// True if this is a failure placeholder (any non-finite or huge entry).
    pub fn is_failure(&self) -> bool {
        !self.objective.is_finite()
            || self.objective >= FAILURE_PENALTY
            || self
                .constraints
                .iter()
                .any(|c| !c.is_finite() || *c >= FAILURE_PENALTY)
    }

    /// Worst-case merge across a corner plane: the sign-off view of a
    /// candidate is the element-wise **maximum** of its per-corner results
    /// (objective and every constraint — all are minimize/`≤ 0` specs, so
    /// max is pessimal). Any failed or non-finite corner dominates: the
    /// merged result is then the [`SpecResult::failed`] placeholder (with
    /// the first failing corner's diagnosis attached, when it recorded
    /// one), so a candidate that does not even simulate at one corner can
    /// never look feasible.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice or on constraint-count disagreement
    /// between corners.
    pub fn worst_case(results: &[SpecResult]) -> SpecResult {
        let first = results
            .first()
            .expect("worst-case merge needs at least one corner");
        let mut merged = first.clone();
        for r in &results[1..] {
            merged.merge_worst(r);
        }
        // A single non-finite/failed corner (including the first) poisons
        // the whole candidate; the first failing corner classifies it.
        if merged.is_failure() || results.iter().any(SpecResult::is_failure) {
            let mut out = SpecResult::failed(first.constraints.len());
            out.failure = results
                .iter()
                .find(|r| r.is_failure())
                .and_then(|r| r.failure.clone());
            return out;
        }
        merged
    }

    /// Folds `other` into `self`, keeping the element-wise worst (largest)
    /// objective and constraints; NaN entries are treated as worst and
    /// survive the fold (see [`SpecResult::worst_case`] for the
    /// failure-dominates contract). A failing `other` donates its failure
    /// diagnosis when `self` has none (the first failing corner in a fold
    /// keeps classifying the merged result).
    ///
    /// # Panics
    ///
    /// Panics if the constraint counts disagree.
    pub fn merge_worst(&mut self, other: &SpecResult) {
        assert_eq!(
            self.constraints.len(),
            other.constraints.len(),
            "corner constraint layouts must agree"
        );
        // `f64::max` drops NaN; an explicit NaN-keeping max makes a
        // non-finite corner visible to `is_failure` instead of vanishing.
        let worst = |a: f64, b: f64| if a.is_nan() || a > b { a } else { b };
        self.objective = worst(other.objective, self.objective);
        for (c, &o) in self.constraints.iter_mut().zip(&other.constraints) {
            *c = worst(o, *c);
        }
        if self.failure.is_none() && other.is_failure() {
            self.failure = other.failure.clone();
        }
    }
}

/// The partial result of one independent **analysis** of a testbench at
/// one corner: the slice of the full [`SpecResult`] layout that this
/// analysis owns. A testbench that runs several independent simulations
/// per evaluation (e.g. an open-loop AC characterization and a
/// closed-loop transient) can expose them as separate analyses
/// ([`SizingProblem::num_analyses`]), letting [`crate::Evaluator`] fan a
/// population out over the finer candidate × corner × analysis grid.
///
/// [`AnalysisSpec::assemble`] reassembles the per-analysis partials into
/// the exact `SpecResult` the monolithic single-call path produces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalysisSpec {
    /// The objective value, if this analysis owns the objective.
    pub objective: Option<f64>,
    /// `(constraint index, value)` pairs this analysis owns.
    pub constraints: Vec<(usize, f64)>,
    /// Structured diagnosis attached to the assembled result (set together
    /// with `failed` for hard failures; may also tag soft values).
    pub failure: Option<Box<FailureDiag>>,
    /// Hard failure: the assembled result for this (candidate, corner)
    /// must be the canonical [`SpecResult::failed`] placeholder, exactly
    /// as if the monolithic evaluation had short-circuited.
    pub failed: bool,
}

impl AnalysisSpec {
    /// An empty partial to be filled by the analysis.
    pub fn partial() -> Self {
        Self::default()
    }

    /// A hard-failed analysis carrying an optional diagnosis; assembly
    /// collapses the whole corner to the failed placeholder.
    pub fn hard_failed(diag: Option<FailureDiag>) -> Self {
        AnalysisSpec {
            failed: true,
            failure: diag.map(Box::new),
            ..Self::default()
        }
    }

    /// Wraps a complete [`SpecResult`] as the single analysis owning the
    /// full layout — the faithful default for monolithic testbenches
    /// (`assemble` of this partial reproduces `spec` bit-for-bit,
    /// including raw non-placeholder failure values).
    pub fn from_full(spec: SpecResult) -> Self {
        AnalysisSpec {
            objective: Some(spec.objective),
            constraints: spec.constraints.iter().copied().enumerate().collect(),
            failure: spec.failure,
            failed: false,
        }
    }

    /// Reassembles per-analysis partials (in analysis order) into the full
    /// [`SpecResult`] of one (candidate, corner) evaluation.
    ///
    /// If any analysis hard-failed, the result is the canonical
    /// [`SpecResult::failed`] placeholder classified by the **first**
    /// failed analysis' diagnosis — matching a monolithic testbench that
    /// short-circuits on its first hard failure. Otherwise every partial
    /// scatters into the layout, and the first attached diagnosis (in
    /// analysis order) tags the result.
    ///
    /// # Panics
    ///
    /// Panics unless the objective and every constraint index in
    /// `0..num_constraints` is covered exactly once across the units —
    /// analyses must partition the spec layout.
    pub fn assemble(num_constraints: usize, units: &[AnalysisSpec]) -> SpecResult {
        if let Some(bad) = units.iter().find(|u| u.failed) {
            let mut out = SpecResult::failed(num_constraints);
            out.failure = bad.failure.clone();
            return out;
        }
        let mut objective = None;
        let mut constraints: Vec<Option<f64>> = vec![None; num_constraints];
        let mut failure = None;
        for u in units {
            if let Some(o) = u.objective {
                assert!(objective.is_none(), "objective assembled twice");
                objective = Some(o);
            }
            for &(i, v) in &u.constraints {
                assert!(
                    constraints[i].replace(v).is_none(),
                    "constraint {i} assembled twice"
                );
            }
            if failure.is_none() {
                failure = u.failure.clone();
            }
        }
        SpecResult {
            objective: objective.expect("no analysis owns the objective"),
            constraints: constraints
                .into_iter()
                .enumerate()
                .map(|(i, v)| v.unwrap_or_else(|| panic!("constraint {i} not covered")))
                .collect(),
            failure,
        }
    }
}

/// A constrained black-box sizing problem (paper Eq. 1):
///
/// ```text
/// minimize f0(x)   subject to fi(x) ≤ 0,  i = 1..m,   x ∈ [lb, ub]
/// ```
///
/// Implementations wrap a circuit testbench; `evaluate` is the expensive
/// "SPICE simulation" every optimizer counts.
///
/// The `Sync` supertrait lets [`crate::Evaluator::evaluate_batch`] fan
/// candidate populations out across worker threads; implementations are
/// plain data plus pure computation, so this costs nothing in practice.
pub trait SizingProblem: Sync {
    /// Number of design variables `d`.
    fn dim(&self) -> usize;

    /// Box bounds `(lb, ub)`, each of length [`SizingProblem::dim`].
    fn bounds(&self) -> (Vec<f64>, Vec<f64>);

    /// Number of constraints `m`.
    fn num_constraints(&self) -> usize;

    /// Runs the expensive evaluation.
    ///
    /// For a corner-indexed problem ([`SizingProblem::num_corners`] > 1)
    /// this is the **sign-off view**: the worst case over the whole corner
    /// plane (see [`evaluate_worst_case`]) — one simulation per corner.
    ///
    /// Implementations must return [`SpecResult::failed`] (rather than
    /// panicking) when the underlying simulation does not converge.
    fn evaluate(&self, x: &[f64]) -> SpecResult;

    /// Number of scenario corners this problem evaluates each candidate
    /// across. The default (1) is the legacy nominal-only plane; corner
    /// problems override it, and [`crate::Evaluator`] then expands every
    /// candidate into the candidate×corner grid.
    ///
    /// Contract: corner 0 is the reference (nominal) corner, and every
    /// corner produces the same constraint layout
    /// ([`SizingProblem::num_constraints`] entries).
    fn num_corners(&self) -> usize {
        1
    }

    /// Human-readable label of corner `k` (defaults to `"corner<k>"`).
    fn corner_name(&self, k: usize) -> String {
        format!("corner{k}")
    }

    /// Evaluates the candidate at one scenario corner. The default (valid
    /// only for nominal-only problems) delegates to
    /// [`SizingProblem::evaluate`]; corner problems override this with the
    /// single-corner testbench and implement `evaluate` as the worst-case
    /// fold.
    ///
    /// **Contract:** any problem whose `evaluate` calls
    /// [`evaluate_worst_case`] must also implement this method — the
    /// default delegates back to `evaluate`, and the pair would otherwise
    /// recurse without bound.
    ///
    /// # Panics
    ///
    /// The default panics for `k > 0`, and for any problem declaring more
    /// than one corner (fail-fast on the contract violation above instead
    /// of recursing to a stack overflow).
    fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
        assert_eq!(
            self.num_corners(),
            1,
            "corner-indexed problems must implement evaluate_corner"
        );
        assert_eq!(
            k, 0,
            "problem declares one corner; evaluate_corner({k}) is out of range"
        );
        self.evaluate(x)
    }

    /// Number of independent **analyses** one corner evaluation runs
    /// (see [`AnalysisSpec`]). The default (1) is the monolithic path:
    /// one simulation call produces the whole spec layout. Testbenches
    /// whose per-corner work decomposes into independent simulations
    /// override this, and [`crate::Evaluator`] then fans populations out
    /// over the candidate × corner × analysis grid.
    ///
    /// Contract: the analyses partition the spec layout — the objective
    /// and every constraint index is owned by exactly one analysis — and
    /// `evaluate_corner` must equal
    /// `AnalysisSpec::assemble(m, [evaluate_analysis(x, k, 0..)])`
    /// bit-for-bit (the hierarchical scheduler relies on it).
    fn num_analyses(&self) -> usize {
        1
    }

    /// Human-readable label of analysis `a` (defaults to `"analysis<a>"`).
    fn analysis_name(&self, a: usize) -> String {
        format!("analysis{a}")
    }

    /// Runs one independent analysis of corner `k`. The default (valid
    /// only for single-analysis problems) wraps the whole
    /// [`SizingProblem::evaluate_corner`] result as the one analysis
    /// owning the full layout.
    ///
    /// # Panics
    ///
    /// The default panics for `a > 0` and for any problem declaring more
    /// than one analysis (such problems must implement this method).
    fn evaluate_analysis(&self, x: &[f64], k: usize, a: usize) -> AnalysisSpec {
        assert_eq!(
            self.num_analyses(),
            1,
            "multi-analysis problems must implement evaluate_analysis"
        );
        assert_eq!(
            a, 0,
            "problem declares one analysis; evaluate_analysis({a}) is out of range"
        );
        AnalysisSpec::from_full(self.evaluate_corner(x, k))
    }

    /// Human-readable problem name.
    fn name(&self) -> &str {
        "problem"
    }

    /// Names of the design variables (defaults to `x0`, `x1`, …).
    fn variable_names(&self) -> Vec<String> {
        (0..self.dim()).map(|i| format!("x{i}")).collect()
    }

    /// A nominal starting design; defaults to the center of the box. Used
    /// by sensitivity analysis.
    fn nominal(&self) -> Vec<f64> {
        let (lb, ub) = self.bounds();
        lb.iter().zip(&ub).map(|(l, u)| 0.5 * (l + u)).collect()
    }
}

/// Evaluates a candidate across a problem's whole corner plane and folds
/// the per-corner results with [`SpecResult::worst_case`] — the shared
/// implementation corner problems use for [`SizingProblem::evaluate`]
/// (a single-corner plane evaluates its one corner directly, so the
/// nominal path is bit-identical to calling `evaluate_corner(x, 0)`).
///
/// **The problem must implement [`SizingProblem::evaluate_corner`]**: the
/// trait's default delegates back to `evaluate`, so calling this helper
/// from `evaluate` without overriding `evaluate_corner` recurses without
/// bound.
pub fn evaluate_worst_case<P: SizingProblem + ?Sized>(problem: &P, x: &[f64]) -> SpecResult {
    let k = problem.num_corners();
    if k <= 1 {
        return problem.evaluate_corner(x, 0);
    }
    let specs: Vec<SpecResult> = (0..k).map(|c| problem.evaluate_corner(x, c)).collect();
    SpecResult::worst_case(&specs)
}

/// Robust clipping bounds for surrogate-model targets: `(lo, hi)` such
/// that values inside the bulk of the distribution pass through unchanged
/// while failure-penalty cliffs (e.g. the 1e12 placeholders of
/// [`SpecResult::failed`]) are pulled close enough to carry gradient
/// information without destroying the target scaling.
///
/// Uses the 10th/90th percentiles `p10`, `p90` and returns
/// `(p10 − 3·r, p90 + 3·r)` with `r = max(p90 − p10, ε)`.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn robust_clip_bounds(values: &[f64]) -> (f64, f64) {
    assert!(!values.is_empty(), "cannot clip an empty column");
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return (-1.0, 1.0);
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| v[((v.len() - 1) as f64 * p).round() as usize];
    let (p10, p90) = (q(0.1), q(0.9));
    let r = (p90 - p10).max(1e-9 * (1.0 + p90.abs()));
    (p10 - 3.0 * r, p90 + 3.0 * r)
}

/// Maps a design point into the unit cube given problem bounds.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn to_unit(x: &[f64], lb: &[f64], ub: &[f64]) -> Vec<f64> {
    assert!(
        x.len() == lb.len() && x.len() == ub.len(),
        "to_unit: length mismatch"
    );
    x.iter()
        .zip(lb.iter().zip(ub))
        .map(|(&v, (&l, &u))| if u > l { (v - l) / (u - l) } else { 0.5 })
        .collect()
}

/// Inverse of [`to_unit`].
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn from_unit(u: &[f64], lb: &[f64], ub: &[f64]) -> Vec<f64> {
    assert!(
        u.len() == lb.len() && u.len() == ub.len(),
        "from_unit: length mismatch"
    );
    u.iter()
        .zip(lb.iter().zip(ub))
        .map(|(&t, (&l, &h))| l + t * (h - l))
        .collect()
}

#[cfg(test)]
pub(crate) mod test_problems {
    use super::*;

    /// A cheap analytic stand-in for a circuit: minimize Σ(x−0.3)² with
    /// constraints requiring each coordinate ≥ 0.1 (written as 0.1 − x ≤ 0)
    /// and the sum ≤ d·0.8.
    pub struct Sphere {
        pub d: usize,
    }

    impl SizingProblem for Sphere {
        fn dim(&self) -> usize {
            self.d
        }

        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; self.d], vec![1.0; self.d])
        }

        fn num_constraints(&self) -> usize {
            self.d + 1
        }

        fn evaluate(&self, x: &[f64]) -> SpecResult {
            let objective = x.iter().map(|v| (v - 0.3).powi(2)).sum();
            let mut constraints: Vec<f64> = x.iter().map(|v| 0.1 - v).collect();
            constraints.push(x.iter().sum::<f64>() - 0.8 * self.d as f64);
            SpecResult {
                failure: None,
                objective,
                constraints,
            }
        }

        fn name(&self) -> &str {
            "sphere"
        }
    }

    /// A problem with a narrow feasible region, for exercising
    /// first-feasible statistics: feasible only when ‖x − 0.7‖∞ ≤ 0.05.
    pub struct NarrowBand {
        pub d: usize,
    }

    impl SizingProblem for NarrowBand {
        fn dim(&self) -> usize {
            self.d
        }

        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; self.d], vec![1.0; self.d])
        }

        fn num_constraints(&self) -> usize {
            self.d
        }

        fn evaluate(&self, x: &[f64]) -> SpecResult {
            let objective = x.iter().sum::<f64>();
            let constraints = x.iter().map(|v| (v - 0.7).abs() - 0.05).collect();
            SpecResult {
                failure: None,
                objective,
                constraints,
            }
        }

        fn name(&self) -> &str {
            "narrow-band"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_problems::Sphere;
    use super::*;

    #[test]
    fn feasibility_detection() {
        let ok = SpecResult {
            failure: None,
            objective: 1.0,
            constraints: vec![-0.1, 0.0],
        };
        assert!(ok.feasible());
        let bad = SpecResult {
            failure: None,
            objective: 1.0,
            constraints: vec![-0.1, 0.01],
        };
        assert!(!bad.feasible());
    }

    #[test]
    fn vector_roundtrip() {
        let s = SpecResult {
            failure: None,
            objective: 2.0,
            constraints: vec![1.0, -1.0],
        };
        let v = s.as_vector();
        assert_eq!(v, vec![2.0, 1.0, -1.0]);
        assert_eq!(SpecResult::from_vector(&v), s);
    }

    #[test]
    fn failed_results_are_infeasible_and_flagged() {
        let f = SpecResult::failed(3);
        assert!(!f.feasible());
        assert!(f.is_failure());
        let ok = SpecResult {
            failure: None,
            objective: 1.0,
            constraints: vec![0.0],
        };
        assert!(!ok.is_failure());
    }

    #[test]
    fn worst_case_takes_elementwise_maximum() {
        let a = SpecResult {
            failure: None,
            objective: 1.0,
            constraints: vec![-0.5, 0.2, -1.0],
        };
        let b = SpecResult {
            failure: None,
            objective: 3.0,
            constraints: vec![-0.7, 0.1, 0.4],
        };
        let m = SpecResult::worst_case(&[a.clone(), b.clone()]);
        assert_eq!(m.objective, 3.0);
        assert_eq!(m.constraints, vec![-0.5, 0.2, 0.4]);
        // Order independent.
        assert_eq!(m, SpecResult::worst_case(&[b, a]));
    }

    #[test]
    fn worst_case_of_one_corner_is_the_identity() {
        let a = SpecResult {
            failure: None,
            objective: 0.25,
            constraints: vec![-0.125, 0.75],
        };
        let m = SpecResult::worst_case(std::slice::from_ref(&a));
        assert_eq!(m.objective.to_bits(), a.objective.to_bits());
        for (x, y) in m.constraints.iter().zip(&a.constraints) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn failed_corner_dominates_the_merge() {
        let good = SpecResult {
            failure: None,
            objective: 0.1,
            constraints: vec![-1.0, -1.0],
        };
        let m = SpecResult::worst_case(&[good.clone(), SpecResult::failed(2)]);
        assert!(m.is_failure());
        assert!(!m.feasible());
        assert_eq!(m, SpecResult::failed(2));
        // Position independent.
        assert_eq!(
            SpecResult::worst_case(&[SpecResult::failed(2), good.clone()]),
            SpecResult::failed(2)
        );
    }

    #[test]
    fn nan_corner_dominates_the_merge() {
        let good = SpecResult {
            failure: None,
            objective: 0.1,
            constraints: vec![-1.0],
        };
        let nan_obj = SpecResult {
            failure: None,
            objective: f64::NAN,
            constraints: vec![-1.0],
        };
        let nan_con = SpecResult {
            failure: None,
            objective: 0.0,
            constraints: vec![f64::NAN],
        };
        for bad in [nan_obj, nan_con] {
            let m = SpecResult::worst_case(&[good.clone(), bad.clone()]);
            assert!(m.is_failure(), "NaN corner must poison the merge");
            assert_eq!(m, SpecResult::failed(1));
            let m = SpecResult::worst_case(&[bad, good.clone()]);
            assert!(m.is_failure(), "NaN-first merge must poison too");
        }
    }

    fn diag(kind: crate::failure::FailureKind, injected: bool) -> crate::failure::FailureDiag {
        use crate::failure::{FailureKind, RecoveryStage};
        crate::failure::FailureDiag {
            kind,
            analysis: match kind {
                FailureKind::StepUnderflow => "transient".into(),
                _ => "dc operating point".into(),
            },
            stage: match kind {
                FailureKind::StepUnderflow => RecoveryStage::StepHalving,
                _ => RecoveryStage::SourceStepping,
            },
            iterations: 40,
            halvings: usize::from(kind == FailureKind::StepUnderflow) * 9,
            injected,
        }
    }

    #[test]
    fn worst_case_preserves_dominating_corner_diagnostics() {
        use crate::failure::FailureKind;
        let good = SpecResult {
            failure: None,
            objective: 0.1,
            constraints: vec![-1.0],
        };
        let singular = SpecResult::failed_with(1, diag(FailureKind::Singular, false));
        let underflow = SpecResult::failed_with(1, diag(FailureKind::StepUnderflow, true));
        // The first failing corner classifies the merged placeholder, even
        // with mixed failure kinds across the plane.
        let m = SpecResult::worst_case(&[good.clone(), singular.clone(), underflow.clone()]);
        assert!(m.is_failure());
        assert_eq!(m.failure_diag().unwrap().kind, FailureKind::Singular);
        let m = SpecResult::worst_case(&[underflow.clone(), good.clone(), singular.clone()]);
        let d = m.failure_diag().unwrap();
        assert_eq!(d.kind, FailureKind::StepUnderflow);
        assert!(d.injected);
        assert_eq!(d.halvings, 9);
        // Values are still the canonical failed placeholder.
        assert_eq!(m.objective, 1e12);
        assert_eq!(m.constraints, vec![1e12]);
        // A failing corner without a diagnosis still poisons — untagged.
        let m = SpecResult::worst_case(&[good.clone(), SpecResult::failed(1)]);
        assert!(m.is_failure());
        assert!(m.failure_diag().is_none());
    }

    #[test]
    fn merge_worst_adopts_the_first_failing_diag() {
        use crate::failure::FailureKind;
        let mut acc = SpecResult {
            failure: None,
            objective: 0.1,
            constraints: vec![-1.0],
        };
        // Healthy fold: no diagnosis appears.
        acc.merge_worst(&SpecResult {
            failure: None,
            objective: 0.2,
            constraints: vec![-0.5],
        });
        assert!(acc.failure_diag().is_none());
        // First failing corner donates its diagnosis...
        acc.merge_worst(&SpecResult::failed_with(
            1,
            diag(FailureKind::NanResidual, false),
        ));
        assert_eq!(acc.failure_diag().unwrap().kind, FailureKind::NanResidual);
        // ...and keeps it against later failures of a different kind.
        acc.merge_worst(&SpecResult::failed_with(
            1,
            diag(FailureKind::Singular, true),
        ));
        assert_eq!(acc.failure_diag().unwrap().kind, FailureKind::NanResidual);
        assert!(!acc.failure_diag().unwrap().injected);
    }

    #[test]
    fn worst_case_feasible_only_if_every_corner_is() {
        let pass = SpecResult {
            failure: None,
            objective: 0.0,
            constraints: vec![-0.1],
        };
        let fail = SpecResult {
            failure: None,
            objective: 0.0,
            constraints: vec![0.1],
        };
        assert!(SpecResult::worst_case(&[pass.clone(), pass.clone()]).feasible());
        assert!(!SpecResult::worst_case(&[pass, fail]).feasible());
    }

    #[test]
    #[should_panic(expected = "at least one corner")]
    fn worst_case_of_nothing_panics() {
        let _ = SpecResult::worst_case(&[]);
    }

    #[test]
    #[should_panic(expected = "layouts must agree")]
    fn worst_case_rejects_layout_mismatch() {
        let a = SpecResult {
            failure: None,
            objective: 0.0,
            constraints: vec![0.0],
        };
        let b = SpecResult {
            failure: None,
            objective: 0.0,
            constraints: vec![0.0, 0.0],
        };
        let _ = SpecResult::worst_case(&[a, b]);
    }

    #[test]
    fn default_corner_plane_is_nominal_only() {
        let p = Sphere { d: 2 };
        assert_eq!(p.num_corners(), 1);
        assert_eq!(p.corner_name(0), "corner0");
        let x = [0.4, 0.4];
        let a = p.evaluate(&x);
        let b = p.evaluate_corner(&x, 0);
        let c = evaluate_worst_case(&p, &x);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn unit_mapping_roundtrip() {
        let lb = vec![-1.0, 0.0, 10.0];
        let ub = vec![1.0, 5.0, 20.0];
        let x = vec![0.0, 2.5, 15.0];
        let u = to_unit(&x, &lb, &ub);
        assert_eq!(u, vec![0.5, 0.5, 0.5]);
        let back = from_unit(&u, &lb, &ub);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_bounds_do_not_divide_by_zero() {
        let u = to_unit(&[3.0], &[3.0], &[3.0]);
        assert_eq!(u, vec![0.5]);
    }

    #[test]
    fn analysis_partials_assemble_to_the_monolithic_result() {
        // Two analyses partition [f0, f1, f2, f3]: A owns f0 (objective),
        // f1, f3; B owns f2.
        let a = AnalysisSpec {
            objective: Some(2.5),
            constraints: vec![(0, -0.1), (2, 0.3)],
            failure: None,
            failed: false,
        };
        let b = AnalysisSpec {
            objective: None,
            constraints: vec![(1, -0.7)],
            failure: None,
            failed: false,
        };
        let out = AnalysisSpec::assemble(3, &[a, b]);
        assert_eq!(out.objective, 2.5);
        assert_eq!(out.constraints, vec![-0.1, -0.7, 0.3]);
        assert!(out.failure_diag().is_none());
    }

    #[test]
    fn from_full_assembly_is_bit_faithful_even_for_raw_failures() {
        // A raw (non-placeholder) failure value must survive the partial
        // round trip untouched — the k == 1 history path records it raw.
        let raw = SpecResult {
            failure: None,
            objective: 1.0,
            constraints: vec![f64::INFINITY, -0.2],
        };
        let out = AnalysisSpec::assemble(2, &[AnalysisSpec::from_full(raw.clone())]);
        assert_eq!(out, raw);
    }

    #[test]
    fn hard_failed_analysis_collapses_to_placeholder_with_first_diag() {
        use crate::failure::FailureKind;
        let good = AnalysisSpec {
            objective: Some(0.1),
            constraints: vec![(0, -1.0)],
            failure: None,
            failed: false,
        };
        let bad = AnalysisSpec::hard_failed(Some(diag(FailureKind::Singular, false)));
        let worse = AnalysisSpec::hard_failed(Some(diag(FailureKind::StepUnderflow, true)));
        let out = AnalysisSpec::assemble(2, &[good, bad, worse]);
        assert_eq!(out, {
            let mut expect = SpecResult::failed(2);
            expect.failure = Some(Box::new(diag(FailureKind::Singular, false)));
            expect
        });
    }

    #[test]
    #[should_panic(expected = "constraint 1 not covered")]
    fn assemble_rejects_uncovered_constraints() {
        let a = AnalysisSpec {
            objective: Some(0.0),
            constraints: vec![(0, 0.0)],
            failure: None,
            failed: false,
        };
        let _ = AnalysisSpec::assemble(2, &[a]);
    }

    #[test]
    #[should_panic(expected = "assembled twice")]
    fn assemble_rejects_double_coverage() {
        let a = AnalysisSpec {
            objective: Some(0.0),
            constraints: vec![(0, 0.0)],
            failure: None,
            failed: false,
        };
        let b = AnalysisSpec {
            objective: None,
            constraints: vec![(0, 1.0)],
            failure: None,
            failed: false,
        };
        let _ = AnalysisSpec::assemble(1, &[a, b]);
    }

    #[test]
    fn default_analysis_plane_is_monolithic() {
        let p = Sphere { d: 2 };
        assert_eq!(p.num_analyses(), 1);
        assert_eq!(p.analysis_name(0), "analysis0");
        let x = [0.4, 0.4];
        let unit = p.evaluate_analysis(&x, 0, 0);
        let assembled = AnalysisSpec::assemble(p.num_constraints(), &[unit]);
        assert_eq!(assembled, p.evaluate(&x));
    }

    #[test]
    fn sphere_problem_basics() {
        let p = Sphere { d: 3 };
        assert_eq!(p.dim(), 3);
        assert_eq!(p.num_constraints(), 4);
        let r = p.evaluate(&[0.3, 0.3, 0.3]);
        assert!(r.objective < 1e-12);
        assert!(r.feasible());
        let r2 = p.evaluate(&[0.05, 0.3, 0.3]);
        assert!(!r2.feasible());
        assert_eq!(p.nominal(), vec![0.5, 0.5, 0.5]);
        assert_eq!(p.variable_names().len(), 3);
    }
}
