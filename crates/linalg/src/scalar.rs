//! The scalar abstraction shared by the real and complex sparse LU paths.
//!
//! `sparse.rs` and `supernodal.rs` are written once over [`Scalar`] and
//! monomorphized for `f64` (DC/transient Newton systems) and [`C64`]
//! (frequency-domain `G + jωC` systems). The trait pins down exactly the
//! operations the elimination needs — zero/one, magnitude for pivot
//! checks, the reciprocal used to turn divisions into multiplications —
//! plus one dense kernel hook, [`Scalar::gemm_nn`], through which the
//! supernodal replay reaches the blocked [`crate::gemm`] engine.
//!
//! Bit-compatibility contract: each impl must perform the *same arithmetic
//! in the same order* as the previously hand-written scalar code. In
//! particular `f64::recip` here is literally `1.0 / self` and
//! [`C64::recip`] is the conjugate-over-squared-magnitude form the dense
//! complex solvers use, so the generic elimination reproduces the old
//! per-type implementations bit for bit.
//!
//! The complex GEMM hook splits its operands into real/imaginary/sum
//! planes and issues three real [`crate::gemm`] products — the
//! Karatsuba-style 3M scheme `T1 = Are·Bre`, `T2 = Aim·Bim`,
//! `T3 = (Are+Aim)·(Bre+Bim)` with `Cre = T1 − T2`,
//! `Cim = T3 − T1 − T2` — inheriting the real kernel's determinism
//! guarantee (threaded ≡ serial bit-identical) instead of duplicating a
//! complex micro-kernel. Blocks that are written once and applied many
//! times cache their planes ([`Scalar::Planes`]) so only the small `B`
//! operand splits per call. The real hook wraps its operands in
//! [`Matrix`] headers without copying (`from_vec`/`into_vec` move the
//! allocation).

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use crate::complex::C64;
use crate::{gemm, GemmOp, GemmWorkspace, Matrix};

/// Element type of the generic sparse factorization
/// ([`crate::SparseLu`] = `f64`, [`crate::SparseComplexLu`] = [`C64`]).
///
/// Implemented for `f64` and [`C64`] only; the methods exist for the
/// solver internals and are not a general numeric-tower abstraction.
pub trait Scalar:
    Copy
    + PartialEq
    + Default
    + Debug
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Real multiply-add cost of one element product relative to `f64`
    /// (1 for `f64`, 4 for [`C64`]) — scales the flop thresholds that
    /// decide when a batch is big enough for the packed GEMM kernel.
    const FLOP_WEIGHT: usize;
    /// Minimum supernode width that forms a dense panel in the supernodal
    /// replay; anything narrower runs the scalar column kernel (and
    /// mirrors into dense mini-blocks when a panel consumes it). Below
    /// ~6 columns a panel is all gather/scatter overhead for `f64`;
    /// complex panels carry 4× the element-wise cost for the same
    /// blocking payoff, so [`C64`] requires more width before the panel
    /// machinery pays.
    const PANEL_MIN_WIDTH: usize;
    /// Column-block width of the supernodal panel factor and TRSM: the
    /// rank-1 updates inside a block run element-wise, the retirement of
    /// the block against everything trailing runs as one packed GEMM.
    /// Complex arithmetic pays `FLOP_WEIGHT`× for every element-wise
    /// multiply-add while its 3M-scheme GEMM stays near the real kernel's
    /// rate, so [`C64`] picks a narrower block to shift work into the
    /// retirement product.
    const PANEL_NB: usize;

    /// Reusable scratch for [`Scalar::gemm_nn`] (packed panels, and for
    /// [`C64`] the split real/imaginary planes).
    type GemmScratch: Debug + Clone + Default + Send + Sync;

    /// Magnitude used by pivot-acceptance checks (`|x|`; `hypot` for
    /// [`C64`] — the same quantity the pivoting pass maximized).
    fn mag(self) -> f64;

    /// Multiplicative inverse: exactly `1.0 / self` for `f64`, conjugate
    /// over squared magnitude for [`C64`] — matching the arithmetic of
    /// the scalar elimination paths bit for bit.
    fn recip(self) -> Self;

    /// Dense product `c = a · b` with `a` row-major `m×k` and `b`
    /// row-major `k×n`; `c` is resized to `m·n`. Operands are taken by
    /// `&mut` so the `f64` impl can move the allocations into [`Matrix`]
    /// headers copy-free; contents are unchanged on return. Must be
    /// bit-identical at any thread count (delegates to [`crate::gemm`]).
    fn gemm_nn(
        m: usize,
        n: usize,
        k: usize,
        a: &mut Vec<Self>,
        b: &mut Vec<Self>,
        c: &mut Vec<Self>,
        ws: &mut Self::GemmScratch,
    );

    /// Cached split-plane form of a dense operand that is written once and
    /// multiplied many times ([`C64`]: real/imaginary plane matrices;
    /// `f64`: nothing — the interleaved buffer already is the plane).
    type Planes: Debug + Clone + Default + Send + Sync;

    /// Refreshes the cached planes of a row-major `m×k` operand.
    fn split_planes(m: usize, k: usize, a: &[Self], p: &mut Self::Planes);

    /// [`Scalar::gemm_nn`] with the `a` operand supplied both interleaved
    /// (used by `f64`) and as cached planes (used by [`C64`], skipping the
    /// per-call split of `a` — the dominant per-call cost when one block
    /// is applied to many targets). `p` must hold the planes of the
    /// current contents of `a`; the product is bit-identical to
    /// [`Scalar::gemm_nn`] on the same operands.
    #[allow(clippy::too_many_arguments)]
    fn gemm_nn_planes(
        m: usize,
        n: usize,
        k: usize,
        a: &mut Vec<Self>,
        p: &Self::Planes,
        b: &mut Vec<Self>,
        c: &mut Vec<Self>,
        ws: &mut Self::GemmScratch,
    );

    /// Computes `Y = A·B` exactly like [`Scalar::gemm_nn_planes`] and
    /// subtracts it from a column-major panel through row/column maps:
    /// `panel[cols[ci]·nr + rows[bi]] -= Y[bi·n + ci]` for every mapped
    /// row (`rows[bi] != u32::MAX`; `rows.len() == m`, `cols.len() == n`).
    /// `y` is scratch for impls that materialize the product first; the
    /// complex impl instead merges its real partial products directly
    /// inside the subtraction, skipping the interleaved result round-trip.
    #[allow(clippy::too_many_arguments)]
    fn gemm_sub_into_panel(
        m: usize,
        n: usize,
        k: usize,
        a: &mut Vec<Self>,
        p: &Self::Planes,
        b: &mut Vec<Self>,
        y: &mut Vec<Self>,
        panel: &mut [Self],
        nr: usize,
        rows: &[u32],
        cols: &[u32],
        ws: &mut Self::GemmScratch,
    );
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    const FLOP_WEIGHT: usize = 1;
    const PANEL_MIN_WIDTH: usize = 6;
    const PANEL_NB: usize = 32;

    type GemmScratch = GemmWorkspace;

    #[inline]
    fn mag(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn recip(self) -> f64 {
        1.0 / self
    }

    fn gemm_nn(
        m: usize,
        n: usize,
        k: usize,
        a: &mut Vec<f64>,
        b: &mut Vec<f64>,
        c: &mut Vec<f64>,
        ws: &mut GemmWorkspace,
    ) {
        // Move (not copy) the buffers into Matrix headers around the call.
        let am = Matrix::from_vec(m, k, std::mem::take(a));
        let bm = Matrix::from_vec(k, n, std::mem::take(b));
        c.clear();
        let mut cm = Matrix::from_vec(0, 0, std::mem::take(c));
        cm.reshape_for_overwrite(m, n);
        gemm(
            GemmOp::NoTrans,
            GemmOp::NoTrans,
            1.0,
            &am,
            &bm,
            0.0,
            &mut cm,
            ws,
        );
        *a = am.into_vec();
        *b = bm.into_vec();
        *c = cm.into_vec();
    }

    type Planes = ();

    #[inline]
    fn split_planes(_m: usize, _k: usize, _a: &[f64], _p: &mut ()) {}

    #[inline]
    fn gemm_nn_planes(
        m: usize,
        n: usize,
        k: usize,
        a: &mut Vec<f64>,
        _p: &(),
        b: &mut Vec<f64>,
        c: &mut Vec<f64>,
        ws: &mut GemmWorkspace,
    ) {
        f64::gemm_nn(m, n, k, a, b, c, ws);
    }

    fn gemm_sub_into_panel(
        m: usize,
        n: usize,
        k: usize,
        a: &mut Vec<f64>,
        _p: &(),
        b: &mut Vec<f64>,
        y: &mut Vec<f64>,
        panel: &mut [f64],
        nr: usize,
        rows: &[u32],
        cols: &[u32],
        ws: &mut GemmWorkspace,
    ) {
        f64::gemm_nn(m, n, k, a, b, y, ws);
        for (bi, &p) in rows.iter().enumerate() {
            if p != u32::MAX {
                for (ci, &yv) in y[bi * n..(bi + 1) * n].iter().enumerate() {
                    panel[cols[ci] as usize * nr + p as usize] -= yv;
                }
            }
        }
    }
}

/// Split-plane scratch for the complex GEMM hook: real/imaginary/sum
/// planes of both operands and the three real partial products of the
/// 3M scheme, plus the packing workspace they share.
#[derive(Debug, Clone, Default)]
pub struct ComplexGemmScratch {
    are: Matrix,
    aim: Matrix,
    asum: Matrix,
    bre: Matrix,
    bim: Matrix,
    bsum: Matrix,
    cre: Matrix,
    cim: Matrix,
    csum: Matrix,
    ws: GemmWorkspace,
}

/// Cached real/imaginary/sum planes of a complex block operand
/// ([`Scalar::Planes`] for [`C64`]).
#[derive(Debug, Clone, Default)]
pub struct C64Planes {
    re: Matrix,
    im: Matrix,
    sum: Matrix,
}

/// The shared core of the complex GEMM hooks: `b` split into planes, three
/// real products against the given `a` planes (the Karatsuba-style 3M
/// scheme: `T1 = Are·Bre`, `T2 = Aim·Bim`,
/// `T3 = (Are+Aim)·(Bre+Bim)`, from which `Cre = T1 − T2` and
/// `Cim = T3 − T1 − T2`). One real product fewer than the textbook split
/// at the cost of one extra plane per operand — the win that pushes the
/// complex supernodal replay past the scalar complex kernel's high
/// natural flop density. The partial products are left in the
/// `cre`/`cim`/`csum` planes for the caller to merge.
#[allow(clippy::too_many_arguments)]
fn complex_gemm_products(
    n: usize,
    k: usize,
    are: &Matrix,
    aim: &Matrix,
    asum: &Matrix,
    b: &[C64],
    g: (
        &mut Matrix,
        &mut Matrix,
        &mut Matrix,
        &mut Matrix,
        &mut Matrix,
        &mut Matrix,
    ),
    g_ws: &mut GemmWorkspace,
) {
    let (bre, bim, bsum, cre, cim, csum) = g;
    bre.reshape_for_overwrite(k, n);
    bim.reshape_for_overwrite(k, n);
    bsum.reshape_for_overwrite(k, n);
    for (i, v) in b.iter().enumerate() {
        bre.as_mut_slice()[i] = v.re;
        bim.as_mut_slice()[i] = v.im;
        bsum.as_mut_slice()[i] = v.re + v.im;
    }
    gemm(
        GemmOp::NoTrans,
        GemmOp::NoTrans,
        1.0,
        are,
        bre,
        0.0,
        cre,
        g_ws,
    );
    gemm(
        GemmOp::NoTrans,
        GemmOp::NoTrans,
        1.0,
        aim,
        bim,
        0.0,
        cim,
        g_ws,
    );
    gemm(
        GemmOp::NoTrans,
        GemmOp::NoTrans,
        1.0,
        asum,
        bsum,
        0.0,
        csum,
        g_ws,
    );
}

/// Interleaved merge of the 3M partial products into `c`.
fn complex_gemm_merge(cre: &Matrix, cim: &Matrix, csum: &Matrix, c: &mut Vec<C64>) {
    c.clear();
    c.extend(
        cre.as_slice()
            .iter()
            .zip(cim.as_slice())
            .zip(csum.as_slice())
            .map(|((&t1, &t2), &t3)| C64::new(t1 - t2, t3 - t1 - t2)),
    );
}

impl Scalar for C64 {
    const ZERO: C64 = C64::ZERO;
    const ONE: C64 = C64::ONE;
    const FLOP_WEIGHT: usize = 4;
    const PANEL_MIN_WIDTH: usize = 10;
    const PANEL_NB: usize = 32;

    type GemmScratch = ComplexGemmScratch;

    #[inline]
    fn mag(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn recip(self) -> C64 {
        C64::recip(self)
    }

    fn gemm_nn(
        m: usize,
        n: usize,
        k: usize,
        a: &mut Vec<C64>,
        b: &mut Vec<C64>,
        c: &mut Vec<C64>,
        g: &mut ComplexGemmScratch,
    ) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        let ComplexGemmScratch {
            are,
            aim,
            asum,
            bre,
            bim,
            bsum,
            cre,
            cim,
            csum,
            ws,
        } = g;
        are.reshape_for_overwrite(m, k);
        aim.reshape_for_overwrite(m, k);
        asum.reshape_for_overwrite(m, k);
        for (i, v) in a.iter().enumerate() {
            are.as_mut_slice()[i] = v.re;
            aim.as_mut_slice()[i] = v.im;
            asum.as_mut_slice()[i] = v.re + v.im;
        }
        complex_gemm_products(
            n,
            k,
            are,
            aim,
            asum,
            b,
            (bre, bim, bsum, cre, cim, csum),
            ws,
        );
        complex_gemm_merge(cre, cim, csum, c);
    }

    type Planes = C64Planes;

    fn split_planes(m: usize, k: usize, a: &[C64], p: &mut C64Planes) {
        debug_assert_eq!(a.len(), m * k);
        p.re.reshape_for_overwrite(m, k);
        p.im.reshape_for_overwrite(m, k);
        p.sum.reshape_for_overwrite(m, k);
        for (i, v) in a.iter().enumerate() {
            p.re.as_mut_slice()[i] = v.re;
            p.im.as_mut_slice()[i] = v.im;
            p.sum.as_mut_slice()[i] = v.re + v.im;
        }
    }

    fn gemm_nn_planes(
        m: usize,
        n: usize,
        k: usize,
        a: &mut Vec<C64>,
        p: &C64Planes,
        b: &mut Vec<C64>,
        c: &mut Vec<C64>,
        g: &mut ComplexGemmScratch,
    ) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(p.re.as_slice().len(), m * k, "stale plane cache");
        let ComplexGemmScratch {
            bre,
            bim,
            bsum,
            cre,
            cim,
            csum,
            ws,
            ..
        } = g;
        complex_gemm_products(
            n,
            k,
            &p.re,
            &p.im,
            &p.sum,
            b,
            (bre, bim, bsum, cre, cim, csum),
            ws,
        );
        complex_gemm_merge(cre, cim, csum, c);
    }

    fn gemm_sub_into_panel(
        m: usize,
        n: usize,
        k: usize,
        a: &mut Vec<C64>,
        p: &C64Planes,
        b: &mut Vec<C64>,
        _y: &mut Vec<C64>,
        panel: &mut [C64],
        nr: usize,
        rows: &[u32],
        cols: &[u32],
        g: &mut ComplexGemmScratch,
    ) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(rows.len(), m);
        debug_assert_eq!(cols.len(), n);
        let ComplexGemmScratch {
            bre,
            bim,
            bsum,
            cre,
            cim,
            csum,
            ws,
            ..
        } = g;
        complex_gemm_products(
            n,
            k,
            &p.re,
            &p.im,
            &p.sum,
            b,
            (bre, bim, bsum, cre, cim, csum),
            ws,
        );
        // Merge the partial products directly into the mapped subtraction:
        // no interleaved result buffer between the products and the panel.
        let (t1s, t2s, t3s) = (cre.as_slice(), cim.as_slice(), csum.as_slice());
        for (bi, &pr) in rows.iter().enumerate() {
            if pr == u32::MAX {
                continue;
            }
            let base = pr as usize;
            let (r1, r2, r3) = (
                &t1s[bi * n..(bi + 1) * n],
                &t2s[bi * n..(bi + 1) * n],
                &t3s[bi * n..(bi + 1) * n],
            );
            for ci in 0..n {
                let (t1, t2, t3) = (r1[ci], r2[ci], r3[ci]);
                panel[cols[ci] as usize * nr + base] -= C64::new(t1 - t2, t3 - t1 - t2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recip_matches_scalar_arithmetic_bitwise() {
        for v in [3.0f64, -0.125, 1e-7, 2.5e11] {
            assert_eq!(Scalar::recip(v), 1.0 / v);
        }
        let z = C64::new(2.0, -3.0);
        assert_eq!(Scalar::recip(z), z.conj() * (1.0 / z.abs_sq()));
    }

    #[test]
    fn complex_gemm_nn_matches_naive_product() {
        let (m, n, k) = (7usize, 5, 6);
        let mut a: Vec<C64> = (0..m * k)
            .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut b: Vec<C64> = (0..k * n)
            .map(|i| C64::new((i as f64 * 0.23).cos(), (i as f64 * 0.41).sin()))
            .collect();
        let mut c = Vec::new();
        let mut g = ComplexGemmScratch::default();
        C64::gemm_nn(m, n, k, &mut a, &mut b, &mut c, &mut g);
        assert_eq!(c.len(), m * n);
        for i in 0..m {
            for j in 0..n {
                let mut s = C64::ZERO;
                for p in 0..k {
                    s += a[i * k + p] * b[p * n + j];
                }
                assert!((s - c[i * n + j]).abs() < 1e-12, "({i}, {j})");
            }
        }
    }

    #[test]
    fn f64_gemm_nn_roundtrips_buffers() {
        let (m, n, k) = (4usize, 3, 2);
        let mut a: Vec<f64> = (0..m * k).map(|i| i as f64 + 1.0).collect();
        let mut b: Vec<f64> = (0..k * n).map(|i| 0.5 - i as f64).collect();
        let a0 = a.clone();
        let b0 = b.clone();
        let mut c = Vec::new();
        let mut ws = GemmWorkspace::new();
        f64::gemm_nn(m, n, k, &mut a, &mut b, &mut c, &mut ws);
        assert_eq!(a, a0);
        assert_eq!(b, b0);
        for i in 0..m {
            for j in 0..n {
                let s: f64 = (0..k).map(|p| a[i * k + p] * b[p * n + j]).sum();
                assert_eq!(c[i * n + j], s);
            }
        }
    }
}
