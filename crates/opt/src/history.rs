//! Run bookkeeping: evaluation history, budgets and timing.

use std::time::{Duration, Instant};

use crate::fom::Fom;
use crate::problem::{SizingProblem, SpecResult};

/// One recorded evaluation.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The design point.
    pub x: Vec<f64>,
    /// The raw simulation outcome.
    pub spec: SpecResult,
    /// Figure of merit (Eq. 4) of this design.
    pub fom: f64,
    /// Whether all constraints were met.
    pub feasible: bool,
}

/// Full history of a run: every evaluation in order, plus derived
/// statistics the paper reports (first-feasible index, best-FoM trace).
#[derive(Debug, Clone, Default)]
pub struct History {
    entries: Vec<Evaluation>,
    best_trace: Vec<f64>,
    first_feasible: Option<usize>,
    best_index: Option<usize>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an evaluation, updating the derived statistics.
    pub fn push(&mut self, eval: Evaluation) {
        let idx = self.entries.len();
        if eval.feasible && self.first_feasible.is_none() {
            self.first_feasible = Some(idx + 1); // 1-based "number of sims"
        }
        let better = match self.best_index {
            None => true,
            Some(b) => eval.fom < self.entries[b].fom,
        };
        let best_fom = if better {
            self.best_index = Some(idx);
            eval.fom
        } else {
            self.entries[self
                .best_index
                .expect("best_index set whenever entries exist")]
            .fom
        };
        self.best_trace.push(best_fom);
        self.entries.push(eval);
    }

    /// All evaluations in order.
    pub fn entries(&self) -> &[Evaluation] {
        &self.entries
    }

    /// Number of evaluations so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Best-FoM-so-far trace, one entry per evaluation (the series plotted
    /// in the paper's Figures 3 and 4).
    pub fn best_trace(&self) -> &[f64] {
        &self.best_trace
    }

    /// 1-based index of the first feasible evaluation ("# of simulations"
    /// in the paper's tables), if any.
    pub fn first_feasible(&self) -> Option<usize> {
        self.first_feasible
    }

    /// The best evaluation so far (lowest FoM).
    pub fn best(&self) -> Option<&Evaluation> {
        self.best_index.map(|i| &self.entries[i])
    }

    /// The best *feasible* evaluation (lowest objective among feasible).
    pub fn best_feasible(&self) -> Option<&Evaluation> {
        self.entries
            .iter()
            .filter(|e| e.feasible)
            .min_by(|a, b| a.spec.objective.partial_cmp(&b.spec.objective).unwrap())
    }
}

/// Budgeted, history-recording wrapper around a [`SizingProblem`]: the one
/// object optimizers call to spend simulations.
pub struct Evaluator<'a> {
    problem: &'a dyn SizingProblem,
    fom: &'a Fom,
    budget: usize,
    history: History,
    sim_time: Duration,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with a simulation budget.
    pub fn new(problem: &'a dyn SizingProblem, fom: &'a Fom, budget: usize) -> Self {
        Evaluator {
            problem,
            fom,
            budget,
            history: History::new(),
            sim_time: Duration::ZERO,
        }
    }

    /// Runs (and records) one expensive evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the budget is already exhausted; optimizers must check
    /// [`Evaluator::exhausted`] first.
    pub fn evaluate(&mut self, x: &[f64]) -> Evaluation {
        assert!(!self.exhausted(), "simulation budget exhausted");
        let t0 = Instant::now();
        let spec = self.problem.evaluate(x);
        self.sim_time += t0.elapsed();
        let fom = self.fom.value(&spec);
        let eval = Evaluation {
            x: x.to_vec(),
            feasible: spec.feasible(),
            fom,
            spec,
        };
        self.history.push(eval.clone());
        eval
    }

    /// Evaluates a whole candidate population, fanning the expensive
    /// simulations out over worker threads (see [`crate::parallel`]), and
    /// records the results **in candidate order** — so histories, best
    /// traces and first-feasible indices are bit-identical to evaluating
    /// the same candidates serially, regardless of thread count.
    ///
    /// At most [`Evaluator::remaining`] candidates are evaluated; the rest
    /// are silently dropped, which keeps optimizers' budget accounting a
    /// non-event. Returns the recorded evaluations.
    pub fn evaluate_batch(&mut self, xs: &[Vec<f64>]) -> Vec<Evaluation> {
        let take = xs.len().min(self.remaining());
        let batch = &xs[..take];
        let problem = self.problem;
        // Each worker thread keeps one context for its whole chunk: a
        // simulator-time accumulator here, and — inside the testbenches —
        // pool-leased solver workspaces that are thereby reused across the
        // chunk's candidates. Durations are timed inside the workers and
        // summed, so `sim_time` keeps the same meaning as the serial
        // `evaluate` path (total simulator time, not batch wall-clock) for
        // any thread count.
        let (specs, worker_times) = crate::parallel::par_map_with(
            batch,
            || Duration::ZERO,
            |spent, x| {
                let t0 = Instant::now();
                let spec = problem.evaluate(x);
                *spent += t0.elapsed();
                spec
            },
        );
        self.sim_time += worker_times.iter().sum::<Duration>();
        let mut out = Vec::with_capacity(take);
        for (x, spec) in batch.iter().zip(specs) {
            let fom = self.fom.value(&spec);
            let eval = Evaluation {
                x: x.clone(),
                feasible: spec.feasible(),
                fom,
                spec,
            };
            self.history.push(eval.clone());
            out.push(eval);
        }
        out
    }

    /// True when no budget remains.
    pub fn exhausted(&self) -> bool {
        self.history.len() >= self.budget
    }

    /// Simulations remaining.
    pub fn remaining(&self) -> usize {
        self.budget.saturating_sub(self.history.len())
    }

    /// Simulations used.
    pub fn used(&self) -> usize {
        self.history.len()
    }

    /// The underlying problem.
    pub fn problem(&self) -> &dyn SizingProblem {
        self.problem
    }

    /// The FoM in use.
    pub fn fom(&self) -> &Fom {
        self.fom
    }

    /// Recorded history so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Wall-clock time spent inside [`SizingProblem::evaluate`].
    pub fn sim_time(&self) -> Duration {
        self.sim_time
    }

    /// Consumes the evaluator, returning the history and simulation time.
    pub fn into_parts(self) -> (History, Duration) {
        (self.history, self.sim_time)
    }
}

/// Completed run: what an [`crate::Optimizer`] returns.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Name of the optimizer that produced the run.
    pub optimizer: String,
    /// Full evaluation history.
    pub history: History,
    /// Wall-clock time spent in surrogate-model fitting (the paper's
    /// "modeling time").
    pub model_time: Duration,
    /// Wall-clock time spent in simulations.
    pub sim_time: Duration,
    /// Total run wall-clock time.
    pub total_time: Duration,
}

impl RunResult {
    /// Best feasible objective, if a feasible design was found.
    pub fn best_feasible_objective(&self) -> Option<f64> {
        self.history.best_feasible().map(|e| e.spec.objective)
    }

    /// 1-based simulation count at which the first feasible design
    /// appeared.
    pub fn sims_to_feasible(&self) -> Option<usize> {
        self.history.first_feasible()
    }
}

/// When an optimizer should stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopPolicy {
    /// Use the whole simulation budget (needed for FoM-curve figures).
    Exhaust,
    /// Return as soon as a feasible design is simulated (paper Alg. 1
    /// line 11, and the industrial Table V protocol).
    FirstFeasible,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_problems::Sphere;

    fn eval(fom: f64, feasible: bool) -> Evaluation {
        Evaluation {
            x: vec![0.0],
            spec: SpecResult {
                objective: fom,
                constraints: vec![],
            },
            fom,
            feasible,
        }
    }

    #[test]
    fn best_trace_is_monotone() {
        let mut h = History::new();
        for f in [5.0, 3.0, 4.0, 1.0, 2.0] {
            h.push(eval(f, false));
        }
        assert_eq!(h.best_trace(), &[5.0, 3.0, 3.0, 1.0, 1.0]);
        assert_eq!(h.best().unwrap().fom, 1.0);
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn first_feasible_is_one_based_and_sticky() {
        let mut h = History::new();
        h.push(eval(5.0, false));
        h.push(eval(4.0, true));
        h.push(eval(3.0, true));
        assert_eq!(h.first_feasible(), Some(2));
    }

    #[test]
    fn best_feasible_prefers_objective() {
        let mut h = History::new();
        // Feasible but worse objective…
        let mut a = eval(0.5, true);
        a.spec.objective = 10.0;
        h.push(a);
        // Infeasible with great objective must be ignored…
        let mut b = eval(0.1, false);
        b.spec.objective = 0.1;
        h.push(b);
        // Feasible with better objective wins.
        let mut c = eval(0.6, true);
        c.spec.objective = 3.0;
        h.push(c);
        assert_eq!(h.best_feasible().unwrap().spec.objective, 3.0);
    }

    #[test]
    fn evaluator_enforces_budget() {
        let p = Sphere { d: 2 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let mut ev = Evaluator::new(&p, &fom, 3);
        assert_eq!(ev.remaining(), 3);
        ev.evaluate(&[0.3, 0.3]);
        ev.evaluate(&[0.5, 0.5]);
        assert!(!ev.exhausted());
        ev.evaluate(&[0.1, 0.1]);
        assert!(ev.exhausted());
        assert_eq!(ev.used(), 3);
        assert_eq!(ev.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "budget exhausted")]
    fn evaluator_panics_past_budget() {
        let p = Sphere { d: 1 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let mut ev = Evaluator::new(&p, &fom, 1);
        ev.evaluate(&[0.3]);
        ev.evaluate(&[0.4]);
    }

    #[test]
    fn evaluator_records_feasibility() {
        let p = Sphere { d: 2 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let mut ev = Evaluator::new(&p, &fom, 10);
        let good = ev.evaluate(&[0.3, 0.3]);
        assert!(good.feasible);
        let bad = ev.evaluate(&[0.0, 0.0]);
        assert!(!bad.feasible);
        assert_eq!(ev.history().first_feasible(), Some(1));
    }
}
