//! Estimated-parasitic loading — the MLParest stand-in.
//!
//! The paper runs MLParest (Shook et al., DAC 2020), a machine-learning
//! pre-layout parasitic estimator, inside the DNN-Opt loop for the
//! industrial circuits so that sizing decisions see post-layout-like
//! loading. MLParest is proprietary; this module substitutes a
//! deterministic geometry-driven estimator with the same role and the same
//! qualitative effect — every node gains wiring capacitance that grows
//! with the devices attached to it, so "just make it wider" stops being
//! free:
//!
//! - each MOSFET terminal contributes wire capacitance proportional to the
//!   device width (routing tracks scale with the device footprint);
//! - each connected terminal adds a fixed via/stub capacitance;
//! - the estimate is applied as lumped node-to-ground capacitors, the
//!   dominant first-order effect of layout on these circuits.

use spice::{Circuit, Device, SpiceError};

/// Parasitic-estimation coefficients.
#[derive(Debug, Clone)]
pub struct ParasiticConfig {
    /// Fixed capacitance per device terminal \[F\] (vias, stubs).
    pub cap_per_terminal: f64,
    /// Capacitance per meter of attached device width \[F/m\]
    /// (width-proportional routing).
    pub cap_per_width: f64,
}

impl Default for ParasiticConfig {
    fn default() -> Self {
        // Advanced-node-like numbers: ~0.2 fF per terminal, 0.15 fF/µm.
        ParasiticConfig {
            cap_per_terminal: 0.2e-15,
            cap_per_width: 0.15e-9,
        }
    }
}

/// Per-node parasitic estimate, skipping previously inserted `CPAR_*`
/// capacitors and `RPAR_*` ladder resistors (see [`crate::mesh`]) so the
/// estimate is identical whether the circuit is fresh or a reused — and
/// possibly already-meshed — template. Shared with the distributed
/// post-layout ladders, which split the same totals across RC segments.
pub(crate) fn node_caps(circuit: &Circuit, cfg: &ParasiticConfig) -> Vec<f64> {
    let n = circuit.num_nodes();
    let mut cap = vec![0.0_f64; n];
    for dev in circuit.devices() {
        match dev {
            Device::Mosfet {
                d, g, s, b, w, m, ..
            } => {
                for &t in &[*d, *g, *s, *b] {
                    cap[t] += cfg.cap_per_terminal + cfg.cap_per_width * w * m;
                }
            }
            Device::Capacitor { name, .. } if name.starts_with("CPAR_") => {}
            Device::Resistor { name, .. } if name.starts_with("RPAR_") => {}
            Device::Resistor { a, b, .. } | Device::Capacitor { a, b, .. } => {
                cap[*a] += cfg.cap_per_terminal;
                cap[*b] += cfg.cap_per_terminal;
            }
            _ => {}
        }
    }
    cap
}

/// Estimates wiring parasitics for every non-ground node of `circuit` and
/// inserts them as grounded capacitors named `CPAR_<node>`.
///
/// Returns the number of capacitors added.
///
/// # Errors
///
/// Propagates netlist errors (duplicate names if called twice on the same
/// circuit).
pub fn apply_parasitics(circuit: &mut Circuit, cfg: &ParasiticConfig) -> Result<usize, SpiceError> {
    let cap = node_caps(circuit, cfg);
    let mut added = 0;
    for (node, c) in cap.iter().enumerate().skip(1) {
        if *c > 0.0 {
            let name = format!("CPAR_{}", circuit.node_name(node));
            circuit.add_capacitor(&name, node, spice::GND, *c)?;
            added += 1;
        }
    }
    Ok(added)
}

/// Recomputes the parasitic estimate after device geometry changed and
/// writes the new values into the existing `CPAR_*` capacitors in place —
/// the per-candidate companion of [`apply_parasitics`] for testbenches
/// that clone a prebuilt template circuit instead of rebuilding the
/// netlist. Which capacitors exist depends only on connectivity, so the
/// set inserted at template-build time is always exactly the set updated
/// here. Returns the number of capacitors updated.
///
/// # Errors
///
/// Propagates netlist errors ([`apply_parasitics`] was never run on this
/// circuit).
pub fn update_parasitics(
    circuit: &mut Circuit,
    cfg: &ParasiticConfig,
) -> Result<usize, SpiceError> {
    let cap = node_caps(circuit, cfg);
    let mut updated = 0;
    for (node, c) in cap.iter().enumerate().skip(1) {
        if *c > 0.0 {
            let name = format!("CPAR_{}", circuit.node_name(node));
            circuit.set_capacitance(&name, *c)?;
            updated += 1;
        }
    }
    Ok(updated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::tech_advanced;
    use spice::{SimOptions, Waveform, GND};

    fn small_inverter() -> Circuit {
        let t = tech_advanced();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("VDD", vdd, GND, Waveform::Dc(t.vdd)).unwrap();
        c.add_vsource("VIN", inp, GND, Waveform::Dc(0.0)).unwrap();
        c.add_mosfet("MN", out, inp, GND, GND, &t.nmos, 1e-6, 0.02e-6, 1.0)
            .unwrap();
        c.add_mosfet("MP", out, inp, vdd, vdd, &t.pmos, 2e-6, 0.02e-6, 1.0)
            .unwrap();
        c
    }

    #[test]
    fn adds_caps_to_touched_nodes() {
        let mut c = small_inverter();
        let before = c.devices().len();
        let added = apply_parasitics(&mut c, &ParasiticConfig::default()).unwrap();
        assert!(added >= 3); // vdd, in, out at least
        assert_eq!(c.devices().len(), before + added);
    }

    #[test]
    fn wider_devices_mean_more_parasitics() {
        let cfg = ParasiticConfig::default();
        let t = tech_advanced();
        let total_cap = |w: f64| {
            let mut c = Circuit::new();
            let a = c.node("a");
            c.add_mosfet("M1", a, a, GND, GND, &t.nmos, w, 0.02e-6, 1.0)
                .unwrap();
            apply_parasitics(&mut c, &cfg).unwrap();
            c.capacitive_elements()
                .iter()
                .map(|&(_, _, cc)| cc)
                .sum::<f64>()
        };
        assert!(total_cap(10e-6) > total_cap(1e-6));
    }

    #[test]
    fn circuit_still_simulates_with_parasitics() {
        let mut c = small_inverter();
        apply_parasitics(&mut c, &ParasiticConfig::default()).unwrap();
        let op = spice::op(&c, &SimOptions::default()).unwrap();
        let out = c.find_node("out").unwrap();
        assert!(op.voltage(out) > 0.7); // input low -> output high
    }

    #[test]
    fn update_matches_fresh_application() {
        // Updating a template's parasitics after resizing must produce the
        // same circuit as applying parasitics to a freshly built circuit of
        // that size.
        let t = tech_advanced();
        let cfg = ParasiticConfig::default();
        let build = |w: f64| {
            let mut c = small_inverter();
            c.set_mosfet_geometry("MN", w, 0.02e-6, 1.0).unwrap();
            c
        };
        let mut fresh = build(5e-6);
        apply_parasitics(&mut fresh, &cfg).unwrap();
        let mut template = build(1e-6);
        apply_parasitics(&mut template, &cfg).unwrap();
        let mut updated = template.clone();
        updated
            .set_mosfet_geometry("MN", 5e-6, 0.02e-6, 1.0)
            .unwrap();
        let n = update_parasitics(&mut updated, &cfg).unwrap();
        assert!(n >= 3);
        let caps = |c: &Circuit| -> Vec<(usize, usize, f64)> { c.capacitive_elements() };
        assert_eq!(caps(&fresh), caps(&updated));
        let _ = t;
    }

    #[test]
    fn multipliers_scale_parasitics() {
        let cfg = ParasiticConfig::default();
        let t = tech_advanced();
        let cap_of = |m: f64| {
            let mut c = Circuit::new();
            let a = c.node("a");
            c.add_mosfet("M1", a, a, GND, GND, &t.nmos, 1e-6, 0.02e-6, m)
                .unwrap();
            apply_parasitics(&mut c, &cfg).unwrap();
            c.capacitive_elements()
                .iter()
                .map(|&(_, _, cc)| cc)
                .sum::<f64>()
        };
        assert!(cap_of(100.0) > cap_of(1.0) * 10.0);
    }
}
