//! Criterion benchmarks of the post-layout-scale sparse engine: scalar
//! Gilbert–Peierls refactorization vs the supernodal GEMM-blocked path on
//! extraction-style RC meshes (`circuits::mesh::build_rc_grid`) at
//! n = 200 / 500 / 1000 unknowns. Each iteration is one scan-free numeric
//! factorization — exactly what the simulator pays per Newton step once
//! the pivot sequence is recorded (the triangular solves are identical on
//! both paths and timed elsewhere). `BENCH_baseline.json` records the
//! reference numbers (acceptance target: supernodal ≥2× at n ≥ 500).

use bench::mesh_dc_system;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use linalg::{SparseLu, SupernodalMode};

fn bench_sparse_scaling(c: &mut Criterion) {
    for n in [200usize, 500, 1000] {
        let (csc, z) = mesh_dc_system(n);

        // Both kernels must agree before their times mean anything, and
        // the blocked path must actually be exercising dense panels.
        {
            let mut scalar = SparseLu::new();
            scalar.set_supernodal_mode(SupernodalMode::ForceScalar);
            scalar.factor(&csc).unwrap();
            let mut xs = Vec::new();
            scalar.solve_into(&z, &mut xs).unwrap();
            let mut blocked = SparseLu::new();
            blocked.set_supernodal_mode(SupernodalMode::ForceBlocked);
            blocked.factor(&csc).unwrap();
            assert!(blocked.supernodal_active(), "blocked path not engaged");
            assert!(
                blocked.wide_supernodes() > 0,
                "mesh produced no dense panels"
            );
            let mut xb = Vec::new();
            blocked.solve_into(&z, &mut xb).unwrap();
            for (a, b) in xs.iter().zip(&xb) {
                assert!((a - b).abs() <= 1e-10 * a.abs().max(1.0), "kernel mismatch");
            }
        }

        for (suffix, mode) in [
            ("scalar", SupernodalMode::ForceScalar),
            ("supernodal", SupernodalMode::ForceBlocked),
        ] {
            c.bench_function(&format!("newton_dc_kernel_mesh_n{n}_{suffix}"), |b| {
                let mut slu = SparseLu::new();
                slu.set_supernodal_mode(mode);
                slu.factor(&csc).unwrap();
                b.iter(|| {
                    slu.refactor_into(black_box(&csc)).unwrap();
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sparse_scaling
}
criterion_main!(benches);
