//! The level shifter — paper Table V row 2.
//!
//! A low-supply (VDDL) input inverter drives a classic cross-coupled-PMOS
//! level shifter on the high supply (VDDH), followed by a two-stage output
//! buffer. Rail decoupling arrays emulate the arrayed instances that give
//! the paper's version its ~1.2k device count.
//!
//! The paper reports *60 total specs* ("delay, rise, fall, power, current,
//! etc.") and ten sensitivity-critical devices. Here those 60 specs are a
//! **scenario plane**: 6 supply corners (VDDL ∈ {0.40, 0.45, 0.50} V ×
//! VDDH ∈ {0.70, 0.75} V) × 10 measurements per corner, evaluated through
//! the shared corner engine ([`SizingProblem::evaluate_corner`] /
//! `opt::Evaluator::evaluate_corners`) rather than a private loop — the
//! sign-off view ([`SizingProblem::evaluate`]) is the worst case over the
//! plane (10 constraints), and the corner-resolved 60-wide view is what
//! the per-corner critic mode consumes. The variable vector is a 16-wide
//! superset — 10 genuinely critical device sizes plus 6 near-inert ones
//! (decap array geometry, a dummy output load) that sensitivity analysis
//! is expected to prune, mirroring the paper's flow.

use opt::{SizingProblem, SpecResult};
use spice::{Circuit, SimOptions, SpiceError, Waveform, GND};

use crate::measure;
use crate::parasitics::{apply_parasitics, update_parasitics, ParasiticConfig};
use crate::tech::{tech_advanced, Technology};

/// Supply corners: (VDDL, VDDH) — the level shifter's scenario plane.
const SUPPLY_CORNERS: [(f64, f64); 6] = [
    (0.40, 0.70),
    (0.40, 0.75),
    (0.45, 0.70),
    (0.45, 0.75),
    (0.50, 0.70),
    (0.50, 0.75),
];

/// The level-shifter sizing problem (16 variables — 10 critical — with 10
/// measurements evaluated at each of 6 supply corners: the paper's 60
/// total specs as a corner plane).
#[derive(Debug, Clone)]
pub struct LevelShifter {
    tech: Technology,
    opts: SimOptions,
    parasitics: ParasiticConfig,
    /// Output load \[F\].
    c_load: f64,
    /// Prebuilt testbench topology (identical at every supply corner);
    /// per-candidate-per-corner evaluation clones it and re-targets
    /// devices and sources in place.
    template: Circuit,
    /// Node ids `(in, out)`.
    io: (usize, usize),
}

impl Default for LevelShifter {
    fn default() -> Self {
        Self::new()
    }
}

impl LevelShifter {
    /// Creates the problem on the generic advanced-node technology.
    pub fn new() -> Self {
        // Cross-coupled (bistable) circuits need gentler Newton steps.
        let opts = SimOptions {
            max_nr_iters: 400,
            v_limit: 0.25,
            ..Default::default()
        };
        let mut ls = LevelShifter {
            tech: tech_advanced(),
            opts,
            parasitics: ParasiticConfig::default(),
            c_load: 10e-15,
            template: Circuit::new(),
            io: (0, 0),
        };
        let (ckt, inp, out) = ls
            .build_topology()
            .expect("level-shifter template must build");
        ls.template = ckt;
        ls.io = (inp, out);
        ls
    }

    /// A hand-tuned near-feasible design.
    ///
    /// Layout: `[w_invn, w_invp, w_pd1, w_pd2, w_xp1, w_xp2, w_b1n, w_b1p,
    /// w_b2n, w_b2p, w_decl, l_decl, w_dech, l_dech, w_dummy, l_pd]`.
    pub fn nominal(&self) -> Vec<f64> {
        let u = 1e-6;
        vec![
            0.4 * u, // input inverter NMOS
            0.8 * u, // input inverter PMOS
            4.0 * u, // pull-down 1
            4.0 * u, // pull-down 2
            0.2 * u, // cross PMOS 1
            0.2 * u, // cross PMOS 2
            0.5 * u, // buffer1 NMOS
            1.0 * u, // buffer1 PMOS
            1.0 * u, // buffer2 NMOS
            2.0 * u, // buffer2 PMOS
            1.0 * u, // decap-L width      (non-critical)
            0.1e-6,  // decap-L length     (non-critical)
            1.0 * u, // decap-H width      (non-critical)
            0.1e-6,  // decap-H length     (non-critical)
            0.3 * u, // dummy load width   (non-critical)
            0.02e-6, // pull-down length   (critical)
        ]
    }

    /// Builds the testbench topology once at the center corner, with the
    /// nominal sizing applied (the sizing lives exclusively in
    /// [`LevelShifter::resize`]; corner retargeting in
    /// [`LevelShifter::build`]).
    fn build_topology(&self) -> Result<(Circuit, usize, usize), SpiceError> {
        let t = &self.tech;
        let l = t.l_min;
        let u = 1e-6;
        let l_pd = l;
        let (vddl_v, vddh_v) = (0.45, 0.75);
        let mut ckt = Circuit::new();
        let vddl = ckt.node("vddl");
        let vddh = ckt.node("vddh");
        ckt.add_vsource("VDDL", vddl, GND, Waveform::Dc(vddl_v))?;
        ckt.add_vsource("VDDH", vddh, GND, Waveform::Dc(vddh_v))?;

        let inp = ckt.node("in");
        ckt.add_vsource(
            "VIN",
            inp,
            GND,
            Waveform::pulse(0.0, vddl_v, 100e-12, 10e-12, 10e-12, 500e-12, 1000e-12),
        )?;
        // Input inverter (VDDL domain) generates the complement.
        let inb = ckt.node("inb");
        ckt.add_mosfet("M_invN", inb, inp, GND, GND, &t.nmos, u, l, 1.0)?;
        ckt.add_mosfet("M_invP", inb, inp, vddl, vddl, &t.pmos, u, l, 1.0)?;
        // Cross-coupled core (VDDH domain): pull-downs driven by in/inb.
        let q = ckt.node("q");
        let qb = ckt.node("qb");
        ckt.add_mosfet("M_pd1", qb, inp, GND, GND, &t.nmos, u, l_pd, 1.0)?;
        ckt.add_mosfet("M_pd2", q, inb, GND, GND, &t.nmos, u, l_pd, 1.0)?;
        ckt.add_mosfet("M_xp1", qb, q, vddh, vddh, &t.pmos, u, l, 1.0)?;
        ckt.add_mosfet("M_xp2", q, qb, vddh, vddh, &t.pmos, u, l, 1.0)?;
        // Two-stage output buffer from q (in-phase with the input).
        let b1 = ckt.node("b1");
        let out = ckt.node("out");
        ckt.add_mosfet("M_b1n", b1, q, GND, GND, &t.nmos, u, l, 1.0)?;
        ckt.add_mosfet("M_b1p", b1, q, vddh, vddh, &t.pmos, u, l, 1.0)?;
        ckt.add_mosfet("M_b2n", out, b1, GND, GND, &t.nmos, u, l, 1.0)?;
        ckt.add_mosfet("M_b2p", out, b1, vddh, vddh, &t.pmos, u, l, 1.0)?;
        ckt.add_capacitor("CL", out, GND, self.c_load)?;
        // Dummy load device (inert diode-off NMOS on the output).
        ckt.add_mosfet("M_dummy", out, GND, GND, GND, &t.nmos, u, l, 1.0)?;
        // Rail decap arrays: the "arrayed instances" that dominate the
        // expanded device count (~600 each).
        ckt.add_mosfet("M_decL", GND, vddl, GND, GND, &t.nmos, u, l, 595.0)?;
        ckt.add_mosfet("M_decH", GND, vddh, GND, GND, &t.nmos, u, l, 595.0)?;
        self.resize(&mut ckt, &self.nominal())?;
        apply_parasitics(&mut ckt, &self.parasitics)?;
        Ok((ckt, inp, out))
    }

    /// Writes every design-dependent device value for the vector `x` —
    /// the single source of truth for the variable→device mapping.
    fn resize(&self, ckt: &mut Circuit, x: &[f64]) -> Result<(), SpiceError> {
        let t = &self.tech;
        let l = t.l_min;
        let l_pd = x[15].max(t.l_min);
        ckt.set_mosfet_geometry("M_invN", x[0], l, 1.0)?;
        ckt.set_mosfet_geometry("M_invP", x[1], l, 1.0)?;
        ckt.set_mosfet_geometry("M_pd1", x[2], l_pd, 1.0)?;
        ckt.set_mosfet_geometry("M_pd2", x[3], l_pd, 1.0)?;
        ckt.set_mosfet_geometry("M_xp1", x[4], l, 1.0)?;
        ckt.set_mosfet_geometry("M_xp2", x[5], l, 1.0)?;
        ckt.set_mosfet_geometry("M_b1n", x[6], l, 1.0)?;
        ckt.set_mosfet_geometry("M_b1p", x[7], l, 1.0)?;
        ckt.set_mosfet_geometry("M_b2n", x[8], l, 1.0)?;
        ckt.set_mosfet_geometry("M_b2p", x[9], l, 1.0)?;
        ckt.set_mosfet_geometry("M_decL", x[10], x[11].max(l), 595.0)?;
        ckt.set_mosfet_geometry("M_decH", x[12], x[13].max(l), 595.0)?;
        ckt.set_mosfet_geometry("M_dummy", x[14], l, 1.0)?;
        Ok(())
    }

    /// Instantiates a candidate at a supply corner: clones the prebuilt
    /// template, re-sizes devices and parasitics, and re-targets the
    /// supply and input sources in place (no netlist rebuild; the topology
    /// fingerprint is unchanged so pooled solver state carries across
    /// candidates *and* corners).
    fn build(
        &self,
        x: &[f64],
        vddl_v: f64,
        vddh_v: f64,
    ) -> Result<(Circuit, usize, usize), SpiceError> {
        let mut ckt = self.template.clone();
        self.resize(&mut ckt, x)?;
        ckt.set_source_dc("VDDL", vddl_v)?;
        ckt.set_source_dc("VDDH", vddh_v)?;
        ckt.set_source_wave(
            "VIN",
            Waveform::pulse(0.0, vddl_v, 100e-12, 10e-12, 10e-12, 500e-12, 1000e-12),
        )?;
        update_parasitics(&mut ckt, &self.parasitics)?;
        Ok((ckt, self.io.0, self.io.1))
    }

    /// Expanded MOS count of the netlist (array-aware), ~1.2k as in the
    /// paper's Table V.
    pub fn device_count(&self) -> f64 {
        let x = self.nominal();
        self.build(&x, 0.45, 0.75)
            .map(|(c, _, _)| c.expanded_mosfet_count())
            .unwrap_or(0.0)
    }
}

impl SizingProblem for LevelShifter {
    fn dim(&self) -> usize {
        16
    }

    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let u = 1e-6;
        let mut lb = vec![0.1 * u; 16];
        let mut ub = vec![8.0 * u; 16];
        // Decap lengths and the pull-down length are lengths, not widths.
        lb[11] = 0.02 * u;
        ub[11] = 0.5 * u;
        lb[13] = 0.02 * u;
        ub[13] = 0.5 * u;
        lb[15] = 0.02 * u;
        ub[15] = 0.1 * u;
        (lb, ub)
    }

    fn num_constraints(&self) -> usize {
        10
    }

    fn num_corners(&self) -> usize {
        SUPPLY_CORNERS.len()
    }

    fn corner_name(&self, k: usize) -> String {
        let (vddl, vddh) = SUPPLY_CORNERS[k];
        format!("vddl{vddl:.2}_vddh{vddh:.2}")
    }

    fn name(&self) -> &str {
        "level-shifter"
    }

    fn variable_names(&self) -> Vec<String> {
        [
            "w_invn", "w_invp", "w_pd1", "w_pd2", "w_xp1", "w_xp2", "w_b1n", "w_b1p", "w_b2n",
            "w_b2p", "w_decl", "l_decl", "w_dech", "l_dech", "w_dummy", "l_pd",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    fn nominal(&self) -> Vec<f64> {
        self.nominal()
    }

    /// One supply corner of the scenario plane: the full 10-measurement
    /// transient suite at `(VDDL, VDDH)` pair `k`. The worst-case fold
    /// across all six corners (the paper's 60 total specs) lives in the
    /// shared engine — [`SizingProblem::evaluate`] below and the
    /// candidate×corner grid of `opt::Evaluator`.
    fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
        let m = self.num_constraints();
        let (vddl_v, vddh_v) = SUPPLY_CORNERS[k];
        // Deterministic fault-plane scope, keyed by candidate bits × corner.
        let _scope = spice::fault::candidate_scope(spice::fault::candidate_key(x, k as u64));
        // Pooled workspace: identical topology at every corner, so the
        // recorded solver state carries across corners and candidates.
        let mut ws = spice::lease_workspace(&self.template);
        let (ckt, inp, out) = match self.build(x, vddl_v, vddh_v) {
            Ok(v) => v,
            Err(e) => {
                return SpecResult::failed_with(
                    m,
                    crate::diag_from_spice(&e, "level-shifter netlist"),
                )
            }
        };
        let tr = match spice::transient_with_workspace(&ckt, &self.opts, 1.1e-9, 2.5e-12, &mut ws) {
            Ok(tr) => tr,
            Err(e) => {
                return SpecResult::failed_with(
                    m,
                    crate::diag_from_spice(&e, "level-shifter transient"),
                )
            }
        };
        let w_in = tr.waveform(inp);
        let w_out = tr.waveform(out);
        let after = |w: &[(f64, f64)], t0: f64| -> Vec<(f64, f64)> {
            w.iter().copied().filter(|&(tt, _)| tt >= t0).collect()
        };
        // Rising edge at 100 ps, falling at 610 ps.
        let in_rise = measure::crossing_time(&after(&w_in, 50e-12), vddl_v / 2.0, true);
        let out_rise = measure::crossing_time(&after(&w_out, 50e-12), vddh_v / 2.0, true);
        let in_fall = measure::crossing_time(&after(&w_in, 500e-12), vddl_v / 2.0, false);
        let out_fall = measure::crossing_time(&after(&w_out, 500e-12), vddh_v / 2.0, false);
        let (d_rise, d_fall) = match (in_rise, out_rise, in_fall, out_fall) {
            (Some(a), Some(b), Some(c), Some(d)) if b > a && d > c => (b - a, d - c),
            _ => {
                // Functional failure at this corner: every measurement
                // heavily violated (no energy figure — the shifter never
                // shifted).
                return SpecResult {
                    failure: None,
                    objective: 0.0,
                    constraints: vec![3.0; m],
                };
            }
        };
        // Output edge rates (10%..90%).
        let rise_t = {
            let w = after(&w_out, 50e-12);
            let a = measure::crossing_time(&w, 0.1 * vddh_v, true);
            let b = measure::crossing_time(&w, 0.9 * vddh_v, true);
            match (a, b) {
                (Some(a), Some(b)) if b > a => b - a,
                _ => 1.0,
            }
        };
        let fall_t = {
            let w = after(&w_out, 500e-12);
            let a = measure::crossing_time(&w, 0.9 * vddh_v, false);
            let b = measure::crossing_time(&w, 0.1 * vddh_v, false);
            match (a, b) {
                (Some(a), Some(b)) if b > a => b - a,
                _ => 1.0,
            }
        };
        // Static levels and currents at the end of each phase.
        let v_high = tr.sample(out, 550e-12);
        let v_low = tr.sample(out, 1.05e-9);
        let i_static_high = tr
            .source_current(&ckt, "VDDH", tr.len() - 1)
            .map(|i| i.abs())
            .unwrap_or(1.0);
        // Peak VDDH current during the rising transition (contention).
        let mut i_peak = 0.0_f64;
        for (i, &tt) in tr.times().iter().enumerate() {
            if (0.1e-9..0.4e-9).contains(&tt) {
                if let Ok(ih) = tr.source_current(&ckt, "VDDH", i) {
                    i_peak = i_peak.max(ih.abs());
                }
            }
        }
        // Static VDDL current at input-high (inverter leakage).
        let i_static_low = tr
            .source_current(&ckt, "VDDL", tr.len() - 1)
            .map(|i| i.abs())
            .unwrap_or(1.0);
        let energy = tr
            .delivered_charge(&ckt, "VDDH", 0.0, 1.1e-9)
            .map(|q| (q * vddh_v).abs())
            .unwrap_or(1.0);

        // The ten measurements of this corner.
        let constraints = vec![
            (d_rise - 150e-12) / 150e-12,      // rise delay
            (d_fall - 150e-12) / 150e-12,      // fall delay
            (rise_t - 100e-12) / 100e-12,      // rise time
            (fall_t - 100e-12) / 100e-12,      // fall time
            (0.95 * vddh_v - v_high) / vddh_v, // output high
            (v_low - 0.05 * vddh_v) / vddh_v,  // output low
            (i_static_high - 3e-6) / 3e-6,     // static VDDH current
            (i_static_low - 3e-6) / 3e-6,      // static VDDL current
            (i_peak - 4e-3) / 4e-3,            // contention peak
            (energy - 150e-15) / 150e-15,      // energy per cycle
        ];
        SpecResult {
            failure: None,
            // Per-corner energy in pJ; the sign-off objective is the worst
            // corner's energy after the shared fold.
            objective: energy * 1e12,
            constraints,
        }
    }

    fn evaluate(&self, x: &[f64]) -> SpecResult {
        opt::evaluate_worst_case(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixty_specs_sixteen_vars() {
        let ls = LevelShifter::new();
        assert_eq!(ls.dim(), 16);
        // The paper's 60 total specs: 10 measurements × 6 supply corners,
        // now expressed as the scenario plane of the shared corner engine.
        assert_eq!(ls.num_constraints(), 10);
        assert_eq!(ls.num_corners(), 6);
        assert_eq!(ls.num_constraints() * ls.num_corners(), 60);
        assert_eq!(ls.variable_names().len(), 16);
        // Corner labels name the supply pair.
        assert_eq!(ls.corner_name(0), "vddl0.40_vddh0.70");
        assert_eq!(ls.corner_name(5), "vddl0.50_vddh0.75");
    }

    #[test]
    fn device_count_matches_paper_scale() {
        let ls = LevelShifter::new();
        let n = ls.device_count();
        assert!(n > 1000.0 && n < 1500.0, "expanded count {n}");
    }

    #[test]
    fn nominal_shifts_levels() {
        let ls = LevelShifter::new();
        // Functional at every corner of the plane: output-high/low met.
        for corner in 0..ls.num_corners() {
            let spec = ls.evaluate_corner(&ls.nominal(), corner);
            assert_eq!(spec.constraints.len(), 10);
            assert!(!spec.is_failure());
            assert!(
                spec.constraints[4] <= 0.0,
                "{} output-high violated: {}",
                ls.corner_name(corner),
                spec.constraints[4]
            );
            assert!(
                spec.constraints[5] <= 0.0,
                "{} output-low violated: {}",
                ls.corner_name(corner),
                spec.constraints[5]
            );
        }
        // The sign-off view is the worst case over the plane — still
        // functional at the merged level.
        let merged = ls.evaluate(&ls.nominal());
        assert_eq!(merged.constraints.len(), 10);
        assert!(!merged.is_failure());
        assert!(merged.constraints[4] <= 0.0 && merged.constraints[5] <= 0.0);
        // Worst-case objective: the most energy-hungry corner.
        let max_corner = (0..ls.num_corners())
            .map(|k| ls.evaluate_corner(&ls.nominal(), k).objective)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(merged.objective.to_bits(), max_corner.to_bits());
    }

    #[test]
    fn weak_pulldowns_fail() {
        let ls = LevelShifter::new();
        let mut x = ls.nominal();
        // Tiny pull-downs + huge cross PMOS: the shifter cannot flip.
        x[2] = 0.1e-6;
        x[3] = 0.1e-6;
        x[4] = 8e-6;
        x[5] = 8e-6;
        let spec = ls.evaluate(&x);
        assert!(!spec.feasible());
    }
}
