//! Feature standardization.

use linalg::Matrix;

/// Per-column standardizer: `x' = (x − mean) / std`.
///
/// Constant columns get `std = 1` so they map to zero rather than dividing
/// by zero. Used to condition both critic inputs (designs and deltas) and
/// critic targets (specs with wildly different units).
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use nn::Scaler;
///
/// let x = Matrix::from_rows(&[&[1.0, 100.0], &[3.0, 300.0]]);
/// let sc = Scaler::fit(&x);
/// let t = sc.transform(&x);
/// assert!((t[(0, 0)] + 1.0).abs() < 1e-12);
/// assert!((t[(1, 1)] - 1.0).abs() < 1e-12);
/// let back = sc.inverse_transform(&t);
/// assert!((back[(1, 1)] - 300.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Scaler {
    /// Fits mean/std per column (population standard deviation).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no rows.
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot fit a scaler on an empty matrix");
        let n = x.rows() as f64;
        let mut mean = vec![0.0; x.cols()];
        for i in 0..x.rows() {
            for (j, m) in mean.iter_mut().enumerate() {
                *m += x[(i, j)];
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0; x.cols()];
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                std[j] += (x[(i, j)] - mean[j]).powi(2);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Scaler { mean, std }
    }

    /// Number of columns this scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Standardizes a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.dim(), "column mismatch");
        Matrix::from_fn(x.rows(), x.cols(), |i, j| {
            (x[(i, j)] - self.mean[j]) / self.std[j]
        })
    }

    /// Standardizes a matrix into a caller-owned buffer (reshaped to fit,
    /// reusing its allocation).
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn transform_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(x.cols(), self.dim(), "column mismatch");
        out.copy_from(x);
        for i in 0..out.rows() {
            for ((v, &m), &s) in out.row_mut(i).iter_mut().zip(&self.mean).zip(&self.std) {
                *v = (*v - m) / s;
            }
        }
    }

    /// Inverts [`Scaler::transform`].
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn inverse_transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.dim(), "column mismatch");
        Matrix::from_fn(x.rows(), x.cols(), |i, j| {
            x[(i, j)] * self.std[j] + self.mean[j]
        })
    }

    /// Inverts [`Scaler::transform`] into a caller-owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn inverse_transform_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(x.cols(), self.dim(), "column mismatch");
        out.copy_from(x);
        for i in 0..out.rows() {
            for ((v, &m), &s) in out.row_mut(i).iter_mut().zip(&self.mean).zip(&self.std) {
                *v = *v * s + m;
            }
        }
    }

    /// Standardizes a single row vector.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the fitted data.
    pub fn transform_row(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "length mismatch");
        x.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// Per-column scale factors (the fitted standard deviations).
    pub fn scales(&self) -> &[f64] {
        &self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]);
        let sc = Scaler::fit(&x);
        let t = sc.transform(&x);
        for j in 0..2 {
            let col: Vec<f64> = (0..3).map(|i| t[(i, j)]).collect();
            let mean: f64 = col.iter().sum::<f64>() / 3.0;
            let var: f64 = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_is_safe() {
        let x = Matrix::from_rows(&[&[5.0, 1.0], &[5.0, 2.0]]);
        let sc = Scaler::fit(&x);
        let t = sc.transform(&x);
        assert_eq!(t[(0, 0)], 0.0);
        assert_eq!(t[(1, 0)], 0.0);
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn roundtrip() {
        let x = Matrix::from_rows(&[&[1.5, -3.0], &[0.2, 8.0], &[-1.0, 2.5]]);
        let sc = Scaler::fit(&x);
        let back = sc.inverse_transform(&sc.transform(&x));
        for i in 0..3 {
            for j in 0..2 {
                assert!((back[(i, j)] - x[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn row_transform_matches_matrix_transform() {
        let x = Matrix::from_rows(&[&[1.0, 4.0], &[3.0, 8.0]]);
        let sc = Scaler::fit(&x);
        let t = sc.transform(&x);
        let row = sc.transform_row(&[1.0, 4.0]);
        assert!((row[0] - t[(0, 0)]).abs() < 1e-15);
        assert!((row[1] - t[(0, 1)]).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty() {
        let _ = Scaler::fit(&Matrix::zeros(0, 2));
    }
}
