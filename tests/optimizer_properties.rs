//! Property-based tests on optimizer-facing invariants.

use opt::{Fom, SpecResult};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 4: the FoM of a feasible design is exactly w0·f0.
    #[test]
    fn fom_of_feasible_is_objective_only(
        obj in -10.0..10.0f64,
        slack in proptest::collection::vec(0.0..5.0f64, 1..8),
    ) {
        let cons: Vec<f64> = slack.iter().map(|s| -s).collect();
        let fom = Fom::uniform(0.7, cons.len());
        let spec = SpecResult { failure: None, objective: obj, constraints: cons };
        prop_assert!((fom.value(&spec) - 0.7 * obj).abs() < 1e-12);
    }

    /// Eq. 4: each violated constraint adds at most 1 regardless of depth.
    #[test]
    fn fom_violation_bounded(
        viol in proptest::collection::vec(0.0..1e9f64, 1..8),
    ) {
        let fom = Fom::uniform(0.0, viol.len());
        let spec = SpecResult { failure: None, objective: 0.0, constraints: viol.clone() };
        let g = fom.value(&spec);
        prop_assert!(g <= viol.len() as f64 + 1e-9);
        prop_assert!(g >= 0.0);
    }

    /// FoM is monotone in every constraint value.
    #[test]
    fn fom_monotone_in_constraints(
        base in proptest::collection::vec(-2.0..2.0f64, 3),
        bump in 0.0..3.0f64,
    ) {
        let fom = Fom::uniform(0.0, 3);
        let s0 = SpecResult { failure: None, objective: 0.0, constraints: base.clone() };
        let mut worse = base.clone();
        worse[1] += bump;
        let s1 = SpecResult { failure: None, objective: 0.0, constraints: worse };
        prop_assert!(fom.value(&s1) >= fom.value(&s0) - 1e-12);
    }

    /// Unit-cube mapping round-trips inside arbitrary boxes.
    #[test]
    fn unit_roundtrip(
        lb in proptest::collection::vec(-100.0..100.0f64, 1..6),
        width in proptest::collection::vec(0.001..100.0f64, 1..6),
        t in proptest::collection::vec(0.0..1.0f64, 1..6),
    ) {
        let n = lb.len().min(width.len()).min(t.len());
        let lb = &lb[..n];
        let ub: Vec<f64> = lb.iter().zip(&width[..n]).map(|(l, w)| l + w).collect();
        let x: Vec<f64> = t[..n]
            .iter()
            .zip(lb.iter().zip(&ub))
            .map(|(&tt, (&l, &u))| l + tt * (u - l))
            .collect();
        let u = opt::to_unit(&x, lb, &ub);
        let back = opt::from_unit(&u, lb, &ub);
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Robust clipping never reorders the bulk: values inside [p10, p90]
    /// pass through unchanged.
    #[test]
    fn robust_clip_preserves_bulk(
        mut vals in proptest::collection::vec(-50.0..50.0f64, 10..60),
    ) {
        let (lo, hi) = opt::robust_clip_bounds(&vals);
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p10 = vals[(vals.len() - 1) / 10];
        let p90 = vals[(vals.len() - 1) * 9 / 10];
        prop_assert!(lo <= p10 + 1e-9);
        prop_assert!(hi >= p90 - 1e-9);
    }
}

/// Pseudo-sample invariants on random populations.
mod pseudo_props {
    use proptest::prelude::*;
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn pseudo_sample_destination_consistency(
            n in 2usize..8,
            d in 1usize..5,
            seed in 0u64..1000,
        ) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let xs: Vec<Vec<f64>> =
                (0..n).map(|_| (0..d).map(|_| rng.gen::<f64>()).collect()).collect();
            let fs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
            let (inp, out) = dnn_opt::pseudo::all_pseudo_samples(&xs, &fs);
            prop_assert_eq!(inp.rows(), n * n);
            for r in 0..n * n {
                let row = inp.row(r);
                let dest: Vec<f64> =
                    (0..d).map(|k| row[k] + row[d + k]).collect();
                let j = out[(r, 0)] as usize;
                for k in 0..d {
                    prop_assert!((dest[k] - xs[j][k]).abs() < 1e-12);
                }
            }
        }
    }
}
