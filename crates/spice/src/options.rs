//! Simulator tuning knobs.

/// Tolerances and iteration limits shared by all analyses.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Relative convergence tolerance on node voltages.
    pub reltol: f64,
    /// Absolute voltage tolerance \[V\].
    pub vabstol: f64,
    /// Maximum Newton-Raphson iterations per solve.
    pub max_nr_iters: usize,
    /// Baseline conductance from every node to ground \[S\].
    pub gmin: f64,
    /// Maximum node-voltage change per NR iteration \[V\] (damping).
    pub v_limit: f64,
    /// Simulation temperature \[K\].
    pub temp: f64,
    /// Maximum number of times the transient engine may halve the timestep
    /// when a step refuses to converge.
    pub max_step_halvings: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            reltol: 1e-4,
            vabstol: 1e-7,
            max_nr_iters: 150,
            gmin: 1e-12,
            v_limit: 0.5,
            temp: 300.0,
            max_step_halvings: 14,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = SimOptions::default();
        assert!(o.reltol > 0.0 && o.reltol < 1.0);
        assert!(o.vabstol > 0.0);
        assert!(o.max_nr_iters >= 50);
        assert!(o.gmin > 0.0 && o.gmin < 1e-9);
        assert!(o.v_limit > 0.0);
        assert!(o.temp > 0.0);
    }
}
