//! Level-1+ MOSFET model with smooth subthreshold interpolation.
//!
//! The model is a square-law (SPICE Level-1) device augmented with:
//!
//! - an EKV-style softplus interpolation of the overdrive, giving an
//!   exponential subthreshold region with slope factor `n` and a smooth
//!   (C^∞) transition into strong inversion — crucial for Newton-Raphson
//!   robustness;
//! - channel-length modulation `λ = clm / L` applied in both triode and
//!   saturation, which makes the drain current C¹ across the
//!   triode/saturation boundary;
//! - body effect `Vth = Vth0 + γ(√(φ+Vsb) − √φ)`;
//! - symmetric conduction (automatic drain/source swap for negative Vds);
//! - geometry-derived constant terminal capacitances (Meyer-style, evaluated
//!   once — a documented simplification that keeps the dynamic MNA matrix
//!   linear);
//! - thermal (`4kTγ_n·gm`) and flicker (`KF·Id^AF/(Cox·L²·f)`) noise.
//!
//! PMOS devices are evaluated in an internal "primed" frame with all
//! voltages negated, which keeps every formula in NMOS form.

/// Channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// Operating region, reported for constraint checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosRegion {
    /// Effectively off (overdrive below ~1 mV).
    Cutoff,
    /// Linear / ohmic region.
    Triode,
    /// Saturation.
    Saturation,
}

/// Model card: technology parameters shared by devices of one flavor.
///
/// All quantities are SI. `vth0` is the threshold magnitude (positive for
/// both polarities; the sign convention is handled internally).
#[derive(Debug, Clone, PartialEq)]
pub struct MosModel {
    /// Channel polarity.
    pub polarity: MosPolarity,
    /// Zero-bias threshold voltage magnitude \[V\].
    pub vth0: f64,
    /// Transconductance parameter µ·Cox \[A/V²\].
    pub kp: f64,
    /// Channel-length-modulation coefficient \[V⁻¹·m\]; `λ = clm / L`.
    pub clm: f64,
    /// Body-effect coefficient γ \[√V\].
    pub gamma: f64,
    /// Surface potential 2φF \[V\].
    pub phi: f64,
    /// Subthreshold slope factor n (≈1.2–1.6).
    pub nsub: f64,
    /// Gate-oxide capacitance per area \[F/m²\].
    pub cox: f64,
    /// Gate overlap capacitance per width \[F/m\].
    pub cov: f64,
    /// Junction capacitance per area \[F/m²\].
    pub cj: f64,
    /// Source/drain diffusion length \[m\] (sets junction area `W·ldiff`).
    pub ldiff: f64,
    /// Flicker-noise coefficient KF.
    pub kf: f64,
    /// Flicker-noise current exponent AF.
    pub af: f64,
    /// Thermal-noise gamma factor (2/3 for long channel).
    pub noise_gamma: f64,
}

impl MosModel {
    /// Channel-length modulation λ for a given drawn length.
    pub fn lambda(&self, l: f64) -> f64 {
        self.clm / l
    }

    /// The model card re-evaluated at an ambient temperature `temp` \[K\] —
    /// the standard SPICE temperature update, applied once per corner at
    /// setup time rather than per device evaluation:
    ///
    /// - threshold magnitude drops linearly, `Vth(T) = Vth0 − TC·(T − T_NOM)`
    ///   with [`VTH_TEMP_COEFF`] ≈ 0.8 mV/K;
    /// - mobility (and with it `KP`) degrades as `(T_NOM/T)^1.5`
    ///   ([`MOBILITY_TEMP_EXP`]).
    ///
    /// Together these reproduce the first-order silicon behaviour: hot
    /// devices are weaker at full gate drive (mobility dominates) but leak
    /// more near threshold (temperature inversion). At `temp == T_NOM` the
    /// returned card is bit-identical to `self`, so a nominal corner is
    /// exactly the legacy model.
    ///
    /// The thermal-noise temperature is *not* baked in here: the noise
    /// analyses read it from `SimOptions::temp` at evaluation time (see
    /// [`mos_noise_psd`]), so the same corner temperature must be written
    /// there too.
    ///
    /// # Panics
    ///
    /// Panics if `temp` is not a positive, finite Kelvin temperature.
    pub fn at_temperature(&self, temp: f64) -> MosModel {
        assert!(
            temp.is_finite() && temp > 0.0,
            "temperature must be positive Kelvin, got {temp}"
        );
        if temp == T_NOM {
            return self.clone();
        }
        let mut card = self.clone();
        card.vth0 = self.vth0 - VTH_TEMP_COEFF * (temp - T_NOM);
        card.kp = self.kp * (T_NOM / temp).powf(MOBILITY_TEMP_EXP);
        card
    }
}

/// Nominal model-card temperature \[K\] — the temperature at which every
/// [`MosModel`] card's parameters are specified.
pub const T_NOM: f64 = 300.0;
/// Threshold-voltage temperature coefficient \[V/K\]: `|Vth|` shrinks by
/// ~0.8 mV per Kelvin of heating (typical bulk-CMOS magnitude).
pub const VTH_TEMP_COEFF: f64 = 0.8e-3;
/// Mobility power-law temperature exponent: `µ(T) ∝ T^−1.5`.
pub const MOBILITY_TEMP_EXP: f64 = 1.5;

/// Thermal voltage kT/q at 300 K.
pub const VT_300K: f64 = 0.025852;
/// Boltzmann constant \[J/K\].
pub const BOLTZMANN: f64 = 1.380649e-23;

/// Instantaneous large-signal evaluation of a MOSFET at a bias point.
///
/// `id` is the current flowing *into the drain terminal*; `gm`, `gds`, `gmb`
/// are its partial derivatives with respect to `vgs`, `vds`, `vbs` at the
/// bias point (valid for both polarities and for reversed conduction).
#[derive(Debug, Clone, Copy)]
pub struct MosEval {
    /// Drain terminal current \[A\] (into the drain).
    pub id: f64,
    /// ∂id/∂vgs \[S\].
    pub gm: f64,
    /// ∂id/∂vds \[S\].
    pub gds: f64,
    /// ∂id/∂vbs \[S\].
    pub gmb: f64,
    /// Effective threshold magnitude in the internal frame \[V\].
    pub vth: f64,
    /// Saturation voltage (effective overdrive) \[V\], always ≥ 0.
    pub vdsat: f64,
    /// Saturation margin `|vds| − vdsat` \[V\]; positive in saturation.
    pub vsat_margin: f64,
    /// Operating region.
    pub region: MosRegion,
    /// True if the conduction direction is reversed (physical source and
    /// drain exchanged because vds had the "wrong" sign).
    pub reversed: bool,
}

/// Numerically stable softplus and its derivative (the logistic sigmoid).
fn softplus(x: f64) -> (f64, f64) {
    if x > 40.0 {
        (x, 1.0)
    } else if x < -40.0 {
        let e = x.exp();
        (e, e)
    } else {
        let e = x.exp();
        ((1.0 + e).ln(), e / (1.0 + e))
    }
}

/// Normal-mode (vds ≥ 0) drain current and partials in the internal NMOS
/// frame. Returns `(id, d/dvgs, d/dvds, d/dvbs, vth, vdsat, region)`.
#[allow(clippy::type_complexity)]
fn normal_mode(
    model: &MosModel,
    beta: f64,
    lambda: f64,
    vgs: f64,
    vds: f64,
    vbs: f64,
) -> (f64, f64, f64, f64, f64, f64, MosRegion) {
    // Body effect; vsb = -vbs, clamped to keep the sqrt real.
    let arg = (model.phi - vbs).max(1e-3);
    let sq = arg.sqrt();
    let vth = model.vth0 + model.gamma * (sq - model.phi.sqrt());
    let dvth_dvbs = -model.gamma / (2.0 * sq);

    // Smooth overdrive via softplus on scale 2·n·Vt.
    let scale = 2.0 * model.nsub * VT_300K;
    let x = (vgs - vth) / scale;
    let (sp, sig) = softplus(x);
    let vov = (scale * sp).max(1e-12);
    let dvov_dvgs = sig;
    let dvov_dvbs = -sig * dvth_dvbs;

    let vdsat = vov;
    let (id, did_dvov, did_dvds, region) = if vds >= vdsat {
        let clm_f = 1.0 + lambda * vds;
        let id = 0.5 * beta * vov * vov * clm_f;
        (
            id,
            beta * vov * clm_f,
            0.5 * beta * vov * vov * lambda,
            MosRegion::Saturation,
        )
    } else {
        let clm_f = 1.0 + lambda * vds;
        let id = beta * (vov - 0.5 * vds) * vds * clm_f;
        (
            id,
            beta * vds * clm_f,
            beta * ((vov - vds) * clm_f + (vov - 0.5 * vds) * vds * lambda),
            MosRegion::Triode,
        )
    };
    let region = if vov < 1.5e-3 {
        MosRegion::Cutoff
    } else {
        region
    };

    let f1 = did_dvov * dvov_dvgs;
    let f2 = did_dvds;
    let f3 = did_dvov * dvov_dvbs;
    (id, f1, f2, f3, vth, vdsat, region)
}

/// Evaluates the model at terminal voltages (relative to the source):
/// `vgs`, `vds`, `vbs` are the *physical* terminal voltage differences.
pub fn eval_mos(model: &MosModel, w: f64, l: f64, m: f64, vgs: f64, vds: f64, vbs: f64) -> MosEval {
    let beta = model.kp * (w * m) / l;
    let lambda = model.lambda(l);

    // Map PMOS into the NMOS ("primed") frame.
    let (sign, vgs_p, vds_p, vbs_p) = match model.polarity {
        MosPolarity::Nmos => (1.0, vgs, vds, vbs),
        MosPolarity::Pmos => (-1.0, -vgs, -vds, -vbs),
    };

    let (id_p, gm, gds, gmb, vth, vdsat, region, reversed) = if vds_p >= 0.0 {
        let (id, f1, f2, f3, vth, vdsat, region) =
            normal_mode(model, beta, lambda, vgs_p, vds_p, vbs_p);
        (id, f1, f2, f3, vth, vdsat, region, false)
    } else {
        // Swap drain and source: evaluate at (vgd, vsd, vbd).
        let (id_s, f1, f2, f3, vth, vdsat, region) =
            normal_mode(model, beta, lambda, vgs_p - vds_p, -vds_p, vbs_p - vds_p);
        let id = -id_s;
        let gm = -f1;
        let gds = f1 + f2 + f3;
        let gmb = -f3;
        (id, gm, gds, gmb, vth, vdsat, region, true)
    };

    // Polarity mapping: id flips with sign, derivatives are invariant
    // (two sign flips cancel).
    let id = sign * id_p;
    // A tiny conductance floor keeps the MNA matrix well conditioned when
    // the device is off.
    let gds = gds + 1e-12;

    MosEval {
        id,
        gm,
        gds,
        gmb,
        vth,
        vdsat,
        vsat_margin: vds_p.abs() - vdsat,
        region,
        reversed,
    }
}

/// Geometry-derived constant capacitances of a device \[F\].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosCaps {
    /// Gate-source capacitance.
    pub cgs: f64,
    /// Gate-drain capacitance.
    pub cgd: f64,
    /// Gate-bulk capacitance.
    pub cgb: f64,
    /// Drain-bulk junction capacitance.
    pub cdb: f64,
    /// Source-bulk junction capacitance.
    pub csb: f64,
}

/// Computes the constant (saturation-mode Meyer) capacitance set.
pub fn mos_caps(model: &MosModel, w: f64, l: f64, m: f64) -> MosCaps {
    let wm = w * m;
    let cox_total = model.cox * wm * l;
    MosCaps {
        cgs: model.cov * wm + (2.0 / 3.0) * cox_total,
        cgd: model.cov * wm,
        cgb: 0.1 * cox_total,
        cdb: model.cj * wm * model.ldiff,
        csb: model.cj * wm * model.ldiff,
    }
}

/// Channel noise-current power spectral density \[A²/Hz\] at frequency `f`,
/// given the operating point (`gm`, `id`) and temperature `temp` \[K\].
pub fn mos_noise_psd(model: &MosModel, l: f64, gm: f64, id: f64, f: f64, temp: f64) -> f64 {
    let thermal = 4.0 * BOLTZMANN * temp * model.noise_gamma * gm.abs();
    let flicker = if f > 0.0 {
        model.kf * id.abs().powf(model.af) / (model.cox * l * l * f)
    } else {
        0.0
    };
    thermal + flicker
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> MosModel {
        MosModel {
            polarity: MosPolarity::Nmos,
            vth0: 0.45,
            kp: 300e-6,
            clm: 0.02e-6,
            gamma: 0.4,
            phi: 0.8,
            nsub: 1.4,
            cox: 8.5e-3,
            cov: 3e-10,
            cj: 1e-3,
            ldiff: 0.4e-6,
            kf: 1e-26,
            af: 1.0,
            noise_gamma: 2.0 / 3.0,
        }
    }

    fn pmos() -> MosModel {
        MosModel {
            polarity: MosPolarity::Pmos,
            vth0: 0.45,
            kp: 80e-6,
            ..nmos()
        }
    }

    #[test]
    fn saturation_current_matches_square_law() {
        let m = nmos();
        let (w, l) = (10e-6, 1e-6);
        let e = eval_mos(&m, w, l, 1.0, 1.0, 1.5, 0.0);
        assert_eq!(e.region, MosRegion::Saturation);
        // vov ≈ vgs - vth0 = 0.55 (softplus is essentially exact 7.6σ above
        // threshold); id ≈ 0.5·kp·W/L·vov²·(1+λvds).
        let beta = m.kp * w / l;
        let lambda = m.clm / l;
        let expect = 0.5 * beta * 0.55_f64.powi(2) * (1.0 + lambda * 1.5);
        assert!(
            (e.id - expect).abs() / expect < 0.01,
            "id={} expect={}",
            e.id,
            expect
        );
        assert!(e.vsat_margin > 0.9);
    }

    #[test]
    fn triode_current_matches_formula() {
        let m = nmos();
        let e = eval_mos(&m, 10e-6, 1e-6, 1.0, 1.5, 0.1, 0.0);
        assert_eq!(e.region, MosRegion::Triode);
        let beta = m.kp * 10.0;
        let lambda = m.clm / 1e-6;
        let vov = 1.05;
        let expect = beta * (vov - 0.05) * 0.1 * (1.0 + lambda * 0.1);
        assert!((e.id - expect).abs() / expect < 0.01);
    }

    #[test]
    fn cutoff_current_is_tiny() {
        let m = nmos();
        let e = eval_mos(&m, 10e-6, 1e-6, 1.0, 0.0, 1.0, 0.0);
        assert_eq!(e.region, MosRegion::Cutoff);
        assert!(e.id < 1e-9, "leakage too high: {}", e.id);
        assert!(e.id > 0.0);
    }

    #[test]
    fn subthreshold_slope_is_exponential() {
        let m = nmos();
        // Two points 100 mV apart, both well below threshold.
        let e1 = eval_mos(&m, 10e-6, 1e-6, 1.0, 0.20, 1.0, 0.0);
        let e2 = eval_mos(&m, 10e-6, 1e-6, 1.0, 0.30, 1.0, 0.0);
        let decades = (e2.id / e1.id).log10();
        // Expected slope: 0.1 V / (n·Vt·ln10) ≈ 0.1/0.0833 ≈ 1.2 decades.
        let expected = 0.1 / (m.nsub * VT_300K * std::f64::consts::LN_10);
        assert!(
            (decades - expected).abs() < 0.08,
            "decades={decades} expected={expected}"
        );
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let cases = [
            (nmos(), 1.0, 1.2, -0.2),  // saturation
            (nmos(), 1.5, 0.2, 0.0),   // triode
            (nmos(), 0.3, 0.8, -0.1),  // subthreshold
            (nmos(), 1.0, -0.6, -0.1), // reversed
            (pmos(), -1.0, -1.2, 0.2), // PMOS saturation
            (pmos(), -1.5, -0.2, 0.0), // PMOS triode
            (pmos(), -1.0, 0.4, 0.1),  // PMOS reversed
        ];
        let h = 1e-7;
        for (model, vgs, vds, vbs) in cases {
            let e = eval_mos(&model, 20e-6, 0.5e-6, 2.0, vgs, vds, vbs);
            let idp = |dg: f64, dd: f64, db: f64| {
                eval_mos(&model, 20e-6, 0.5e-6, 2.0, vgs + dg, vds + dd, vbs + db).id
            };
            let gm_fd = (idp(h, 0.0, 0.0) - idp(-h, 0.0, 0.0)) / (2.0 * h);
            let gds_fd = (idp(0.0, h, 0.0) - idp(0.0, -h, 0.0)) / (2.0 * h);
            let gmb_fd = (idp(0.0, 0.0, h) - idp(0.0, 0.0, -h)) / (2.0 * h);
            let tol = |g: f64| 1e-7 + 1e-4 * g.abs();
            assert!(
                (e.gm - gm_fd).abs() < tol(gm_fd),
                "gm mismatch at ({vgs},{vds},{vbs}): {} vs {}",
                e.gm,
                gm_fd
            );
            assert!(
                (e.gds - gds_fd).abs() < tol(gds_fd),
                "gds mismatch at ({vgs},{vds},{vbs}): {} vs {}",
                e.gds,
                gds_fd
            );
            assert!(
                (e.gmb - gmb_fd).abs() < tol(gmb_fd),
                "gmb mismatch at ({vgs},{vds},{vbs}): {} vs {}",
                e.gmb,
                gmb_fd
            );
        }
    }

    #[test]
    fn pmos_current_direction() {
        let m = pmos();
        // PMOS with source at VDD: vgs = -1, vds = -1 conducts; current flows
        // out of the drain terminal, i.e. id (into drain) is negative.
        let e = eval_mos(&m, 10e-6, 1e-6, 1.0, -1.0, -1.0, 0.0);
        assert!(e.id < -1e-6);
        assert!(e.gm > 0.0);
        assert!(e.gds > 0.0);
    }

    #[test]
    fn reversed_conduction_is_antisymmetric() {
        let m = nmos();
        // With vbs=0 and symmetric source/drain, swapping the channel should
        // negate the current: id(vgs, -vds) vs -id(vgd, vds) relationship.
        let fwd = eval_mos(&m, 10e-6, 1e-6, 1.0, 1.2, 0.3, 0.0);
        let rev = eval_mos(&m, 10e-6, 1e-6, 1.0, 1.2 - 0.3, -0.3, -0.3);
        assert!(rev.reversed);
        assert!((fwd.id + rev.id).abs() < 1e-9 * fwd.id.abs().max(1.0));
    }

    #[test]
    fn body_effect_raises_threshold() {
        let m = nmos();
        let e0 = eval_mos(&m, 10e-6, 1e-6, 1.0, 1.0, 1.5, 0.0);
        let eb = eval_mos(&m, 10e-6, 1e-6, 1.0, 1.0, 1.5, -0.5); // vsb = 0.5
        assert!(eb.vth > e0.vth);
        assert!(eb.id < e0.id);
        assert!(eb.gmb > 0.0);
    }

    #[test]
    fn continuity_across_vdsat() {
        let m = nmos();
        let vov = 0.55;
        let vdsat = vov; // softplus ≈ exact here
        let below = eval_mos(&m, 10e-6, 1e-6, 1.0, 1.0, vdsat - 1e-6, 0.0);
        let above = eval_mos(&m, 10e-6, 1e-6, 1.0, 1.0, vdsat + 1e-6, 0.0);
        assert!((below.id - above.id).abs() / above.id < 1e-4);
        assert!((below.gds - above.gds).abs() / above.gds < 1e-2);
    }

    #[test]
    fn multiplier_scales_current() {
        let m = nmos();
        let e1 = eval_mos(&m, 10e-6, 1e-6, 1.0, 1.0, 1.5, 0.0);
        let e4 = eval_mos(&m, 10e-6, 1e-6, 4.0, 1.0, 1.5, 0.0);
        assert!((e4.id / e1.id - 4.0).abs() < 1e-12);
    }

    #[test]
    fn caps_scale_with_geometry() {
        let m = nmos();
        let c1 = mos_caps(&m, 10e-6, 1e-6, 1.0);
        let c2 = mos_caps(&m, 20e-6, 1e-6, 1.0);
        assert!((c2.cgs / c1.cgs - 2.0).abs() < 1e-12);
        assert!(c1.cgs > c1.cgd); // intrinsic channel cap goes to the source
        assert!(c1.cdb > 0.0 && c1.csb > 0.0 && c1.cgb > 0.0);
    }

    #[test]
    fn noise_psd_components() {
        let m = nmos();
        let thermal_only = mos_noise_psd(&m, 1e-6, 1e-3, 1e-4, 1e12, 300.0);
        let with_flicker = mos_noise_psd(&m, 1e-6, 1e-3, 1e-4, 1.0, 300.0);
        assert!(with_flicker > thermal_only);
        let expect_thermal = 4.0 * BOLTZMANN * 300.0 * (2.0 / 3.0) * 1e-3;
        // At 1 THz the flicker term is negligible but nonzero.
        assert!((thermal_only - expect_thermal).abs() / expect_thermal < 1e-4);
    }

    #[test]
    fn temperature_update_is_identity_at_t_nom() {
        let m = nmos();
        let at_nom = m.at_temperature(T_NOM);
        assert_eq!(m.vth0.to_bits(), at_nom.vth0.to_bits());
        assert_eq!(m.kp.to_bits(), at_nom.kp.to_bits());
        assert_eq!(m, at_nom);
    }

    #[test]
    fn hot_devices_are_weaker_at_full_drive_but_leak_more() {
        let m = nmos();
        let hot = m.at_temperature(398.15);
        let cold = m.at_temperature(233.15);
        // Threshold drops when hot, rises when cold.
        assert!(hot.vth0 < m.vth0 && cold.vth0 > m.vth0);
        // Mobility degrades when hot.
        assert!(hot.kp < m.kp && cold.kp > m.kp);
        // Full-gate-drive current: mobility wins, the hot device is weaker.
        let id_hot = eval_mos(&hot, 10e-6, 1e-6, 1.0, 1.8, 1.8, 0.0).id;
        let id_cold = eval_mos(&cold, 10e-6, 1e-6, 1.0, 1.8, 1.8, 0.0).id;
        assert!(id_hot < id_cold, "{id_hot} vs {id_cold}");
        // Subthreshold leakage: the lower hot threshold wins (temperature
        // inversion).
        let leak_hot = eval_mos(&hot, 10e-6, 1e-6, 1.0, 0.2, 1.0, 0.0).id;
        let leak_cold = eval_mos(&cold, 10e-6, 1e-6, 1.0, 0.2, 1.0, 0.0).id;
        assert!(leak_hot > leak_cold, "{leak_hot} vs {leak_cold}");
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn non_physical_temperature_rejected() {
        let _ = nmos().at_temperature(-10.0);
    }

    #[test]
    fn softplus_extremes_are_stable() {
        let (v, d) = softplus(100.0);
        assert_eq!(v, 100.0);
        assert_eq!(d, 1.0);
        let (v, d) = softplus(-100.0);
        assert!(v > 0.0 && v < 1e-40);
        assert!(d > 0.0 && d < 1e-40);
    }
}
