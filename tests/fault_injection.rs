//! End-to-end fault-injection suite: the deterministic fault plane
//! (`spice::fault`) forces a chosen fraction of candidate×corner
//! evaluations to die inside the solver, and the optimizers on top must
//! shrug — converge anyway, keep serial/parallel histories bit-identical,
//! and account for every injected failure in the
//! [`opt::RobustnessReport`] *exactly* (the expected failure set is
//! recomputed from the plan by the tests, not sampled).
//!
//! The CI fault-injection job reruns this binary with `DNNOPT_FAULT_RATE`
//! (plus optional `DNNOPT_FAULT_SEED` / `DNNOPT_FAULT_KIND`) exported, so
//! the same assertions hold at an externally chosen failure weather.

use std::sync::Mutex;

use circuits::tech::CornerSet;
use circuits::FoldedCascodeOta;
use dnn_opt::{DnnOpt, DnnOptConfig};
use opt::{
    parallel, DifferentialEvolution, Evaluator, FailureKind, Fom, Optimizer, RecoveryStage,
    RunResult, SizingProblem, StopPolicy,
};
use spice::fault::{self, candidate_key, FaultKind, FaultPlan, FaultSolves};

/// The fault plan is process-wide state: every test that installs one (all
/// of them, here) holds this lock for its whole body so concurrent test
/// threads never observe each other's plans.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// RAII plan installation: uninstalls on drop, even if the test panics, so
/// one failing test cannot leak injected faults into the rest of the run.
struct InstalledPlan;

impl InstalledPlan {
    fn new(plan: FaultPlan) -> Self {
        fault::install(Some(plan));
        InstalledPlan
    }
}

impl Drop for InstalledPlan {
    fn drop(&mut self) {
        fault::install(None);
    }
}

/// The failure weather the end-to-end runs face: the CI job's environment
/// plan when set (`DNNOPT_FAULT_RATE` et al.), otherwise the acceptance
/// default of 20% singular-factor candidate failures.
fn e2e_plan(seed: u64) -> FaultPlan {
    fault::plan_from_env().unwrap_or(FaultPlan {
        seed,
        rate: 0.2,
        kind: FaultKind::SingularFactor,
        solves: FaultSolves::All,
    })
}

/// The [`opt::FailureKind`] an injected fault must surface as after the
/// circuits layer converts the solver diagnosis.
fn expected_kind(kind: FaultKind) -> FailureKind {
    match kind {
        FaultKind::SingularFactor => FailureKind::Singular,
        FaultKind::NanResidual => FailureKind::NanResidual,
        FaultKind::IterationExhaustion => FailureKind::NoConvergence,
    }
}

fn quick_cfg() -> DnnOptConfig {
    DnnOptConfig {
        critic_epochs: 120,
        actor_epochs: 40,
        critic_batch: 96,
        hidden: 32,
        ..Default::default()
    }
}

/// Checks every history entry of a single-corner OTA run against the
/// plan's own per-candidate decision and returns the injected count, which
/// must then equal the report's.
fn check_injected_accounting(
    run: &RunResult,
    plan: &FaultPlan,
    expand: impl Fn(&[f64]) -> Vec<f64>,
) -> usize {
    let mut expected_injected = 0;
    for (i, e) in run.history.entries().iter().enumerate() {
        let full = expand(&e.x);
        let faulted = plan.faults_candidate(candidate_key(&full, 0));
        if faulted {
            expected_injected += 1;
            assert!(e.spec.is_failure(), "faulted candidate #{i} not failed");
            let diag = e
                .spec
                .failure_diag()
                .unwrap_or_else(|| panic!("faulted candidate #{i} carries no diagnosis"));
            assert!(diag.injected, "faulted candidate #{i} not marked injected");
            assert_eq!(diag.kind, expected_kind(plan.kind), "candidate #{i} kind");
        } else if let Some(diag) = e.spec.failure_diag() {
            // A natural failure is possible on any candidate, but it must
            // never claim to be injected.
            assert!(!diag.injected, "clean candidate #{i} marked injected");
        }
    }
    let report = run.history.robustness_report();
    assert_eq!(
        report.injected, expected_injected,
        "report must count exactly the planned injections"
    );
    assert_eq!(report.evaluations, run.history.len());
    expected_injected
}

/// Local robust-sizing view of the OTA: the search box is a ±`spread`
/// multiplicative neighborhood of the (feasible) shipped nominal, clipped
/// to the legal bounds — the "re-center and harden" stage of a sizing
/// flow, where convergence must survive failure weather. The design
/// vector is the full OTA vector (identity mapping), so fault-plane keys
/// are computed on `x` directly.
struct LocalOta {
    ota: FoldedCascodeOta,
    lb: Vec<f64>,
    ub: Vec<f64>,
}

impl LocalOta {
    fn new(spread: f64) -> Self {
        let ota = FoldedCascodeOta::new();
        let nominal = SizingProblem::nominal(&ota);
        let (lb0, ub0) = SizingProblem::bounds(&ota);
        let lb = nominal
            .iter()
            .zip(&lb0)
            .map(|(n, l)| (n * (1.0 - spread)).max(*l))
            .collect();
        let ub = nominal
            .iter()
            .zip(&ub0)
            .map(|(n, u)| (n * (1.0 + spread)).min(*u))
            .collect();
        LocalOta { ota, lb, ub }
    }
}

impl SizingProblem for LocalOta {
    fn dim(&self) -> usize {
        SizingProblem::dim(&self.ota)
    }
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (self.lb.clone(), self.ub.clone())
    }
    fn num_constraints(&self) -> usize {
        SizingProblem::num_constraints(&self.ota)
    }
    fn evaluate(&self, x: &[f64]) -> opt::SpecResult {
        self.ota.evaluate(x)
    }
    fn name(&self) -> &str {
        "local-ota"
    }
}

#[test]
fn dnn_opt_reaches_feasibility_under_injected_failures() {
    let _lock = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let problem = LocalOta::new(0.2);
    let fom = Fom::new(100.0, vec![0.25; problem.num_constraints()]);

    let plan = e2e_plan(42);
    let _installed = InstalledPlan::new(plan);
    let run = DnnOpt::new(quick_cfg()).run(&problem, &fom, 40, StopPolicy::FirstFeasible, 0);

    assert!(
        run.sims_to_feasible().is_some(),
        "DNN-Opt must still reach a feasible OTA design at {:.0}% injected failures:\n{}",
        plan.rate * 100.0,
        run.history.robustness_report()
    );
    let injected = check_injected_accounting(&run, &plan, |x| x.to_vec());
    // Natural failures can land in the same kind bucket as the injected
    // ones, so the kind count dominates (and never undercounts) them.
    let report = run.history.robustness_report();
    assert!(report.kind_count(expected_kind(plan.kind)) >= injected);
}

#[test]
fn de_reaches_feasibility_under_injected_failures() {
    let _lock = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let problem = LocalOta::new(0.2);
    let fom = Fom::new(100.0, vec![0.25; problem.num_constraints()]);

    let plan = e2e_plan(43);
    let _installed = InstalledPlan::new(plan);
    let run =
        DifferentialEvolution::default().run(&problem, &fom, 40, StopPolicy::FirstFeasible, 1);

    assert!(
        run.sims_to_feasible().is_some(),
        "DE must still reach a feasible OTA design at {:.0}% injected failures:\n{}",
        plan.rate * 100.0,
        run.history.robustness_report()
    );
    check_injected_accounting(&run, &plan, |x| x.to_vec());
}

#[test]
fn injected_faults_preserve_the_determinism_contract() {
    let _lock = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ota = FoldedCascodeOta::new();
    let fom = Fom::new(100.0, vec![0.25; SizingProblem::num_constraints(&ota)]);
    let plan = e2e_plan(7);
    let _installed = InstalledPlan::new(plan);

    parallel::set_max_threads(1);
    let serial = DnnOpt::new(quick_cfg()).run(&ota, &fom, 20, StopPolicy::Exhaust, 3);
    parallel::set_max_threads(8);
    let threaded = DnnOpt::new(quick_cfg()).run(&ota, &fom, 20, StopPolicy::Exhaust, 3);
    parallel::set_max_threads(0);

    assert_eq!(serial.history.len(), threaded.history.len());
    for (i, (a, b)) in serial
        .history
        .entries()
        .iter()
        .zip(threaded.history.entries())
        .enumerate()
    {
        assert_eq!(a.x, b.x, "design #{i}");
        assert_eq!(a.fom.to_bits(), b.fom.to_bits(), "fom #{i}");
        assert_eq!(a.spec, b.spec, "spec (incl. diagnosis) #{i}");
        assert_eq!(a.corner_specs, b.corner_specs, "corner records #{i}");
    }
    // Same plan, same seed — the failure bookkeeping is part of the
    // contract too.
    assert_eq!(
        serial.history.robustness_report(),
        threaded.history.robustness_report()
    );
    assert!(
        serial.history.robustness_report().injected > 0,
        "the contract must be exercised under actual injections"
    );
}

#[test]
fn corner_plane_fault_accounting_is_exact() {
    let _lock = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ota = FoldedCascodeOta::with_corners(CornerSet::pvt5());
    let k = SizingProblem::num_corners(&ota);
    assert_eq!(k, 5);
    let plan = FaultPlan {
        seed: 9,
        rate: 0.3,
        kind: FaultKind::SingularFactor,
        solves: FaultSolves::All,
    };
    let _installed = InstalledPlan::new(plan);

    // Six near-nominal candidates (every corner simulates cleanly without
    // injection), so failures below are injected ones and nothing else.
    let nominal = SizingProblem::nominal(&ota);
    let xs: Vec<Vec<f64>> = (0..6)
        .map(|i| {
            nominal
                .iter()
                .map(|v| v * (1.0 + 0.002 * i as f64))
                .collect()
        })
        .collect();
    let fom = Fom::new(100.0, vec![0.25; SizingProblem::num_constraints(&ota)]);
    let mut ev = Evaluator::new(&ota, &fom, xs.len());
    ev.evaluate_batch(&xs);

    let mut expected = 0;
    for (i, e) in ev.history().entries().iter().enumerate() {
        assert_eq!(e.corner_specs.len(), k);
        let mut any = false;
        for (c, spec) in e.corner_specs.iter().enumerate() {
            let faulted = plan.faults_candidate(candidate_key(&e.x, c as u64));
            assert_eq!(
                spec.is_failure(),
                faulted,
                "candidate #{i} corner {c}: failure iff planned"
            );
            if faulted {
                expected += 1;
                any = true;
                let diag = spec.failure_diag().expect("injected failures are tagged");
                assert!(diag.injected);
                assert_eq!(diag.kind, FailureKind::Singular);
                assert_eq!(diag.stage, RecoveryStage::SourceStepping);
            }
        }
        // The aggregate worst-case merge fails exactly when a corner does,
        // and adopts a diagnosed (injected) corner's taxonomy.
        assert_eq!(e.spec.is_failure(), any, "candidate #{i} aggregate");
        if any {
            assert!(e.spec.failure_diag().expect("diag propagates").injected);
        }
    }
    assert!(expected > 0, "plan must fault at least one corner");
    assert!(
        expected < 6 * k,
        "plan must leave at least one corner clean"
    );

    let report = ev.history().robustness_report();
    assert_eq!(report.evaluations, 6);
    assert_eq!(report.failures, expected);
    assert_eq!(report.injected, expected);
    assert_eq!(report.untagged, 0);
    assert_eq!(report.kind_count(FailureKind::Singular), expected);
    assert_eq!(report.stage_count(RecoveryStage::SourceStepping), expected);
}

#[test]
fn every_fault_kind_surfaces_its_taxonomy() {
    let _lock = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ota = FoldedCascodeOta::new();
    let x = SizingProblem::nominal(&ota);
    for kind in [
        FaultKind::SingularFactor,
        FaultKind::NanResidual,
        FaultKind::IterationExhaustion,
    ] {
        let _installed = InstalledPlan::new(FaultPlan {
            seed: 1,
            rate: 1.0,
            kind,
            solves: FaultSolves::All,
        });
        let spec = ota.evaluate(&x);
        assert!(spec.is_failure(), "{kind:?} must fail the evaluation");
        let diag = spec.failure_diag().expect("injected failures are tagged");
        assert_eq!(diag.kind, expected_kind(kind), "{kind:?} taxonomy");
        assert_eq!(diag.stage, RecoveryStage::SourceStepping, "{kind:?} stage");
        assert!(diag.injected, "{kind:?} must be marked injected");
        assert!(
            diag.analysis.contains("ota"),
            "diagnosis names the testbench: {}",
            diag.analysis
        );
    }
    // Plan removed (guard drop): the same evaluation is healthy again.
    let spec = ota.evaluate(&x);
    assert!(!spec.is_failure(), "weather cleared, evaluation healthy");
}

#[test]
fn single_injected_solve_is_rescued_by_the_recovery_ladder() {
    let _lock = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ota = FoldedCascodeOta::new();
    let x = SizingProblem::nominal(&ota);
    // Fault only the very first Newton solve of each evaluation: the DC
    // recovery ladder (gmin stepping) must rescue the operating point, so
    // the evaluation succeeds and nothing is recorded as a failure.
    let _installed = InstalledPlan::new(FaultPlan {
        seed: 2,
        rate: 1.0,
        kind: FaultKind::IterationExhaustion,
        solves: FaultSolves::Index(0),
    });
    let spec = ota.evaluate(&x);
    assert!(
        !spec.is_failure(),
        "the ladder must rescue a single faulted solve: {:?}",
        spec.failure_diag()
    );
    assert!(spec.failure_diag().is_none());
}
