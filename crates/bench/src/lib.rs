//! Shared infrastructure for the reproduction harness: method suites,
//! per-method statistics, FoM-curve aggregation, and CSV output.
//!
//! The `repro` binary (this crate's `src/bin/repro.rs`) uses these helpers
//! to regenerate every table and figure of the paper; see EXPERIMENTS.md
//! for the mapping and the calibration notes.

use std::time::Duration;

use dnn_opt::{DnnOpt, DnnOptConfig};
use opt::{
    BoWei, DifferentialEvolution, Fom, Gaspad, Optimizer, RunResult, SizingProblem, StopPolicy,
};

/// The RC interconnect ladder of the Newton-kernel benchmarks (n = 62
/// unknowns at 60 stages). One definition shared by
/// `benches/spice_kernels.rs` and [`baseline::refresh`], so the recorded
/// rows always measure the same circuit as `cargo bench`.
pub fn build_rc_ladder(n: usize) -> spice::Circuit {
    use spice::{Waveform, GND};
    let mut c = spice::Circuit::new();
    let vin = c.node("in");
    c.add_vsource_ac("V1", vin, GND, Waveform::Dc(1.0), 1.0)
        .unwrap();
    let mut prev = vin;
    for i in 0..n {
        let node = c.node(&format!("n{i}"));
        c.add_resistor(&format!("R{i}"), prev, node, 1e3).unwrap();
        c.add_capacitor(&format!("C{i}"), node, GND, 1e-12).unwrap();
        prev = node;
    }
    c
}

/// The stamped DC system of the post-layout RC mesh
/// ([`circuits::mesh::build_rc_grid`]) at `n` unknowns: the matrix the
/// supernodal sparse engine is tuned on. One definition shared by
/// `benches/sparse_scaling.rs` and [`baseline::refresh`], so the recorded
/// scalar-vs-supernodal rows always measure the same system as
/// `cargo bench`.
pub fn mesh_dc_system(n: usize) -> (linalg::CscMatrix, Vec<f64>) {
    use spice::stamp::{stamp_resistive_system, RealStamper, SourceEval};
    let ckt = circuits::mesh::build_rc_grid(n);
    let mut st = RealStamper::new(&ckt);
    let x0 = vec![0.0; n];
    st.clear();
    st.load_gmin(1e-12);
    stamp_resistive_system(&ckt, &x0, SourceEval::Dc { scale: 1.0 }, &mut st);
    (linalg::CscMatrix::from_dense(&st.a), st.z)
}

/// The assembled complex AC systems `(G + jωC)·x = z` of the post-layout
/// RC mesh ([`circuits::mesh::build_rc_grid`]) at `n` unknowns, one per
/// point of a one-point-per-decade 1 MHz–1 GHz sweep: the systems the
/// complex supernodal replay is tuned on. One definition shared by
/// `benches/sparse_scaling.rs` and [`baseline::refresh`], so the recorded
/// scalar-vs-supernodal AC rows always measure the same sweep as
/// `cargo bench`.
pub fn mesh_ac_systems(n: usize) -> Vec<(linalg::CscComplexMatrix, Vec<linalg::C64>)> {
    let ckt = circuits::mesh::build_rc_grid(n);
    let gmin = spice::SimOptions::default().gmin;
    spice::log_freqs(1e6, 1e9, 1)
        .iter()
        .map(|&f| {
            let st = assemble_linear_small_signal(&ckt, 2.0 * std::f64::consts::PI * f, gmin);
            (linalg::CscComplexMatrix::from_dense_rows(&st.a), st.z)
        })
        .collect()
}

/// The MOS-loaded ladder of the Newton-kernel benchmarks (n = 32 unknowns
/// at 30 stages): its linearized MNA system is representative of the
/// circuits crate's testbenches (~2·n unknowns, MOSFET stamps). Shared by
/// `benches/spice_kernels.rs` and [`baseline::refresh`].
pub fn build_mos_ladder(n: usize) -> spice::Circuit {
    use spice::{Waveform, GND};
    let nmos = bench_nmos();
    let mut c = spice::Circuit::new();
    let vdd = c.node("vdd");
    c.add_vsource("VDD", vdd, GND, Waveform::Dc(1.8)).unwrap();
    let mut prev = vdd;
    for i in 0..n {
        let d = c.node(&format!("d{i}"));
        c.add_resistor(&format!("R{i}"), prev, d, 5e3).unwrap();
        c.add_mosfet(&format!("M{i}"), d, d, GND, GND, &nmos, 4e-6, 0.5e-6, 1.0)
            .unwrap();
        prev = d;
    }
    c
}

/// Assembles the dense complex small-signal system `(G + jωC)·x = z` of a
/// *linear* circuit (resistors, capacitors, independent sources) at angular
/// frequency `omega` — the AC-sweep system of [`build_rc_ladder`]. Shared
/// by `benches/spice_kernels.rs` and [`baseline::refresh`] so the AC kernel
/// rows always measure the same assembly as `cargo bench`.
///
/// # Panics
///
/// Panics on device kinds the helper does not model (MOSFETs need an
/// operating point; use the full `spice::ac` engine for those).
pub fn assemble_linear_small_signal(
    ckt: &spice::Circuit,
    omega: f64,
    gmin: f64,
) -> spice::stamp::ComplexStamper {
    use linalg::C64;
    use spice::stamp::ComplexStamper;
    use spice::Device;
    let mut st = ComplexStamper::new(ckt);
    st.load_gmin(gmin);
    for dev in ckt.devices() {
        match dev {
            Device::Resistor { a, b, g, .. } => st.admittance(*a, *b, C64::real(*g)),
            Device::Capacitor { a, b, c, .. } => st.admittance(*a, *b, C64::new(0.0, omega * c)),
            Device::VSource {
                p,
                n,
                ac_mag,
                branch,
                ..
            } => st.vsource(*branch, *p, *n, C64::real(*ac_mag)),
            Device::ISource { p, n, ac_mag, .. } => {
                st.current_source(*p, *n, C64::real(*ac_mag));
            }
            _ => panic!("assemble_linear_small_signal supports linear devices only"),
        }
    }
    st
}

/// The generic 180nm-class NMOS used by the micro-benchmarks' hand-built
/// ladder circuits (one definition so the benches cannot drift apart).
pub fn bench_nmos() -> spice::MosModel {
    spice::MosModel {
        polarity: spice::MosPolarity::Nmos,
        vth0: 0.45,
        kp: 300e-6,
        clm: 0.02e-6,
        gamma: 0.4,
        phi: 0.8,
        nsub: 1.4,
        cox: 8.5e-3,
        cov: 3e-10,
        cj: 1e-3,
        ldiff: 0.4e-6,
        kf: 1e-26,
        af: 1.0,
        noise_gamma: 2.0 / 3.0,
    }
}

/// Experiment-scale knobs, read from the environment so the default run is
/// laptop-sized while `REPEATS=10 DE_BUDGET=10000` reproduces the paper's
/// protocol exactly.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Repeats per (method, circuit); paper: 10.
    pub repeats: usize,
    /// Budget for the model-based methods; paper: 500.
    pub budget: usize,
    /// Budget for DE; paper: 10000.
    pub de_budget: usize,
}

impl Scale {
    /// Reads `REPEATS`, `BUDGET`, `DE_BUDGET` from the environment with
    /// laptop-scale defaults (3 / 500 / 2000).
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Scale {
            repeats: get("REPEATS", 3),
            budget: get("BUDGET", 500),
            de_budget: get("DE_BUDGET", 2000),
        }
    }
}

/// All runs of one method on one problem.
#[derive(Debug)]
pub struct MethodRuns {
    /// Method display name.
    pub name: String,
    /// One result per repeat.
    pub runs: Vec<RunResult>,
}

impl MethodRuns {
    /// Success rate: runs that found any feasible design.
    pub fn successes(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.sims_to_feasible().is_some())
            .count()
    }

    /// Mean simulations-to-first-feasible over the *successful* runs.
    pub fn mean_sims_to_feasible(&self) -> Option<f64> {
        let v: Vec<f64> = self
            .runs
            .iter()
            .filter_map(|r| r.sims_to_feasible().map(|n| n as f64))
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Min / max / mean best-feasible objective across successful runs.
    pub fn objective_stats(&self) -> Option<(f64, f64, f64)> {
        let v: Vec<f64> = self
            .runs
            .iter()
            .filter_map(RunResult::best_feasible_objective)
            .collect();
        if v.is_empty() {
            return None;
        }
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        Some((min, max, mean))
    }

    /// Total model time across runs.
    pub fn model_time(&self) -> Duration {
        self.runs.iter().map(|r| r.model_time).sum()
    }

    /// Total simulation time across runs.
    pub fn sim_time(&self) -> Duration {
        self.runs.iter().map(|r| r.sim_time).sum()
    }

    /// Mean best-FoM trace across runs, padded with each run's final value
    /// (the series of the paper's Figures 3/4).
    pub fn mean_trace(&self, len: usize) -> Vec<f64> {
        let mut mean = vec![0.0; len];
        for run in &self.runs {
            let trace = run.history.best_trace();
            let last = trace.last().copied().unwrap_or(f64::NAN);
            for (i, m) in mean.iter_mut().enumerate() {
                *m += trace.get(i).copied().unwrap_or(last);
            }
        }
        for m in &mut mean {
            *m /= self.runs.len().max(1) as f64;
        }
        mean
    }
}

/// The four methods of the building-block comparison (paper §III-A), with
/// the budgets of the paper's protocol scaled by [`Scale`].
pub fn building_block_suite(
    problem: &dyn SizingProblem,
    fom: &Fom,
    scale: &Scale,
    stop: StopPolicy,
) -> Vec<MethodRuns> {
    let mut out = Vec::new();
    let methods: Vec<(Box<dyn Optimizer>, usize)> = vec![
        (Box::new(DifferentialEvolution::default()), scale.de_budget),
        (Box::new(BoWei::default()), scale.budget),
        (Box::new(Gaspad::default()), scale.budget),
        (Box::new(DnnOpt::new(DnnOptConfig::default())), scale.budget),
    ];
    for (method, budget) in methods {
        let mut runs = Vec::new();
        for rep in 0..scale.repeats {
            eprintln!(
                "  [{}] run {}/{} (budget {budget})",
                method.name(),
                rep + 1,
                scale.repeats
            );
            runs.push(method.run(problem, fom, budget, stop, rep as u64));
        }
        out.push(MethodRuns {
            name: method.name().to_string(),
            runs,
        });
    }
    out
}

/// Formats a duration as fractional seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64())
}

/// Re-times the Newton-kernel, GEMM-engine, training-loop and evaluation
/// benchmarks and merges the rows into a `BENCH_baseline.json` file (same
/// one-JSON-object-per-row format the criterion shim records). Used by
/// `repro baseline` so the checked-in baseline can be refreshed on the
/// current host without running the full bench suite.
pub mod baseline {
    use crate::{assemble_linear_small_signal, build_mos_ladder, build_rc_ladder};
    use criterion::{black_box, Criterion};
    use linalg::{
        ComplexLu, ComplexLuWorkspace, CscComplexMatrix, CscMatrix, Lu, LuWorkspace,
        SparseComplexLu, SparseLu, C64,
    };
    use opt::{parallel, Evaluator, Fom, SizingProblem};
    use spice::stamp::{stamp_resistive_system, RealStamper, SourceEval};

    /// Runs the affected kernels (identical bodies to the criterion
    /// benches) with `CRITERION_JSON` pointed at `path`, appending one row
    /// per kernel.
    fn record_rows(path: &std::path::Path) {
        std::env::set_var("CRITERION_JSON", path);
        let mut c = Criterion::default().sample_size(10);
        for (label_ws, label_sparse, ckt, x_guess) in [
            (
                "newton_dc_kernel_workspace_n62",
                "newton_dc_kernel_sparse_n62",
                build_rc_ladder(60),
                0.0,
            ),
            (
                "newton_dc_kernel_workspace_n32",
                "newton_dc_kernel_sparse_n32",
                build_mos_ladder(30),
                0.4,
            ),
        ] {
            let n = ckt.num_unknowns();
            let mut st = RealStamper::new(&ckt);
            let x0 = vec![x_guess; n];
            st.clear();
            st.load_gmin(1e-12);
            stamp_resistive_system(&ckt, &x0, SourceEval::Dc { scale: 1.0 }, &mut st);
            c.bench_function(label_ws, |b| {
                let mut ws = LuWorkspace::new(n);
                let mut x = vec![0.0; n];
                b.iter(|| {
                    Lu::factor_into(black_box(&st.a), &mut ws).unwrap();
                    ws.solve_into(&st.z, &mut x).unwrap();
                    black_box(x[0])
                })
            });
            c.bench_function(label_sparse, |b| {
                let csc = CscMatrix::from_dense(&st.a);
                let mut slu = SparseLu::new();
                slu.factor(&csc).unwrap();
                let mut x = Vec::new();
                b.iter(|| {
                    slu.refactor_into(black_box(&csc)).unwrap();
                    slu.solve_into(&st.z, &mut x).unwrap();
                    black_box(x[0])
                })
            });
        }

        // The post-layout sparse-engine rows (identical bodies to
        // `benches/sparse_scaling.rs`): one scan-free numeric
        // factorization of the parasitic RC-mesh system per iteration,
        // scalar Gilbert–Peierls vs the supernodal blocked replay.
        for n in [200usize, 500, 1000] {
            let (csc, _z) = crate::mesh_dc_system(n);
            for (suffix, mode) in [
                ("scalar", linalg::SupernodalMode::ForceScalar),
                ("supernodal", linalg::SupernodalMode::ForceBlocked),
            ] {
                c.bench_function(&format!("newton_dc_kernel_mesh_n{n}_{suffix}"), |b| {
                    let mut slu = SparseLu::new();
                    slu.set_supernodal_mode(mode);
                    slu.factor(&csc).unwrap();
                    b.iter(|| {
                        slu.refactor_into(black_box(&csc)).unwrap();
                    })
                });
            }
        }

        // The complex AC-mesh rows (identical bodies to
        // `benches/sparse_scaling.rs`): one scan-free numeric replay of
        // every `G + jωC` point of the RC-mesh sweep per iteration,
        // scalar complex Gilbert–Peierls vs the supernodal blocked
        // replay (acceptance target: supernodal ≥1.8× at n ≥ 500).
        for n in [200usize, 500, 1000] {
            let systems = crate::mesh_ac_systems(n);
            for (suffix, mode) in [
                ("scalar", linalg::SupernodalMode::ForceScalar),
                ("supernodal", linalg::SupernodalMode::ForceBlocked),
            ] {
                c.bench_function(&format!("ac_sweep_kernel_mesh_n{n}_{suffix}"), |b| {
                    let mut slu = SparseComplexLu::new();
                    slu.set_supernodal_mode(mode);
                    slu.factor(&systems[0].0).unwrap();
                    b.iter(|| {
                        for (csc, _) in &systems {
                            slu.refactor_into(black_box(csc)).unwrap();
                        }
                    })
                });
            }
        }

        // The etree-parallel replay rows (identical bodies to
        // `benches/sparse_scaling.rs`): the n = 1000 mesh refactorization
        // at fixed worker counts through the shared pool. Bit-identical
        // results at every count; the per-row `host_cpus` field says
        // whether a recorded number is from a real multi-core regime.
        {
            let (csc, _z) = crate::mesh_dc_system(1000);
            for threads in [1usize, 2, 4, 8] {
                c.bench_function(
                    &format!("newton_dc_kernel_mesh_n1000_supernodal_t{threads}"),
                    |b| {
                        linalg::pool::set_max_threads(threads);
                        let mut slu = SparseLu::new();
                        slu.set_supernodal_mode(linalg::SupernodalMode::ForceBlocked);
                        slu.factor(&csc).unwrap();
                        b.iter(|| {
                            slu.refactor_into(black_box(&csc)).unwrap();
                        });
                        linalg::pool::set_max_threads(0);
                    },
                );
            }
        }

        // The AC-sweep kernels (identical bodies to
        // `benches/spice_kernels.rs::bench_ac_sweep_kernel`): factor +
        // solve at all 26 points of the n = 62 RC-ladder sweep, dense
        // per-point vs sparse pattern-shared.
        {
            let ckt = build_rc_ladder(60);
            let n = ckt.num_unknowns();
            let freqs = spice::log_freqs(1e3, 1e8, 5);
            let gmin = spice::SimOptions::default().gmin;
            let systems: Vec<(Vec<Vec<C64>>, Vec<C64>)> = freqs
                .iter()
                .map(|&f| {
                    let st =
                        assemble_linear_small_signal(&ckt, 2.0 * std::f64::consts::PI * f, gmin);
                    (st.a, st.z)
                })
                .collect();
            let cscs: Vec<CscComplexMatrix> = systems
                .iter()
                .map(|(a, _)| CscComplexMatrix::from_dense_rows(a))
                .collect();
            c.bench_function("ac_sweep_kernel_dense_n62", |b| {
                let mut ws = ComplexLuWorkspace::new(n);
                let mut x = Vec::new();
                b.iter(|| {
                    for (a, z) in &systems {
                        ComplexLu::factor_into(black_box(a), &mut ws).unwrap();
                        ws.solve_into(z, &mut x).unwrap();
                    }
                    black_box(x[0])
                })
            });
            c.bench_function("ac_sweep_kernel_sparse_n62", |b| {
                let mut slu = SparseComplexLu::new();
                slu.factor(&cscs[0]).unwrap();
                let mut x = Vec::new();
                b.iter(|| {
                    for (i, (csc, (_, z))) in cscs.iter().zip(&systems).enumerate() {
                        if i == 0 {
                            slu.factor(black_box(csc)).unwrap();
                        } else {
                            slu.refactor_into(black_box(csc)).unwrap();
                        }
                        slu.solve_into(z, &mut x).unwrap();
                    }
                    black_box(x[0])
                })
            });
        }

        // The GEMM-engine kernels (identical bodies to
        // `benches/gemm_kernels.rs`): naive reference vs cache-blocked
        // register-tiled kernel on the critic's forward/weight-gradient
        // shapes plus a panel-spanning square product.
        {
            use linalg::{gemm, gemm_naive, GemmOp, GemmWorkspace, Matrix};
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(42);
            let shapes: [(&str, usize, usize, usize, GemmOp, GemmOp); 5] = [
                ("10x48x20_nt", 10, 48, 20, GemmOp::NoTrans, GemmOp::Trans),
                ("48x48x10_tn", 48, 48, 10, GemmOp::Trans, GemmOp::NoTrans),
                ("128x48x40_nt", 128, 48, 40, GemmOp::NoTrans, GemmOp::Trans),
                ("48x40x128_tn", 48, 40, 128, GemmOp::Trans, GemmOp::NoTrans),
                (
                    "160x160x160_nn",
                    160,
                    160,
                    160,
                    GemmOp::NoTrans,
                    GemmOp::NoTrans,
                ),
            ];
            // The threaded-GEMM rows (identical bodies to
            // `benches/parallel_scaling.rs`): one product past
            // `GEMM_PARALLEL_MIN_WORK`, timed at fixed worker counts. On
            // a single-core host the counts time the same arithmetic plus
            // dispatch overhead; the per-row `host_cpus` field says which
            // regime a recorded number is from.
            {
                let mut rng = StdRng::seed_from_u64(7);
                let a = Matrix::from_fn(256, 256, |_, _| rng.gen::<f64>() - 0.5);
                let b = Matrix::from_fn(256, 256, |_, _| rng.gen::<f64>() - 0.5);
                for threads in [1usize, 2, 4, 8] {
                    c.bench_function(
                        &format!("gemm_parallel_256x256x256_nn_t{threads}"),
                        |bench| {
                            linalg::pool::set_max_threads(threads);
                            let mut ws = GemmWorkspace::new();
                            let mut out = Matrix::default();
                            bench.iter(|| {
                                gemm(
                                    GemmOp::NoTrans,
                                    GemmOp::NoTrans,
                                    1.0,
                                    black_box(&a),
                                    black_box(&b),
                                    0.0,
                                    &mut out,
                                    &mut ws,
                                );
                                black_box(out.as_slice()[0])
                            });
                            linalg::pool::set_max_threads(0);
                        },
                    );
                }
            }
            for (label, m, n, k, op_a, op_b) in shapes {
                let dims_a = match op_a {
                    GemmOp::NoTrans => (m, k),
                    GemmOp::Trans => (k, m),
                };
                let dims_b = match op_b {
                    GemmOp::NoTrans => (k, n),
                    GemmOp::Trans => (n, k),
                };
                let a = Matrix::from_fn(dims_a.0, dims_a.1, |_, _| rng.gen::<f64>() - 0.5);
                let b = Matrix::from_fn(dims_b.0, dims_b.1, |_, _| rng.gen::<f64>() - 0.5);
                c.bench_function(&format!("gemm_kernel_naive_{label}"), |bench| {
                    let mut out = Matrix::default();
                    bench.iter(|| {
                        gemm_naive(op_a, op_b, 1.0, black_box(&a), black_box(&b), 0.0, &mut out);
                        black_box(out.as_slice()[0])
                    })
                });
                c.bench_function(&format!("gemm_kernel_blocked_{label}"), |bench| {
                    let mut ws = GemmWorkspace::new();
                    let mut out = Matrix::default();
                    bench.iter(|| {
                        gemm(
                            op_a,
                            op_b,
                            1.0,
                            black_box(&a),
                            black_box(&b),
                            0.0,
                            &mut out,
                            &mut ws,
                        );
                        black_box(out.as_slice()[0])
                    })
                });
            }
        }

        // The training-loop kernels (identical bodies and seeds to
        // `benches/model_kernels.rs`): one MSE gradient step and one full
        // critic/actor training pass — the rows the GEMM engine targets.
        {
            use dnn_opt::{Actor, Critic, DnnOptConfig};
            use linalg::Matrix;
            use nn::{Activation, Adam, Mlp, TrainWorkspace};
            use opt::Fom;
            use rand::{rngs::StdRng, Rng, SeedableRng};

            let mut rng = StdRng::seed_from_u64(1);
            let x = Matrix::from_fn(128, 40, |_, _| rng.gen::<f64>());
            let y = Matrix::from_fn(128, 30, |_, _| rng.gen::<f64>());
            c.bench_function("mlp_train_step_alloc_b128", |b| {
                let mut net = Mlp::new(&[40, 48, 48, 30], Activation::Relu, &mut rng);
                let mut adam = Adam::new(3e-3);
                b.iter(|| nn::train_step_mse(&mut net, &mut adam, &x, &y))
            });
            c.bench_function("mlp_train_step_workspace_b128", |b| {
                let mut net = Mlp::new(&[40, 48, 48, 30], Activation::Relu, &mut rng);
                let mut adam = Adam::new(3e-3);
                let mut ws = TrainWorkspace::new();
                b.iter(|| nn::train_step_mse_ws(&mut net, &mut adam, &x, &y, &mut ws))
            });

            let mut rng = StdRng::seed_from_u64(0);
            let xs: Vec<Vec<f64>> = (0..150)
                .map(|_| (0..20).map(|_| rng.gen()).collect())
                .collect();
            let fs: Vec<Vec<f64>> = xs
                .iter()
                .map(|xv| {
                    (0..30)
                        .map(|j| xv.iter().map(|v| (v - 0.1 * j as f64).powi(2)).sum::<f64>())
                        .collect()
                })
                .collect();
            let cfg = DnnOptConfig::default();
            c.bench_function("critic_train_n150_d20_m30", |b| {
                b.iter(|| Critic::train(&cfg, &xs, &fs, &mut rng))
            });
            // The same training pass with the GEMM thread budget swept
            // (identical bodies to `benches/parallel_scaling.rs`).
            for threads in [2usize, 4, 8] {
                c.bench_function(&format!("critic_train_n150_d20_m30_mt{threads}"), |b| {
                    parallel::set_max_threads(threads);
                    b.iter(|| Critic::train(&cfg, &xs, &fs, &mut rng));
                    parallel::set_max_threads(0);
                });
            }
            let critic = Critic::train(&cfg, &xs, &fs, &mut rng);
            let fom = Fom::uniform(1.0, 29);
            let elite: Vec<Vec<f64>> = xs[..10].to_vec();
            c.bench_function("actor_train_elite10", |b| {
                b.iter(|| {
                    Actor::train(
                        &cfg, &critic, &fom, &elite, &[0.0; 20], &[1.0; 20], &mut rng,
                    )
                })
            });
        }

        let ota = circuits::FoldedCascodeOta::new();
        let x = ota.nominal();
        c.bench_function("ota_full_evaluation", |b| b.iter(|| ota.evaluate(&x)));
        // The same evaluation with the telemetry plane hot (summary sink:
        // spans and counters record, no event buffering). Compare against
        // `ota_full_evaluation` — recorded with the plane compiled in but
        // disabled — to price the enabled path; the disabled path costs
        // one relaxed atomic load per instrumentation site.
        c.bench_function("telemetry_enabled_overhead", |b| {
            telemetry::install(Some(telemetry::SinkKind::Summary));
            b.iter(|| ota.evaluate(&x));
            telemetry::reset();
            telemetry::install(None);
        });
        let latch = circuits::StrongArmLatch::new();
        let xl = latch.nominal();
        c.bench_function("latch_full_evaluation", |b| b.iter(|| latch.evaluate(&xl)));

        // The PVT corner-sweep rows (identical bodies to
        // `benches/corner_eval.rs`): the same candidate through the
        // nominal-only plane, the standard 5-corner sign-off plane, and
        // the level shifter's six-supply-corner plane on the shared
        // engine.
        {
            use circuits::tech::CornerSet;
            c.bench_function("ota_corner_eval_1c", |b| {
                b.iter(|| black_box(ota.evaluate(black_box(&x))).objective)
            });
            let ota5 = circuits::FoldedCascodeOta::with_corners(CornerSet::pvt5());
            let x5 = ota5.nominal();
            c.bench_function("ota_corner_eval_5c", |b| {
                b.iter(|| black_box(ota5.evaluate(black_box(&x5))).objective)
            });
            let ls = circuits::LevelShifter::new();
            let xls = SizingProblem::nominal(&ls);
            c.bench_function("level_shifter_corner_eval_6c", |b| {
                b.iter(|| black_box(ls.evaluate(black_box(&xls))).objective)
            });
        }

        let ota_fom = Fom::uniform(1.0, ota.num_constraints());
        let (lb, ub) = ota.bounds();
        let nominal = ota.nominal();
        let ota_pop: Vec<Vec<f64>> = (0..16)
            .map(|i| {
                let t = (i as f64 / 15.0 - 0.5) * 0.1;
                nominal
                    .iter()
                    .zip(lb.iter().zip(&ub))
                    .map(|(&v, (&l, &u))| (v + t * (u - l)).clamp(l, u))
                    .collect()
            })
            .collect();
        c.bench_function("population_eval_16_ota_serial", |b| {
            parallel::set_max_threads(1);
            b.iter(|| {
                let mut ev = Evaluator::new(&ota, &ota_fom, ota_pop.len());
                black_box(ev.evaluate_batch(&ota_pop).len())
            });
            parallel::set_max_threads(0);
        });
        c.bench_function("population_eval_16_ota_parallel", |b| {
            parallel::set_max_threads(0);
            b.iter(|| {
                let mut ev = Evaluator::new(&ota, &ota_fom, ota_pop.len());
                black_box(ev.evaluate_batch(&ota_pop).len())
            })
        });
        // Fixed worker counts through the candidate×corner×analysis grid
        // (identical bodies to `benches/parallel_scaling.rs`).
        for threads in [2usize, 4, 8] {
            c.bench_function(&format!("population_eval_16_ota_t{threads}"), |b| {
                parallel::set_max_threads(threads);
                b.iter(|| {
                    let mut ev = Evaluator::new(&ota, &ota_fom, ota_pop.len());
                    black_box(ev.evaluate_batch(&ota_pop).len())
                });
                parallel::set_max_threads(0);
            });
        }
        std::env::remove_var("CRITERION_JSON");
    }

    /// Tags a freshly recorded row with the host's logical core count and
    /// the effective thread setting (`DNNOPT_THREADS` or `auto`), so a
    /// checked-in baseline says which parallelism regime produced it.
    fn with_host_metadata(row: &str) -> String {
        let Some(body) = row.strip_suffix('}') else {
            return row.to_string();
        };
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let threads = std::env::var("DNNOPT_THREADS").unwrap_or_else(|_| "auto".into());
        format!("{body},\"host_cpus\":{cpus},\"threads\":\"{threads}\"}}")
    }

    /// Extracts the `"name"` field of a recorded JSON row.
    fn row_name(line: &str) -> Option<&str> {
        let start = line.find("\"name\":\"")? + 8;
        let end = line[start..].find('"')? + start;
        Some(&line[start..end])
    }

    /// Re-times the affected kernels and merges the rows into `path`:
    /// existing rows with the same name are replaced in place, new rows
    /// are appended, everything else is left untouched.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn refresh(path: &str) -> std::io::Result<()> {
        let tmp = std::env::temp_dir().join(format!("bench_rows_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&tmp);
        record_rows(&tmp);
        let fresh = std::fs::read_to_string(&tmp)?;
        let _ = std::fs::remove_file(&tmp);
        let existing = std::fs::read_to_string(path).unwrap_or_default();
        let mut lines: Vec<String> = existing.lines().map(String::from).collect();
        for new_row in fresh.lines() {
            let Some(name) = row_name(new_row) else {
                continue;
            };
            let tagged = with_host_metadata(new_row);
            match lines.iter().position(|l| row_name(l) == Some(name)) {
                Some(i) => lines[i] = tagged,
                None => lines.push(tagged),
            }
        }
        std::fs::write(path, lines.join("\n") + "\n")
    }
}

/// Writes FoM-curve CSV: column 0 is the simulation index, then one column
/// per method (mean best-FoM).
///
/// # Errors
///
/// Propagates file-system errors.
pub fn write_traces_csv(path: &str, methods: &[MethodRuns], len: usize) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    write!(f, "sim")?;
    for m in methods {
        write!(f, ",{}", m.name)?;
    }
    writeln!(f)?;
    let traces: Vec<Vec<f64>> = methods.iter().map(|m| m.mean_trace(len)).collect();
    for i in 0..len {
        write!(f, "{}", i + 1)?;
        for t in &traces {
            write!(f, ",{:.6}", t[i])?;
        }
        writeln!(f)?;
    }
    Ok(())
}

/// Renders a coarse ASCII plot of the mean FoM curves, so figure shapes
/// are visible without leaving the terminal.
pub fn ascii_plot(methods: &[MethodRuns], len: usize, title: &str) -> String {
    let traces: Vec<(String, Vec<f64>)> = methods
        .iter()
        .map(|m| (m.name.clone(), m.mean_trace(len)))
        .collect();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, t) in &traces {
        for &v in t {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    if !lo.is_finite() || hi <= lo {
        return format!("{title}: (no data)\n");
    }
    let rows = 16;
    let cols = 64;
    let mut grid = vec![vec![' '; cols]; rows];
    let marks = ['D', 'B', 'G', '*']; // DE, BO-wEI, GASPAD, DNN-Opt
    for (ti, (_, t)) in traces.iter().enumerate() {
        let mark = marks.get(ti).copied().unwrap_or('?');
        for c in 0..cols {
            let idx = ((c as f64 / (cols - 1) as f64) * (len - 1) as f64) as usize;
            let v = t[idx.min(t.len() - 1)];
            if !v.is_finite() {
                continue;
            }
            let r = ((hi - v) / (hi - lo) * (rows - 1) as f64).round() as usize;
            grid[r.min(rows - 1)][c] = mark;
        }
    }
    let mut out = format!("{title}  (D=DE B=BO-wEI G=GASPAD *=DNN-Opt)\n");
    out.push_str(&format!("FoM {hi:>8.3} +\n"));
    for row in grid {
        out.push_str("             |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!("FoM {lo:>8.3} + sims 1 .. {len}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opt::{RandomSearch, SpecResult};

    struct Toy;
    impl SizingProblem for Toy {
        fn dim(&self) -> usize {
            2
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; 2], vec![1.0; 2])
        }
        fn num_constraints(&self) -> usize {
            1
        }
        fn evaluate(&self, x: &[f64]) -> SpecResult {
            SpecResult {
                failure: None,
                objective: x[0],
                constraints: vec![0.2 - x[1]],
            }
        }
    }

    fn toy_runs() -> MethodRuns {
        let fom = Fom::uniform(1.0, 1);
        let runs = (0..3)
            .map(|s| RandomSearch.run(&Toy, &fom, 30, StopPolicy::Exhaust, s))
            .collect();
        MethodRuns {
            name: "Random".into(),
            runs,
        }
    }

    #[test]
    fn stats_aggregate() {
        let m = toy_runs();
        assert_eq!(m.successes(), 3);
        assert!(m.mean_sims_to_feasible().unwrap() >= 1.0);
        let (min, max, mean) = m.objective_stats().unwrap();
        assert!(min <= mean && mean <= max);
    }

    #[test]
    fn mean_trace_is_monotone_and_padded() {
        let m = toy_runs();
        let t = m.mean_trace(50);
        assert_eq!(t.len(), 50);
        for w in t.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn csv_writer_produces_header_and_rows() {
        let m = toy_runs();
        let path = std::env::temp_dir().join("dnnopt_trace_test.csv");
        write_traces_csv(path.to_str().unwrap(), &[m], 10).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("sim,Random"));
        assert_eq!(body.lines().count(), 11);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ascii_plot_renders() {
        let m = toy_runs();
        let plot = ascii_plot(&[m], 30, "test");
        assert!(plot.contains("FoM"));
        assert!(plot.contains('D'));
    }

    #[test]
    fn scale_env_defaults() {
        let s = Scale::from_env();
        assert!(s.repeats >= 1);
        assert!(s.budget >= 10);
    }

    /// Diagnostic (run with `--ignored --nocapture`): dense
    /// `factor_into` vs sparse `refactor_into` across system size and
    /// density — the measurements behind `SPARSE_MIN_UNKNOWNS` /
    /// `SPARSE_MAX_DENSITY` in `spice::workspace`.
    #[test]
    #[ignore]
    fn probe_dense_sparse_crossover() {
        use linalg::{CscMatrix, Lu, LuWorkspace, Matrix, SparseLu};
        // Density sweep at fixed n: banded dominant matrices of varying
        // bandwidth; n sweep at mesh-like density.
        for n in [12usize, 16, 24, 32, 48, 64] {
            for band in [2usize, n / 4, n / 2, n] {
                let dense = Matrix::from_fn(n, n, |i, j| {
                    let d = i.abs_diff(j);
                    if d == 0 {
                        4.0 + (i as f64) * 0.01
                    } else if d <= band {
                        -1.0 / (1.0 + d as f64) * (1.0 + ((i * 7 + j) % 5) as f64 * 0.1)
                    } else {
                        0.0
                    }
                });
                let csc = CscMatrix::from_dense(&dense);
                let nnz = csc.values().len();
                let density = nnz as f64 / (n * n) as f64;
                let iters = 200_000 / n;
                let mut ws = LuWorkspace::new(n);
                Lu::factor_into(&dense, &mut ws).unwrap();
                let t = std::time::Instant::now();
                for _ in 0..iters {
                    Lu::factor_into(&dense, &mut ws).unwrap();
                }
                let td = t.elapsed().as_secs_f64() / iters as f64;
                let mut slu = SparseLu::new();
                slu.factor(&csc).unwrap();
                let t = std::time::Instant::now();
                for _ in 0..iters {
                    slu.refactor_into(&csc).unwrap();
                }
                let ts = t.elapsed().as_secs_f64() / iters as f64;
                eprintln!(
                    "n={n:3} density={density:.2} dense {:7.2}us sparse {:7.2}us ratio {:.2}",
                    td * 1e6,
                    ts * 1e6,
                    td / ts
                );
            }
        }
    }

    /// Diagnostic (run with `--ignored --nocapture`): scalar vs supernodal
    /// refactor times on the generated parasitic meshes — the workload the
    /// `sparse_scaling` bench records, without criterion overhead.
    #[test]
    #[ignore]
    fn probe_mesh_refactor_paths() {
        use linalg::{SparseLu, SupernodalMode};
        for n in [200usize, 500, 1000] {
            let (csc, _z) = mesh_dc_system(n);
            let mut times = Vec::new();
            for mode in [SupernodalMode::ForceScalar, SupernodalMode::ForceBlocked] {
                let mut slu = SparseLu::new();
                slu.set_supernodal_mode(mode);
                slu.factor(&csc).unwrap();
                let iters = 200_000 / n;
                let t = std::time::Instant::now();
                for _ in 0..iters {
                    slu.refactor_into(&csc).unwrap();
                }
                times.push(t.elapsed().as_secs_f64() / iters as f64);
            }
            eprintln!(
                "n={n}: scalar {:.1}us supernodal {:.1}us ratio {:.2}x",
                times[0] * 1e6,
                times[1] * 1e6,
                times[0] / times[1]
            );
        }
    }
}
