//! Measure and size the folded-cascode OTA (paper Fig. 2 / Table I).
//!
//! Run with `cargo run --release --example folded_cascode -- [budget]`
//! (default budget 120; the paper uses 500).

use circuits::FoldedCascodeOta;
use dnn_opt::{DnnOpt, DnnOptConfig};
use opt::{Fom, Optimizer, RunReport, SizingProblem, StopPolicy};

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    let ota = FoldedCascodeOta::new();

    // 1. Measure the shipped hand-tuned design.
    println!("== nominal design report ==");
    match ota.report(&ota.nominal()) {
        Ok(r) => {
            println!("power        : {:.3} mW", r.power * 1e3);
            println!("DC gain      : {:.1} dB", r.dc_gain_db);
            println!("UGF          : {:.1} MHz", r.ugf.unwrap_or(0.0) / 1e6);
            println!("phase margin : {:.1} deg", r.phase_margin.unwrap_or(0.0));
            println!("CMRR / PSRR  : {:.0} / {:.0} dB", r.cmrr_db, r.psrr_db);
            println!("output swing : {:.2} V (differential)", r.swing);
            println!("noise        : {:.2} mV rms", r.noise_rms * 1e3);
        }
        Err(e) => println!("nominal failed to simulate: {e}"),
    }
    let spec = ota.evaluate(&ota.nominal());
    println!("nominal feasible against Eq. 9: {}", spec.feasible());

    // 2. Size from scratch with DNN-Opt.
    println!("\n== DNN-Opt sizing run (budget {budget}) ==");
    let fom = Fom::new(100.0, vec![0.25; ota.num_constraints()]);
    let run = DnnOpt::new(DnnOptConfig::default()).run(&ota, &fom, budget, StopPolicy::Exhaust, 1);
    println!(
        "best FoM        : {:.3}",
        run.history.best().map(|e| e.fom).unwrap_or(f64::NAN)
    );
    match run.history.best_feasible() {
        Some(e) => println!("feasible design : {:.3} mW", e.spec.objective * 1e3),
        None => println!("no feasible design inside this budget (paper needs ~132–205 sims)"),
    }
    println!(
        "model time      : {:.1?} / total {:.1?}",
        run.model_time, run.total_time
    );

    // Robustness taxonomy plus — under `DNNOPT_TRACE` — span timings,
    // solver/pool metric histograms, and the configured trace file.
    println!("\n== run report ==\n{}", RunReport::collect(&run.history));
}
