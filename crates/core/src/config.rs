//! DNN-Opt hyperparameters.

/// Hyperparameters of the DNN-Opt optimizer (paper §II).
///
/// The paper states that network architecture and learning rates "were
/// found based on empirical studies" without publishing them; the defaults
/// here were tuned on synthetic constrained problems (see
/// `bench/benches/ablation.rs`) and kept fixed for every experiment, as the
/// paper does.
#[derive(Debug, Clone)]
pub struct DnnOptConfig {
    /// Initial random (Latin-hypercube) samples `Ninit`.
    pub n_init: usize,
    /// Elite population size `Nes` (paper §II-D).
    pub n_elite: usize,
    /// Hidden-layer width of both networks.
    pub hidden: usize,
    /// Number of hidden layers of both networks.
    pub depth: usize,
    /// Critic Adam steps per iteration (each on a fresh pseudo-sample
    /// minibatch).
    pub critic_epochs: usize,
    /// Pseudo-sample minibatch size per critic step (subsampling cap for
    /// the N² Cartesian set, Eq. 2).
    pub critic_batch: usize,
    /// Critic Adam learning rate.
    pub critic_lr: f64,
    /// Actor Adam steps per iteration (full elite batch each).
    pub actor_epochs: usize,
    /// Actor Adam learning rate.
    pub actor_lr: f64,
    /// Boundary-violation weight λ of Eq. 5 ("chosen to be very large").
    pub lambda: f64,
    /// Initial exploration-noise σ, as a fraction of each variable's range.
    pub noise_initial: f64,
    /// Final exploration-noise σ (linear decay over the budget).
    pub noise_final: f64,
    /// Base RNG seed component (combined with the per-run seed).
    pub seed_offset: u64,
    /// Corner-resolved critic (opt-in): on a corner-indexed problem, train
    /// the critic on the per-corner constraint vector (`1 + K·m` wide —
    /// [`opt::SizingProblem::num_corners`] × constraints) instead of the
    /// worst-case aggregate, against the corner-tiled FoM
    /// ([`opt::Fom::tiled`]). The surrogate then sees *which* corner a
    /// candidate violates, not just that one does; history recording,
    /// elite selection and the budget stay on the aggregate. Off by
    /// default (no effect on single-corner problems either way).
    pub corner_critic: bool,
}

impl Default for DnnOptConfig {
    fn default() -> Self {
        DnnOptConfig {
            n_init: 20,
            n_elite: 10,
            hidden: 48,
            depth: 2,
            critic_epochs: 400,
            critic_batch: 128,
            critic_lr: 3e-3,
            actor_epochs: 100,
            actor_lr: 3e-3,
            lambda: 100.0,
            noise_initial: 0.10,
            noise_final: 0.03,
            seed_offset: 0x5eed,
            corner_critic: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = DnnOptConfig::default();
        assert!(c.n_elite <= c.n_init);
        assert!(c.noise_final <= c.noise_initial);
        assert!(c.lambda > 1.0);
        assert!(c.hidden >= 8 && c.depth >= 1);
    }
}
