//! Parallel population evaluation must be a pure wall-clock optimization:
//! for every optimizer that fans simulations out over worker threads, the
//! recorded history — designs, spec vectors, FoMs, feasibility flags —
//! must be bit-identical to a fully serial run.

use dnn_opt::{DnnOpt, DnnOptConfig};
use opt::{
    parallel, DifferentialEvolution, Fom, Optimizer, RandomSearch, RunResult, SizingProblem,
    SpecResult, StopPolicy,
};

/// The `examples/quickstart.rs` problem: minimize "power" x0+x1 subject to
/// a "gain" constraint x0·x1 ≥ 0.2.
struct ToyAmp;

impl SizingProblem for ToyAmp {
    fn dim(&self) -> usize {
        2
    }
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.05; 2], vec![1.0; 2])
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn evaluate(&self, x: &[f64]) -> SpecResult {
        SpecResult {
            objective: x[0] + x[1],
            constraints: vec![0.2 - x[0] * x[1]],
        }
    }
    fn name(&self) -> &str {
        "toy-amp"
    }
}

/// Exact (bitwise) history comparison.
fn assert_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.history.len(), b.history.len(), "{label}: history length");
    assert_eq!(
        a.history.first_feasible(),
        b.history.first_feasible(),
        "{label}: first feasible"
    );
    for (i, (ea, eb)) in a
        .history
        .entries()
        .iter()
        .zip(b.history.entries())
        .enumerate()
    {
        assert_eq!(ea.x, eb.x, "{label}: design #{i}");
        assert_eq!(ea.fom.to_bits(), eb.fom.to_bits(), "{label}: fom #{i}");
        assert_eq!(ea.feasible, eb.feasible, "{label}: feasibility #{i}");
        assert_eq!(
            ea.spec.objective.to_bits(),
            eb.spec.objective.to_bits(),
            "{label}: f0 #{i}"
        );
        assert_eq!(
            ea.spec.constraints, eb.spec.constraints,
            "{label}: constraints #{i}"
        );
    }
    assert_eq!(
        a.history.best_trace(),
        b.history.best_trace(),
        "{label}: best trace"
    );
}

/// One test covers all methods so the global thread-count override is
/// never raced by a concurrently running test.
#[test]
fn serial_and_parallel_runs_are_bit_identical() {
    let problem = ToyAmp;
    let fom = Fom::uniform(1.0, 1);
    let quick = DnnOptConfig {
        critic_epochs: 60,
        actor_epochs: 20,
        critic_batch: 64,
        hidden: 16,
        ..Default::default()
    };
    let methods: Vec<(Box<dyn Optimizer>, usize)> = vec![
        (Box::new(DifferentialEvolution::default()), 150),
        (Box::new(RandomSearch), 150),
        (Box::new(DnnOpt::new(quick)), 40),
    ];
    for (method, budget) in &methods {
        for stop in [StopPolicy::Exhaust, StopPolicy::FirstFeasible] {
            parallel::set_max_threads(1);
            let serial = method.run(&problem, &fom, *budget, stop, 42);
            parallel::set_max_threads(8);
            let parallel_run = method.run(&problem, &fom, *budget, stop, 42);
            parallel::set_max_threads(0);
            assert_identical(
                &serial,
                &parallel_run,
                &format!("{} ({stop:?})", method.name()),
            );
        }
    }
}
