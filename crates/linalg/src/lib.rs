//! Dense linear-algebra kernels for the DNN-Opt reproduction.
//!
//! Everything here is written from scratch on top of `Vec<f64>` so that the
//! workspace carries no external numeric dependencies. The crate provides
//! exactly the operations the rest of the system needs:
//!
//! - [`Matrix`]: a row-major dense matrix with the usual arithmetic,
//!   used by the neural-network and Gaussian-process crates.
//! - [`gemm`] / [`gemm_with`]: a cache-blocked, register-tiled GEMM engine
//!   covering all `op(A)·op(B)` shapes with packed panels held in a
//!   reusable [`GemmWorkspace`] and fused output epilogues — the training
//!   kernel behind the DNN-Opt critic/actor networks. Large products
//!   split across the shared [`pool`] into static tile-aligned panels,
//!   bit-identical to serial at any thread count.
//! - [`pool`]: the process-wide worker pool behind both the threaded GEMM
//!   and the optimizer's population grid, sized by `DNNOPT_THREADS` /
//!   [`pool::set_max_threads`], with a two-level budget so nested GEMMs
//!   stay serial while a grid dispatch holds the cores.
//! - [`Lu`]: partially pivoted LU factorization for the real MNA systems of
//!   the circuit simulator and as a general linear solver.
//! - [`CscMatrix`] and [`SparseLu`]: KLU-style sparse LU with a recorded
//!   elimination pattern — one symbolic analysis per topology, a scan-free
//!   [`SparseLu::refactor_into`] per Newton iteration. The simulator
//!   auto-selects this path for large, sparse MNA systems. The whole
//!   sparse pipeline is one generic implementation over [`Scalar`]
//!   ([`CscT`]/[`SparseLuT`]), monomorphized for `f64` and [`C64`], and
//!   includes a supernodal blocked replay with a deterministic
//!   etree-parallel mode over the shared [`pool`].
//! - [`Cholesky`]: factorization of symmetric positive-definite matrices,
//!   used by Gaussian-process regression (with log-determinants for the
//!   marginal likelihood).
//! - [`C64`] and [`ComplexLu`] (with [`ComplexLuWorkspace`]): minimal
//!   complex arithmetic and a dense complex LU solver for AC small-signal
//!   analysis.
//! - [`CscComplexMatrix`] and [`SparseComplexLu`]: the complex mirror of
//!   the sparse pipeline for the frequency-domain MNA systems `G + jωC`,
//!   with a transpose solve for the noise analysis' adjoint system. The
//!   simulator auto-selects this path for large, sparse AC systems.
//!
//! # Example
//!
//! ```
//! use linalg::{Matrix, Lu};
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let lu = Lu::factor(&a).expect("non-singular");
//! let x = lu.solve(&[1.0, 2.0]);
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
//! ```

mod cholesky;
mod complex;
mod gemm;
mod lu;
mod matrix;
pub mod pool;
mod scalar;
mod sparse;
mod sparse_complex;
mod supernodal;
pub mod vecops;

pub use cholesky::{Cholesky, CholeskyWorkspace};
pub use complex::{ComplexLu, ComplexLuWorkspace, C64};
pub use gemm::{
    gemm, gemm_naive, gemm_naive_with, gemm_prepacked_with, gemm_with, pack_b_into, Epilogue,
    GemmOp, GemmWorkspace, NoEpilogue, PackedB, GEMM_NAIVE_CUTOFF, GEMM_PARALLEL_MIN_WORK,
};
pub use lu::{Lu, LuWorkspace};
pub use matrix::Matrix;
pub use scalar::{C64Planes, ComplexGemmScratch, Scalar};
pub use sparse::{CscMatrix, CscT, SparseLu, SparseLuT};
pub use sparse_complex::{CscComplexMatrix, SparseComplexLu};
pub use supernodal::SupernodalMode;

/// Error produced by factorizations when the input matrix is unusable.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// The matrix is singular (or numerically so) at the given pivot index.
    Singular { pivot: usize },
    /// The matrix is not positive definite (Cholesky only); the leading
    /// minor of the given order failed.
    NotPositiveDefinite { order: usize },
    /// The matrix is not square or dimensions disagree.
    Shape { rows: usize, cols: usize },
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            FactorError::NotPositiveDefinite { order } => {
                write!(f, "matrix is not positive definite (leading minor {order})")
            }
            FactorError::Shape { rows, cols } => {
                write!(
                    f,
                    "matrix shape {rows}x{cols} is invalid for this operation"
                )
            }
        }
    }
}

impl std::error::Error for FactorError {}
