//! Supernodal (blocked) numeric execution for [`SparseLuT`].
//!
//! The scalar Gilbert–Peierls replay in `sparse.rs` touches one column at a
//! time through index lists — ideal for the very sparse leading region of
//! an MNA factorization, hopeless for the dense trailing blocks that
//! fill-in produces on post-layout parasitic meshes. This module detects
//! *supernodes* — runs of consecutive pivotal columns whose below-diagonal
//! structure is identical or nested — from the recorded symbolic pattern
//! and replays the numeric factorization as a **hybrid**:
//!
//! - columns in narrow supernodes (width < [`Scalar::PANEL_MIN_WIDTH`])
//!   replay with
//!   the exact scalar Gilbert–Peierls column kernel — recorded index lists,
//!   no panel overhead. On extraction-style meshes two thirds of the
//!   columns are such singletons, but they carry under 15% of the flops.
//!   When a narrow supernode feeds a later panel, its just-computed L
//!   values are mirrored into dense mini-blocks through a precomputed
//!   scatter map so the panel can batch it like any other updater;
//! - each wide supernode's columns are gathered into a dense working panel
//!   (rows = the union of the supernode's U rows, its own pivotal block,
//!   and its below-diagonal rows). *Every* earlier supernode with recorded
//!   U entries in the panel then applies as one batch, in ascending
//!   pivotal order: a unit-lower triangular solve (TRSM) against the
//!   updater's diagonal block finalizes the panel's U rows, and a product
//!   with the updater's sub-diagonal block retires the rows below — both
//!   blocked through the [`Scalar::gemm_nn`] hook into the [`crate::gemm`]
//!   micro-kernel (serial inside grid workers per the two-level thread
//!   budget), with a fused multiply-scatter fallback for small batches.
//!   Precomputed per-pair row maps and reached-column lists keep the
//!   gathers direct and skip columns whose contribution is exactly zero;
//! - the panel itself is factored dense blocked right-looking
//!   ([`Scalar::PANEL_NB`]-column blocks retired against the trailing columns via
//!   TRSM + one gemm product), then scattered back into the recorded
//!   `l_vals`/`u_vals`/`inv_diag` arrays through a precomputed store map,
//!   so [`SparseLuT::solve_into`] and later scalar columns are unchanged.
//!
//! The whole plane is generic over [`Scalar`]: the same symbolic plan and
//! the same numeric replay serve the real DC/transient factorizations
//! (`f64`) and the frequency-domain `G + jωC` refactors
//! ([`crate::C64`]), with the flop thresholds scaled by
//! [`Scalar::FLOP_WEIGHT`] so the GEMM crossovers land at the same real
//! arithmetic intensity for both element types.
//!
//! Supernodes may be *relaxed*: a column whose structure is nested (not
//! identical) within its neighbor joins the panel, and the union positions
//! it does not own hold exact zeros. Those relaxed zeros are harmless by
//! construction — every product that could write a nonzero into a position
//! outside the recorded Gilbert–Peierls pattern has at least one exactly-
//! zero operand (otherwise the position would have filled in symbolically),
//! so relaxed positions stay zero bitwise and are never scattered back.
//!
//! # Deterministic etree-parallel replay
//!
//! The recorded dependencies between supernodes form a forest (the
//! supernode elimination tree, built with Liu's ancestor compression):
//! everything a supernode reads — earlier L columns in the scalar kernel,
//! updater blocks in a panel — lives in its *descendants*. The plan
//! therefore partitions the postordered supernodes into independent
//! subtree **tasks** (subtrees whose accumulated flops fall under a chunk
//! target) plus a sequential top-of-tree **spine**, and
//! [`Supernodal::refactor`] dispatches the tasks over the shared
//! [`crate::pool`] with a fixed round-robin task → slot assignment:
//!
//! - no work stealing and no atomics anywhere in the floating-point path —
//!   which task computes which column is a pure function of the pattern
//!   and the thread count;
//! - every task writes disjoint slices of `l_vals`/`u_vals`/`inv_diag` and
//!   its own supernodes' dense blocks, with per-slot numeric scratch, so
//!   each column's arithmetic is *the same instructions in the same order*
//!   as the serial replay — bit-identical at any thread count;
//! - the spine runs serially after the barrier, reading the task results
//!   exactly as the serial walk would;
//! - a singular pivot inside a task stops that task only; the replay
//!   reports the minimum failing pivot across tasks, which equals the
//!   pivot the serial walk would have tripped on first.
//!
//! Parallel dispatch engages only when the plan has ≥ 2 tasks, the
//! weighted flop estimate clears [`PAR_MIN_FLOPS`], and the two-level
//! thread budget grants workers (nested inside a grid dispatch it stays
//! serial, like the threaded GEMM).
//!
//! Determinism: the plan is a pure function of the recorded pattern, the
//! panel walk is sequential within a task, and the only nested-parallel
//! kernel ([`crate::gemm`]) is bit-identical to serial at any thread
//! count — so the blocked replay satisfies the same serial ≡ parallel
//! contract as the scalar one. To keep *fresh factor ≡ refactor*
//! bit-identity on this path, [`SparseLuT::factor`] re-runs the blocked
//! replay on the same values immediately after the scalar pivoting pass
//! pins the pattern: stored factors always come from blocked arithmetic
//! whenever the blocked plan is active.

use crate::pool;
use crate::scalar::Scalar;
use crate::sparse::{CscT, SparseLuT, PIVOT_EPS};
use crate::FactorError;

/// Which numeric path [`SparseLuT`] runs after the symbolic pattern is
/// recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SupernodalMode {
    /// Dispatch by measured symbolic statistics (the flop share carried by
    /// wide-supernode columns) — the default.
    #[default]
    Auto,
    /// Always replay with scalar Gilbert–Peierls column updates.
    ForceScalar,
    /// Always build and run the blocked panel replay (benchmark/test hook;
    /// correct at any size, profitable only with real supernodes).
    ForceBlocked,
}

impl SupernodalMode {
    /// Reads the `DNNOPT_SUPERNODAL` environment override:
    /// `force_blocked` / `force_scalar` select the corresponding mode,
    /// anything else (including unset) is [`SupernodalMode::Auto`]. Used
    /// by the simulator workspaces so CI and experiments can pin the
    /// numeric path without code changes.
    pub fn from_env() -> Self {
        match std::env::var("DNNOPT_SUPERNODAL").ok().as_deref() {
            Some("force_blocked") => SupernodalMode::ForceBlocked,
            Some("force_scalar") => SupernodalMode::ForceScalar,
            _ => SupernodalMode::Auto,
        }
    }
}

/// Systems below this dimension never take the blocked path under
/// [`SupernodalMode::Auto`]: panel gather/scatter overhead beats any GEMM
/// win when the whole factor fits in a few cache lines.
const SUPERNODAL_MIN_N: usize = 64;

/// Auto dispatch requires at least this fraction (×1/256) of the scalar
/// replay's flops to live in columns of wide supernodes — below it the
/// pattern has no dense trailing structure and the scalar replay wins
/// everywhere. 128/256 = 50%.
const MIN_PANEL_FLOP_FRAC_256: u64 = 128;

/// Panel width cap. Wider panels help GEMM but grow the relaxed-zero
/// overhead; with the blocked panel factor 192 lets the dense trailing
/// block of a post-layout mesh factorization form a handful of panels
/// while the active column block stays in cache.
const MAX_WIDTH: usize = 192;

/// Auto dispatch also requires the wide panels' dense L slots to stay
/// within this factor of the recorded L entries they hold — beyond it the
/// plan is relaxation padding, not dense structure.
const MAX_PANEL_PAD_RATIO: u64 = 2;

/// Batch products at or above this weighted flop count
/// ([`Scalar::FLOP_WEIGHT`] × real flops) go through the [`crate::gemm`]
/// micro-kernel (packed, near-peak on the dense trailing blocks); smaller
/// ones run a fused multiply-scatter loop that skips relaxed-zero
/// multipliers and rows outside the panel — for the many small updates of
/// a mesh factorization the packing and the discarded rows cost more than
/// they save.
const GEMM_MIN_FLOPS: usize = 1 << 14;

/// The etree task partition targets this many tasks per replay — enough
/// slack for an 8–16 worker pool to balance statically without shredding
/// the subtrees into cache-hostile fragments.
const TASK_TARGET: u64 = 48;

/// Floor on the per-task flop chunk: subtrees are never split finer than
/// this, whatever [`TASK_TARGET`] asks for.
const TASK_MIN_FLOPS: u64 = 1 << 16;

/// Parallel replay engages only when the weighted dense-block flop
/// estimate ([`Scalar::FLOP_WEIGHT`] × `block_flops`) clears this bar —
/// under it the pool dispatch overhead beats the win.
const PAR_MIN_FLOPS: u64 = 1 << 21;

/// Relaxed-supernode slack: a column may join a panel whose row union
/// differs from the column's own below structure by at most this many rows
/// on either side. Grows with the width already accumulated — a wide panel
/// amortizes a few extra structural zeros over much more dense arithmetic,
/// a pair of columns cannot.
fn relax_rows(width: usize) -> usize {
    4 + width / 3
}

/// Clears and re-fills a scratch vector with exact zeros at the given
/// length (the `Vec<T>` analogue of `Matrix::reshape_zeroed`).
#[inline]
fn zfill<T: Scalar>(v: &mut Vec<T>, len: usize) {
    v.clear();
    v.resize(len, T::ZERO);
}

/// Dense value blocks of one supernode: the unit-lower diagonal block
/// (`w×w` row-major; diagonal 1, strict upper 0) and the sub-diagonal
/// multiplier block (`|B|×w` row-major). Empty for narrow supernodes no
/// panel reads. `planes` caches `lbelow` in the element type's split-plane
/// form (real/imaginary matrices for `C64`, nothing for `f64`), refreshed
/// once when the supernode's values land so the many downstream batch
/// products skip the per-call operand split. `linv` (with its own cached
/// planes) holds the explicit inverse of the unit-lower `ldiag` for
/// updaters whose batch TRSMs are worth converting into GEMM products —
/// allocated only when the plan decides so ([`Supernodal::finish_structures`]),
/// recomputed by forward substitution each time the supernode's values
/// land.
#[derive(Debug, Clone, Default)]
struct Block<T: Scalar> {
    ldiag: Vec<T>,
    lbelow: Vec<T>,
    planes: T::Planes,
    linv: Vec<T>,
    linv_planes: T::Planes,
}

/// Per-worker numeric scratch. Slot 0 serves the serial replay and the
/// spine; parallel dispatch grows one slot per engaged worker so the
/// floating-point path shares nothing mutable across threads.
#[derive(Debug, Clone, Default)]
struct Scratch<T: Scalar> {
    /// Dense working panel, column-major (`nr` rows per column).
    w: Vec<T>,
    /// Original row → panel row for the supernode being processed
    /// (`u32::MAX` = absent).
    pos: Vec<u32>,
    /// Dense accumulator of the scalar column kernel, indexed by original
    /// row (the per-slot replacement for `SparseLuT::work`).
    work: Vec<T>,
    /// Gathered U block of the updater being applied (w_s × w_target).
    ub: Vec<T>,
    /// GEMM result buffer.
    y: Vec<T>,
    /// Packed `L21` block of the blocked panel factor / batch TRSM.
    lpk: Vec<T>,
    /// Packed solved rows of the blocked batch TRSM.
    bpk: Vec<T>,
    /// One dense panel row, accumulated contiguously by the fused
    /// small-product path before the strided subtract into the panel.
    trow: Vec<T>,
    /// Packing workspace of the [`Scalar::gemm_nn`] hook.
    gws: T::GemmScratch,
}

impl<T: Scalar> Scratch<T> {
    fn new(n: usize, max_panel: usize) -> Self {
        Scratch {
            w: vec![T::ZERO; max_panel],
            pos: vec![u32::MAX; n],
            work: vec![T::ZERO; n],
            ub: Vec::new(),
            y: Vec::new(),
            lpk: Vec::new(),
            bpk: Vec::new(),
            trow: vec![T::ZERO; MAX_WIDTH],
            gws: T::GemmScratch::default(),
        }
    }
}

/// Raw pointer wrapper the fixed-slot dispatch shares across workers. Each
/// worker only dereferences indices its task partition owns, so the
/// aliasing is disjoint by construction (same idiom as the threaded GEMM's
/// tile writers).
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the raw pointer field.
    fn get(self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Shared numeric-replay context: the recorded pattern (shared slices) and
/// the output arrays (raw pointers, disjointly written per task). One
/// `Ctx` serves both the serial walk and every pool worker, so the serial
/// and parallel paths run literally the same code.
struct Ctx<'a, T: Scalar> {
    q: &'a [usize],
    p: &'a [usize],
    l_colptr: &'a [usize],
    l_rows: &'a [usize],
    u_colptr: &'a [usize],
    u_rows: &'a [usize],
    a_colptr: &'a [usize],
    a_rows: &'a [usize],
    a_vals: &'a [T],
    l_vals: SendPtr<T>,
    u_vals: SendPtr<T>,
    inv_diag: SendPtr<T>,
    blocks: SendPtr<Block<T>>,
}

impl<T: Scalar> Ctx<'_, T> {
    /// # Safety
    /// `t` must be in-bounds for `l_vals`, and no other thread may be
    /// writing slot `t` (guaranteed by the disjoint task partition).
    #[inline(always)]
    unsafe fn lval(&self, t: usize) -> T {
        *self.l_vals.0.add(t)
    }
    #[inline(always)]
    unsafe fn set_lval(&self, t: usize, v: T) {
        *self.l_vals.0.add(t) = v;
    }
    #[inline(always)]
    unsafe fn set_uval(&self, t: usize, v: T) {
        *self.u_vals.0.add(t) = v;
    }
    #[inline(always)]
    unsafe fn set_inv_diag(&self, k: usize, v: T) {
        *self.inv_diag.0.add(k) = v;
    }
    /// # Safety
    /// `s` must be in-bounds and the supernode's blocks must be owned by
    /// the calling task (its own supernode or a descendant), or the call
    /// must happen outside `pool::run` (spine / serial walk).
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    unsafe fn block_mut(&self, s: usize) -> &mut Block<T> {
        &mut *self.blocks.0.add(s)
    }
}

/// The supernodal execution plan plus all numeric scratch. Built once per
/// recorded pattern by [`Supernodal::build`]; [`Supernodal::refactor`]
/// replays new values through it.
#[derive(Debug, Clone, Default)]
pub(crate) struct Supernodal<T: Scalar> {
    /// Supernode boundaries over pivotal steps: supernode `s` covers
    /// columns `sn_ptr[s]..sn_ptr[s + 1]`.
    sn_ptr: Vec<u32>,
    /// Pivotal step → owning supernode id.
    col_sn: Vec<u32>,
    /// Below-diagonal rows per supernode (pivotal, sorted, all ≥ the
    /// supernode's end column), concatenated; offsets in `b_ptr`.
    b_ptr: Vec<u32>,
    b_rows: Vec<u32>,
    /// Target-side U rows per *panel* supernode (pivotal, sorted, all < the
    /// supernode's start column), concatenated; offsets in `u_ptr`. Narrow
    /// supernodes have empty segments.
    u_ptr: Vec<u32>,
    u_rows: Vec<u32>,
    /// Updater supernode ids per panel supernode (every width — narrow
    /// updaters batch through their dense mini-blocks), ascending,
    /// concatenated; offsets in `up_ptr`.
    up_ptr: Vec<u32>,
    up_ids: Vec<u32>,
    /// Per (panel, wide-updater) pair, parallel to `up_ids`: the panel row
    /// of each updater pivotal column (`width(us)` entries) followed by the
    /// panel row of each updater below row (`|B(us)|` entries);
    /// `u32::MAX` = outside the panel (the contribution is exactly zero).
    /// Precomputing these at build time removes two dependent indirections
    /// (`pos[p[..]]`) from every gather/scatter element of the hot batch
    /// loop. Offsets in `pair_ptr`.
    pair_ptr: Vec<u32>,
    pair_idx: Vec<u32>,
    /// Per (panel, wide-updater) pair, parallel to `up_ids`: the panel
    /// columns whose recorded U lists intersect the updater's pivotal
    /// range. Columns outside the list receive exactly-zero contributions
    /// from the updater (the position would have filled in symbolically
    /// otherwise), so the batch gathers, solves, multiplies, and scatters
    /// only these. Offsets in `pc_ptr`.
    pc_ptr: Vec<u32>,
    pc_idx: Vec<u32>,
    /// Per panel supernode: the panel row feeding every recorded
    /// `u_vals`/`l_vals` slot of its columns, in scatter order (U range
    /// then L range, column by column). Narrow supernodes have empty
    /// segments. Offsets in `store_ptr`.
    store_ptr: Vec<u32>,
    store_idx: Vec<u32>,
    /// Per *narrow* supernode that updates at least one panel: the
    /// destination of each of its recorded L slots (column-major over the
    /// supernode's columns, recorded order within a column) inside its
    /// dense blocks — `< ws²` indexes `ldiag`, else `ldiag`-offset into
    /// `lbelow`. Filled right after the scalar columns compute, so batches
    /// can consume every updater through the same dense path. Offsets in
    /// `nfill_ptr` (empty for panels and for narrow supernodes no panel
    /// reads).
    nfill_ptr: Vec<u32>,
    nfill_idx: Vec<u32>,
    /// Estimated dense-block flops per numeric replay (telemetry and the
    /// parallel-dispatch gate).
    block_flops: u64,
    /// Supernodes of width ≥ 2 (telemetry / dispatch statistics).
    pub(crate) wide_supernodes: u64,
    /// Largest panel area, for sizing the working buffers once.
    max_panel: usize,

    // ---- etree task partition (deterministic parallel replay) ----
    /// Independent subtree tasks over the supernode elimination forest:
    /// task `t` owns supernodes `task_sn[task_ptr[t]..task_ptr[t + 1]]`,
    /// ascending within the task. Every dependency of a task member is a
    /// task member (subtree closure), so tasks replay concurrently with
    /// no cross-task reads.
    task_ptr: Vec<u32>,
    task_sn: Vec<u32>,
    /// Top-of-tree supernodes (subtree flops above the chunk target),
    /// ascending; replayed serially after the task barrier.
    spine: Vec<u32>,

    // ---- numeric storage ----
    /// Dense L blocks per supernode (see [`Block`]).
    blocks: Vec<Block<T>>,
    /// Per-worker scratch; slot 0 always exists once the plan is built.
    scratch: Vec<Scratch<T>>,
}

impl<T: Scalar> Supernodal<T> {
    /// Detects supernodes on the recorded pattern of `lu`, computes the
    /// dispatch statistics, and returns the blocked plan when selected
    /// (`None` = scalar replay). Records the `SparseSupernodes` and
    /// `SparseBlockedDispatch` telemetry rows either way.
    pub(crate) fn build(lu: &SparseLuT<T>, mode: SupernodalMode) -> Option<Box<Supernodal<T>>> {
        let n = lu.n;
        let skip_detection = matches!(mode, SupernodalMode::ForceScalar)
            || (matches!(mode, SupernodalMode::Auto) && n < SUPERNODAL_MIN_N);
        if skip_detection {
            telemetry::record(telemetry::Metric::SparseBlockedDispatch, 0);
            return None;
        }
        let mut sn = Box::new(Supernodal::detect(lu));
        telemetry::record(telemetry::Metric::SparseSupernodes, sn.wide_supernodes);
        let blocked = match mode {
            SupernodalMode::ForceBlocked => true,
            SupernodalMode::ForceScalar => false,
            SupernodalMode::Auto => {
                // Measured symbolic statistic: the share of the scalar
                // replay's flops carried by wide-supernode columns — the
                // work the panels can turn into dense arithmetic.
                let (mut total, mut panel) = (0u64, 0u64);
                for j in 0..n {
                    let mut col = 0u64;
                    for t in lu.u_colptr[j]..lu.u_colptr[j + 1] {
                        let k = lu.u_rows[t];
                        col += 1 + 2 * (lu.l_colptr[k + 1] - lu.l_colptr[k]) as u64;
                    }
                    total += col;
                    if sn.width(sn.col_sn[j] as usize) >= T::PANEL_MIN_WIDTH {
                        panel += col;
                    }
                }
                // Relaxation-padding guard: the dense L slots the wide
                // panels would allocate vs the recorded L entries they
                // actually hold. Banded patterns chain into "wide"
                // relaxed supernodes whose panels are mostly structural
                // zeros — flop share alone would engage the blocked path
                // there and lose to padding.
                let (mut slots, mut ents) = (0u64, 0u64);
                for s in 0..sn.num_supernodes() {
                    let w = sn.width(s) as u64;
                    if (w as usize) < T::PANEL_MIN_WIDTH {
                        continue;
                    }
                    let blen = (sn.b_ptr[s + 1] - sn.b_ptr[s]) as u64;
                    slots += w * (w - 1) / 2 + w * blen;
                    let (s0, s1) = (sn.sn_ptr[s] as usize, sn.sn_ptr[s + 1] as usize);
                    ents += (lu.l_colptr[s1] - lu.l_colptr[s0]) as u64;
                }
                panel * 256 >= total * MIN_PANEL_FLOP_FRAC_256
                    && slots <= ents.saturating_mul(MAX_PANEL_PAD_RATIO)
            }
        };
        telemetry::record(telemetry::Metric::SparseBlockedDispatch, u64::from(blocked));
        if !blocked {
            return None;
        }
        sn.finish_structures(lu);
        Some(sn)
    }

    fn num_supernodes(&self) -> usize {
        self.sn_ptr.len().saturating_sub(1)
    }

    /// Independent subtree tasks in the etree partition (0 until the plan
    /// is finished).
    pub(crate) fn num_tasks(&self) -> usize {
        self.task_ptr.len().saturating_sub(1)
    }

    fn width(&self, s: usize) -> usize {
        (self.sn_ptr[s + 1] - self.sn_ptr[s]) as usize
    }

    /// Greedy left-to-right supernode partition: column `k` joins the
    /// current panel when row `k` is in the panel's below structure and the
    /// symmetric difference between the panel union and `k`'s own below
    /// rows is within [`relax_rows`] on each side.
    fn detect(lu: &SparseLuT<T>) -> Supernodal<T> {
        let n = lu.n;
        let mut sn = Supernodal::default();
        // Per-column below rows in pivotal coordinates, segment-sorted
        // (the recorded `l_rows` are original indices in DFS order).
        let mut bl_rows: Vec<u32> = lu.l_rows.iter().map(|&r| lu.pinv[r] as u32).collect();
        for k in 0..n {
            bl_rows[lu.l_colptr[k]..lu.l_colptr[k + 1]].sort_unstable();
        }
        sn.col_sn = vec![0; n];
        sn.sn_ptr.push(0);
        sn.b_ptr.push(0);
        let mut cur: Vec<u32> = Vec::new(); // union of below rows, > last col
        let mut tmp: Vec<u32> = Vec::new();
        let mut wide = 0u64;
        let close = |sn: &mut Supernodal<T>, cur: &mut Vec<u32>, end: usize, wide: &mut u64| {
            // Close the open supernode (columns sn_ptr.last()..end).
            let start = *sn.sn_ptr.last().unwrap() as usize;
            if end > start {
                if end - start >= 2 {
                    *wide += 1;
                }
                sn.sn_ptr.push(end as u32);
                sn.b_rows.extend_from_slice(cur);
                sn.b_ptr.push(sn.b_rows.len() as u32);
            }
        };
        for k in 0..n {
            let bk = &bl_rows[lu.l_colptr[k]..lu.l_colptr[k + 1]];
            let start = *sn.sn_ptr.last().unwrap() as usize;
            let width = k - start;
            let mut merged = false;
            if width > 0 && width < MAX_WIDTH {
                // cur \ {k} merged with bk, counting the two-sided slack.
                let k_in = cur.binary_search(&(k as u32)).is_ok();
                if k_in {
                    tmp.clear();
                    let mut extra_prev = 0usize; // rows bk adds to the panel
                    let mut extra_new = 0usize; // panel rows k doesn't own
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < cur.len() || j < bk.len() {
                        let a = if i < cur.len() { cur[i] } else { u32::MAX };
                        let b = if j < bk.len() { bk[j] } else { u32::MAX };
                        if a == k as u32 {
                            i += 1; // absorbed as the new diagonal row
                        } else if a == b {
                            tmp.push(a);
                            i += 1;
                            j += 1;
                        } else if a < b {
                            tmp.push(a);
                            extra_new += 1;
                            i += 1;
                        } else {
                            tmp.push(b);
                            extra_prev += 1;
                            j += 1;
                        }
                    }
                    if extra_prev <= relax_rows(width) && extra_new <= relax_rows(width) {
                        std::mem::swap(&mut cur, &mut tmp);
                        merged = true;
                    }
                }
            }
            if !merged && k > start {
                close(&mut sn, &mut cur, k, &mut wide);
                cur.clear();
                cur.extend_from_slice(bk);
            } else if k == start {
                cur.clear();
                cur.extend_from_slice(bk);
            }
            let id = (sn.sn_ptr.len() - 1) as u32;
            sn.col_sn[k] = id;
        }
        close(&mut sn, &mut cur, n, &mut wide);
        sn.wide_supernodes = wide;
        sn
    }

    /// Builds the target-side structures (U rows, wide-updater lists, panel
    /// storage, flop estimate, etree task partition) once the partition is
    /// fixed and the blocked path is selected. Narrow supernodes get empty
    /// segments — they never form panels.
    fn finish_structures(&mut self, lu: &SparseLuT<T>) {
        let nsn = self.num_supernodes();
        let n = lu.n;
        self.u_ptr.push(0);
        self.up_ptr.push(0);
        self.pair_ptr.push(0);
        self.pc_ptr.push(0);
        self.store_ptr.push(0);
        let mut mark = vec![u32::MAX; n];
        // Pivotal step → panel row for the panel under construction
        // (`u32::MAX` = not a panel row). Built and cleared per panel.
        let mut pos_step = vec![u32::MAX; n];
        let mut flops = 0u64;
        // Per-supernode flop estimate, feeding the etree task partition:
        // dense-panel arithmetic for the wide ones, the scalar replay
        // estimate for the narrow ones.
        let mut sn_flops = vec![0u64; nsn];
        // Total panel columns this supernode retires through GEMM-sized
        // batch TRSMs — when that reaches the supernode's own width, the
        // O(w³/6) explicit inverse of its unit-lower block pays for itself
        // and every one of those TRSMs becomes a dense product.
        let mut linv_wc = vec![0u64; nsn];
        for s in 0..nsn {
            let (s0, s1) = (self.sn_ptr[s] as usize, self.sn_ptr[s + 1] as usize);
            let w = s1 - s0;
            if w < T::PANEL_MIN_WIDTH {
                let mut sf = 0u64;
                for k in s0..s1 {
                    for t in lu.u_colptr[k]..lu.u_colptr[k + 1] {
                        let step = lu.u_rows[t];
                        sf += 1 + 2 * (lu.l_colptr[step + 1] - lu.l_colptr[step]) as u64;
                    }
                }
                sn_flops[s] = sf;
                self.u_ptr.push(self.u_rows.len() as u32);
                self.up_ptr.push(self.up_ids.len() as u32);
                self.store_ptr.push(self.store_idx.len() as u32);
                continue;
            }
            // Union of recorded U rows below s0, stamp-deduplicated.
            let before = self.u_rows.len();
            for k in s0..s1 {
                for t in lu.u_colptr[k]..lu.u_colptr[k + 1] {
                    let step = lu.u_rows[t];
                    if step < s0 && mark[step] != s as u32 {
                        mark[step] = s as u32;
                        self.u_rows.push(step as u32);
                    }
                }
            }
            self.u_rows[before..].sort_unstable();
            self.u_ptr.push(self.u_rows.len() as u32);
            // Updater supernodes owning the U rows — every width; narrow
            // ones batch through their dense mini-blocks (sorted rows give
            // non-decreasing ids; dedup adjacent).
            let mut last = u32::MAX;
            for t in before..self.u_rows.len() {
                let id = self.col_sn[self.u_rows[t] as usize];
                if id != last {
                    self.up_ids.push(id);
                    last = id;
                }
            }
            let up_before = *self.up_ptr.last().unwrap() as usize;
            self.up_ptr.push(self.up_ids.len() as u32);
            let ulen = self.u_rows.len() - before;
            let blen = (self.b_ptr[s + 1] - self.b_ptr[s]) as usize;
            let nr = ulen + w + blen;
            self.max_panel = self.max_panel.max(nr * w);
            // Panel row map in pivotal-step coordinates, used to freeze the
            // batch and scatter index maps below.
            for (i, &row) in self.u_rows[before..].iter().enumerate() {
                pos_step[row as usize] = i as u32;
            }
            for k in s0..s1 {
                pos_step[k] = (ulen + k - s0) as u32;
            }
            let (bb0, bb1) = (self.b_ptr[s] as usize, self.b_ptr[s + 1] as usize);
            for (i, &row) in self.b_rows[bb0..bb1].iter().enumerate() {
                pos_step[row as usize] = (ulen + w + i) as u32;
            }
            // Per-updater index maps + flop estimate: TRSM + GEMM per wide
            // updater, plus the dense right-looking panel factor.
            let mut sf = 0u64;
            for t in up_before..self.up_ids.len() {
                let us = self.up_ids[t] as usize;
                let (t0, t1) = (self.sn_ptr[us] as usize, self.sn_ptr[us + 1] as usize);
                let ws = t1 - t0;
                for step in t0..t1 {
                    self.pair_idx.push(pos_step[step]);
                }
                for &row in &self.b_rows[self.b_ptr[us] as usize..self.b_ptr[us + 1] as usize] {
                    self.pair_idx.push(pos_step[row as usize]);
                }
                self.pair_ptr.push(self.pair_idx.len() as u32);
                // Panel columns this updater actually reaches (recorded U
                // entries are ascending per column, so one partition_point
                // suffices).
                for jj in 0..w {
                    let useg = &lu.u_rows[lu.u_colptr[s0 + jj]..lu.u_colptr[s0 + jj + 1]];
                    let at = useg.partition_point(|&step| step < t0);
                    if at < useg.len() && useg[at] < t1 {
                        self.pc_idx.push(jj as u32);
                    }
                }
                let wc = self.pc_idx.len() - *self.pc_ptr.last().unwrap() as usize;
                self.pc_ptr.push(self.pc_idx.len() as u32);
                let bs = (self.b_ptr[us + 1] - self.b_ptr[us]) as usize;
                sf += (ws * ws * wc + 2 * bs * ws * wc) as u64;
                if 2 * ws * ws * wc >= GEMM_MIN_FLOPS {
                    linv_wc[us] += wc as u64;
                }
            }
            sf += (w * w * (blen + w)) as u64;
            sn_flops[s] = sf;
            flops += sf;
            // Scatter-order map from panel rows into the recorded factor
            // arrays.
            for k in s0..s1 {
                for t in lu.u_colptr[k]..lu.u_colptr[k + 1] {
                    self.store_idx.push(pos_step[lu.u_rows[t]]);
                }
                for t in lu.l_colptr[k]..lu.l_colptr[k + 1] {
                    self.store_idx.push(pos_step[lu.pinv[lu.l_rows[t]]]);
                }
            }
            self.store_ptr.push(self.store_idx.len() as u32);
            // Clear the step map for the next panel.
            for &row in &self.u_rows[before..] {
                pos_step[row as usize] = u32::MAX;
            }
            for k in s0..s1 {
                pos_step[k] = u32::MAX;
            }
            for &row in &self.b_rows[bb0..bb1] {
                pos_step[row as usize] = u32::MAX;
            }
        }
        self.block_flops = flops;
        self.build_task_partition(lu, &sn_flops);
        // Dense value storage: every supernode some panel reads (and every
        // panel) gets a unit-lower diagonal block (diagonal fixed once
        // here, strict upper left at exact zero) and a sub-diagonal panel.
        let mut used = vec![false; nsn];
        for &id in &self.up_ids {
            used[id as usize] = true;
        }
        self.blocks = (0..nsn)
            .map(|s| {
                let w = self.width(s);
                if w < T::PANEL_MIN_WIDTH && !used[s] {
                    return Block::default();
                }
                let blen = (self.b_ptr[s + 1] - self.b_ptr[s]) as usize;
                let mut ldiag = vec![T::ZERO; w * w];
                for i in 0..w {
                    ldiag[i * w + i] = T::ONE;
                }
                // The inverse block is worth carrying once the GEMM-sized
                // TRSMs it replaces cover at least `w` panel columns.
                let linv = if linv_wc[s] >= w as u64 {
                    let mut m = vec![T::ZERO; w * w];
                    for i in 0..w {
                        m[i * w + i] = T::ONE;
                    }
                    m
                } else {
                    Vec::new()
                };
                Block {
                    ldiag,
                    lbelow: vec![T::ZERO; blen * w],
                    planes: T::Planes::default(),
                    linv,
                    linv_planes: T::Planes::default(),
                }
            })
            .collect();
        // Narrow-supernode fill maps: recorded L slot → dense block slot.
        self.nfill_ptr.push(0);
        for s in 0..nsn {
            let (s0, s1) = (self.sn_ptr[s] as usize, self.sn_ptr[s + 1] as usize);
            let ws = s1 - s0;
            if ws >= T::PANEL_MIN_WIDTH || !used[s] {
                self.nfill_ptr.push(self.nfill_idx.len() as u32);
                continue;
            }
            let brows = &self.b_rows[self.b_ptr[s] as usize..self.b_ptr[s + 1] as usize];
            for k in s0..s1 {
                let cc = k - s0;
                for t in lu.l_colptr[k]..lu.l_colptr[k + 1] {
                    let step = lu.pinv[lu.l_rows[t]];
                    let dest = if step < s1 {
                        (step - s0) * ws + cc
                    } else {
                        let bi = brows.partition_point(|&r| (r as usize) < step);
                        debug_assert_eq!(brows[bi] as usize, step);
                        ws * ws + bi * ws + cc
                    };
                    self.nfill_idx.push(dest as u32);
                }
            }
            self.nfill_ptr.push(self.nfill_idx.len() as u32);
        }
        self.scratch = vec![Scratch::new(n, self.max_panel)];
    }

    /// Partitions the postordered supernodes into independent subtree
    /// tasks plus the sequential spine.
    ///
    /// The supernode elimination forest comes from Liu's construction with
    /// ancestor path compression: every dependency edge (a recorded U row
    /// of supernode `s` owned by an earlier supernode `d`) makes `s` an
    /// ancestor of `d`, so everything a supernode reads during the replay
    /// lives in its subtree. Subtree flop totals are monotone along parent
    /// paths, which makes the classification a partition: a supernode
    /// whose subtree fits under the chunk target belongs to exactly one
    /// maximal such subtree (a task); everything above the target is
    /// spine.
    fn build_task_partition(&mut self, lu: &SparseLuT<T>, sn_flops: &[u64]) {
        let nsn = self.num_supernodes();
        let mut parent = vec![u32::MAX; nsn];
        let mut anc = vec![u32::MAX; nsn];
        for s in 0..nsn {
            let (s0, s1) = (self.sn_ptr[s] as usize, self.sn_ptr[s + 1] as usize);
            for k in s0..s1 {
                for t in lu.u_colptr[k]..lu.u_colptr[k + 1] {
                    let mut r = self.col_sn[lu.u_rows[t]] as usize;
                    while r != s && anc[r] != u32::MAX {
                        let nx = anc[r] as usize;
                        anc[r] = s as u32;
                        r = nx;
                    }
                    if r != s {
                        anc[r] = s as u32;
                        parent[r] = s as u32;
                    }
                }
            }
        }
        // Subtree flop totals (parents always follow children in the
        // postorder, so one ascending accumulation suffices).
        let mut subfl: Vec<u64> = sn_flops.to_vec();
        for s in 0..nsn {
            if parent[s] != u32::MAX {
                subfl[parent[s] as usize] += subfl[s];
            }
        }
        let total: u64 = sn_flops.iter().sum();
        let chunk = (total / TASK_TARGET).max(TASK_MIN_FLOPS);
        let mut is_root = vec![false; nsn];
        self.spine.clear();
        for s in 0..nsn {
            if subfl[s] > chunk {
                self.spine.push(s as u32);
            } else if parent[s] == u32::MAX || subfl[parent[s] as usize] > chunk {
                is_root[s] = true;
            }
        }
        // Children adjacency, then one DFS per task root collecting its
        // subtree (all of it fits under the chunk by monotonicity). The
        // members are sorted ascending — subtrees are not contiguous step
        // ranges, but ascending order preserves the serial dependency
        // order inside the task.
        let mut ch_ptr = vec![0u32; nsn + 1];
        for s in 0..nsn {
            if parent[s] != u32::MAX {
                ch_ptr[parent[s] as usize + 1] += 1;
            }
        }
        for i in 0..nsn {
            ch_ptr[i + 1] += ch_ptr[i];
        }
        let mut ch_idx = vec![0u32; *ch_ptr.last().unwrap_or(&0) as usize];
        let mut cursor = ch_ptr.clone();
        for s in 0..nsn {
            if parent[s] != u32::MAX {
                let p = parent[s] as usize;
                ch_idx[cursor[p] as usize] = s as u32;
                cursor[p] += 1;
            }
        }
        self.task_ptr.clear();
        self.task_ptr.push(0);
        self.task_sn.clear();
        let mut stack: Vec<u32> = Vec::new();
        for s in 0..nsn {
            if !is_root[s] {
                continue;
            }
            let before = self.task_sn.len();
            stack.push(s as u32);
            while let Some(x) = stack.pop() {
                self.task_sn.push(x);
                let (c0, c1) = (ch_ptr[x as usize] as usize, ch_ptr[x as usize + 1] as usize);
                stack.extend_from_slice(&ch_idx[c0..c1]);
            }
            self.task_sn[before..].sort_unstable();
            self.task_ptr.push(self.task_sn.len() as u32);
        }
    }

    /// Hybrid numeric replay of new values through the blocked plan (see
    /// the module docs for the shape), dispatching the etree task
    /// partition over the shared pool when the thread budget and the flop
    /// gate allow.
    ///
    /// # Errors
    ///
    /// [`FactorError::Singular`] when a recorded pivot position collapses
    /// numerically (same contract as the scalar replay).
    pub(crate) fn refactor(
        &mut self,
        lu: &mut SparseLuT<T>,
        a: &CscT<T>,
    ) -> Result<(), FactorError> {
        let ntasks = self.num_tasks();
        let mut threads = pool::gemm_threads().min(ntasks);
        if ntasks < 2 || self.block_flops.saturating_mul(T::FLOP_WEIGHT as u64) < PAR_MIN_FLOPS {
            threads = 1;
        }
        self.refactor_threads(lu, a, threads)
    }

    /// [`Supernodal::refactor`] with the worker count pinned (the direct
    /// entry point of the determinism tests; `threads <= 1` is the serial
    /// walk).
    pub(crate) fn refactor_threads(
        &mut self,
        lu: &mut SparseLuT<T>,
        a: &CscT<T>,
        threads: usize,
    ) -> Result<(), FactorError> {
        lu.factored = false;
        let threads = threads.clamp(1, self.num_tasks().max(1));
        while self.scratch.len() < threads {
            self.scratch.push(Scratch::new(lu.n, self.max_panel));
        }
        // The replay works through raw output pointers shared by every
        // worker (disjoint writes per task), so the blocks and per-slot
        // scratch move out of `self` for its duration — `self` stays a
        // shared read-only plan.
        let mut blocks = std::mem::take(&mut self.blocks);
        let mut scratch = std::mem::take(&mut self.scratch);
        let res = {
            let ctx = Ctx {
                q: &lu.q,
                p: &lu.p,
                l_colptr: &lu.l_colptr,
                l_rows: &lu.l_rows,
                u_colptr: &lu.u_colptr,
                u_rows: &lu.u_rows,
                a_colptr: &a.col_ptr,
                a_rows: &a.row_idx,
                a_vals: &a.values,
                l_vals: SendPtr(lu.l_vals.as_mut_ptr()),
                u_vals: SendPtr(lu.u_vals.as_mut_ptr()),
                inv_diag: SendPtr(lu.inv_diag.as_mut_ptr()),
                blocks: SendPtr(blocks.as_mut_ptr()),
            };
            self.replay(&ctx, &mut scratch, threads)
        };
        self.blocks = blocks;
        self.scratch = scratch;
        if res.is_ok() {
            telemetry::record(telemetry::Metric::SparseBlockFlops, self.block_flops);
            lu.factored = true;
        }
        res
    }

    /// Walks the plan: serial ascending when `threads <= 1`, otherwise the
    /// fixed-slot task dispatch followed by the serial spine.
    fn replay(
        &self,
        ctx: &Ctx<'_, T>,
        scratch: &mut [Scratch<T>],
        threads: usize,
    ) -> Result<(), FactorError> {
        if threads <= 1 {
            let scr = &mut scratch[0];
            for s in 0..self.num_supernodes() {
                self.process_supernode(ctx, scr, s)?;
            }
            return Ok(());
        }
        let ntasks = self.num_tasks();
        // Per-slot first-failure records, written through the same
        // disjoint-pointer pattern as the factor arrays.
        let mut errs: Vec<Option<usize>> = vec![None; threads];
        let errp = SendPtr(errs.as_mut_ptr());
        let scrp = SendPtr(scratch.as_mut_ptr());
        pool::run(threads, &move |slot| {
            // Each slot owns tasks slot, slot + threads, … — a pure
            // function of the plan and the thread count, no stealing.
            let scr = unsafe { &mut *scrp.get().add(slot) };
            let mut first: Option<usize> = None;
            let mut ti = slot;
            while ti < ntasks {
                let (t0, t1) = (self.task_ptr[ti] as usize, self.task_ptr[ti + 1] as usize);
                for &sid in &self.task_sn[t0..t1] {
                    if let Err(err) = self.process_supernode(ctx, scr, sid as usize) {
                        let pivot = match err {
                            FactorError::Singular { pivot } => pivot,
                            _ => 0,
                        };
                        first = Some(first.map_or(pivot, |f| f.min(pivot)));
                        // A failed pivot poisons only this subtree; the
                        // slot's remaining (independent) tasks still run
                        // so the minimum failing pivot is exact.
                        break;
                    }
                }
                ti += threads;
            }
            unsafe {
                *errp.get().add(slot) = first;
            }
        });
        telemetry::record(telemetry::Metric::SparseParallelReplays, threads as u64);
        if let Some(&pivot) = errs.iter().flatten().min() {
            // The minimum over per-task first failures is the pivot the
            // serial walk trips on first: every task computes its columns
            // with arithmetic identical to serial, and no task can fail
            // at a column the serial walk passed.
            return Err(FactorError::Singular { pivot });
        }
        let scr = &mut scratch[0];
        for &s in &self.spine {
            self.process_supernode(ctx, scr, s as usize)?;
        }
        Ok(())
    }

    /// Replays one supernode: scalar columns + dense mirror for the narrow
    /// ones, the blocked panel for the wide ones.
    fn process_supernode(
        &self,
        ctx: &Ctx<'_, T>,
        scr: &mut Scratch<T>,
        s: usize,
    ) -> Result<(), FactorError> {
        let (s0, s1) = (self.sn_ptr[s] as usize, self.sn_ptr[s + 1] as usize);
        if s1 - s0 < T::PANEL_MIN_WIDTH {
            for k in s0..s1 {
                Self::scalar_column(ctx, &mut scr.work, k)?;
            }
            self.fill_narrow(ctx, s);
            Ok(())
        } else {
            self.panel(ctx, scr, s)
        }
    }

    /// One column of the scalar Gilbert–Peierls replay — identical
    /// arithmetic, in the identical order, to
    /// [`SparseLuT::refactor_into`]'s loop body (bit-compatibility between
    /// the paths depends on it). `work` is the slot's dense accumulator;
    /// stale values are harmless because exactly the positions read are
    /// cleared first.
    #[inline]
    fn scalar_column(ctx: &Ctx<'_, T>, work: &mut [T], k: usize) -> Result<(), FactorError> {
        let col = ctx.q[k];
        for t in ctx.u_colptr[k]..ctx.u_colptr[k + 1] {
            work[ctx.p[ctx.u_rows[t]]] = T::ZERO;
        }
        work[ctx.p[k]] = T::ZERO;
        for t in ctx.l_colptr[k]..ctx.l_colptr[k + 1] {
            work[ctx.l_rows[t]] = T::ZERO;
        }
        for t in ctx.a_colptr[col]..ctx.a_colptr[col + 1] {
            work[ctx.a_rows[t]] += ctx.a_vals[t];
        }
        for t in ctx.u_colptr[k]..ctx.u_colptr[k + 1] {
            let step = ctx.u_rows[t];
            let ux = work[ctx.p[step]];
            unsafe { ctx.set_uval(t, ux) };
            if ux != T::ZERO {
                for s in ctx.l_colptr[step]..ctx.l_colptr[step + 1] {
                    let lv = unsafe { ctx.lval(s) };
                    work[ctx.l_rows[s]] -= ux * lv;
                }
            }
        }
        let diag = work[ctx.p[k]];
        if !(diag.mag() > PIVOT_EPS) {
            return Err(FactorError::Singular { pivot: k });
        }
        let inv = diag.recip();
        unsafe { ctx.set_inv_diag(k, inv) };
        for t in ctx.l_colptr[k]..ctx.l_colptr[k + 1] {
            unsafe { ctx.set_lval(t, work[ctx.l_rows[t]] * inv) };
        }
        Ok(())
    }

    /// Processes one wide supernode through its dense panel.
    fn panel(&self, ctx: &Ctx<'_, T>, scr: &mut Scratch<T>, s: usize) -> Result<(), FactorError> {
        let (s0, s1) = (self.sn_ptr[s] as usize, self.sn_ptr[s + 1] as usize);
        let w = s1 - s0;
        let (ub0, ub1) = (self.u_ptr[s] as usize, self.u_ptr[s + 1] as usize);
        let (bb0, bb1) = (self.b_ptr[s] as usize, self.b_ptr[s + 1] as usize);
        let (ulen, blen) = (ub1 - ub0, bb1 - bb0);
        let nr = ulen + w + blen;
        // Panel row map (original row coordinates): U rows, the pivotal
        // block, below rows.
        for (i, &row) in self.u_rows[ub0..ub1].iter().enumerate() {
            scr.pos[ctx.p[row as usize]] = i as u32;
        }
        for k in s0..s1 {
            scr.pos[ctx.p[k]] = (ulen + k - s0) as u32;
        }
        for (i, &row) in self.b_rows[bb0..bb1].iter().enumerate() {
            scr.pos[ctx.p[row as usize]] = (ulen + w + i) as u32;
        }
        {
            let wbuf = &mut scr.w[..nr * w];
            wbuf.fill(T::ZERO);
            // Gather A's columns (every entry is inside the recorded reach,
            // hence inside the panel).
            for jj in 0..w {
                let col = ctx.q[s0 + jj];
                let wcol = &mut wbuf[jj * nr..(jj + 1) * nr];
                for t in ctx.a_colptr[col]..ctx.a_colptr[col + 1] {
                    wcol[scr.pos[ctx.a_rows[t]] as usize] += ctx.a_vals[t];
                }
            }
        }
        // Apply every earlier supernode with recorded U entries in this
        // panel, in ascending pivotal order, as a dense batch.
        for t in self.up_ptr[s] as usize..self.up_ptr[s + 1] as usize {
            let us = self.up_ids[t] as usize;
            self.batch_wide(ctx, scr, s, nr, us, t);
        }
        // Dense blocked right-looking factor of the panel's trapezoid:
        // factor `Scalar::PANEL_NB`-column blocks with rank-1 updates kept
        // inside the block, then retire each block against the trailing
        // columns as a unit-lower TRSM on their U rows plus one gemm
        // product on the rows below — the O(w²·nr) sweep of the plain
        // right-looking loop becomes O(w²·nr/PANEL_NB) panel traffic.
        let mut jb = 0;
        while jb < w {
            let nb = T::PANEL_NB.min(w - jb);
            for jj in jb..jb + nb {
                let wbuf = &mut scr.w[..nr * w];
                let dr = ulen + jj;
                let diag = wbuf[jj * nr + dr];
                if !(diag.mag() > PIVOT_EPS) {
                    self.clear_pos(ctx, &mut scr.pos, s);
                    return Err(FactorError::Singular { pivot: s0 + jj });
                }
                let inv = diag.recip();
                unsafe { ctx.set_inv_diag(s0 + jj, inv) };
                for r in jj * nr + dr + 1..(jj + 1) * nr {
                    wbuf[r] = wbuf[r] * inv;
                }
                for cc in jj + 1..jb + nb {
                    let (left, right) = wbuf.split_at_mut(cc * nr);
                    let colj = &left[jj * nr..(jj + 1) * nr];
                    let colc = &mut right[..nr];
                    let u = colc[dr];
                    if u != T::ZERO {
                        for r in dr + 1..nr {
                            colc[r] -= u * colj[r];
                        }
                    }
                }
            }
            let tc = jb + nb;
            if tc >= w {
                break;
            }
            let m = nr - (ulen + tc);
            let tcols = w - tc;
            if m > 0 && 2 * m * nb * tcols >= GEMM_MIN_FLOPS {
                {
                    let wbuf = &mut scr.w[..nr * w];
                    // TRSM only on the trailing columns' U rows; the rows
                    // below get the packed product.
                    for cc in tc..w {
                        let (left, right) = wbuf.split_at_mut(cc * nr);
                        let colc = &mut right[..nr];
                        for jj in jb..jb + nb {
                            let u = colc[ulen + jj];
                            if u != T::ZERO {
                                let colj = &left[jj * nr..(jj + 1) * nr];
                                for r in ulen + jj + 1..ulen + tc {
                                    colc[r] -= u * colj[r];
                                }
                            }
                        }
                    }
                    zfill(&mut scr.lpk, m * nb);
                    for bj in 0..nb {
                        let colj = &wbuf[(jb + bj) * nr + ulen + tc..(jb + bj + 1) * nr];
                        for (r, &v) in colj.iter().enumerate() {
                            scr.lpk[r * nb + bj] = v;
                        }
                    }
                    zfill(&mut scr.ub, nb * tcols);
                    for (ci, cc) in (tc..w).enumerate() {
                        let colc = &wbuf[cc * nr + ulen + jb..];
                        for bj in 0..nb {
                            scr.ub[bj * tcols + ci] = colc[bj];
                        }
                    }
                }
                T::gemm_nn(
                    m,
                    tcols,
                    nb,
                    &mut scr.lpk,
                    &mut scr.ub,
                    &mut scr.y,
                    &mut scr.gws,
                );
                let wbuf = &mut scr.w[..nr * w];
                for (ci, cc) in (tc..w).enumerate() {
                    let colc = &mut wbuf[cc * nr + ulen + tc..(cc + 1) * nr];
                    for (r, v) in colc.iter_mut().enumerate() {
                        *v -= scr.y[r * tcols + ci];
                    }
                }
            } else {
                // Small trailer: one combined TRSM + update pass per
                // column.
                let wbuf = &mut scr.w[..nr * w];
                for cc in tc..w {
                    let (left, right) = wbuf.split_at_mut(cc * nr);
                    let colc = &mut right[..nr];
                    for jj in jb..jb + nb {
                        let u = colc[ulen + jj];
                        if u != T::ZERO {
                            let colj = &left[jj * nr..(jj + 1) * nr];
                            for r in ulen + jj + 1..nr {
                                colc[r] -= u * colj[r];
                            }
                        }
                    }
                }
            }
            jb = tc;
        }
        let wbuf = &scr.w[..nr * w];
        // Store the supernode's blocks for later batch updates (the blocks
        // of `s` belong to this task — or to the serial walk — so the
        // exclusive access is safe).
        {
            let blk = unsafe { ctx.block_mut(s) };
            for cc in 0..w {
                let wcol = &wbuf[cc * nr..(cc + 1) * nr];
                for rr in cc + 1..w {
                    blk.ldiag[rr * w + cc] = wcol[ulen + rr];
                }
                for bi in 0..blen {
                    blk.lbelow[bi * w + cc] = wcol[ulen + w + bi];
                }
            }
            T::split_planes(blen, w, &blk.lbelow, &mut blk.planes);
            if !blk.linv.is_empty() {
                Self::fill_linv(&blk.ldiag, &mut blk.linv, w);
                T::split_planes(w, w, &blk.linv, &mut blk.linv_planes);
            }
        }
        // Scatter back into the recorded factor arrays (solve_into, later
        // scalar columns, and later panel axpys all read this storage)
        // through the precomputed scatter-order map.
        let mut si = self.store_ptr[s] as usize;
        for jj in 0..w {
            let k = s0 + jj;
            let wcol = &wbuf[jj * nr..(jj + 1) * nr];
            for t in ctx.u_colptr[k]..ctx.u_colptr[k + 1] {
                unsafe { ctx.set_uval(t, wcol[self.store_idx[si] as usize]) };
                si += 1;
            }
            for t in ctx.l_colptr[k]..ctx.l_colptr[k + 1] {
                unsafe { ctx.set_lval(t, wcol[self.store_idx[si] as usize]) };
                si += 1;
            }
        }
        self.clear_pos(ctx, &mut scr.pos, s);
        Ok(())
    }

    /// Recomputes the explicit inverse of a unit-lower diagonal block by
    /// forward substitution, column by column (multiplications only — the
    /// unit diagonal needs no divisions). The strict upper triangle and
    /// the diagonal keep their exact-zero/exact-one values from
    /// allocation, so the result multiplies as a full dense operand.
    fn fill_linv(ldiag: &[T], linv: &mut [T], w: usize) {
        for c in 0..w {
            for r in c + 1..w {
                let mut sum = ldiag[r * w + c];
                for kk in c + 1..r {
                    sum += ldiag[r * w + kk] * linv[kk * w + c];
                }
                linv[r * w + c] = -sum;
            }
        }
    }

    /// Mirrors a just-computed narrow supernode's recorded L values into
    /// its dense `ldiag`/`lbelow` blocks through the precomputed `nfill`
    /// scatter map, so later panels can batch it like any wide updater.
    fn fill_narrow(&self, ctx: &Ctx<'_, T>, s: usize) {
        let (f0, f1) = (self.nfill_ptr[s] as usize, self.nfill_ptr[s + 1] as usize);
        if f0 == f1 {
            return;
        }
        let (s0, s1) = (self.sn_ptr[s] as usize, self.sn_ptr[s + 1] as usize);
        let sq = (s1 - s0) * (s1 - s0);
        let blk = unsafe { ctx.block_mut(s) };
        let mut fi = f0;
        for k in s0..s1 {
            for t in ctx.l_colptr[k]..ctx.l_colptr[k + 1] {
                let dest = self.nfill_idx[fi] as usize;
                fi += 1;
                let v = unsafe { ctx.lval(t) };
                if dest < sq {
                    blk.ldiag[dest] = v;
                } else {
                    blk.lbelow[dest - sq] = v;
                }
            }
        }
        let w = s1 - s0;
        T::split_planes(blk.lbelow.len() / w, w, &blk.lbelow, &mut blk.planes);
    }

    /// Applies updater supernode `us` to panel supernode `s` as a batch:
    /// gather the U block, finalize it with a unit-lower TRSM against the
    /// updater's diagonal block, write it back, then subtract the product
    /// of the updater's sub-diagonal block with it. `pair` indexes the
    /// precomputed gather/scatter maps in `pair_idx`. Large products go
    /// through the [`Scalar::gemm_nn`] hook; small ones run a fused
    /// multiply-scatter that skips relaxed-zero multipliers and rows
    /// outside the panel.
    #[inline]
    fn batch_wide(
        &self,
        ctx: &Ctx<'_, T>,
        scr: &mut Scratch<T>,
        s: usize,
        nr: usize,
        us: usize,
        pair: usize,
    ) {
        let w = (self.sn_ptr[s + 1] - self.sn_ptr[s]) as usize;
        let (t0, t1) = (self.sn_ptr[us] as usize, self.sn_ptr[us + 1] as usize);
        let ws = t1 - t0;
        let blen = (self.b_ptr[us + 1] - self.b_ptr[us]) as usize;
        let pr = self.pair_ptr[pair] as usize;
        let (ub_map, y_map) = self.pair_idx[pr..pr + ws + blen].split_at(ws);
        // Compressed panel columns: only these receive nonzero
        // contributions from this updater.
        let cols = &self.pc_idx[self.pc_ptr[pair] as usize..self.pc_ptr[pair + 1] as usize];
        let wc = cols.len();
        if ws == 1 {
            // Singleton updater: the panel already holds its finalized U
            // row (no intra-supernode dependency), so skip the
            // gather/TRSM round-trip and fuse the rank-1 update directly.
            if blen == 0 {
                return;
            }
            let wbuf = &mut scr.w[..nr * w];
            let pu = ub_map[0] as usize;
            let blk = unsafe { ctx.block_mut(us) };
            let trow = &mut scr.trow[..wc];
            for (ci, v) in trow.iter_mut().enumerate() {
                *v = wbuf[cols[ci] as usize * nr + pu];
            }
            for (bi, &p) in y_map.iter().enumerate() {
                if p == u32::MAX {
                    continue;
                }
                let l = blk.lbelow[bi];
                if l != T::ZERO {
                    for (ci, v) in trow.iter().enumerate() {
                        wbuf[cols[ci] as usize * nr + p as usize] -= l * *v;
                    }
                }
            }
            return;
        }
        // Gather the U block (absent rows carry exact zeros).
        zfill(&mut scr.ub, ws * wc);
        {
            let wbuf = &scr.w[..nr * w];
            for (jj, &p) in ub_map.iter().enumerate() {
                if p != u32::MAX {
                    for (ci, v) in scr.ub[jj * wc..(jj + 1) * wc].iter_mut().enumerate() {
                        *v = wbuf[cols[ci] as usize * nr + p as usize];
                    }
                }
            }
        }
        // TRSM with the updater's unit-lower diagonal block: finalizes
        // U(updater columns, reached panel columns). When the plan carries
        // the updater's explicit inverse, the whole solve is one dense
        // product (the substitution's sequential dependency is what keeps
        // it off the GEMM kernel otherwise); smaller batches run blocked
        // like the panel factor — scalar solves on `Scalar::PANEL_NB`-row
        // blocks, the rows below each block retired through one gemm
        // product.
        let blk = unsafe { ctx.block_mut(us) };
        if !blk.linv.is_empty() && 2 * ws * ws * wc >= GEMM_MIN_FLOPS {
            T::gemm_nn_planes(
                ws,
                wc,
                ws,
                &mut blk.linv,
                &blk.linv_planes,
                &mut scr.ub,
                &mut scr.y,
                &mut scr.gws,
            );
            std::mem::swap(&mut scr.ub, &mut scr.y);
        } else {
            let mut b0 = 0;
            while b0 < ws {
                let bn = T::PANEL_NB.min(ws - b0);
                for jj in b0 + 1..b0 + bn {
                    for kk in b0..jj {
                        let l = blk.ldiag[jj * ws + kk];
                        if l != T::ZERO {
                            for ci in 0..wc {
                                let v = l * scr.ub[kk * wc + ci];
                                scr.ub[jj * wc + ci] -= v;
                            }
                        }
                    }
                }
                let below = ws - (b0 + bn);
                if below == 0 {
                    break;
                }
                if 2 * below * bn * wc >= GEMM_MIN_FLOPS {
                    zfill(&mut scr.lpk, below * bn);
                    for (r, row) in (b0 + bn..ws).enumerate() {
                        scr.lpk[r * bn..(r + 1) * bn]
                            .copy_from_slice(&blk.ldiag[row * ws + b0..row * ws + b0 + bn]);
                    }
                    zfill(&mut scr.bpk, bn * wc);
                    scr.bpk.copy_from_slice(&scr.ub[b0 * wc..(b0 + bn) * wc]);
                    T::gemm_nn(
                        below,
                        wc,
                        bn,
                        &mut scr.lpk,
                        &mut scr.bpk,
                        &mut scr.y,
                        &mut scr.gws,
                    );
                    for (v, &yv) in scr.ub[(b0 + bn) * wc..ws * wc].iter_mut().zip(&scr.y) {
                        *v -= yv;
                    }
                } else {
                    for jj in b0 + bn..ws {
                        for kk in b0..b0 + bn {
                            let l = blk.ldiag[jj * ws + kk];
                            if l != T::ZERO {
                                for ci in 0..wc {
                                    let v = l * scr.ub[kk * wc + ci];
                                    scr.ub[jj * wc + ci] -= v;
                                }
                            }
                        }
                    }
                }
                b0 += bn;
            }
        }
        // Write the finalized U rows back into the panel.
        {
            let wbuf = &mut scr.w[..nr * w];
            for (jj, &p) in ub_map.iter().enumerate() {
                if p != u32::MAX {
                    for (ci, v) in scr.ub[jj * wc..(jj + 1) * wc].iter().enumerate() {
                        wbuf[cols[ci] as usize * nr + p as usize] = *v;
                    }
                }
            }
        }
        if blen == 0 {
            return;
        }
        if 2 * blen * ws * wc >= GEMM_MIN_FLOPS {
            // Dense trailing blocks: the packed micro-kernel wins. The
            // updater's `lbelow` is task-local (a descendant in this
            // task's subtree, or the spine running alone), so the `&mut`
            // the gemm hook needs is exclusive; its contents are
            // unchanged on return. The cached planes were refreshed when
            // the updater's values landed (skipping the complex path's
            // per-call split of the dominant `blen×ws` operand), and the
            // hook merges the product directly into the mapped panel
            // subtraction.
            T::gemm_sub_into_panel(
                blen,
                wc,
                ws,
                &mut blk.lbelow,
                &blk.planes,
                &mut scr.ub,
                &mut scr.y,
                &mut scr.w[..nr * w],
                nr,
                y_map,
                cols,
                &mut scr.gws,
            );
        } else {
            // Fused small product: one accumulated panel row at a time,
            // contiguous in the reached columns, skipping zero multipliers
            // (relaxed padding) and rows outside the panel entirely.
            let wbuf = &mut scr.w[..nr * w];
            let trow = &mut scr.trow[..wc];
            for (bi, &p) in y_map.iter().enumerate() {
                if p == u32::MAX {
                    continue;
                }
                trow.fill(T::ZERO);
                for kk in 0..ws {
                    let l = blk.lbelow[bi * ws + kk];
                    if l != T::ZERO {
                        let urow = &scr.ub[kk * wc..(kk + 1) * wc];
                        for (ci, v) in trow.iter_mut().enumerate() {
                            *v += l * urow[ci];
                        }
                    }
                }
                for (ci, v) in trow.iter().enumerate() {
                    wbuf[cols[ci] as usize * nr + p as usize] -= *v;
                }
            }
        }
    }

    /// Resets the row map entries of supernode `s`'s panel.
    fn clear_pos(&self, ctx: &Ctx<'_, T>, pos: &mut [u32], s: usize) {
        for &row in &self.u_rows[self.u_ptr[s] as usize..self.u_ptr[s + 1] as usize] {
            pos[ctx.p[row as usize]] = u32::MAX;
        }
        for k in self.sn_ptr[s] as usize..self.sn_ptr[s + 1] as usize {
            pos[ctx.p[k]] = u32::MAX;
        }
        for &row in &self.b_rows[self.b_ptr[s] as usize..self.b_ptr[s + 1] as usize] {
            pos[ctx.p[row as usize]] = u32::MAX;
        }
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use crate::{CscMatrix, Matrix, SparseLu};

    fn grid_matrix(rows: usize, cols: usize) -> CscMatrix {
        let n = rows * cols;
        let mut dense = Matrix::zeros(n, n);
        for r in 0..rows {
            for c in 0..cols {
                let k = r * cols + c;
                dense[(k, k)] = 4.0 + (k as f64) * 1e-3;
                if c + 1 < cols {
                    dense[(k, k + 1)] = -1.0 - (k as f64) * 1e-5;
                    dense[(k + 1, k)] = -1.0 - (k as f64) * 1e-5;
                }
                if r + 1 < rows {
                    dense[(k, k + cols)] = -1.0 - (k as f64) * 2e-5;
                    dense[(k + cols, k)] = -1.0 - (k as f64) * 2e-5;
                }
                if c + 3 < cols {
                    dense[(k, k + 3)] = -0.125 - (k as f64) * 1e-5;
                    dense[(k + 3, k)] = -0.125 - (k as f64) * 1e-5;
                    dense[(k, k)] += 0.125;
                    dense[(k + 3, k + 3)] += 0.125;
                }
                if r + 3 < rows {
                    dense[(k, k + 3 * cols)] = -0.125 - (k as f64) * 2e-5;
                    dense[(k + 3 * cols, k)] = -0.125 - (k as f64) * 2e-5;
                    dense[(k, k)] += 0.125;
                    dense[(k + 3 * cols, k + 3 * cols)] += 0.125;
                }
                if c + 2 < cols {
                    dense[(k, k + 2)] = -0.25 - (k as f64) * 1e-5;
                    dense[(k + 2, k)] = -0.25 - (k as f64) * 1e-5;
                    dense[(k, k)] += 0.25;
                    dense[(k + 2, k + 2)] += 0.25;
                }
                if r + 2 < rows {
                    dense[(k, k + 2 * cols)] = -0.25 - (k as f64) * 2e-5;
                    dense[(k + 2 * cols, k)] = -0.25 - (k as f64) * 2e-5;
                    dense[(k, k)] += 0.25;
                    dense[(k + 2 * cols, k + 2 * cols)] += 0.25;
                }
                if r + 1 < rows && c + 1 < cols {
                    dense[(k, k + cols + 1)] = -0.5 - (k as f64) * 1e-5;
                    dense[(k + cols + 1, k)] = -0.5 - (k as f64) * 1e-5;
                    dense[(k + 1, k + cols)] = -0.5 - (k as f64) * 2e-5;
                    dense[(k + cols, k + 1)] = -0.5 - (k as f64) * 2e-5;
                    dense[(k, k)] += 1.0;
                    dense[(k + 1, k + 1)] += 1.0;
                    dense[(k + cols, k + cols)] += 1.0;
                    dense[(k + cols + 1, k + cols + 1)] += 1.0;
                }
            }
        }
        CscMatrix::from_dense(&dense)
    }

    /// Auto dispatch quality: engages on mesh patterns whose factors have
    /// dense trailing structure, declines on banded patterns (whose
    /// relaxed panels would be padding-dominated) and below
    /// [`SUPERNODAL_MIN_N`].
    #[test]
    fn auto_dispatch_engages_on_meshes_not_bands() {
        let mut lu = SparseLu::new();
        lu.factor(&grid_matrix(23, 23)).unwrap();
        assert!(lu.supernodal_active(), "mesh must dispatch blocked");

        let n = 128;
        let band = Matrix::from_fn(n, n, |i, j| {
            let d = i.abs_diff(j);
            if d == 0 {
                4.0 + i as f64 * 0.01
            } else if d <= 2 {
                -1.0 - ((i * 7 + j) % 5) as f64 * 0.05
            } else {
                0.0
            }
        });
        let mut lu = SparseLu::new();
        lu.factor(&CscMatrix::from_dense(&band)).unwrap();
        assert!(!lu.supernodal_active(), "banded patterns must stay scalar");

        let mut lu = SparseLu::new();
        lu.factor(&grid_matrix(7, 7)).unwrap();
        assert!(
            !lu.supernodal_active(),
            "systems below SUPERNODAL_MIN_N must stay scalar"
        );
    }

    /// The etree partition is a true partition (tasks ∪ spine covers every
    /// supernode exactly once) and tasks are dependency-closed: every
    /// supernode a task member reads belongs to the same task.
    #[test]
    fn etree_partition_covers_supernodes_and_closes_deps() {
        let a = grid_matrix(23, 23);
        let mut lu = SparseLu::new();
        lu.set_supernodal_mode(SupernodalMode::ForceBlocked);
        lu.factor(&a).unwrap();
        let sn = lu.supernodal.as_ref().unwrap();
        let nsn = sn.num_supernodes();
        assert!(sn.num_tasks() >= 2, "mesh plan must split into tasks");
        let mut seen = vec![0usize; nsn];
        let mut task_of = vec![usize::MAX; nsn];
        for ti in 0..sn.num_tasks() {
            for i in sn.task_ptr[ti] as usize..sn.task_ptr[ti + 1] as usize {
                let s = sn.task_sn[i] as usize;
                seen[s] += 1;
                task_of[s] = ti;
            }
        }
        for &s in &sn.spine {
            seen[s as usize] += 1;
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "tasks ∪ spine must cover each supernode exactly once"
        );
        for s in 0..nsn {
            if task_of[s] == usize::MAX {
                continue; // spine reads everything after the barrier
            }
            let (s0, s1) = (sn.sn_ptr[s] as usize, sn.sn_ptr[s + 1] as usize);
            for k in s0..s1 {
                for t in lu.u_colptr[k]..lu.u_colptr[k + 1] {
                    let d = sn.col_sn[lu.u_rows[t]] as usize;
                    if d != s {
                        assert_eq!(
                            task_of[d], task_of[s],
                            "dependency {d} of task supernode {s} crosses tasks"
                        );
                    }
                }
            }
        }
    }

    /// Parallel replay contract: the factors produced with 2 and 4 workers
    /// are bitwise identical to the serial walk on a refactor with new
    /// values.
    #[test]
    fn parallel_replay_is_bit_identical_to_serial() {
        let a = grid_matrix(30, 30);
        let mut lu = SparseLu::new();
        lu.set_supernodal_mode(SupernodalMode::ForceBlocked);
        lu.factor(&a).unwrap();
        assert!(lu.supernodal_active());
        let mut a2 = a.clone();
        for (i, v) in a2.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + (i % 7) as f64 * 1e-3;
        }
        let mut serial = lu.clone();
        let mut sn = serial.supernodal.take().unwrap();
        sn.refactor_threads(&mut serial, &a2, 1).unwrap();
        serial.supernodal = Some(sn);
        for threads in [2usize, 4] {
            let mut par = lu.clone();
            let mut sn = par.supernodal.take().unwrap();
            assert!(sn.num_tasks() >= 2);
            sn.refactor_threads(&mut par, &a2, threads).unwrap();
            par.supernodal = Some(sn);
            assert_eq!(serial.l_vals, par.l_vals, "L ({threads} threads)");
            assert_eq!(serial.u_vals, par.u_vals, "U ({threads} threads)");
            assert_eq!(serial.inv_diag, par.inv_diag, "pivots ({threads} threads)");
        }
    }

    /// Diagnostic (run with `--ignored --nocapture`): supernode width
    /// histogram, the flop share carried by panel columns, and the task
    /// partition on grid Laplacians — the statistics the dispatch
    /// thresholds were tuned against.
    #[test]
    #[ignore]
    fn print_mesh_supernode_stats() {
        for side in [15usize, 23, 32] {
            let a = grid_matrix(side, side);
            let n = side * side;
            let mut lu = SparseLu::new();
            lu.set_supernodal_mode(SupernodalMode::ForceBlocked);
            lu.factor(&a).unwrap();
            let sn = lu.supernodal.as_ref().unwrap();
            let nsn = sn.num_supernodes();
            let mut hist = std::collections::BTreeMap::new();
            for s in 0..nsn {
                *hist.entry(sn.width(s)).or_insert(0usize) += 1;
            }
            let (mut total, mut panel) = (0u64, 0u64);
            for j in 0..n {
                let mut col = 0u64;
                for t in lu.u_colptr[j]..lu.u_colptr[j + 1] {
                    let k = lu.u_rows[t];
                    col += 1 + 2 * (lu.l_colptr[k + 1] - lu.l_colptr[k]) as u64;
                }
                total += col;
                if sn.width(sn.col_sn[j] as usize) >= <f64 as Scalar>::PANEL_MIN_WIDTH {
                    panel += col;
                }
            }
            eprintln!(
                "n={n}: {nsn} supernodes ({} wide), {} tasks + {} spine, \
                 panel-col flops {panel}/{total}, plan_flops={}, widths {hist:?}",
                sn.wide_supernodes,
                sn.num_tasks(),
                sn.spine.len(),
                sn.block_flops
            );
        }
    }
}
