//! Quickstart: size a small constrained problem with DNN-Opt.
//!
//! Run with `cargo run --release --example quickstart`.

use dnn_opt::{DnnOpt, DnnOptConfig};
use opt::{Fom, Optimizer, RunReport, SizingProblem, SpecResult, StopPolicy};

/// A two-variable stand-in for a circuit: minimize "power" x0+x1 subject
/// to a "gain" constraint x0·x1 ≥ 0.2.
struct ToyAmp;

impl SizingProblem for ToyAmp {
    fn dim(&self) -> usize {
        2
    }
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.05; 2], vec![1.0; 2])
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn evaluate(&self, x: &[f64]) -> SpecResult {
        SpecResult {
            failure: None,
            objective: x[0] + x[1],
            constraints: vec![0.2 - x[0] * x[1]],
        }
    }
    fn name(&self) -> &str {
        "toy-amp"
    }
}

fn main() {
    let problem = ToyAmp;
    let fom = Fom::uniform(1.0, 1);
    let optimizer = DnnOpt::new(DnnOptConfig::default());

    println!("sizing `{}` with {} ...", problem.name(), optimizer.name());
    let run = optimizer.run(&problem, &fom, 80, StopPolicy::Exhaust, 42);

    let best = run.history.best_feasible().expect("feasible design found");
    println!("simulations used : {}", run.history.len());
    println!(
        "first feasible   : sim #{}",
        run.history.first_feasible().unwrap()
    );
    println!(
        "best design      : x = [{:.4}, {:.4}]",
        best.x[0], best.x[1]
    );
    println!(
        "best objective   : {:.4} (optimum ≈ 0.894)",
        best.spec.objective
    );

    // End-of-run observability: failure taxonomy always; span timings and
    // solver metrics too when `DNNOPT_TRACE` is set (and the drain writes
    // any configured `jsonl:`/`chrome:` trace file).
    println!("\n== run report ==\n{}", RunReport::collect(&run.history));
}
