//! Pure random search — the sanity-floor baseline.

use std::time::Instant;

use rand::{rngs::StdRng, SeedableRng};

use crate::de::finish;
use crate::fom::Fom;
use crate::history::{Evaluator, RunResult, StopPolicy};
use crate::problem::SizingProblem;
use crate::sampling::sample_uniform;
use crate::Optimizer;

/// Uniform random sampling of the design box. Any serious optimizer must
/// beat this; it also provides the paper's "random RL agent" intuition
/// floor.
///
/// Candidates are drawn (serially, from the seeded master RNG) in batches
/// of [`RandomSearch::BATCH`] and evaluated in parallel via
/// [`Evaluator::evaluate_batch`]; the batch size is a fixed constant so
/// recorded histories never depend on the machine's thread count.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSearch;

impl RandomSearch {
    /// Candidates evaluated per parallel batch.
    pub const BATCH: usize = 32;
}

impl Optimizer for RandomSearch {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn run(
        &self,
        problem: &dyn SizingProblem,
        fom: &Fom,
        budget: usize,
        stop: StopPolicy,
        seed: u64,
    ) -> RunResult {
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(seed);
        let (lb, ub) = problem.bounds();
        let mut ev = Evaluator::new(problem, fom, budget);
        while !ev.exhausted() {
            let n = ev.remaining().min(Self::BATCH);
            let xs = sample_uniform(&mut rng, &lb, &ub, n);
            let evals = ev.evaluate_batch(&xs);
            if stop == StopPolicy::FirstFeasible && evals.iter().any(|e| e.feasible) {
                break;
            }
        }
        finish(self.name(), ev, t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_problems::Sphere;

    #[test]
    fn uses_exact_budget() {
        let p = Sphere { d: 2 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let run = RandomSearch.run(&p, &fom, 50, StopPolicy::Exhaust, 0);
        assert_eq!(run.history.len(), 50);
    }

    #[test]
    fn eventually_hits_generous_feasible_region() {
        let p = Sphere { d: 2 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let run = RandomSearch.run(&p, &fom, 500, StopPolicy::FirstFeasible, 123);
        assert!(run.sims_to_feasible().is_some());
    }

    #[test]
    fn best_trace_never_increases() {
        let p = Sphere { d: 3 };
        let fom = Fom::uniform(1.0, p.num_constraints());
        let run = RandomSearch.run(&p, &fom, 200, StopPolicy::Exhaust, 5);
        for w in run.history.best_trace().windows(2) {
            assert!(w[1] <= w[0]);
        }
    }
}
