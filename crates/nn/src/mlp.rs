//! Multi-layer perceptron with explicit reverse-mode differentiation.

use linalg::Matrix;
use rand::Rng;

/// Hidden-layer activation function (the output layer is always linear).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    pub(crate) fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the pre-activation value.
    pub(crate) fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
        }
    }
}

/// One dense layer: `y = x·Wᵀ + b` with `W` of shape `out×in`.
#[derive(Debug, Clone)]
struct Dense {
    w: Matrix,
    b: Vec<f64>,
}

/// Parameter gradients for a whole network, shaped like the network itself.
#[derive(Debug, Clone, Default)]
pub struct Gradients {
    pub(crate) dw: Vec<Matrix>,
    pub(crate) db: Vec<Vec<f64>>,
}

impl Gradients {
    /// Sum of squared gradient entries (for monitoring/clipping).
    pub fn norm_sq(&self) -> f64 {
        let w: f64 = self
            .dw
            .iter()
            .map(|m| m.as_slice().iter().map(|v| v * v).sum::<f64>())
            .sum();
        let b: f64 = self
            .db
            .iter()
            .map(|v| v.iter().map(|x| x * x).sum::<f64>())
            .sum();
        w + b
    }

    /// Scales all gradients in place (gradient clipping).
    pub fn scale(&mut self, s: f64) {
        for m in &mut self.dw {
            m.scale_inplace(s);
        }
        for v in &mut self.db {
            for x in v {
                *x *= s;
            }
        }
    }
}

/// Cached intermediate values of a forward pass, needed by
/// [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Layer inputs: `inputs[0]` is the batch, `inputs[k]` the activation
    /// entering layer `k`.
    inputs: Vec<Matrix>,
    /// Pre-activation values per hidden layer.
    zs: Vec<Matrix>,
}

/// A fully connected network with a linear output layer.
///
/// See the [crate docs](crate) for an end-to-end training example.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    hidden_act: Activation,
}

impl Mlp {
    /// Creates a network with the given layer sizes, e.g. `[4, 64, 64, 2]`
    /// for 4 inputs, two hidden layers of 64, and 2 outputs. Weights use
    /// He initialization for ReLU and Xavier for Tanh.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], hidden_act: Activation, rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "zero-width layer");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for win in sizes.windows(2) {
            let (fan_in, fan_out) = (win[0], win[1]);
            let scale = match hidden_act {
                Activation::Relu => (2.0 / fan_in as f64).sqrt(),
                Activation::Tanh => (2.0 / (fan_in + fan_out) as f64).sqrt(),
            };
            let w = Matrix::from_fn(fan_out, fan_in, |_, _| crate::gaussian(rng) * scale);
            layers.push(Dense {
                w,
                b: vec![0.0; fan_out],
            });
        }
        Mlp { layers, hidden_act }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].w.cols()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].w.rows()
    }

    /// Number of layers (weight matrices).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.rows() * l.w.cols() + l.b.len())
            .sum()
    }

    fn layer_forward(layer: &Dense, x: &Matrix) -> Matrix {
        // y = x·Wᵀ + b without materializing the transpose.
        let mut y = Matrix::zeros(0, 0);
        x.matmul_nt_into(&layer.w, &mut y);
        for i in 0..y.rows() {
            let row = y.row_mut(i);
            for (v, b) in row.iter_mut().zip(&layer.b) {
                *v += b;
            }
        }
        y
    }

    /// Borrow of layer `k`'s weights and biases (for the workspace kernels).
    pub(crate) fn layer(&self, k: usize) -> (&Matrix, &[f64]) {
        let l = &self.layers[k];
        (&l.w, &l.b)
    }

    /// Mutable borrow of layer `k`'s weights and biases (for in-place
    /// optimizer updates).
    pub(crate) fn layer_params_mut(&mut self, k: usize) -> (&mut Matrix, &mut Vec<f64>) {
        let l = &mut self.layers[k];
        (&mut l.w, &mut l.b)
    }

    /// The hidden activation function.
    pub(crate) fn activation(&self) -> Activation {
        self.hidden_act
    }

    /// Forward pass on a batch (rows are samples).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the input dimensionality.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_dim(), "input width mismatch");
        let mut a = x.clone();
        let last = self.layers.len() - 1;
        for (k, layer) in self.layers.iter().enumerate() {
            let z = Self::layer_forward(layer, &a);
            a = if k < last {
                z.map(|v| self.hidden_act.apply(v))
            } else {
                z
            };
        }
        a
    }

    /// Forward pass that also returns the cache required by
    /// [`Mlp::backward`].
    pub fn forward_cached(&self, x: &Matrix) -> (Matrix, ForwardCache) {
        assert_eq!(x.cols(), self.input_dim(), "input width mismatch");
        let last = self.layers.len() - 1;
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut zs = Vec::with_capacity(last);
        let mut a = x.clone();
        for (k, layer) in self.layers.iter().enumerate() {
            inputs.push(a.clone());
            let z = Self::layer_forward(layer, &a);
            if k < last {
                zs.push(z.clone());
                a = z.map(|v| self.hidden_act.apply(v));
            } else {
                a = z;
            }
        }
        (a, ForwardCache { inputs, zs })
    }

    /// Reverse-mode pass: given `∂L/∂output` for the batch, returns the
    /// parameter gradients and `∂L/∂input`.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match the cached batch.
    pub fn backward(&self, cache: &ForwardCache, grad_out: &Matrix) -> (Gradients, Matrix) {
        let last = self.layers.len() - 1;
        assert_eq!(
            grad_out.cols(),
            self.output_dim(),
            "gradient width mismatch"
        );
        assert_eq!(
            grad_out.rows(),
            cache.inputs[0].rows(),
            "gradient batch mismatch"
        );

        let mut dw = vec![Matrix::zeros(1, 1); self.layers.len()];
        let mut db = vec![Vec::new(); self.layers.len()];
        let mut delta = grad_out.clone(); // ∂L/∂z for the current layer

        for k in (0..=last).rev() {
            if k < last {
                // Pass through the activation derivative.
                let z = &cache.zs[k];
                delta = Matrix::from_fn(delta.rows(), delta.cols(), |i, j| {
                    delta[(i, j)] * self.hidden_act.derivative(z[(i, j)])
                });
            }
            let x_in = &cache.inputs[k];
            dw[k] = delta.transpose().matmul(x_in);
            db[k] = (0..delta.cols())
                .map(|j| (0..delta.rows()).map(|i| delta[(i, j)]).sum())
                .collect();
            // Propagate to the layer input.
            delta = delta.matmul(&self.layers[k].w);
        }
        (Gradients { dw, db }, delta)
    }

    /// Gradient of the outputs with respect to the inputs only (parameters
    /// untouched) — the critic-to-actor path of DNN-Opt.
    pub fn input_gradient(&self, cache: &ForwardCache, grad_out: &Matrix) -> Matrix {
        self.backward(cache, grad_out).1
    }

    /// Scales the final layer's weights and biases by `s`. With a small
    /// `s` the network initially outputs near-zero values — the DDPG trick
    /// for actor networks whose outputs are corrections.
    pub fn scale_output_layer(&mut self, s: f64) {
        let last = self.layers.len() - 1;
        self.layers[last].w.scale_inplace(s);
        for b in &mut self.layers[last].b {
            *b *= s;
        }
    }

    /// Shapes of all weight matrices, for optimizer state allocation.
    pub(crate) fn shapes(&self) -> Vec<(usize, usize)> {
        self.layers
            .iter()
            .map(|l| (l.w.rows(), l.w.cols()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn small_net(act: Activation) -> Mlp {
        let mut rng = StdRng::seed_from_u64(3);
        Mlp::new(&[3, 5, 4, 2], act, &mut rng)
    }

    #[test]
    fn shapes_and_counts() {
        let net = small_net(Activation::Relu);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.num_layers(), 3);
        assert_eq!(net.num_params(), (5 * 3 + 5) + (4 * 5 + 4) + (2 * 4 + 2));
    }

    #[test]
    fn forward_is_deterministic() {
        let net = small_net(Activation::Tanh);
        let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3]]);
        let y1 = net.forward(&x);
        let y2 = net.forward(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn forward_cached_matches_forward() {
        let net = small_net(Activation::Relu);
        let x = Matrix::from_rows(&[&[0.5, 0.1, -0.7], &[1.0, -1.0, 0.0]]);
        let y = net.forward(&x);
        let (yc, _) = net.forward_cached(&x);
        assert_eq!(y, yc);
    }

    /// Scalar loss L = Σ w_l·y_l over the batch, with fixed output weights,
    /// checked against finite differences for every parameter.
    #[test]
    fn parameter_gradients_match_finite_differences() {
        for act in [Activation::Tanh, Activation::Relu] {
            let net = small_net(act);
            let x = Matrix::from_rows(&[&[0.3, -0.1, 0.8], &[-0.5, 0.2, 0.4]]);
            let wsum = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 1.5]]);
            let loss = |n: &Mlp| -> f64 {
                let y = n.forward(&x);
                y.hadamard(&wsum).as_slice().iter().sum()
            };
            let (_, cache) = net.forward_cached(&x);
            let (grads, _) = net.backward(&cache, &wsum);

            let h = 1e-6;
            for k in 0..net.num_layers() {
                for i in 0..net.layers[k].w.rows() {
                    for j in 0..net.layers[k].w.cols() {
                        let mut np = net.clone();
                        np.layers[k].w[(i, j)] += h;
                        let mut nm = net.clone();
                        nm.layers[k].w[(i, j)] -= h;
                        let fd = (loss(&np) - loss(&nm)) / (2.0 * h);
                        assert!(
                            (grads.dw[k][(i, j)] - fd).abs() < 1e-5,
                            "dW[{k}][{i},{j}] {act:?}: {} vs {}",
                            grads.dw[k][(i, j)],
                            fd
                        );
                    }
                    let mut np = net.clone();
                    np.layers[k].b[i] += h;
                    let mut nm = net.clone();
                    nm.layers[k].b[i] -= h;
                    let fd = (loss(&np) - loss(&nm)) / (2.0 * h);
                    assert!(
                        (grads.db[k][i] - fd).abs() < 1e-5,
                        "db[{k}][{i}] {act:?}: {} vs {}",
                        grads.db[k][i],
                        fd
                    );
                }
            }
        }
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        for act in [Activation::Tanh, Activation::Relu] {
            let net = small_net(act);
            let x = Matrix::from_rows(&[&[0.3, -0.1, 0.8]]);
            let wsum = Matrix::from_rows(&[&[1.0, -2.0]]);
            let (_, cache) = net.forward_cached(&x);
            let gin = net.input_gradient(&cache, &wsum);
            let h = 1e-6;
            for j in 0..3 {
                let mut xp = x.clone();
                xp[(0, j)] += h;
                let mut xm = x.clone();
                xm[(0, j)] -= h;
                let lp: f64 = net.forward(&xp).hadamard(&wsum).as_slice().iter().sum();
                let lm: f64 = net.forward(&xm).hadamard(&wsum).as_slice().iter().sum();
                let fd = (lp - lm) / (2.0 * h);
                assert!(
                    (gin[(0, j)] - fd).abs() < 1e-5,
                    "dX[{j}] {act:?}: {} vs {}",
                    gin[(0, j)],
                    fd
                );
            }
        }
    }

    #[test]
    fn gradient_norm_and_scaling() {
        let net = small_net(Activation::Tanh);
        let x = Matrix::from_rows(&[&[0.3, -0.1, 0.8]]);
        let (_, cache) = net.forward_cached(&x);
        let (mut g, _) = net.backward(&cache, &Matrix::from_rows(&[&[1.0, 1.0]]));
        let n0 = g.norm_sq();
        assert!(n0 > 0.0);
        g.scale(0.5);
        assert!((g.norm_sq() - 0.25 * n0).abs() < 1e-10 * n0);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_rejects_wrong_width() {
        let net = small_net(Activation::Relu);
        let x = Matrix::zeros(1, 4);
        net.forward(&x);
    }

    #[test]
    #[should_panic(expected = "need at least input and output sizes")]
    fn constructor_rejects_single_size() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Mlp::new(&[3], Activation::Relu, &mut rng);
    }
}
