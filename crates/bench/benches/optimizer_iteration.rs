//! Criterion benchmark of whole optimizer iterations on a cheap synthetic
//! problem (the fixed per-simulation overhead each method adds), plus the
//! serial-vs-parallel population-evaluation comparison on a problem whose
//! `evaluate` runs a real Newton solve.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dnn_opt::{DnnOpt, DnnOptConfig};
use opt::{
    parallel, DifferentialEvolution, Evaluator, Fom, Gaspad, Optimizer, SizingProblem, SpecResult,
    StopPolicy,
};
use spice::{Circuit, SimOptions, Waveform, GND};

struct Cheap;
impl SizingProblem for Cheap {
    fn dim(&self) -> usize {
        10
    }
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; 10], vec![1.0; 10])
    }
    fn num_constraints(&self) -> usize {
        3
    }
    fn evaluate(&self, x: &[f64]) -> SpecResult {
        SpecResult {
            failure: None,
            objective: x.iter().map(|v| (v - 0.4).powi(2)).sum(),
            constraints: vec![0.2 - x[0], 0.2 - x[1], x.iter().sum::<f64>() - 8.0],
        }
    }
}

/// A sizing problem whose evaluation is a genuine SPICE workload: a
/// common-source stage sized by (w, rd), measured by a 24-point DC
/// transfer sweep — the same shape of work as the circuits crate's
/// testbenches, and expensive enough that population parallelism matters.
struct SpiceStage;

impl SizingProblem for SpiceStage {
    fn dim(&self) -> usize {
        2
    }
    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![1e-6, 1e3], vec![40e-6, 40e3])
    }
    fn num_constraints(&self) -> usize {
        1
    }
    fn evaluate(&self, x: &[f64]) -> SpecResult {
        let (w, rd) = (x[0], x[1]);
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, GND, Waveform::Dc(1.8)).unwrap();
        c.add_vsource("VG", g, GND, Waveform::Dc(0.7)).unwrap();
        c.add_resistor("RD", vdd, d, rd).unwrap();
        c.add_mosfet("M1", d, g, GND, GND, &bench::bench_nmos(), w, 0.5e-6, 1.0)
            .unwrap();
        match spice::op(&c, &SimOptions::default()) {
            Ok(op) => {
                let m = op.mos_op("M1").unwrap();
                // Minimize current, require 0.4 V of swing headroom.
                SpecResult {
                    failure: None,
                    objective: m.id * 1e3,
                    constraints: vec![0.4 - op.voltage(d)],
                }
            }
            Err(_) => SpecResult::failed(1),
        }
    }
}

/// Population evaluation at two workload scales — the cheap 2-variable
/// SPICE stage (24-point DC sweep per candidate) and the full
/// folded-cascode OTA testbench (~13 ms per candidate) — one worker vs
/// all cores. Results are identical either way (see
/// `tests/parallel_determinism.rs`); the wall-clock gap is the point, and
/// it only appears once per-candidate work dwarfs thread startup.
fn bench_population_eval(c: &mut Criterion) {
    let fom = Fom::uniform(1.0, 1);
    let problem = SpiceStage;
    let (lb, ub) = problem.bounds();
    let pop: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            let t = i as f64 / 63.0;
            lb.iter().zip(&ub).map(|(&l, &u)| l + t * (u - l)).collect()
        })
        .collect();

    c.bench_function("population_eval_64_stage_serial", |b| {
        parallel::set_max_threads(1);
        b.iter(|| {
            let mut ev = Evaluator::new(&problem, &fom, pop.len());
            black_box(ev.evaluate_batch(&pop).len())
        });
        parallel::set_max_threads(0);
    });

    c.bench_function("population_eval_64_stage_parallel", |b| {
        parallel::set_max_threads(0);
        b.iter(|| {
            let mut ev = Evaluator::new(&problem, &fom, pop.len());
            black_box(ev.evaluate_batch(&pop).len())
        })
    });

    let ota = circuits::FoldedCascodeOta::new();
    let ota_fom = Fom::uniform(1.0, ota.num_constraints());
    let nominal = ota.nominal();
    let (lb, ub) = ota.bounds();
    let ota_pop: Vec<Vec<f64>> = (0..16)
        .map(|i| {
            let t = (i as f64 / 15.0 - 0.5) * 0.1;
            nominal
                .iter()
                .zip(lb.iter().zip(&ub))
                .map(|(&x, (&l, &u))| (x + t * (u - l)).clamp(l, u))
                .collect()
        })
        .collect();

    c.bench_function("population_eval_16_ota_serial", |b| {
        parallel::set_max_threads(1);
        b.iter(|| {
            let mut ev = Evaluator::new(&ota, &ota_fom, ota_pop.len());
            black_box(ev.evaluate_batch(&ota_pop).len())
        });
        parallel::set_max_threads(0);
    });

    c.bench_function("population_eval_16_ota_parallel", |b| {
        parallel::set_max_threads(0);
        b.iter(|| {
            let mut ev = Evaluator::new(&ota, &ota_fom, ota_pop.len());
            black_box(ev.evaluate_batch(&ota_pop).len())
        })
    });
}

fn bench_iterations(c: &mut Criterion) {
    let fom = Fom::uniform(1.0, 3);

    c.bench_function("de_60_sims", |b| {
        b.iter(|| DifferentialEvolution::default().run(&Cheap, &fom, 60, StopPolicy::Exhaust, 0))
    });

    c.bench_function("gaspad_60_sims", |b| {
        b.iter(|| Gaspad::default().run(&Cheap, &fom, 60, StopPolicy::Exhaust, 0))
    });

    c.bench_function("dnn_opt_30_sims", |b| {
        let cfg = DnnOptConfig {
            critic_epochs: 60,
            actor_epochs: 20,
            critic_batch: 64,
            hidden: 24,
            ..Default::default()
        };
        b.iter(|| DnnOpt::new(cfg.clone()).run(&Cheap, &fom, 30, StopPolicy::Exhaust, 0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_population_eval, bench_iterations
}
criterion_main!(benches);
