//! Circuit (netlist) construction.

use std::collections::HashMap;

use crate::error::SpiceError;
use crate::mos::{mos_caps, MosCaps, MosModel};
use crate::waveform::Waveform;

/// Index of a circuit node. Node `0` is always ground.
pub type NodeId = usize;

/// A device instance in the netlist.
///
/// The device set is closed by design: the simulator's assembly loops match
/// on this enum directly instead of dispatching through a trait, which keeps
/// the MNA stamps auditable in one place.
#[derive(Debug, Clone)]
pub enum Device {
    /// Linear resistor between `a` and `b` (stored as conductance).
    Resistor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Conductance \[S\].
        g: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance \[F\].
        c: f64,
    },
    /// Independent voltage source from `p` to `n`.
    VSource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Time-domain waveform.
        wave: Waveform,
        /// AC magnitude for small-signal analyses.
        ac_mag: f64,
        /// MNA branch index.
        branch: usize,
    },
    /// Independent current source; positive current flows from `p` through
    /// the source to `n`.
    ISource {
        /// Instance name.
        name: String,
        /// Terminal the current leaves.
        p: NodeId,
        /// Terminal the current enters.
        n: NodeId,
        /// Time-domain waveform.
        wave: Waveform,
        /// AC magnitude for small-signal analyses.
        ac_mag: f64,
    },
    /// Voltage-controlled voltage source: `v(p,n) = gain·v(cp,cn)`.
    Vcvs {
        /// Instance name.
        name: String,
        /// Positive output terminal.
        p: NodeId,
        /// Negative output terminal.
        n: NodeId,
        /// Positive control terminal.
        cp: NodeId,
        /// Negative control terminal.
        cn: NodeId,
        /// Voltage gain.
        gain: f64,
        /// MNA branch index.
        branch: usize,
    },
    /// Voltage-controlled current source: `i(p→n) = gm·v(cp,cn)`.
    Vccs {
        /// Instance name.
        name: String,
        /// Terminal the current leaves.
        p: NodeId,
        /// Terminal the current enters.
        n: NodeId,
        /// Positive control terminal.
        cp: NodeId,
        /// Negative control terminal.
        cn: NodeId,
        /// Transconductance \[S\].
        gm: f64,
    },
    /// MOSFET instance.
    Mosfet {
        /// Instance name.
        name: String,
        /// Drain.
        d: NodeId,
        /// Gate.
        g: NodeId,
        /// Source.
        s: NodeId,
        /// Bulk.
        b: NodeId,
        /// Model card.
        model: MosModel,
        /// Drawn width \[m\].
        w: f64,
        /// Drawn length \[m\].
        l: f64,
        /// Parallel multiplier.
        m: f64,
        /// Precomputed constant terminal capacitances.
        caps: MosCaps,
    },
}

impl Device {
    /// Instance name.
    pub fn name(&self) -> &str {
        match self {
            Device::Resistor { name, .. }
            | Device::Capacitor { name, .. }
            | Device::VSource { name, .. }
            | Device::ISource { name, .. }
            | Device::Vcvs { name, .. }
            | Device::Vccs { name, .. }
            | Device::Mosfet { name, .. } => name,
        }
    }
}

/// A circuit under construction: named nodes plus a flat device list.
///
/// # Example
///
/// ```
/// use spice::{Circuit, Waveform};
///
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let vout = ckt.node("out");
/// ckt.add_vsource("VIN", vin, 0, Waveform::Dc(1.0))?;
/// ckt.add_resistor("R1", vin, vout, 1e3)?;
/// ckt.add_resistor("R2", vout, 0, 1e3)?;
/// let op = spice::op(&ckt, &spice::SimOptions::default())?;
/// assert!((op.voltage(vout) - 0.5).abs() < 1e-9);
/// # Ok::<(), spice::SpiceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    node_names: Vec<String>,
    node_lookup: HashMap<String, NodeId>,
    devices: Vec<Device>,
    device_lookup: HashMap<String, usize>,
    nbranches: usize,
    /// Incrementally maintained structural fingerprint (see
    /// [`Circuit::topology_id`]).
    topo_hash: u64,
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new()
    }
}

/// Ground node, always node id 0 (also reachable by name `"0"` or `"gnd"`).
pub const GND: NodeId = 0;

impl Circuit {
    /// Creates an empty circuit with only the ground node.
    pub fn new() -> Self {
        let mut node_lookup = HashMap::new();
        node_lookup.insert("0".to_string(), 0);
        node_lookup.insert("gnd".to_string(), 0);
        Circuit {
            node_names: vec!["0".to_string()],
            node_lookup,
            devices: Vec::new(),
            device_lookup: HashMap::new(),
            nbranches: 0,
            topo_hash: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
        }
    }

    /// Folds structural facts into the topology fingerprint (FNV-1a).
    fn topo_mix(&mut self, vals: &[usize]) {
        for &v in vals {
            self.topo_hash = (self.topo_hash ^ v as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// A fingerprint of the circuit *structure*: device kinds, terminal
    /// connectivity and branch assignments — everything that determines
    /// which MNA matrix positions get stamped, and nothing that does not
    /// (device values, waveforms, and geometry are excluded). Two circuits
    /// with equal fingerprints assemble systems with identical sparsity
    /// patterns and identical stamp-write sequences, so solver state keyed
    /// on it (stamp→slot maps, pooled workspaces) transfers between them.
    /// Maintained incrementally; reading it is O(1).
    pub fn topology_id(&self) -> u64 {
        self.topo_hash
    }

    /// Returns the node with the given name, creating it if needed.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_lookup.get(name) {
            return id;
        }
        let id = self.node_names.len();
        self.node_names.push(name.to_string());
        self.node_lookup.insert(name.to_string(), id);
        self.topo_mix(&[1, id]);
        id
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] if no node has that name.
    pub fn find_node(&self, name: &str) -> Result<NodeId, SpiceError> {
        self.node_lookup
            .get(name)
            .copied()
            .ok_or_else(|| SpiceError::UnknownNode {
                name: name.to_string(),
            })
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id]
    }

    /// Number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of MNA branch unknowns (voltage-source-like devices).
    pub fn num_branches(&self) -> usize {
        self.nbranches
    }

    /// Total MNA unknowns: non-ground nodes plus branches.
    pub fn num_unknowns(&self) -> usize {
        self.num_nodes() - 1 + self.nbranches
    }

    /// All devices, in insertion order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Mutable device access for analyses that vary source values in place
    /// (DC sweeps). Crate-internal: arbitrary mutation could break the
    /// precomputed capacitance invariants.
    pub(crate) fn devices_mut(&mut self) -> &mut [Device] {
        &mut self.devices
    }

    /// Looks up a device index by name.
    pub fn device_index(&self, name: &str) -> Option<usize> {
        self.device_lookup.get(name).copied()
    }

    fn register(&mut self, name: &str) -> Result<(), SpiceError> {
        if self.device_lookup.contains_key(name) {
            return Err(SpiceError::DuplicateDevice {
                name: name.to_string(),
            });
        }
        self.device_lookup
            .insert(name.to_string(), self.devices.len());
        Ok(())
    }

    fn check_value(
        name: &str,
        what: &str,
        v: f64,
        must_be_positive: bool,
    ) -> Result<(), SpiceError> {
        if !v.is_finite() || (must_be_positive && v <= 0.0) {
            return Err(SpiceError::BadValue {
                device: name.to_string(),
                reason: format!("{what} = {v}"),
            });
        }
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite resistance and duplicate names.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        r: f64,
    ) -> Result<(), SpiceError> {
        Self::check_value(name, "resistance", r, true)?;
        self.register(name)?;
        self.topo_mix(&[2, a, b]);
        self.devices.push(Device::Resistor {
            name: name.to_string(),
            a,
            b,
            g: 1.0 / r,
        });
        Ok(())
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Rejects negative or non-finite capacitance and duplicate names.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        c: f64,
    ) -> Result<(), SpiceError> {
        if !c.is_finite() || c < 0.0 {
            return Err(SpiceError::BadValue {
                device: name.to_string(),
                reason: format!("capacitance = {c}"),
            });
        }
        self.register(name)?;
        self.topo_mix(&[3, a, b]);
        self.devices.push(Device::Capacitor {
            name: name.to_string(),
            a,
            b,
            c,
        });
        Ok(())
    }

    /// Adds an independent voltage source (AC magnitude 0).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn add_vsource(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    ) -> Result<(), SpiceError> {
        self.add_vsource_ac(name, p, n, wave, 0.0)
    }

    /// Adds an independent voltage source with an AC magnitude for
    /// small-signal analyses.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn add_vsource_ac(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
        ac_mag: f64,
    ) -> Result<(), SpiceError> {
        self.register(name)?;
        let branch = self.nbranches;
        self.nbranches += 1;
        self.topo_mix(&[4, p, n, branch]);
        self.devices.push(Device::VSource {
            name: name.to_string(),
            p,
            n,
            wave,
            ac_mag,
            branch,
        });
        Ok(())
    }

    /// Adds an independent current source (positive current `p`→`n`).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn add_isource(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    ) -> Result<(), SpiceError> {
        self.add_isource_ac(name, p, n, wave, 0.0)
    }

    /// Adds an independent current source with an AC magnitude.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names.
    pub fn add_isource_ac(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
        ac_mag: f64,
    ) -> Result<(), SpiceError> {
        self.register(name)?;
        self.topo_mix(&[5, p, n]);
        self.devices.push(Device::ISource {
            name: name.to_string(),
            p,
            n,
            wave,
            ac_mag,
        });
        Ok(())
    }

    /// Adds a voltage-controlled voltage source.
    ///
    /// # Errors
    ///
    /// Rejects non-finite gain and duplicate names.
    pub fn add_vcvs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> Result<(), SpiceError> {
        Self::check_value(name, "gain", gain, false)?;
        self.register(name)?;
        let branch = self.nbranches;
        self.nbranches += 1;
        self.topo_mix(&[6, p, n, cp, cn, branch]);
        self.devices.push(Device::Vcvs {
            name: name.to_string(),
            p,
            n,
            cp,
            cn,
            gain,
            branch,
        });
        Ok(())
    }

    /// Adds a voltage-controlled current source.
    ///
    /// # Errors
    ///
    /// Rejects non-finite transconductance and duplicate names.
    pub fn add_vccs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> Result<(), SpiceError> {
        Self::check_value(name, "gm", gm, false)?;
        self.register(name)?;
        self.topo_mix(&[7, p, n, cp, cn]);
        self.devices.push(Device::Vccs {
            name: name.to_string(),
            p,
            n,
            cp,
            cn,
            gm,
        });
        Ok(())
    }

    /// Adds a MOSFET.
    ///
    /// # Errors
    ///
    /// Rejects non-positive geometry or multiplier and duplicate names.
    #[allow(clippy::too_many_arguments)]
    pub fn add_mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        model: &MosModel,
        w: f64,
        l: f64,
        m: f64,
    ) -> Result<(), SpiceError> {
        Self::check_value(name, "width", w, true)?;
        Self::check_value(name, "length", l, true)?;
        Self::check_value(name, "multiplier", m, true)?;
        self.register(name)?;
        self.topo_mix(&[8, d, g, s, b]);
        let caps = mos_caps(model, w, l, m);
        self.devices.push(Device::Mosfet {
            name: name.to_string(),
            d,
            g,
            s,
            b,
            model: model.clone(),
            w,
            l,
            m,
            caps,
        });
        Ok(())
    }

    /// Updates the AC magnitude of an independent source, so one circuit
    /// (and one operating point) can drive several small-signal excitation
    /// patterns (differential, common-mode, supply).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownDevice`] if the name is not an
    /// independent V/I source.
    pub fn set_ac_mag(&mut self, name: &str, mag: f64) -> Result<(), SpiceError> {
        let idx =
            self.device_lookup
                .get(name)
                .copied()
                .ok_or_else(|| SpiceError::UnknownDevice {
                    name: name.to_string(),
                })?;
        match &mut self.devices[idx] {
            Device::VSource { ac_mag, .. } | Device::ISource { ac_mag, .. } => {
                *ac_mag = mag;
                Ok(())
            }
            _ => Err(SpiceError::UnknownDevice {
                name: name.to_string(),
            }),
        }
    }

    /// Looks up a device by name for in-place value updates.
    fn device_mut(&mut self, name: &str) -> Result<&mut Device, SpiceError> {
        let idx =
            self.device_lookup
                .get(name)
                .copied()
                .ok_or_else(|| SpiceError::UnknownDevice {
                    name: name.to_string(),
                })?;
        Ok(&mut self.devices[idx])
    }

    /// Updates a MOSFET's drawn geometry and multiplier in place,
    /// recomputing its precomputed terminal capacitances. Topology
    /// (terminals, device order, [`Circuit::topology_id`]) is unchanged, so
    /// solver state keyed on the topology stays valid — this is how sizing
    /// testbenches re-parameterize a prebuilt template circuit per
    /// candidate instead of rebuilding the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownDevice`] if `name` is not a MOSFET, or
    /// [`SpiceError::BadValue`] for non-positive geometry.
    pub fn set_mosfet_geometry(
        &mut self,
        name: &str,
        w: f64,
        l: f64,
        m: f64,
    ) -> Result<(), SpiceError> {
        Self::check_value(name, "width", w, true)?;
        Self::check_value(name, "length", l, true)?;
        Self::check_value(name, "multiplier", m, true)?;
        match self.device_mut(name)? {
            Device::Mosfet {
                model,
                w: dw,
                l: dl,
                m: dm,
                caps,
                ..
            } => {
                *dw = w;
                *dl = l;
                *dm = m;
                *caps = mos_caps(model, w, l, m);
                Ok(())
            }
            _ => Err(SpiceError::UnknownDevice {
                name: name.to_string(),
            }),
        }
    }

    /// Updates a capacitor's value in place (see
    /// [`Circuit::set_mosfet_geometry`] for the template-update pattern).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownDevice`] if `name` is not a capacitor,
    /// or [`SpiceError::BadValue`] for a negative/non-finite value.
    pub fn set_capacitance(&mut self, name: &str, c: f64) -> Result<(), SpiceError> {
        if !c.is_finite() || c < 0.0 {
            return Err(SpiceError::BadValue {
                device: name.to_string(),
                reason: format!("capacitance = {c}"),
            });
        }
        match self.device_mut(name)? {
            Device::Capacitor { c: dc, .. } => {
                *dc = c;
                Ok(())
            }
            _ => Err(SpiceError::UnknownDevice {
                name: name.to_string(),
            }),
        }
    }

    /// Updates a resistor's value in place (see
    /// [`Circuit::set_mosfet_geometry`] for the template-update pattern).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownDevice`] if `name` is not a resistor,
    /// or [`SpiceError::BadValue`] for a non-positive value.
    pub fn set_resistance(&mut self, name: &str, r: f64) -> Result<(), SpiceError> {
        Self::check_value(name, "resistance", r, true)?;
        match self.device_mut(name)? {
            Device::Resistor { g, .. } => {
                *g = 1.0 / r;
                Ok(())
            }
            _ => Err(SpiceError::UnknownDevice {
                name: name.to_string(),
            }),
        }
    }

    /// Replaces the waveform of an independent V/I source in place (see
    /// [`Circuit::set_mosfet_geometry`] for the template-update pattern).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownDevice`] if `name` is not an
    /// independent source.
    pub fn set_source_wave(&mut self, name: &str, wave: Waveform) -> Result<(), SpiceError> {
        match self.device_mut(name)? {
            Device::VSource { wave: dw, .. } | Device::ISource { wave: dw, .. } => {
                *dw = wave;
                Ok(())
            }
            _ => Err(SpiceError::UnknownDevice {
                name: name.to_string(),
            }),
        }
    }

    /// Sets an independent source to a DC value (convenience over
    /// [`Circuit::set_source_wave`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownDevice`] if `name` is not an
    /// independent source.
    pub fn set_source_dc(&mut self, name: &str, value: f64) -> Result<(), SpiceError> {
        self.set_source_wave(name, Waveform::Dc(value))
    }

    /// Clears the AC magnitude of every independent source.
    pub fn clear_ac_mags(&mut self) {
        for dev in &mut self.devices {
            if let Device::VSource { ac_mag, .. } | Device::ISource { ac_mag, .. } = dev {
                *ac_mag = 0.0;
            }
        }
    }

    /// Iterates over all capacitive element terms `(a, b, C)`, expanding the
    /// constant MOSFET capacitances. Used by the transient, AC and noise
    /// engines to build the (constant) dynamic part of the MNA system.
    pub fn capacitive_elements(&self) -> Vec<(NodeId, NodeId, f64)> {
        let mut out = Vec::new();
        for dev in &self.devices {
            match dev {
                Device::Capacitor { a, b, c, .. } => out.push((*a, *b, *c)),
                Device::Mosfet {
                    d, g, s, b, caps, ..
                } => {
                    out.push((*g, *s, caps.cgs));
                    out.push((*g, *d, caps.cgd));
                    out.push((*g, *b, caps.cgb));
                    out.push((*d, *b, caps.cdb));
                    out.push((*s, *b, caps.csb));
                }
                _ => {}
            }
        }
        out
    }

    /// Total number of MOSFET devices (counting multipliers as one instance).
    pub fn num_mosfets(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| matches!(d, Device::Mosfet { .. }))
            .count()
    }

    /// Sum of MOSFET multipliers — the "expanded" device count an extraction
    /// tool would report for arrayed layouts.
    pub fn expanded_mosfet_count(&self) -> f64 {
        self.devices
            .iter()
            .filter_map(|d| match d {
                Device::Mosfet { m, .. } => Some(*m),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mos::MosPolarity;

    fn model() -> MosModel {
        MosModel {
            polarity: MosPolarity::Nmos,
            vth0: 0.45,
            kp: 300e-6,
            clm: 0.02e-6,
            gamma: 0.4,
            phi: 0.8,
            nsub: 1.4,
            cox: 8.5e-3,
            cov: 3e-10,
            cj: 1e-3,
            ldiff: 0.4e-6,
            kf: 1e-26,
            af: 1.0,
            noise_gamma: 2.0 / 3.0,
        }
    }

    #[test]
    fn node_interning() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.find_node("gnd").unwrap(), GND);
        assert!(c.find_node("missing").is_err());
        assert_eq!(c.node_name(a), "a");
    }

    #[test]
    fn unknown_counting() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, GND, Waveform::Dc(1.0)).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_vcvs("E1", b, GND, a, GND, 2.0).unwrap();
        // 2 non-ground nodes + 2 branches.
        assert_eq!(c.num_unknowns(), 4);
        assert_eq!(c.num_branches(), 2);
    }

    #[test]
    fn rejects_bad_values() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(c.add_resistor("R1", a, GND, -5.0).is_err());
        assert!(c.add_resistor("R2", a, GND, f64::NAN).is_err());
        assert!(c.add_capacitor("C1", a, GND, -1e-12).is_err());
        let m = model();
        assert!(c
            .add_mosfet("M1", a, a, GND, GND, &m, 0.0, 1e-6, 1.0)
            .is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, GND, 1e3).unwrap();
        assert!(matches!(
            c.add_resistor("R1", a, GND, 2e3),
            Err(SpiceError::DuplicateDevice { .. })
        ));
    }

    #[test]
    fn capacitive_expansion_includes_mosfets() {
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        c.add_capacitor("CL", d, GND, 1e-12).unwrap();
        let m = model();
        c.add_mosfet("M1", d, g, GND, GND, &m, 10e-6, 1e-6, 1.0)
            .unwrap();
        let caps = c.capacitive_elements();
        assert_eq!(caps.len(), 6); // 1 explicit + 5 intrinsic
        assert!(caps.iter().all(|&(_, _, c)| c >= 0.0));
    }

    #[test]
    fn topology_id_tracks_structure_not_values() {
        let build = |r: f64, w: f64| {
            let mut c = Circuit::new();
            let a = c.node("a");
            let m = model();
            c.add_vsource("V1", a, GND, Waveform::Dc(r)).unwrap();
            c.add_resistor("R1", a, GND, r).unwrap();
            c.add_mosfet("M1", a, a, GND, GND, &m, w, 1e-6, 1.0)
                .unwrap();
            c
        };
        let c1 = build(1e3, 1e-6);
        let c2 = build(7e3, 9e-6);
        assert_eq!(c1.topology_id(), c2.topology_id());
        // In-place value updates keep the fingerprint.
        let mut c3 = c1.clone();
        c3.set_resistance("R1", 5e3).unwrap();
        c3.set_mosfet_geometry("M1", 2e-6, 0.5e-6, 4.0).unwrap();
        c3.set_source_dc("V1", 0.5).unwrap();
        assert_eq!(c3.topology_id(), c1.topology_id());
        // Different wiring changes it.
        let mut c4 = build(1e3, 1e-6);
        let b = c4.node("b");
        c4.add_resistor("R2", b, GND, 1e3).unwrap();
        assert_ne!(c4.topology_id(), c1.topology_id());
    }

    #[test]
    fn setters_update_values_and_reject_mismatches() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = model();
        c.add_resistor("R1", a, GND, 1e3).unwrap();
        c.add_capacitor("C1", a, GND, 1e-12).unwrap();
        c.add_mosfet("M1", a, a, GND, GND, &m, 1e-6, 1e-6, 1.0)
            .unwrap();
        c.add_vsource("V1", a, GND, Waveform::Dc(1.0)).unwrap();
        c.set_resistance("R1", 2e3).unwrap();
        c.set_capacitance("C1", 3e-12).unwrap();
        c.set_mosfet_geometry("M1", 4e-6, 2e-6, 2.0).unwrap();
        c.set_source_dc("V1", 2.5).unwrap();
        match &c.devices()[0] {
            Device::Resistor { g, .. } => assert!((g - 1.0 / 2e3).abs() < 1e-18),
            _ => unreachable!(),
        }
        match &c.devices()[1] {
            Device::Capacitor { c, .. } => assert_eq!(*c, 3e-12),
            _ => unreachable!(),
        }
        match &c.devices()[2] {
            Device::Mosfet { w, l, m, caps, .. } => {
                assert_eq!((*w, *l, *m), (4e-6, 2e-6, 2.0));
                // Capacitances were recomputed for the new geometry.
                assert_eq!(caps.cgs, mos_caps(&model(), 4e-6, 2e-6, 2.0).cgs);
            }
            _ => unreachable!(),
        }
        match &c.devices()[3] {
            Device::VSource { wave, .. } => assert_eq!(wave.dc_value(), 2.5),
            _ => unreachable!(),
        }
        // Wrong kinds and unknown names are rejected.
        assert!(c.set_resistance("C1", 1e3).is_err());
        assert!(c.set_capacitance("R1", 1e-12).is_err());
        assert!(c.set_mosfet_geometry("R1", 1e-6, 1e-6, 1.0).is_err());
        assert!(c.set_source_dc("M1", 1.0).is_err());
        assert!(c.set_resistance("missing", 1e3).is_err());
        assert!(c.set_resistance("R1", -1.0).is_err());
        assert!(c.set_capacitance("C1", f64::NAN).is_err());
        assert!(c.set_mosfet_geometry("M1", 0.0, 1e-6, 1.0).is_err());
    }

    #[test]
    fn device_counts() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = model();
        c.add_mosfet("M1", a, a, GND, GND, &m, 1e-6, 1e-6, 8.0)
            .unwrap();
        c.add_mosfet("M2", a, a, GND, GND, &m, 1e-6, 1e-6, 24.0)
            .unwrap();
        assert_eq!(c.num_mosfets(), 2);
        assert_eq!(c.expanded_mosfet_count(), 32.0);
    }
}
