//! Criterion benchmarks of the PVT corner-sweep evaluation plane: the
//! candidate×corner grid the scenario engine runs for sign-off-style
//! worst-case evaluation, on the real testbenches. `repro baseline`
//! re-times the `ota_corner_eval_*` rows into `BENCH_baseline.json`.

use circuits::tech::CornerSet;
use circuits::{FoldedCascodeOta, LevelShifter};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use opt::{parallel, Evaluator, Fom, SizingProblem};

/// One candidate through the OTA's nominal-only plane (the legacy path the
/// 5-corner row is compared against).
fn bench_ota_nominal_eval(c: &mut Criterion) {
    let ota = FoldedCascodeOta::new();
    let x = ota.nominal();
    c.bench_function("ota_corner_eval_1c", |b| {
        b.iter(|| black_box(ota.evaluate(black_box(&x))).objective)
    });
}

/// One candidate through the OTA's standard 5-corner sign-off plane —
/// every corner re-runs the full measurement suite on its derated
/// technology through pooled per-topology workspaces.
fn bench_ota_corner_eval(c: &mut Criterion) {
    let ota = FoldedCascodeOta::with_corners(CornerSet::pvt5());
    let x = ota.nominal();
    c.bench_function("ota_corner_eval_5c", |b| {
        b.iter(|| black_box(ota.evaluate(black_box(&x))).objective)
    });
}

/// The level shifter's six-supply-corner plane through the shared engine
/// (the migration target of the old private corner loop).
fn bench_level_shifter_corner_eval(c: &mut Criterion) {
    let ls = LevelShifter::new();
    let x = SizingProblem::nominal(&ls);
    c.bench_function("level_shifter_corner_eval_6c", |b| {
        b.iter(|| black_box(ls.evaluate(black_box(&x))).objective)
    });
}

/// A small population through the candidate×corner grid of
/// `Evaluator::evaluate_corners_batch`, serial vs parallel.
fn bench_corner_grid_batch(c: &mut Criterion) {
    let ls = LevelShifter::new();
    let fom = Fom::uniform(1.0, ls.num_constraints());
    let nominal = SizingProblem::nominal(&ls);
    let (lb, ub) = ls.bounds();
    let pop: Vec<Vec<f64>> = (0..4)
        .map(|i| {
            let t = (i as f64 / 3.0 - 0.5) * 0.05;
            nominal
                .iter()
                .zip(lb.iter().zip(&ub))
                .map(|(&v, (&l, &u))| (v + t * (u - l)).clamp(l, u))
                .collect()
        })
        .collect();
    c.bench_function("corner_grid_4x6_level_shifter_serial", |b| {
        parallel::set_max_threads(1);
        b.iter(|| {
            let mut ev = Evaluator::new(&ls, &fom, pop.len());
            black_box(ev.evaluate_batch(&pop).len())
        });
        parallel::set_max_threads(0);
    });
    c.bench_function("corner_grid_4x6_level_shifter_parallel", |b| {
        parallel::set_max_threads(0);
        b.iter(|| {
            let mut ev = Evaluator::new(&ls, &fom, pop.len());
            black_box(ev.evaluate_batch(&pop).len())
        })
    });
}

criterion_group!(
    benches,
    bench_ota_nominal_eval,
    bench_ota_corner_eval,
    bench_level_shifter_corner_eval,
    bench_corner_grid_batch
);
criterion_main!(benches);
