//! Covariance kernels.

/// Squared-exponential (RBF) kernel with per-dimension (ARD) lengthscales:
///
/// `k(a, b) = σ² · exp(−½ Σ_d ((a_d − b_d)/ℓ_d)²)`
///
/// # Example
///
/// ```
/// use gp::RbfKernel;
///
/// let k = RbfKernel::isotropic(2, 1.0, 2.0);
/// assert_eq!(k.eval(&[0.0, 0.0], &[0.0, 0.0]), 2.0); // σ² at zero distance
/// assert!(k.eval(&[0.0, 0.0], &[3.0, 3.0]) < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RbfKernel {
    /// Signal variance σ².
    variance: f64,
    /// Per-dimension lengthscales ℓ_d.
    lengthscales: Vec<f64>,
}

impl RbfKernel {
    /// Creates a kernel with one lengthscale per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `variance` or any lengthscale is not positive and finite.
    pub fn new(variance: f64, lengthscales: Vec<f64>) -> Self {
        assert!(
            variance.is_finite() && variance > 0.0,
            "variance must be positive"
        );
        assert!(
            lengthscales.iter().all(|l| l.is_finite() && *l > 0.0),
            "lengthscales must be positive"
        );
        RbfKernel {
            variance,
            lengthscales,
        }
    }

    /// Creates a kernel with the same lengthscale in every dimension.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters or zero dimensionality.
    pub fn isotropic(dim: usize, lengthscale: f64, variance: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self::new(variance, vec![lengthscale; dim])
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.lengthscales.len()
    }

    /// Signal variance σ² (the prior variance at any point).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Evaluates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the point dimensions disagree with the kernel.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), self.dim(), "point dimension mismatch");
        assert_eq!(b.len(), self.dim(), "point dimension mismatch");
        let mut s = 0.0;
        for ((x, y), l) in a.iter().zip(b).zip(&self.lengthscales) {
            let d = (x - y) / l;
            s += d * d;
        }
        self.variance * (-0.5 * s).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_symmetric_and_bounded() {
        let k = RbfKernel::new(1.5, vec![0.3, 2.0]);
        let a = [0.1, 0.9];
        let b = [0.4, 0.2];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
        assert!(k.eval(&a, &b) <= k.variance());
        assert!(k.eval(&a, &b) > 0.0);
        assert_eq!(k.eval(&a, &a), 1.5);
    }

    #[test]
    fn ard_lengthscales_weight_dimensions() {
        // A long lengthscale in dim 0 makes distance there cheap.
        let k = RbfKernel::new(1.0, vec![10.0, 0.1]);
        let base = [0.0, 0.0];
        let far_d0 = k.eval(&base, &[1.0, 0.0]);
        let far_d1 = k.eval(&base, &[0.0, 1.0]);
        assert!(far_d0 > 0.99);
        assert!(far_d1 < 1e-10);
    }

    #[test]
    fn decays_with_distance() {
        let k = RbfKernel::isotropic(1, 1.0, 1.0);
        let v1 = k.eval(&[0.0], &[0.5]);
        let v2 = k.eval(&[0.0], &[1.5]);
        assert!(v1 > v2);
    }

    #[test]
    #[should_panic(expected = "variance must be positive")]
    fn rejects_bad_variance() {
        let _ = RbfKernel::isotropic(1, 1.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "lengthscales must be positive")]
    fn rejects_bad_lengthscale() {
        let _ = RbfKernel::new(1.0, vec![0.0]);
    }
}
