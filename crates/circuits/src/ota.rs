//! The two-stage folded-cascode OTA of paper Fig. 2 / Table I / Eq. 9.
//!
//! Topology (reconstructed from the schematic; exact device-to-label
//! mapping in the figure is ambiguous, the structure below is the standard
//! fully differential two-stage folded-cascode it depicts):
//!
//! - **Stage 1**: PMOS input pair (`W1/L1`, ×N1) with PMOS tail
//!   (`W1/L1`, ×2N1); folded branch with NMOS sinks (`W3/L3`, ×(N1+N2))
//!   gated by the CMFB voltage, NMOS cascodes (`W2/L2`, ×N2), PMOS
//!   cascodes (`W5/L5`, ×N2) and PMOS current sources (`W4/L4`, ×N2).
//! - **Stage 2**: class-A common-source NMOS drivers (`W6/L6`, ×N9) with
//!   PMOS current-source loads (`W7/L7`, ×N8), Miller-compensated with
//!   `MCAP`; each output carries a `Cf` load capacitor.
//! - **CMFB**: resistive output-CM sensing into a 5-transistor OTA that
//!   drives the stage-1 sink gates.
//! - **Bias**: diode-connected mirror branches from a fixed 10 µA
//!   reference generate `vbp1`, `vbp2`, `vbn2` and the CMFB tail bias.
//!
//! The sizing problem is exactly Table I: 20 design variables
//! (`L1..L7`, `W1..W7`, `N1, N2, N8, N9`, `MCAP`, `Cf`) and Eq. 9's
//! constraint set — 10 performance constraints plus 19 per-device
//! saturation-region constraints (29 total).
//!
//! Measurements per evaluation: DC operating point (power, margins,
//! swing), three AC sweeps (differential, common-mode, supply), a noise
//! integration, and a closed-loop (gain −1) step transient for settling
//! time and static error.

use opt::{AnalysisSpec, SizingProblem, SpecResult};
use spice::{Circuit, OpPoint, SimOptions, SpiceError, Waveform, GND};

use crate::measure;
use crate::mesh;
use crate::tech::{tech_180nm, Corner, CornerSet, Technology};

/// Decoded design parameters (Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct OtaParams {
    /// Channel lengths `L1..L7` \[m\].
    pub l: [f64; 7],
    /// Channel widths `W1..W7` \[m\].
    pub w: [f64; 7],
    /// Multipliers `N1, N2, N8, N9` (integers ≥ 1).
    pub n1: f64,
    /// Multiplier `N2`.
    pub n2: f64,
    /// Multiplier `N8`.
    pub n8: f64,
    /// Multiplier `N9`.
    pub n9: f64,
    /// Miller compensation capacitor \[F\].
    pub mcap: f64,
    /// Output load / feedback capacitor \[F\].
    pub cf: f64,
}

impl OtaParams {
    /// Decodes a raw design vector in Table I ordering
    /// (`L1..L7, W1..W7, N1, N2, N8, N9, MCAP, Cf`), rounding the
    /// multipliers to integers.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 20`.
    pub fn decode(x: &[f64]) -> Self {
        assert_eq!(x.len(), 20, "OTA design vector has 20 entries");
        let mut l = [0.0; 7];
        let mut w = [0.0; 7];
        l.copy_from_slice(&x[0..7]);
        w.copy_from_slice(&x[7..14]);
        OtaParams {
            l,
            w,
            n1: x[14].round().max(1.0),
            n2: x[15].round().max(1.0),
            n8: x[16].round().max(1.0),
            n9: x[17].round().max(1.0),
            mcap: x[18],
            cf: x[19],
        }
    }
}

/// Names of the 19 saturation-checked devices (per Eq. 9's region list).
const SAT_DEVICES: [&str; 19] = [
    "M_inP",
    "M_inN",
    "M_tail",
    "MP_srcL",
    "MP_srcR",
    "MP_casL",
    "MP_casR",
    "MN_casL",
    "MN_casR",
    "MN_snkL",
    "MN_snkR",
    "MN_drvL",
    "MN_drvR",
    "MP_ld2L",
    "MP_ld2R",
    "M_cmfbA",
    "M_cmfbB",
    "M_cmfbTail",
    "M_cmfbInj",
];

/// The folded-cascode OTA sizing problem (paper Table I / Eq. 9).
///
/// # Example
///
/// ```no_run
/// use circuits::FoldedCascodeOta;
/// use opt::SizingProblem;
///
/// let ota = FoldedCascodeOta::new();
/// let x = ota.nominal();
/// let spec = ota.evaluate(&x);
/// println!("power = {} W, feasible = {}", spec.objective, spec.feasible());
/// ```
#[derive(Debug, Clone)]
pub struct FoldedCascodeOta {
    tech: Technology,
    opts: SimOptions,
    /// Input/output common-mode voltage \[V\] (tracks the corner supply).
    vcm: f64,
    /// Bias reference current \[A\].
    iref: f64,
    /// Prebuilt open-loop testbench topology; per-candidate evaluation
    /// clones it and re-sizes every device in place (no netlist rebuild,
    /// no node-map re-derivation — and an unchanged topology fingerprint,
    /// so pooled solver state carries across candidates *and* corners).
    template_open: Circuit,
    /// Output node ids `(out_p, out_n)` of the open-loop template.
    open_outs: (usize, usize),
    /// Prebuilt closed-loop (gain −1 step) testbench topology.
    template_closed: Circuit,
    /// Output node ids `(out_p, out_n)` of the closed-loop template.
    closed_outs: (usize, usize),
    /// The PVT scenario plane this instance evaluates across.
    corners: CornerSet,
    /// Fully-built evaluation planes for `corners[1..]` (plane 0 is this
    /// instance itself): derated technology, corner-temperature options,
    /// corner-retargeted templates.
    extra_planes: Vec<FoldedCascodeOta>,
    /// Distributed-parasitic configuration when this is a post-layout
    /// plane: the templates carry per-node RC ladders and every resize
    /// refreshes their capacitance shares.
    post_layout: Option<mesh::PostLayoutConfig>,
}

impl Default for FoldedCascodeOta {
    fn default() -> Self {
        Self::new()
    }
}

impl FoldedCascodeOta {
    /// Creates the problem on the generic 180nm-class technology at the
    /// nominal corner only (the legacy single-scenario plane).
    pub fn new() -> Self {
        Self::with_corners(CornerSet::nominal())
    }

    /// Creates the problem evaluating every candidate across a PVT corner
    /// set: one fully-built testbench plane per corner (derated model
    /// cards via [`Technology::at_corner`], supply and common-mode scaled
    /// by the corner, corner temperature in the simulator options).
    /// [`SizingProblem::evaluate`] is then the worst case over the plane;
    /// corner 0 of every standard set is nominal and bit-identical to
    /// [`FoldedCascodeOta::new`].
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or a template fails to build.
    pub fn with_corners(corners: CornerSet) -> Self {
        let (mut base, extras) = corners.split_planes(Self::build_plane);
        base.corners = corners;
        base.extra_planes = extras;
        base
    }

    /// Creates the *post-layout* variant of the problem: both testbench
    /// templates carry distributed parasitic RC ladders on every node (the
    /// extraction-style mesh of [`crate::mesh`]), pushing the MNA systems
    /// from n ≈ 60 pre-layout to several hundred unknowns — the regime the
    /// supernodal sparse engine targets. Per-candidate resizes refresh the
    /// ladder capacitance shares in place, so the topology fingerprint
    /// (and thus the pooled solver state) is still shared across
    /// candidates. Nominal corner only.
    ///
    /// # Panics
    ///
    /// Panics if a template fails to build or mesh.
    pub fn post_layout() -> Self {
        Self::with_post_layout(mesh::PostLayoutConfig::default())
    }

    /// [`FoldedCascodeOta::post_layout`] with an explicit mesh
    /// configuration (segment count / segment resistance / estimator
    /// coefficients).
    ///
    /// # Panics
    ///
    /// Panics if a template fails to build or mesh.
    pub fn with_post_layout(cfg: mesh::PostLayoutConfig) -> Self {
        let mut ota = Self::new();
        mesh::apply_post_layout(&mut ota.template_open, &cfg)
            .expect("open-loop template must mesh");
        mesh::apply_post_layout(&mut ota.template_closed, &cfg)
            .expect("closed-loop template must mesh");
        ota.post_layout = Some(cfg);
        // Re-run the nominal resize through the post-layout path so the
        // templates' ladder shares start consistent with their geometry.
        let p = OtaParams::decode(&ota.nominal());
        let mut open = std::mem::replace(&mut ota.template_open, Circuit::new());
        ota.resize(&mut open, &p).expect("meshed open-loop resize");
        ota.template_open = open;
        let mut closed = std::mem::replace(&mut ota.template_closed, Circuit::new());
        ota.resize(&mut closed, &p)
            .expect("meshed closed-loop resize");
        ota.template_closed = closed;
        ota
    }

    /// Builds one single-corner evaluation plane.
    fn build_plane(corner: &Corner) -> FoldedCascodeOta {
        // Non-nominal corners shift every bias point tens of millivolts
        // and mobility by ±40%; the closed-loop testbench needs gentler
        // Newton steps (and more of them) to settle there. The nominal
        // plane keeps the legacy options so its results stay bit-identical
        // to the pre-corner engine.
        let base = if corner.is_nominal() {
            SimOptions {
                max_nr_iters: 200,
                ..Default::default()
            }
        } else {
            SimOptions {
                max_nr_iters: 800,
                v_limit: 0.35,
                ..Default::default()
            }
        };
        let opts = corner.options(&base);
        let mut ota = FoldedCascodeOta {
            tech: tech_180nm().at_corner(corner),
            opts,
            vcm: 0.9 * corner.vdd_scale,
            iref: 10e-6,
            template_open: Circuit::new(),
            open_outs: (0, 0),
            template_closed: Circuit::new(),
            closed_outs: (0, 0),
            corners: CornerSet::single(*corner),
            extra_planes: Vec::new(),
            post_layout: None,
        };
        let (open, op_, on_) = ota
            .build_open_topology()
            .expect("OTA open-loop template must build");
        ota.template_open = open;
        ota.open_outs = (op_, on_);
        let (closed, cp, cn) = ota
            .build_closed_topology()
            .expect("OTA closed-loop template must build");
        ota.template_closed = closed;
        ota.closed_outs = (cp, cn);
        ota
    }

    /// The scenario plane this instance evaluates across.
    pub fn corners(&self) -> &CornerSet {
        &self.corners
    }

    /// The evaluation plane of corner `k` (0 = this instance).
    fn plane(&self, k: usize) -> &FoldedCascodeOta {
        if k == 0 {
            self
        } else {
            &self.extra_planes[k - 1]
        }
    }

    /// A hand-tuned design that meets (or closely approaches) every Eq. 9
    /// constraint — the regression anchor for the evaluation pipeline.
    pub fn nominal(&self) -> Vec<f64> {
        let u = 1e-6;
        let f = 1e-15;
        vec![
            // L1..L7
            0.5 * u,
            0.35 * u,
            0.5 * u,
            0.4 * u,
            0.35 * u,
            0.5 * u,
            0.4 * u,
            // W1..W7
            30.0 * u,
            30.0 * u,
            40.0 * u,
            40.0 * u,
            40.0 * u,
            5.0 * u,
            60.0 * u,
            // N1, N2, N8, N9
            8.0,
            4.0,
            8.0,
            6.0,
            // MCAP, Cf
            2000.0 * f,
            300.0 * f,
        ]
    }

    /// Builds the amplifier-core *topology* into `ckt` with placeholder
    /// geometry — every design-dependent value is written exclusively by
    /// [`FoldedCascodeOta::resize`]. Returns the key node ids:
    /// `(inp, inn, out_p, out_n)`.
    fn build_core(&self, ckt: &mut Circuit) -> Result<(usize, usize, usize, usize), SpiceError> {
        let u = 1e-6;
        let f = 1e-15;
        let t = &self.tech;
        let vdd = ckt.node("vdd");
        ckt.add_vsource("VDD", vdd, GND, Waveform::Dc(t.vdd))?;

        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        let tail = ckt.node("tail");
        let fold_l = ckt.node("fold_l");
        let fold_r = ckt.node("fold_r");
        let srcp_l = ckt.node("srcp_l");
        let srcp_r = ckt.node("srcp_r");
        let out1_l = ckt.node("out1_l");
        let out1_r = ckt.node("out1_r");
        let out_p = ckt.node("out_p"); // second stage on the L (inp) side
        let out_n = ckt.node("out_n");
        let vsense = ckt.node("vsense");
        let vbp1 = ckt.node("vbp1");
        let vbp2 = ckt.node("vbp2");
        let vbn2 = ckt.node("vbn2");
        let vbn = ckt.node("vbn");

        // ---- Bias generator (fixed 10 µA reference branches).
        // vbp1: PMOS mirror gate.
        ckt.add_mosfet("MB_p1", vbp1, vbp1, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_isource("IB1", vbp1, GND, Waveform::Dc(self.iref))?;
        // vbp2: two stacked PMOS diodes (cascode gate level).
        let midp = ckt.node("bias_midp");
        ckt.add_mosfet("MB_p2a", midp, midp, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("MB_p2b", vbp2, vbp2, midp, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_isource("IB2", vbp2, GND, Waveform::Dc(self.iref))?;
        // vbn2: two stacked NMOS diodes (vbn2 ≈ 2·vgs).
        let midn = ckt.node("bias_midn");
        ckt.add_mosfet("MB_n2a", midn, midn, GND, GND, &t.nmos, u, u, 1.0)?;
        ckt.add_mosfet("MB_n2b", vbn2, vbn2, midn, GND, &t.nmos, u, u, 1.0)?;
        ckt.add_isource("IB3", vdd, vbn2, Waveform::Dc(self.iref))?;
        // vbn: NMOS mirror gate for the CMFB tail.
        ckt.add_mosfet("MB_n1", vbn, vbn, GND, GND, &t.nmos, u, u, 1.0)?;
        ckt.add_isource("IB4", vdd, vbn, Waveform::Dc(self.iref))?;

        // ---- Stage 1: PMOS-input folded cascode.
        ckt.add_mosfet("M_tail", tail, vbp1, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("M_inP", fold_l, inp, tail, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("M_inN", fold_r, inn, tail, vdd, &t.pmos, u, u, 1.0)?;
        // Top PMOS current sources and cascodes.
        ckt.add_mosfet("MP_srcL", srcp_l, vbp1, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("MP_srcR", srcp_r, vbp1, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("MP_casL", out1_l, vbp2, srcp_l, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("MP_casR", out1_r, vbp2, srcp_r, vdd, &t.pmos, u, u, 1.0)?;
        // Bottom NMOS cascodes and mirror-biased sinks (gate vbn_snk comes
        // from the replica + CMFB-injection branch below).
        let vbn_snk = ckt.node("vbn_snk");
        ckt.add_mosfet("MN_casL", out1_l, vbn2, fold_l, GND, &t.nmos, u, u, 1.0)?;
        ckt.add_mosfet("MN_casR", out1_r, vbn2, fold_r, GND, &t.nmos, u, u, 1.0)?;
        ckt.add_mosfet("MN_snkL", fold_l, vbn_snk, GND, GND, &t.nmos, u, u, 1.0)?;
        ckt.add_mosfet("MN_snkR", fold_r, vbn_snk, GND, GND, &t.nmos, u, u, 1.0)?;

        // ---- Stage 2 (inverting common source per side):
        // left first-stage output drives the *P* output.
        ckt.add_mosfet("MN_drvL", out_p, out1_l, GND, GND, &t.nmos, u, u, 1.0)?;
        ckt.add_mosfet("MN_drvR", out_n, out1_r, GND, GND, &t.nmos, u, u, 1.0)?;
        ckt.add_mosfet("MP_ld2L", out_p, vbp1, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("MP_ld2R", out_n, vbp1, vdd, vdd, &t.pmos, u, u, 1.0)?;
        // Miller compensation with a fixed 2 kΩ nulling resistor (pushes
        // the right-half-plane zero into the left half plane for any
        // second-stage gm above ~0.5 mS) and output loads.
        let zc_l = ckt.node("zc_l");
        let zc_r = ckt.node("zc_r");
        ckt.add_resistor("RZ_L", out1_l, zc_l, 2e3)?;
        ckt.add_capacitor("CC_L", zc_l, out_p, 100.0 * f)?;
        ckt.add_resistor("RZ_R", out1_r, zc_r, 2e3)?;
        ckt.add_capacitor("CC_R", zc_r, out_n, 100.0 * f)?;
        ckt.add_capacitor("CL_P", out_p, GND, 100.0 * f)?;
        ckt.add_capacitor("CL_N", out_n, GND, 100.0 * f)?;

        // ---- Sink bias: replica mirror + current-injection CMFB.
        //
        // A voltage-mode CMFB driving the sink gates directly latches up:
        // when it rails, the sinks overpull by orders of magnitude, the
        // first stage inverts its common-mode sign (top sources in triode)
        // and the loop sticks at the rail. The textbook fix implemented
        // here bounds the CMFB authority by *current*: the sink gate
        // voltage comes from a diode branch carrying (a) a replica of
        // ~90% of the nominal branch current, mirrored with the same
        // geometry ratios as the signal path, plus (b) the tail-limited
        // output current of the CMFB error amplifier.
        // (a) Replica: 0.95·I_src per branch. Deliberately *excludes* the
        // input-pair share: if the pair ever cuts off (e.g. the input CM
        // runs away in a feedback testbench), the commanded sink current
        // must stay below what the top sources can deliver, otherwise the
        // first stage latches with the folds on the ground rail. The CMFB
        // injection below makes up the input-pair share at balance.
        ckt.add_mosfet("M_repSrc", vbn_snk, vbp1, vdd, vdd, &t.pmos, u, u, 1.0)?;
        // Sink-bias diode, same geometry and multiplier as each sink.
        ckt.add_mosfet("M_snkDio", vbn_snk, vbn_snk, GND, GND, &t.nmos, u, u, 1.0)?;
        // (b) CMFB error amp: NMOS pair comparing the sensed output CM with
        // VREF; the VREF-side current is mirrored into the diode branch, so
        // the correction is bounded by the CMFB tail current.
        ckt.add_resistor("R_snsP", out_p, vsense, 400e3)?;
        ckt.add_resistor("R_snsN", out_n, vsense, 400e3)?;
        let vref = ckt.node("vref");
        ckt.add_vsource("VREF", vref, GND, Waveform::Dc(self.vcm))?;
        let cm_tail = ckt.node("cm_tail");
        let cm_d1 = ckt.node("cm_d1");
        ckt.add_mosfet("M_cmfbTail", cm_tail, vbn, GND, GND, &t.nmos, u, u, 1.0)?;
        // vsense down => more current in the VREF-side device? No: the
        // sense-side device steals tail current as vsense rises, so the
        // VREF-side current *falls* with rising output CM — injected into
        // the sink diode this lowers the sink current and lets the outputs
        // come back down through the two inverting stages.
        ckt.add_mosfet("M_cmfbA", cm_d1, vref, cm_tail, GND, &t.nmos, u, u, 1.0)?;
        let cm_dump = ckt.node("cm_dump");
        ckt.add_mosfet("M_cmfbB", cm_dump, vsense, cm_tail, GND, &t.nmos, u, u, 1.0)?;
        // Dump side terminates in a diode so the device stays biased.
        ckt.add_mosfet("M_cmfbDump", cm_dump, cm_dump, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("M_cmfbMirD", cm_d1, cm_d1, vdd, vdd, &t.pmos, u, u, 1.0)?;
        ckt.add_mosfet("M_cmfbInj", vbn_snk, cm_d1, vdd, vdd, &t.pmos, u, u, 1.0)?;
        // Small stabilizing cap on the sink-bias node.
        ckt.add_capacitor("C_cmfb", vbn_snk, GND, 50e-15)?;

        Ok((inp, inn, out_p, out_n))
    }

    /// Writes every Table I design-dependent device value for the decoded
    /// parameters `p` — the single source of truth for the
    /// variable→device mapping, shared by both testbench templates.
    fn resize(&self, ckt: &mut Circuit, p: &OtaParams) -> Result<(), SpiceError> {
        let snk_m = p.n1 + p.n2;
        // Bias generator.
        ckt.set_mosfet_geometry("MB_p1", p.w[3], p.l[3], 1.0)?;
        ckt.set_mosfet_geometry("MB_p2a", p.w[4], p.l[4], 2.0)?;
        ckt.set_mosfet_geometry("MB_p2b", p.w[4], p.l[4], 2.0)?;
        ckt.set_mosfet_geometry("MB_n2a", p.w[1], p.l[1], 2.0)?;
        ckt.set_mosfet_geometry("MB_n2b", p.w[1], p.l[1], 2.0)?;
        ckt.set_mosfet_geometry("MB_n1", p.w[1], p.l[1], 1.0)?;
        // Stage 1.
        ckt.set_mosfet_geometry("M_tail", p.w[0], p.l[0], 2.0 * p.n1)?;
        ckt.set_mosfet_geometry("M_inP", p.w[0], p.l[0], p.n1)?;
        ckt.set_mosfet_geometry("M_inN", p.w[0], p.l[0], p.n1)?;
        ckt.set_mosfet_geometry("MP_srcL", p.w[3], p.l[3], p.n2)?;
        ckt.set_mosfet_geometry("MP_srcR", p.w[3], p.l[3], p.n2)?;
        ckt.set_mosfet_geometry("MP_casL", p.w[4], p.l[4], p.n2)?;
        ckt.set_mosfet_geometry("MP_casR", p.w[4], p.l[4], p.n2)?;
        ckt.set_mosfet_geometry("MN_casL", p.w[1], p.l[1], p.n2)?;
        ckt.set_mosfet_geometry("MN_casR", p.w[1], p.l[1], p.n2)?;
        ckt.set_mosfet_geometry("MN_snkL", p.w[2], p.l[2], snk_m)?;
        ckt.set_mosfet_geometry("MN_snkR", p.w[2], p.l[2], snk_m)?;
        // Stage 2 and compensation.
        ckt.set_mosfet_geometry("MN_drvL", p.w[5], p.l[5], p.n9)?;
        ckt.set_mosfet_geometry("MN_drvR", p.w[5], p.l[5], p.n9)?;
        ckt.set_mosfet_geometry("MP_ld2L", p.w[6], p.l[6], p.n8)?;
        ckt.set_mosfet_geometry("MP_ld2R", p.w[6], p.l[6], p.n8)?;
        ckt.set_capacitance("CC_L", p.mcap)?;
        ckt.set_capacitance("CC_R", p.mcap)?;
        ckt.set_capacitance("CL_P", p.cf)?;
        ckt.set_capacitance("CL_N", p.cf)?;
        // Sink-bias replica and CMFB.
        ckt.set_mosfet_geometry("M_repSrc", p.w[3], p.l[3], 0.95 * p.n2)?;
        ckt.set_mosfet_geometry("M_snkDio", p.w[2], p.l[2], snk_m)?;
        ckt.set_mosfet_geometry("M_cmfbTail", p.w[1], p.l[1], 0.5 * snk_m)?;
        ckt.set_mosfet_geometry("M_cmfbA", p.w[1], p.l[1], 1.0)?;
        ckt.set_mosfet_geometry("M_cmfbB", p.w[1], p.l[1], 1.0)?;
        ckt.set_mosfet_geometry("M_cmfbDump", p.w[3], p.l[3], 1.0)?;
        ckt.set_mosfet_geometry("M_cmfbMirD", p.w[3], p.l[3], 1.0)?;
        ckt.set_mosfet_geometry("M_cmfbInj", p.w[3], p.l[3], 1.0)?;
        // Post-layout planes: geometry changed, so the distributed ladder
        // capacitance shares must follow (structure is size-independent).
        if let Some(cfg) = &self.post_layout {
            mesh::update_post_layout(ckt, cfg)?;
        }
        Ok(())
    }

    /// Builds the open-loop testbench topology (inputs driven by DC
    /// sources at VCM; AC magnitudes set later per excitation pattern).
    fn build_open_topology(&self) -> Result<(Circuit, usize, usize), SpiceError> {
        let mut ckt = Circuit::new();
        let (inp, inn, out_p, out_n) = self.build_core(&mut ckt)?;
        ckt.add_vsource("VIP", inp, GND, Waveform::Dc(self.vcm))?;
        ckt.add_vsource("VIN", inn, GND, Waveform::Dc(self.vcm))?;
        self.resize(&mut ckt, &OtaParams::decode(&self.nominal()))?;
        Ok((ckt, out_p, out_n))
    }

    /// Instantiates the open-loop testbench for a candidate: clones the
    /// prebuilt template and re-sizes every device in place.
    fn build_open_loop(&self, p: &OtaParams) -> Result<(Circuit, usize, usize), SpiceError> {
        let mut ckt = self.template_open.clone();
        self.resize(&mut ckt, p)?;
        Ok((ckt, self.open_outs.0, self.open_outs.1))
    }

    /// Builds the closed-loop (resistive gain −1) step-testbench topology.
    fn build_closed_topology(&self) -> Result<(Circuit, usize, usize), SpiceError> {
        let step = 0.5;
        let mut ckt = Circuit::new();
        let (inp, inn, out_p, out_n) = self.build_core(&mut ckt)?;
        let vin_p = ckt.node("vin_p");
        let vin_n = ckt.node("vin_n");
        // Cross-coupled feedback: out_p -> inn, out_n -> inp. The network
        // is kept low-impedance (5 kΩ) so its pole with the input-pair
        // gate capacitance stays far above the closed-loop bandwidth.
        ckt.add_resistor("R1P", vin_p, inn, 5e3)?;
        ckt.add_resistor("R2P", out_p, inn, 5e3)?;
        ckt.add_resistor("R1N", vin_n, inp, 5e3)?;
        ckt.add_resistor("R2N", out_n, inp, 5e3)?;
        // Differential step at 100 ns with 1 ns edges.
        ckt.add_vsource(
            "VSP",
            vin_p,
            GND,
            Waveform::pulse(
                self.vcm,
                self.vcm + step / 2.0,
                100e-9,
                1e-9,
                1e-9,
                1.0,
                f64::INFINITY,
            ),
        )?;
        ckt.add_vsource(
            "VSN",
            vin_n,
            GND,
            Waveform::pulse(
                self.vcm,
                self.vcm - step / 2.0,
                100e-9,
                1e-9,
                1e-9,
                1.0,
                f64::INFINITY,
            ),
        )?;
        self.resize(&mut ckt, &OtaParams::decode(&self.nominal()))?;
        Ok((ckt, out_p, out_n))
    }

    /// Instantiates the closed-loop testbench for a candidate: clones the
    /// prebuilt template, re-sizes every device and re-targets the step
    /// sources in place.
    fn build_closed_loop(
        &self,
        p: &OtaParams,
        step: f64,
    ) -> Result<(Circuit, usize, usize), SpiceError> {
        let mut ckt = self.template_closed.clone();
        self.resize(&mut ckt, p)?;
        ckt.set_source_wave(
            "VSP",
            Waveform::pulse(
                self.vcm,
                self.vcm + step / 2.0,
                100e-9,
                1e-9,
                1e-9,
                1.0,
                f64::INFINITY,
            ),
        )?;
        ckt.set_source_wave(
            "VSN",
            Waveform::pulse(
                self.vcm,
                self.vcm - step / 2.0,
                100e-9,
                1e-9,
                1e-9,
                1.0,
                f64::INFINITY,
            ),
        )?;
        Ok((ckt, self.closed_outs.0, self.closed_outs.1))
    }

    /// Estimated differential output swing from operating-point headrooms.
    fn output_swing(&self, op: &OpPoint) -> f64 {
        let vdsat_p = op
            .mos_op("MP_ld2L")
            .map(|m| m.vdsat)
            .unwrap_or(1.0)
            .max(op.mos_op("MP_ld2R").map(|m| m.vdsat).unwrap_or(1.0));
        let vdsat_n = op
            .mos_op("MN_drvL")
            .map(|m| m.vdsat)
            .unwrap_or(1.0)
            .max(op.mos_op("MN_drvR").map(|m| m.vdsat).unwrap_or(1.0));
        2.0 * (self.tech.vdd - vdsat_p - vdsat_n).max(0.0)
    }
}

/// Constraint helper: "value must be at least limit" → `f = (limit − v)/scale`.
fn at_least(v: f64, limit: f64, scale: f64) -> f64 {
    (limit - v) / scale
}

/// Constraint helper: "value must be at most limit" → `f = (v − limit)/scale`.
fn at_most(v: f64, limit: f64, scale: f64) -> f64 {
    (v - limit) / scale
}

impl SizingProblem for FoldedCascodeOta {
    fn dim(&self) -> usize {
        20
    }

    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let u = 1e-6;
        let f = 1e-15;
        let mut lb = Vec::with_capacity(20);
        let mut ub = Vec::with_capacity(20);
        // L1..L7: 0.18–2 µm.
        for _ in 0..7 {
            lb.push(0.18 * u);
            ub.push(2.0 * u);
        }
        // W1..W7: 0.24–150 µm.
        for _ in 0..7 {
            lb.push(0.24 * u);
            ub.push(150.0 * u);
        }
        // N1, N2, N8, N9: 1–20.
        for _ in 0..4 {
            lb.push(1.0);
            ub.push(20.0);
        }
        // MCAP: 100–2000 fF; Cf: 100–10000 fF.
        lb.push(100.0 * f);
        ub.push(2000.0 * f);
        lb.push(100.0 * f);
        ub.push(10000.0 * f);
        (lb, ub)
    }

    fn num_constraints(&self) -> usize {
        10 + SAT_DEVICES.len()
    }

    fn name(&self) -> &str {
        "folded-cascode-ota"
    }

    fn variable_names(&self) -> Vec<String> {
        let mut names: Vec<String> = (1..=7).map(|i| format!("L{i}")).collect();
        names.extend((1..=7).map(|i| format!("W{i}")));
        names.extend(["N1", "N2", "N8", "N9", "MCAP", "Cf"].map(String::from));
        names
    }

    fn nominal(&self) -> Vec<f64> {
        self.nominal()
    }

    fn num_corners(&self) -> usize {
        self.corners.len()
    }

    fn corner_name(&self, k: usize) -> String {
        self.corners.corners[k].label()
    }

    fn evaluate_corner(&self, x: &[f64], k: usize) -> SpecResult {
        // Deterministic fault-plane scope: injection decisions are a pure
        // function of (plan seed, candidate bits, corner index) — identical
        // no matter which worker thread runs this corner. One scope spans
        // both analyses, so direct corner evaluation keeps the legacy
        // whole-corner solve numbering.
        let _scope = spice::fault::candidate_scope(spice::fault::candidate_key(x, k as u64));
        self.plane(k).evaluate_plane(x)
    }

    fn num_analyses(&self) -> usize {
        2
    }

    fn analysis_name(&self, a: usize) -> String {
        match a {
            0 => "open-loop".to_string(),
            1 => "closed-loop".to_string(),
            _ => panic!("folded-cascode OTA has 2 analyses, got index {a}"),
        }
    }

    fn evaluate_analysis(&self, x: &[f64], k: usize, a: usize) -> AnalysisSpec {
        // Same fault key as `evaluate_corner`: decisions depend only on
        // (plan seed, candidate bits, corner), so in `FaultSolves::All`
        // mode the analysis grid and the monolithic corner path see
        // identical injections. (Per-solve `Index` plans number solves
        // within each analysis scope rather than across the whole corner.)
        let _scope = spice::fault::candidate_scope(spice::fault::candidate_key(x, k as u64));
        let _tb = telemetry::span_with(telemetry::SpanId::Testbench, a as u64);
        let plane = self.plane(k);
        match a {
            0 => plane.open_loop_analysis(x),
            1 => plane.closed_loop_analysis(x),
            _ => panic!("folded-cascode OTA has 2 analyses, got index {a}"),
        }
    }

    fn evaluate(&self, x: &[f64]) -> SpecResult {
        opt::evaluate_worst_case(self, x)
    }
}

impl FoldedCascodeOta {
    /// Runs the full Eq. 9 measurement suite on this plane's corner — the
    /// single-scenario evaluation every corner of the plane shares,
    /// assembled from the two independent analysis units.
    fn evaluate_plane(&self, x: &[f64]) -> SpecResult {
        let m = SizingProblem::num_constraints(self);
        let ol = self.open_loop_analysis(x);
        if ol.failed {
            // A hard open-loop failure fails the whole corner before the
            // closed-loop testbench runs — the pre-split short-circuit,
            // preserved solve for solve.
            return AnalysisSpec::assemble(m, &[ol]);
        }
        let cl = self.closed_loop_analysis(x);
        AnalysisSpec::assemble(m, &[ol, cl])
    }

    /// Open-loop analysis unit: OP + three AC excitations. Owns the
    /// objective (power) and constraints 1, 3–7, 10–29 (gain, CMRR,
    /// saturation margins, PSRR, UGF, swing, phase margin). Simulator
    /// errors here are hard failures that fail the whole corner.
    fn open_loop_analysis(&self, x: &[f64]) -> AnalysisSpec {
        let p = OtaParams::decode(x);
        let hard = |e: &SpiceError, analysis: &str| {
            AnalysisSpec::hard_failed(Some(crate::diag_from_spice(e, analysis)))
        };

        let (mut ol, out_p, out_n) = match self.build_open_loop(&p) {
            Ok(v) => v,
            Err(e) => return hard(&e, "ota netlist"),
        };
        // Pooled workspaces (one per testbench topology): every candidate
        // reuses the recorded stamp→slot maps and factor storage.
        let mut ws_ol = spice::lease_workspace(&ol);
        let op = match spice::op_with_workspace(&ol, &self.opts, None, &mut ws_ol) {
            Ok(op) => op,
            Err(e) => return hard(&e, "ota op"),
        };

        // Power: total supply current × VDD (battery current is negative).
        let i_vdd = match op.source_current(&ol, "VDD") {
            Ok(i) => -i,
            Err(e) => return hard(&e, "ota power"),
        };
        // Bias reference branches that terminate at ideal sources also draw
        // from VDD in a real implementation; IB1/IB2 sink to ground already
        // through VDD, IB3/IB4 are modeled from the rail. Total power:
        let power = (i_vdd + 2.0 * self.iref) * self.tech.vdd;

        let freqs = spice::log_freqs(1e3, 1e9, 8);
        // Differential gain.
        ol.clear_ac_mags();
        let _ = ol.set_ac_mag("VIP", 0.5);
        let _ = ol.set_ac_mag("VIN", -0.5);
        let ac_dm = match spice::ac_with_workspace(&ol, &self.opts, &op, &freqs, &mut ws_ol) {
            Ok(ac) => ac,
            Err(e) => return hard(&e, "ota diff ac"),
        };
        let mag_dm = ac_dm.diff_magnitude(out_p, out_n);
        let ph_dm = ac_dm.diff_phase_unwrapped(out_p, out_n);
        let dc_gain_db = measure::db(mag_dm[0]);
        let ugf = measure::unity_gain_frequency(&freqs, &mag_dm);
        let pm = measure::phase_margin(&freqs, &mag_dm, &ph_dm);

        // Common-mode gain (CM in → CM out).
        ol.clear_ac_mags();
        let _ = ol.set_ac_mag("VIP", 1.0);
        let _ = ol.set_ac_mag("VIN", 1.0);
        let ac_cm = match spice::ac_with_workspace(&ol, &self.opts, &op, &freqs, &mut ws_ol) {
            Ok(ac) => ac,
            Err(e) => return hard(&e, "ota cm ac"),
        };
        let a_cm = (ac_cm.voltage(0, out_p) + ac_cm.voltage(0, out_n)).abs() / 2.0;
        let cmrr_db = dc_gain_db - measure::db(a_cm);

        // Supply gain (VDD ripple → CM out).
        ol.clear_ac_mags();
        let _ = ol.set_ac_mag("VDD", 1.0);
        let ac_ps = match spice::ac_with_workspace(&ol, &self.opts, &op, &freqs, &mut ws_ol) {
            Ok(ac) => ac,
            Err(e) => return hard(&e, "ota psrr ac"),
        };
        let a_ps = (ac_ps.voltage(0, out_p) + ac_ps.voltage(0, out_n)).abs() / 2.0;
        let psrr_db = dc_gain_db - measure::db(a_ps);

        // Saturation margins.
        let margins: Vec<f64> = SAT_DEVICES
            .iter()
            .map(|name| op.mos_op(name).map(|mo| mo.vsat_margin).unwrap_or(-1.0))
            .collect();
        let min_margin = margins.iter().cloned().fold(f64::INFINITY, f64::min);
        let swing = self.output_swing(&op);

        // This unit's slice of the Eq. 9 constraint vector, by global index.
        let mut constraints = Vec::with_capacity(7 + margins.len());
        // 1. DC gain > 60 dB.
        constraints.push((0, at_least(dc_gain_db, 60.0, 20.0)));
        // 3. CMRR > 80 dB.
        constraints.push((2, at_least(cmrr_db, 80.0, 40.0)));
        // 4. Saturation margin > 50 mV (worst device).
        constraints.push((3, at_least(min_margin, 0.05, 0.1)));
        // 5. PSRR > 80 dB.
        constraints.push((4, at_least(psrr_db, 80.0, 40.0)));
        // 6. Unity-gain frequency > 30 MHz.
        constraints.push((
            5,
            match ugf {
                Some(f) => at_least(f, 30e6, 30e6),
                None => 2.0,
            },
        ));
        // 7. Output swing > 2.4 V (differential).
        constraints.push((6, at_least(swing, 2.4, 1.0)));
        // 10. Phase margin > 60°.
        constraints.push((
            9,
            match pm {
                Some(deg) => at_least(deg, 60.0, 30.0),
                None => 2.0,
            },
        ));
        // 11–29. Per-device saturation-region requirements (margin > 0).
        for (i, margin) in margins.into_iter().enumerate() {
            constraints.push((10 + i, at_most(-margin, 0.0, 0.1)));
        }

        AnalysisSpec {
            objective: Some(power),
            constraints,
            failure: None,
            failed: false,
        }
    }

    /// Closed-loop analysis unit: output noise (in the configuration the
    /// amplifier is actually used in) and the step response. Owns
    /// constraints 2, 8, 9 (settling, noise, static error). Every
    /// simulator error here degrades softly into strong constraint
    /// violations — this unit never hard-fails the corner.
    fn closed_loop_analysis(&self, x: &[f64]) -> AnalysisSpec {
        let p = OtaParams::decode(x);
        let step = 0.5;
        let mut vnoise = f64::INFINITY;
        let (settle, static_err_pct) = match self.build_closed_loop(&p, step) {
            Ok((cl, cout_p, cout_n)) => {
                let mut ws_cl = spice::lease_workspace(&cl);
                if let Ok(op_cl) = spice::op_with_workspace(&cl, &self.opts, None, &mut ws_cl) {
                    let noise_freqs = spice::log_freqs(1e3, 1e8, 4);
                    if let Ok(nres) = spice::noise_with_workspace(
                        &cl,
                        &self.opts,
                        &op_cl,
                        cout_p,
                        cout_n,
                        &noise_freqs,
                        &mut ws_cl,
                    ) {
                        vnoise = nres.total_rms();
                    }
                }
                match spice::transient_with_workspace(&cl, &self.opts, 400e-9, 0.5e-9, &mut ws_cl) {
                    Ok(tr) => {
                        let wave: Vec<(f64, f64)> = tr
                            .times()
                            .iter()
                            .enumerate()
                            .map(|(i, &t)| (t, tr.voltage(i, cout_p) - tr.voltage(i, cout_n)))
                            .collect();
                        // Gain −1 with crossed outputs: the differential
                        // output equals +step in this orientation; measure
                        // against the actual final value for settling and
                        // against the ideal target for static error.
                        let target = step;
                        let v_final = wave.last().map(|p| p.1).unwrap_or(0.0);
                        let settle =
                            measure::settling_time(&wave, 101e-9, v_final, 0.01 * step.abs());
                        let err = 100.0 * ((v_final.abs() - target.abs()) / target).abs();
                        (settle, err)
                    }
                    Err(_) => (None, 100.0),
                }
            }
            Err(_) => (None, 100.0),
        };

        AnalysisSpec {
            objective: None,
            constraints: vec![
                // 2. Settling time < 30 ns (missing settle = strong
                //    violation).
                (
                    1,
                    match settle {
                        Some(ts) => at_most(ts, 30e-9, 30e-9),
                        None => 3.0,
                    },
                ),
                // 8. Output noise < 30 mV rms.
                (7, at_most(vnoise, 30e-3, 30e-3)),
                // 9. Static error < 0.1 %.
                (8, at_most(static_err_pct, 0.1, 0.2)),
            ],
            failure: None,
            failed: false,
        }
    }
}

/// Measured (not constraint-form) OTA performance, for reports and
/// examples.
#[derive(Debug, Clone)]
pub struct OtaReport {
    /// Static power \[W\].
    pub power: f64,
    /// DC differential gain \[dB\].
    pub dc_gain_db: f64,
    /// Unity-gain frequency \[Hz\].
    pub ugf: Option<f64>,
    /// Phase margin \[deg\].
    pub phase_margin: Option<f64>,
    /// CMRR \[dB\].
    pub cmrr_db: f64,
    /// PSRR \[dB\].
    pub psrr_db: f64,
    /// Integrated output noise \[V rms\].
    pub noise_rms: f64,
    /// Estimated differential output swing \[V\].
    pub swing: f64,
    /// Worst saturation margin \[V\].
    pub min_sat_margin: f64,
}

impl FoldedCascodeOta {
    /// Runs the measurement suite and returns raw performance numbers
    /// (a convenience view over the same analyses `evaluate` runs).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures instead of encoding them as penalty
    /// constraints.
    pub fn report(&self, x: &[f64]) -> Result<OtaReport, SpiceError> {
        let p = OtaParams::decode(x);
        let (mut ol, out_p, out_n) = self.build_open_loop(&p)?;
        // Same pooled-workspace rhythm as `evaluate`: all three AC sweeps
        // share one leased frequency-domain workspace per topology.
        let mut ws_ol = spice::lease_workspace(&ol);
        let op = spice::op_with_workspace(&ol, &self.opts, None, &mut ws_ol)?;
        let i_vdd = -op.source_current(&ol, "VDD")?;
        let power = (i_vdd + 2.0 * self.iref) * self.tech.vdd;
        let freqs = spice::log_freqs(1e3, 1e9, 8);
        ol.clear_ac_mags();
        ol.set_ac_mag("VIP", 0.5)?;
        ol.set_ac_mag("VIN", -0.5)?;
        let ac_dm = spice::ac_with_workspace(&ol, &self.opts, &op, &freqs, &mut ws_ol)?;
        let mag = ac_dm.diff_magnitude(out_p, out_n);
        let ph = ac_dm.diff_phase_unwrapped(out_p, out_n);
        ol.clear_ac_mags();
        ol.set_ac_mag("VIP", 1.0)?;
        ol.set_ac_mag("VIN", 1.0)?;
        let ac_cm = spice::ac_with_workspace(&ol, &self.opts, &op, &freqs, &mut ws_ol)?;
        ol.clear_ac_mags();
        ol.set_ac_mag("VDD", 1.0)?;
        let ac_ps = spice::ac_with_workspace(&ol, &self.opts, &op, &freqs, &mut ws_ol)?;
        ol.clear_ac_mags();
        // Closed-loop output noise (the spec's configuration).
        let (cl, cout_p, cout_n) = self.build_closed_loop(&p, 0.5)?;
        let mut ws_cl = spice::lease_workspace(&cl);
        let op_cl = spice::op_with_workspace(&cl, &self.opts, None, &mut ws_cl)?;
        let nres = spice::noise_with_workspace(
            &cl,
            &self.opts,
            &op_cl,
            cout_p,
            cout_n,
            &spice::log_freqs(1e3, 1e8, 4),
            &mut ws_cl,
        )?;
        let dc_gain_db = measure::db(mag[0]);
        let a_cm = (ac_cm.voltage(0, out_p) + ac_cm.voltage(0, out_n)).abs() / 2.0;
        let a_ps = (ac_ps.voltage(0, out_p) + ac_ps.voltage(0, out_n)).abs() / 2.0;
        let margins: Vec<f64> = SAT_DEVICES
            .iter()
            .map(|name| op.mos_op(name).map(|mo| mo.vsat_margin).unwrap_or(-1.0))
            .collect();
        Ok(OtaReport {
            power,
            dc_gain_db,
            ugf: measure::unity_gain_frequency(&freqs, &mag),
            phase_margin: measure::phase_margin(&freqs, &mag, &ph),
            cmrr_db: dc_gain_db - measure::db(a_cm),
            psrr_db: dc_gain_db - measure::db(a_ps),
            noise_rms: nres.total_rms(),
            swing: self.output_swing(&op),
            min_sat_margin: margins.iter().cloned().fold(f64::INFINITY, f64::min),
        })
    }
}

impl FoldedCascodeOta {
    /// Prints closed-loop step diagnostics (debugging aid).
    #[doc(hidden)]
    pub fn debug_closed_loop(&self, x: &[f64]) {
        let p = OtaParams::decode(x);
        let (cl, out_p, out_n) = self.build_closed_loop(&p, 0.5).expect("netlist");
        let inp = cl.find_node("inp").unwrap();
        let inn = cl.find_node("inn").unwrap();
        let tr = match spice::transient(&cl, &self.opts, 400e-9, 0.5e-9) {
            Ok(tr) => tr,
            Err(e) => {
                println!("transient failed: {e}");
                return;
            }
        };
        for &t in &[0.0, 99e-9, 110e-9, 130e-9, 160e-9, 200e-9, 300e-9, 399e-9] {
            let vd = tr.sample(out_p, t) - tr.sample(out_n, t);
            let vi = tr.sample(inp, t) - tr.sample(inn, t);
            let cm = 0.5 * (tr.sample(out_p, t) + tr.sample(out_n, t));
            println!(
                "t={:>6.0}ns  out_diff={vd:>9.5}  in_diff={vi:>10.6}  out_cm={cm:>8.5}",
                t * 1e9
            );
        }
    }

    /// Prints the operating point of a design — a debugging aid kept in the
    /// public API because sizing failures are far easier to diagnose from
    /// bias voltages than from constraint values.
    pub fn debug_op(&self, x: &[f64]) {
        let p = OtaParams::decode(x);
        let Ok((ol, _, _)) = self.build_open_loop(&p) else {
            println!("netlist construction failed");
            return;
        };
        match spice::op(&ol, &self.opts) {
            Ok(op) => {
                for node in [
                    "vdd", "tail", "fold_l", "srcp_l", "out1_l", "out1_r", "out_p", "out_n",
                    "vcmfb", "vsense", "vbp1", "vbp2", "vbn2", "vbn",
                ] {
                    if let Ok(id) = ol.find_node(node) {
                        println!("V({node}) = {:.4}", op.voltage(id));
                    }
                }
                let mut names: Vec<&String> = op.mos_ops().keys().collect();
                names.sort();
                for name in names {
                    let m = op.mos_ops()[name];
                    println!(
                        "{name:14} id={:>10.3e} vgs={:>7.3} vds={:>7.3} vdsat={:>6.3} margin={:>7.3} {:?}",
                        m.id, m.vgs, m.vds, m.vdsat, m.vsat_margin, m.region
                    );
                }
            }
            Err(e) => println!("op failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_match_table_one() {
        let ota = FoldedCascodeOta::new();
        let (lb, ub) = ota.bounds();
        assert_eq!(lb.len(), 20);
        assert_eq!(ub.len(), 20);
        assert!((lb[0] - 0.18e-6).abs() < 1e-12); // L lower
        assert!((ub[0] - 2.0e-6).abs() < 1e-12); // L upper
        assert!((lb[7] - 0.24e-6).abs() < 1e-12); // W lower
        assert!((ub[7] - 150e-6).abs() < 1e-12); // W upper
        assert_eq!(lb[14], 1.0); // N lower
        assert_eq!(ub[14], 20.0); // N upper
        assert!((lb[18] - 100e-15).abs() < 1e-24); // MCAP
        assert!((ub[19] - 10000e-15).abs() < 1e-24); // Cf
        assert_eq!(ota.num_constraints(), 29);
        assert_eq!(ota.variable_names()[14], "N1");
    }

    #[test]
    fn params_decode_rounds_multipliers() {
        let ota = FoldedCascodeOta::new();
        let mut x = ota.nominal();
        x[14] = 3.4;
        x[15] = 3.6;
        let p = OtaParams::decode(&x);
        assert_eq!(p.n1, 3.0);
        assert_eq!(p.n2, 4.0);
    }

    #[test]
    fn nominal_design_simulates_and_reports() {
        let ota = FoldedCascodeOta::new();
        let rep = ota.report(&ota.nominal()).expect("nominal must simulate");
        assert!(
            rep.power > 10e-6 && rep.power < 20e-3,
            "power {}",
            rep.power
        );
        assert!(rep.dc_gain_db > 40.0, "gain {}", rep.dc_gain_db);
        assert!(rep.ugf.is_some(), "must cross unity");
        assert!(rep.min_sat_margin > -0.5, "margins {}", rep.min_sat_margin);
    }

    #[test]
    fn evaluate_returns_29_constraints() {
        let ota = FoldedCascodeOta::new();
        let spec = ota.evaluate(&ota.nominal());
        assert_eq!(spec.constraints.len(), 29);
        assert!(spec.objective > 0.0);
        assert!(!spec.is_failure());
    }

    #[test]
    fn bad_design_is_penalized_not_crashing() {
        let ota = FoldedCascodeOta::new();
        let (lb, _) = ota.bounds();
        // Everything at the lower bound: minimum-size devices, starved amp.
        let spec = ota.evaluate(&lb);
        assert_eq!(spec.constraints.len(), 29);
        assert!(!spec.feasible(), "minimum-size design cannot meet Eq. 9");
    }

    #[test]
    fn constraint_helpers_signs() {
        assert!(at_least(10.0, 5.0, 1.0) < 0.0); // satisfied
        assert!(at_least(3.0, 5.0, 1.0) > 0.0); // violated
        assert!(at_most(3.0, 5.0, 1.0) < 0.0);
        assert!(at_most(7.0, 5.0, 1.0) > 0.0);
    }

    #[test]
    fn nominal_corner_is_bit_identical_to_legacy_path() {
        let legacy = FoldedCascodeOta::new();
        let cornered = FoldedCascodeOta::with_corners(CornerSet::pvt5());
        let x = legacy.nominal();
        let a = legacy.evaluate(&x);
        let b = cornered.evaluate_corner(&x, 0);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.constraints.len(), b.constraints.len());
        for (p, q) in a.constraints.iter().zip(&b.constraints) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn analysis_units_assemble_to_the_monolithic_corner() {
        // The analysis-grid contract: evaluating the open-loop and
        // closed-loop units independently and assembling their partials
        // reproduces the whole-corner evaluation bit for bit, on every
        // corner of the plane.
        let ota = FoldedCascodeOta::with_corners(CornerSet::pvt5());
        assert_eq!(SizingProblem::num_analyses(&ota), 2);
        assert_eq!(SizingProblem::analysis_name(&ota, 0), "open-loop");
        assert_eq!(SizingProblem::analysis_name(&ota, 1), "closed-loop");
        let m = SizingProblem::num_constraints(&ota);
        let x = ota.nominal();
        for k in 0..SizingProblem::num_corners(&ota) {
            let whole = ota.evaluate_corner(&x, k);
            let units = [
                ota.evaluate_analysis(&x, k, 0),
                ota.evaluate_analysis(&x, k, 1),
            ];
            let assembled = AnalysisSpec::assemble(m, &units);
            assert_eq!(
                whole.objective.to_bits(),
                assembled.objective.to_bits(),
                "corner {k} objective"
            );
            assert_eq!(whole.constraints.len(), assembled.constraints.len());
            for (i, (p, q)) in whole
                .constraints
                .iter()
                .zip(&assembled.constraints)
                .enumerate()
            {
                assert_eq!(p.to_bits(), q.to_bits(), "corner {k} constraint {i}");
            }
            assert_eq!(whole.failure, assembled.failure, "corner {k} diagnosis");
        }
    }

    #[test]
    fn post_layout_variant_scales_unknowns_and_simulates() {
        let pre = FoldedCascodeOta::new();
        let post = FoldedCascodeOta::post_layout();
        let n_pre = pre.template_open.num_unknowns();
        let n_post = post.template_open.num_unknowns();
        assert!(
            n_post >= 200 && n_post > 3 * n_pre,
            "post-layout open-loop testbench must reach mesh scale: {n_pre} -> {n_post}"
        );
        // The meshed testbench still biases up, and a candidate resize
        // (which refreshes the ladder shares in place) still simulates.
        let x = post.nominal();
        let p = OtaParams::decode(&x);
        let (ol, _, _) = post.build_open_loop(&p).expect("meshed netlist");
        let op = spice::op(&ol, &post.opts).expect("meshed op");
        let out_p = ol.find_node("out_p").unwrap();
        let v = op.voltage(out_p);
        assert!(v > 0.2 && v < post.tech.vdd, "out_p bias {v}");
        // Resizing a clone keeps the topology fingerprint (pooled solver
        // state stays shared across candidates).
        let (ol2, _, _) = post.build_open_loop(&p).expect("meshed netlist");
        assert_eq!(ol.topology_id(), ol2.topology_id());
    }

    #[test]
    fn five_corner_plane_evaluates_everywhere() {
        let ota = FoldedCascodeOta::with_corners(CornerSet::pvt5());
        assert_eq!(ota.num_corners(), 5);
        let x = ota.nominal();
        for k in 0..ota.num_corners() {
            let spec = ota.evaluate_corner(&x, k);
            assert_eq!(spec.constraints.len(), 29);
            assert!(
                !spec.is_failure(),
                "corner {} must simulate",
                ota.corner_name(k)
            );
        }
        // The sign-off view is the worst case over the plane: never better
        // than the nominal corner on any spec.
        let worst = ota.evaluate(&x);
        let nom = ota.evaluate_corner(&x, 0);
        assert!(!worst.is_failure());
        assert!(worst.objective >= nom.objective);
        for (w, n) in worst.constraints.iter().zip(&nom.constraints) {
            assert!(w >= n, "worst case can only tighten: {w} < {n}");
        }
    }
}
