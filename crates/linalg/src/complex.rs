//! Minimal complex arithmetic and a complex LU solver for AC analysis.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use linalg::C64;
///
/// let a = C64::new(1.0, 2.0);
/// let b = C64::new(3.0, -1.0);
/// let p = a * b;
/// assert_eq!(p, C64::new(5.0, 5.0));
/// assert!((a.abs() - 5.0_f64.sqrt()).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> C64 {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse.
    ///
    /// Returns infinities when `self` is zero, mirroring `f64` division.
    pub fn recip(self) -> C64 {
        let d = self.abs_sq();
        C64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// True if either component is NaN or infinite.
    pub fn is_non_finite(self) -> bool {
        !self.re.is_finite() || !self.im.is_finite()
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, r: C64) -> C64 {
        C64::new(self.re + r.re, self.im + r.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, r: C64) -> C64 {
        C64::new(self.re - r.re, self.im - r.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, r: C64) -> C64 {
        C64::new(
            self.re * r.re - self.im * r.im,
            self.re * r.im + self.im * r.re,
        )
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, s: f64) -> C64 {
        C64::new(self.re * s, self.im * s)
    }
}

impl Div for C64 {
    type Output = C64;
    fn div(self, r: C64) -> C64 {
        self * r.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, r: C64) {
        self.re += r.re;
        self.im += r.im;
    }
}

impl SubAssign for C64 {
    fn sub_assign(&mut self, r: C64) {
        self.re -= r.re;
        self.im -= r.im;
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl std::fmt::Display for C64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// Dense complex LU factorization with partial pivoting, used for the AC
/// small-signal MNA system `(G + jωC)·x = b`.
///
/// # Example
///
/// ```
/// use linalg::{C64, ComplexLu};
///
/// // [[1, i], [0, 2]] x = [1+i, 2] -> x = [1, 1]
/// let a = vec![
///     vec![C64::new(1.0, 0.0), C64::new(0.0, 1.0)],
///     vec![C64::new(0.0, 0.0), C64::new(2.0, 0.0)],
/// ];
/// let lu = ComplexLu::factor(a).expect("non-singular");
/// let x = lu.solve(&[C64::new(1.0, 1.0), C64::new(2.0, 0.0)]);
/// assert!((x[0] - C64::new(1.0, 0.0)).abs() < 1e-12);
/// assert!((x[1] - C64::new(1.0, 0.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ComplexLu {
    lu: Vec<Vec<C64>>,
    perm: Vec<usize>,
}

impl ComplexLu {
    /// Factors a square complex matrix given as rows.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FactorError::Singular`] when a pivot is numerically
    /// zero, and [`crate::FactorError::Shape`] for ragged or non-square
    /// input.
    pub fn factor(mut a: Vec<Vec<C64>>) -> Result<Self, crate::FactorError> {
        let n = a.len();
        if a.iter().any(|row| row.len() != n) {
            let cols = a.first().map_or(0, |r| r.len());
            return Err(crate::FactorError::Shape { rows: n, cols });
        }
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut p = k;
            let mut max = a[k][k].abs();
            for (i, row) in a.iter().enumerate().skip(k + 1) {
                let v = row[k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if !(max > 1e-300) {
                return Err(crate::FactorError::Singular { pivot: k });
            }
            if p != k {
                a.swap(p, k);
                perm.swap(p, k);
            }
            let pivot = a[k][k];
            for i in (k + 1)..n {
                let m = a[i][k] / pivot;
                a[i][k] = m;
                if m != C64::ZERO {
                    for j in (k + 1)..n {
                        let u = a[k][j];
                        a[i][j] -= m * u;
                    }
                }
            }
        }
        Ok(ComplexLu { lu: a, perm })
    }

    /// Factors a square complex matrix (given as row slices) into
    /// caller-owned storage, allocating nothing once the workspace has the
    /// right capacity. This is the dense fallback of the AC sweep: one
    /// refactorization per frequency point with **no matrix clone per
    /// point**. The elimination performs the same operations in the same
    /// order as [`ComplexLu::factor`], so the two paths produce
    /// bit-identical factors.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FactorError::Shape`] for ragged or non-square input
    /// and [`crate::FactorError::Singular`] when a pivot is numerically
    /// zero.
    pub fn factor_into(
        a: &[Vec<C64>],
        ws: &mut ComplexLuWorkspace,
    ) -> Result<(), crate::FactorError> {
        let n = a.len();
        if a.iter().any(|row| row.len() != n) {
            let cols = a.first().map_or(0, |r| r.len());
            return Err(crate::FactorError::Shape { rows: n, cols });
        }
        ws.reset(n);
        for (row, dst) in a.iter().zip(ws.lu.chunks_mut(n.max(1))) {
            dst.copy_from_slice(row);
        }
        ws.eliminate()
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.len()
    }

    /// Solves `A·x = b`, validating the right-hand side first.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FactorError::Shape`] if `b.len()` differs from the
    /// factored dimension.
    pub fn try_solve(&self, b: &[C64]) -> Result<Vec<C64>, crate::FactorError> {
        if b.len() != self.dim() {
            return Err(crate::FactorError::Shape {
                rows: b.len(),
                cols: self.dim(),
            });
        }
        Ok(self.solve(b))
    }

    /// Solves `A·X = B` column by column, where `B` is given as row slices,
    /// validating the shape first.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FactorError::Shape`] if `B` has a row count
    /// different from the factored dimension or ragged rows.
    pub fn try_solve_matrix(&self, b: &[Vec<C64>]) -> Result<Vec<Vec<C64>>, crate::FactorError> {
        let n = self.dim();
        let cols = b.first().map_or(0, |r| r.len());
        if b.len() != n || b.iter().any(|row| row.len() != cols) {
            return Err(crate::FactorError::Shape {
                rows: b.len(),
                cols,
            });
        }
        let mut out = vec![vec![C64::ZERO; cols]; n];
        let mut col = vec![C64::ZERO; n];
        for j in 0..cols {
            for (i, row) in b.iter().enumerate() {
                col[i] = row[j];
            }
            let x = self.solve(&col);
            for (i, xi) in x.into_iter().enumerate() {
                out[i][j] = xi;
            }
        }
        Ok(out)
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension; use
    /// [`ComplexLu::try_solve`] for a checked variant.
    pub fn solve(&self, b: &[C64]) -> Vec<C64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
        let mut x: Vec<C64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[i][j] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[i][j] * x[j];
            }
            x[i] = s / self.lu[i][i];
        }
        x
    }
}

/// Caller-owned storage for a dense complex LU factorization: the combined
/// `L`/`U` factors (flat row-major), the row permutation, the reciprocal
/// pivots, and the dimension. Mirrors [`crate::LuWorkspace`] for the AC
/// sweep's dense fallback: [`ComplexLu::factor_into`] refactors into the
/// same buffers every frequency point without allocating.
///
/// # Example
///
/// ```
/// use linalg::{C64, ComplexLu, ComplexLuWorkspace};
///
/// let a = vec![
///     vec![C64::new(1.0, 0.0), C64::new(0.0, 1.0)],
///     vec![C64::new(0.0, 0.0), C64::new(2.0, 0.0)],
/// ];
/// let mut ws = ComplexLuWorkspace::new(2);
/// let mut x = Vec::new();
/// for _ in 0..3 {
///     ComplexLu::factor_into(&a, &mut ws).expect("non-singular");
///     ws.solve_into(&[C64::new(1.0, 1.0), C64::new(2.0, 0.0)], &mut x).unwrap();
/// }
/// assert!((x[0] - C64::ONE).abs() < 1e-12 && (x[1] - C64::ONE).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ComplexLuWorkspace {
    /// Combined factors, row-major `n×n`.
    lu: Vec<C64>,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Reciprocal pivots (`1 / U[i][i]`), computed once during
    /// factorization.
    inv_diag: Vec<C64>,
    /// Scratch for the transpose solve's permutation scatter.
    scratch: Vec<C64>,
    /// Factored dimension.
    n: usize,
    /// True once `factor_into` has succeeded at the current dimension.
    factored: bool,
}

impl ComplexLuWorkspace {
    /// Creates a workspace sized for `n×n` systems. The workspace grows
    /// automatically if later used with a larger matrix.
    pub fn new(n: usize) -> Self {
        ComplexLuWorkspace {
            lu: vec![C64::ZERO; n * n],
            perm: (0..n).collect(),
            inv_diag: vec![C64::ZERO; n],
            scratch: Vec::new(),
            n,
            factored: false,
        }
    }

    /// Dimension of the (last) factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// True once a successful factorization is stored.
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// Resizes the internal buffers for an `n×n` system without shrinking
    /// capacity, invalidating any previous factorization.
    fn reset(&mut self, n: usize) {
        self.n = n;
        self.factored = false;
        self.lu.clear();
        self.lu.resize(n * n, C64::ZERO);
        self.perm.clear();
        self.perm.extend(0..n);
        self.inv_diag.clear();
        self.inv_diag.resize(n, C64::ZERO);
    }

    /// Partial-pivoting elimination over the dimension-`n` system already
    /// loaded into `self.lu`. Same pivot policy (largest magnitude, first
    /// on ties) and same operation order as [`ComplexLu::factor`].
    fn eliminate(&mut self) -> Result<(), crate::FactorError> {
        let n = self.n;
        let lu = &mut self.lu[..n * n];
        for k in 0..n {
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if !(max > 1e-300) {
                return Err(crate::FactorError::Singular { pivot: k });
            }
            if p != k {
                self.perm.swap(p, k);
                // p > k, so the two row slices are disjoint.
                let (top, bottom) = lu.split_at_mut(p * n);
                top[k * n..k * n + n].swap_with_slice(&mut bottom[..n]);
            }
            let inv_pivot = lu[k * n + k].recip();
            self.inv_diag[k] = inv_pivot;
            let (top, bottom) = lu.split_at_mut((k + 1) * n);
            let row_k = &top[k * n + k + 1..k * n + n];
            for i in (k + 1)..n {
                let row_i = &mut bottom[(i - k - 1) * n..(i - k) * n];
                // Same arithmetic as `ComplexLu::factor`'s `a[i][k] /
                // pivot` (complex division is multiplication by the
                // reciprocal).
                let m = row_i[k] * inv_pivot;
                row_i[k] = m;
                if m != C64::ZERO {
                    for (x, &u) in row_i[k + 1..].iter_mut().zip(row_k) {
                        *x -= m * u;
                    }
                }
            }
        }
        self.factored = true;
        Ok(())
    }

    /// Solves `A·x = b` with the stored factors, writing into `x` (resized,
    /// reusing capacity).
    ///
    /// # Errors
    ///
    /// Returns [`crate::FactorError::Shape`] if no successful factorization
    /// is stored or `b.len()` differs from the factored dimension.
    pub fn solve_into(&self, b: &[C64], x: &mut Vec<C64>) -> Result<(), crate::FactorError> {
        let n = self.n;
        if !self.factored || b.len() != n {
            return Err(crate::FactorError::Shape {
                rows: b.len(),
                cols: n,
            });
        }
        x.clear();
        x.extend(self.perm.iter().map(|&i| b[i]));
        // Forward substitution with unit L.
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s;
        }
        // Back substitution with U (reciprocal-pivot multiply matches the
        // owning path's division bit for bit).
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s * self.inv_diag[i];
        }
        Ok(())
    }

    /// Solves the *transposed* system `Aᵀ·y = b` with the stored factors —
    /// the dense fallback of the noise analysis' adjoint solve. With
    /// `P·A = L·U` the transpose is `Aᵀ = Uᵀ·Lᵀ·P`, so the solve is a
    /// forward substitution with `Uᵀ`, a back substitution with `Lᵀ`, and
    /// a final row-permutation scatter. No transposed matrix is built.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FactorError::Shape`] if no successful factorization
    /// is stored or `b.len()` differs from the factored dimension.
    pub fn solve_transpose_into(
        &mut self,
        b: &[C64],
        y: &mut Vec<C64>,
    ) -> Result<(), crate::FactorError> {
        let n = self.n;
        if !self.factored || b.len() != n {
            return Err(crate::FactorError::Shape {
                rows: b.len(),
                cols: n,
            });
        }
        let w = &mut self.scratch;
        w.clear();
        w.resize(n, C64::ZERO);
        // Forward substitution with Uᵀ (lower triangular).
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.lu[j * n + i] * w[j];
            }
            w[i] = s * self.inv_diag[i];
        }
        // Back substitution with Lᵀ (unit upper).
        for i in (0..n).rev() {
            let mut s = w[i];
            for j in (i + 1)..n {
                s -= self.lu[j * n + i] * w[j];
            }
            w[i] = s;
        }
        // Undo the row permutation: Aᵀ·y = b with y = Pᵀ·w.
        y.clear();
        y.resize(n, C64::ZERO);
        for (i, &pi) in self.perm.iter().enumerate() {
            y[pi] = w[i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(2.0, -3.0);
        assert_eq!(a + C64::ZERO, a);
        assert_eq!(a * C64::ONE, a);
        assert_eq!(a - a, C64::ZERO);
        assert_eq!(C64::I * C64::I, C64::new(-1.0, 0.0));
        let r = a * a.recip();
        assert!((r - C64::ONE).abs() < 1e-15);
    }

    #[test]
    fn conj_and_arg() {
        let a = C64::new(0.0, 1.0);
        assert_eq!(a.conj(), C64::new(0.0, -1.0));
        assert!((a.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn complex_solve_roundtrip() {
        let a = vec![
            vec![C64::new(2.0, 1.0), C64::new(-1.0, 0.5)],
            vec![C64::new(0.0, -1.0), C64::new(3.0, 2.0)],
        ];
        let b = [C64::new(1.0, 0.0), C64::new(0.0, 1.0)];
        let lu = ComplexLu::factor(a.clone()).unwrap();
        let x = lu.solve(&b);
        // Verify A x == b.
        for i in 0..2 {
            let mut s = C64::ZERO;
            for j in 0..2 {
                s += a[i][j] * x[j];
            }
            assert!((s - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn complex_singular_detected() {
        let a = vec![
            vec![C64::new(1.0, 1.0), C64::new(2.0, 2.0)],
            vec![C64::new(2.0, 2.0), C64::new(4.0, 4.0)],
        ];
        assert!(ComplexLu::factor(a).is_err());
    }

    #[test]
    fn pivoting_in_complex_solver() {
        let a = vec![vec![C64::ZERO, C64::ONE], vec![C64::ONE, C64::ZERO]];
        let lu = ComplexLu::factor(a).unwrap();
        let x = lu.solve(&[C64::real(3.0), C64::real(4.0)]);
        assert!((x[0] - C64::real(4.0)).abs() < 1e-15);
        assert!((x[1] - C64::real(3.0)).abs() < 1e-15);
    }
}
