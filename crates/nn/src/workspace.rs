//! Preallocated training state: forward caches, gradient buffers, and
//! scratch matrices, reused across every epoch of a training loop.
//!
//! The original training path allocated roughly a dozen matrices per
//! gradient step (forward caches, activation-derivative products,
//! transposes, Adam update matrices). A [`TrainWorkspace`] owns all of
//! those buffers; with it, one full forward + backward + Adam step
//! performs **zero heap allocations** once the buffers are warm. Combined
//! with the `matmul_nt_into`/`matmul_tn_into` kernels of `linalg`, every
//! pass is batched matrix-matrix work (GEMM-shaped), never per-sample
//! vector churn.

use linalg::Matrix;

use crate::mlp::{Gradients, Mlp};
use crate::Adam;

/// Reusable buffers for [`Mlp::forward_ws`] / [`Mlp::backward_ws`] and
/// [`crate::train_step_mse_ws`]. One workspace serves one network shape at
/// a time and adapts automatically when handed a different one.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use nn::{Activation, Adam, Mlp, TrainWorkspace};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut net = Mlp::new(&[1, 16, 1], Activation::Tanh, &mut rng);
/// let x = Matrix::from_fn(32, 1, |i, _| i as f64 / 32.0);
/// let y = x.map(|v| (2.0 * v).sin());
/// let mut adam = Adam::new(1e-2);
/// let mut ws = TrainWorkspace::new();
/// for _ in 0..800 {
///     nn::train_step_mse_ws(&mut net, &mut adam, &x, &y, &mut ws);
/// }
/// let pred = net.forward(&x);
/// assert!(nn::mse(&pred, &y) < 5e-3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrainWorkspace {
    /// `acts[k]` is the activation entering layer `k`; `acts[L]` is the
    /// network output.
    pub(crate) acts: Vec<Matrix>,
    /// Pre-activation values per hidden layer.
    pub(crate) zs: Vec<Matrix>,
    /// Current backpropagated `∂L/∂z`.
    pub(crate) delta: Matrix,
    /// Double buffer for propagating `delta` through a layer.
    pub(crate) delta_tmp: Matrix,
    /// Parameter gradients, shaped like the network.
    pub(crate) grads: Gradients,
    /// Scratch for loss gradients (used by `train_step_mse_ws`).
    pub(crate) grad_out: Matrix,
}

impl TrainWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the per-layer buffers to match `net` (no-op when they already
    /// do).
    fn ensure(&mut self, net: &Mlp) {
        let layers = net.num_layers();
        self.acts.resize_with(layers + 1, || Matrix::zeros(0, 0));
        self.zs
            .resize_with(layers.saturating_sub(1), || Matrix::zeros(0, 0));
        self.grads.dw.resize_with(layers, || Matrix::zeros(0, 0));
        self.grads.db.resize_with(layers, Vec::new);
    }

    /// The parameter gradients of the last [`Mlp::backward_ws`] call.
    pub fn gradients(&self) -> &Gradients {
        &self.grads
    }

    /// Mutable access (for gradient clipping before the optimizer step).
    pub fn gradients_mut(&mut self) -> &mut Gradients {
        &mut self.grads
    }

    /// The `∂L/∂input` batch of the last [`Mlp::backward_ws`] call.
    pub fn input_gradient(&self) -> &Matrix {
        &self.delta
    }

    /// The network output of the last [`Mlp::forward_ws`] call.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been recorded yet.
    pub fn output(&self) -> &Matrix {
        assert!(
            !self.acts.is_empty(),
            "no forward pass recorded in this workspace"
        );
        &self.acts[self.acts.len() - 1]
    }
}

/// Adds the layer bias to every row of `y`.
#[inline]
fn add_bias(y: &mut Matrix, b: &[f64]) {
    for i in 0..y.rows() {
        for (v, bj) in y.row_mut(i).iter_mut().zip(b) {
            *v += bj;
        }
    }
}

impl Mlp {
    /// Forward pass on a batch using preallocated buffers; the output and
    /// the cache needed by [`Mlp::backward_ws`] land in `ws`. Allocation
    /// free once `ws` is warm.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the input dimensionality.
    pub fn forward_ws<'w>(&self, x: &Matrix, ws: &'w mut TrainWorkspace) -> &'w Matrix {
        assert_eq!(x.cols(), self.input_dim(), "input width mismatch");
        ws.ensure(self);
        let last = self.num_layers() - 1;
        ws.acts[0].copy_from(x);
        for k in 0..=last {
            let (w, b) = self.layer(k);
            if k < last {
                // Hidden layer: keep z for the backward pass, write the
                // activation into acts[k + 1].
                let z = &mut ws.zs[k];
                ws.acts[k].matmul_nt_into(w, z);
                add_bias(z, b);
                let out = &mut ws.acts[k + 1];
                out.copy_from(z);
                let act = self.activation();
                out.map_inplace(|v| act.apply(v));
            } else {
                // Linear output layer straight into acts[last + 1].
                let (head, tail) = ws.acts.split_at_mut(k + 1);
                head[k].matmul_nt_into(w, &mut tail[0]);
                add_bias(&mut tail[0], b);
            }
        }
        ws.output()
    }

    /// Reverse-mode pass over the state of the last [`Mlp::forward_ws`]
    /// call: fills `ws.gradients()` and `ws.input_gradient()` without
    /// allocating. Performs the same operations in the same order as
    /// [`Mlp::backward`].
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match the cached batch.
    pub fn backward_ws(&self, ws: &mut TrainWorkspace, grad_out: &Matrix) {
        let last = self.num_layers() - 1;
        assert_eq!(
            grad_out.cols(),
            self.output_dim(),
            "gradient width mismatch"
        );
        assert_eq!(
            grad_out.rows(),
            ws.acts[0].rows(),
            "gradient batch mismatch"
        );
        ws.delta.copy_from(grad_out);
        for k in (0..=last).rev() {
            if k < last {
                // Pass through the activation derivative, elementwise.
                let z = &ws.zs[k];
                let act = self.activation();
                let delta = &mut ws.delta;
                for (d, &zv) in delta.as_mut_slice().iter_mut().zip(z.as_slice()) {
                    *d *= act.derivative(zv);
                }
            }
            let x_in = &ws.acts[k];
            ws.delta.matmul_tn_into(x_in, &mut ws.grads.dw[k]);
            let db = &mut ws.grads.db[k];
            db.clear();
            db.resize(ws.delta.cols(), 0.0);
            for i in 0..ws.delta.rows() {
                for (s, &d) in db.iter_mut().zip(ws.delta.row(i)) {
                    *s += d;
                }
            }
            // Propagate to the layer input.
            let (w, _) = self.layer(k);
            ws.delta.matmul_into(w, &mut ws.delta_tmp);
            std::mem::swap(&mut ws.delta, &mut ws.delta_tmp);
        }
    }
}

/// One full-batch MSE gradient step using preallocated buffers: forward,
/// backward and Adam update with zero per-step allocations. Returns the
/// pre-step loss. The workspace-free equivalent is
/// [`crate::train_step_mse`].
pub fn train_step_mse_ws(
    net: &mut Mlp,
    adam: &mut Adam,
    x: &Matrix,
    y: &Matrix,
    ws: &mut TrainWorkspace,
) -> f64 {
    let mut grad_out = std::mem::take(&mut ws.grad_out);
    net.forward_ws(x, ws);
    let pred = ws.output();
    let loss = crate::mse(pred, y);
    // grad = 2(pred − target)/n, written into the reusable buffer.
    let n = (pred.rows() * pred.cols()) as f64;
    grad_out.reshape_zeroed(pred.rows(), pred.cols());
    for ((g, &p), &t) in grad_out
        .as_mut_slice()
        .iter_mut()
        .zip(pred.as_slice())
        .zip(y.as_slice())
    {
        *g = 2.0 * (p - t) / n;
    }
    net.backward_ws(ws, &grad_out);
    ws.grad_out = grad_out;
    adam.step(net, &ws.grads);
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;
    use rand::{rngs::StdRng, SeedableRng};

    fn small_net() -> Mlp {
        let mut rng = StdRng::seed_from_u64(3);
        Mlp::new(&[3, 5, 4, 2], Activation::Tanh, &mut rng)
    }

    #[test]
    fn forward_ws_matches_forward() {
        let net = small_net();
        let x = Matrix::from_fn(6, 3, |i, j| (i as f64 - j as f64) * 0.2);
        let y = net.forward(&x);
        let mut ws = TrainWorkspace::new();
        let y_ws = net.forward_ws(&x, &mut ws).clone();
        assert_eq!(y, y_ws);
        // Reuse with a different batch size.
        let x2 = Matrix::from_fn(2, 3, |i, j| (i * j) as f64 * 0.1);
        let y2 = net.forward(&x2);
        assert_eq!(&y2, net.forward_ws(&x2, &mut ws));
    }

    #[test]
    fn backward_ws_matches_backward() {
        let net = small_net();
        let x = Matrix::from_fn(4, 3, |i, j| ((i + 2 * j) as f64).sin());
        let grad_out = Matrix::from_fn(4, 2, |i, j| (i as f64 + 1.0) * (j as f64 - 0.5));
        let (_, cache) = net.forward_cached(&x);
        let (grads, dx) = net.backward(&cache, &grad_out);
        let mut ws = TrainWorkspace::new();
        net.forward_ws(&x, &mut ws);
        net.backward_ws(&mut ws, &grad_out);
        for k in 0..net.num_layers() {
            assert_eq!(grads.dw[k], ws.gradients().dw[k], "dW[{k}]");
            assert_eq!(grads.db[k], ws.gradients().db[k], "db[{k}]");
        }
        assert_eq!(dx, *ws.input_gradient());
    }

    #[test]
    fn train_step_ws_matches_allocating_path() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net_a = Mlp::new(&[2, 8, 1], Activation::Relu, &mut rng);
        let mut net_b = net_a.clone();
        let x = Matrix::from_fn(10, 2, |i, j| (i as f64 * 0.3 + j as f64).cos());
        let y = Matrix::from_fn(10, 1, |i, _| (i as f64 * 0.1).sin());
        let mut adam_a = Adam::new(1e-2);
        let mut adam_b = Adam::new(1e-2);
        let mut ws = TrainWorkspace::new();
        for _ in 0..25 {
            let la = crate::train_step_mse(&mut net_a, &mut adam_a, &x, &y);
            let lb = train_step_mse_ws(&mut net_b, &mut adam_b, &x, &y, &mut ws);
            assert!((la - lb).abs() < 1e-12, "losses diverged: {la} vs {lb}");
        }
        assert_eq!(net_a.forward(&x), net_b.forward(&x));
    }
}
