//! Criterion micro-benchmarks of the surrogate substrates: one critic
//! training pass, one actor training pass, one GP fit — the per-iteration
//! "modeling time" ingredients of the paper's runtime tables.

use criterion::{criterion_group, criterion_main, Criterion};
use dnn_opt::{Actor, Critic, DnnOptConfig};
use gp::{GpRegressor, RbfKernel};
use linalg::Matrix;
use opt::Fom;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn synth(n: usize, d: usize, m: usize, rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let xs: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| rng.gen()).collect()).collect();
    let fs: Vec<Vec<f64>> = xs
        .iter()
        .map(|x| {
            (0..m)
                .map(|k| x.iter().map(|v| (v - 0.1 * k as f64).powi(2)).sum::<f64>())
                .collect()
        })
        .collect();
    (xs, fs)
}

fn bench_models(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let (xs, fs) = synth(150, 20, 30, &mut rng);
    let cfg = DnnOptConfig::default();

    c.bench_function("critic_train_n150_d20_m30", |b| {
        b.iter(|| Critic::train(&cfg, &xs, &fs, &mut rng))
    });

    let critic = Critic::train(&cfg, &xs, &fs, &mut rng);
    let fom = Fom::uniform(1.0, 29);
    let elite: Vec<Vec<f64>> = xs[..10].to_vec();
    c.bench_function("actor_train_elite10", |b| {
        b.iter(|| {
            Actor::train(&cfg, &critic, &fom, &elite, &vec![0.0; 20], &vec![1.0; 20], &mut rng)
        })
    });

    c.bench_function("gp_fit_n200_d20", |b| {
        let x = Matrix::from_fn(200, 20, |_, _| rng.gen());
        let y: Vec<f64> = (0..200).map(|_| rng.gen()).collect();
        b.iter(|| {
            GpRegressor::fit(x.clone(), y.clone(), RbfKernel::isotropic(20, 0.5, 1.0), 1e-6)
                .unwrap()
        })
    });

    c.bench_function("gp_predict_n200", |b| {
        let x = Matrix::from_fn(200, 20, |_, _| rng.gen());
        let y: Vec<f64> = (0..200).map(|_| rng.gen()).collect();
        let gp =
            GpRegressor::fit(x, y, RbfKernel::isotropic(20, 0.5, 1.0), 1e-6).unwrap();
        let q: Vec<f64> = (0..20).map(|_| rng.gen()).collect();
        b.iter(|| gp.predict(&q))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_models
}
criterion_main!(benches);
