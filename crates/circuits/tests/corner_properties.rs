//! Property-based sanity checks on the PVT corner physics.
//!
//! Two invariants anchor the scenario plane to silicon reality:
//!
//! 1. **Corner ordering** — a slow-silicon/hot device can never out-drive
//!    a fast-silicon/cold device of the same geometry at full gate drive:
//!    the mobility derating (process `kp` scale × `(T_NOM/T)^1.5`)
//!    dominates the threshold shift whenever the overdrive is healthy.
//! 2. **Nominal identity** — the nominal corner is a bitwise no-op: model
//!    cards, supplies and large-signal evaluations are exactly the legacy
//!    nominal path (the circuit-level twins of this property live in each
//!    testbench's `nominal_corner_is_bit_identical_to_legacy_path` test).

use circuits::tech::{tech_180nm, tech_advanced, Corner, ProcessCorner, TEMP_COLD, TEMP_HOT};
use proptest::prelude::*;
use spice::mos::eval_mos;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SS silicon at the hot extreme never beats FF silicon at the cold
    /// extreme on drive current, for any shared geometry, in either
    /// technology and either polarity.
    #[test]
    fn slow_hot_never_outdrives_fast_cold(
        w_um in 0.3f64..60.0,
        l_scale in 1.0f64..20.0,
        m in 1.0f64..16.0,
        adv in 0usize..2,
        pol in 0usize..2,
    ) {
        let (advanced, pmos) = (adv == 1, pol == 1);
        let tech = if advanced { tech_advanced() } else { tech_180nm() };
        let ss_hot = tech.at_corner(&Corner::new(ProcessCorner::SS, 1.0, TEMP_HOT));
        let ff_cold = tech.at_corner(&Corner::new(ProcessCorner::FF, 1.0, TEMP_COLD));
        let w = w_um * 1e-6;
        let l = tech.l_min * l_scale;
        // Full gate drive at the nominal supply, same bias for both.
        let (vgs, vds) = if pmos { (-tech.vdd, -tech.vdd) } else { (tech.vdd, tech.vdd) };
        let (card_slow, card_fast) = if pmos {
            (&ss_hot.pmos, &ff_cold.pmos)
        } else {
            (&ss_hot.nmos, &ff_cold.nmos)
        };
        let id_slow = eval_mos(card_slow, w, l, m, vgs, vds, 0.0).id.abs();
        let id_fast = eval_mos(card_fast, w, l, m, vgs, vds, 0.0).id.abs();
        prop_assert!(
            id_slow < id_fast,
            "SS/hot {id_slow:e} must trail FF/cold {id_fast:e} (w={w:e} l={l:e} m={m})"
        );
    }

    /// Evaluating a device on the nominal-corner technology is bit-identical
    /// to the legacy (un-cornered) card at every bias point.
    #[test]
    fn nominal_corner_devices_are_bit_identical(
        w_um in 0.3f64..60.0,
        l_scale in 1.0f64..20.0,
        vgs in -2.0f64..2.0,
        vds in -2.0f64..2.0,
        vbs in -0.5f64..0.0,
        adv in 0usize..2,
    ) {
        let tech = if adv == 1 { tech_advanced() } else { tech_180nm() };
        let nominal = tech.at_corner(&Corner::nominal());
        let w = w_um * 1e-6;
        let l = tech.l_min * l_scale;
        for (legacy, corner) in [(&tech.nmos, &nominal.nmos), (&tech.pmos, &nominal.pmos)] {
            let a = eval_mos(legacy, w, l, 1.0, vgs, vds, vbs);
            let b = eval_mos(corner, w, l, 1.0, vgs, vds, vbs);
            prop_assert_eq!(a.id.to_bits(), b.id.to_bits());
            prop_assert_eq!(a.gm.to_bits(), b.gm.to_bits());
            prop_assert_eq!(a.gds.to_bits(), b.gds.to_bits());
            prop_assert_eq!(a.gmb.to_bits(), b.gmb.to_bits());
            prop_assert_eq!(a.vth.to_bits(), b.vth.to_bits());
        }
        prop_assert_eq!(tech.vdd.to_bits(), nominal.vdd.to_bits());
    }

    /// Heating a card monotonically weakens its full-drive current (the
    /// mobility exponent dominates at healthy overdrive), for any process
    /// flavor.
    #[test]
    fn drive_current_falls_monotonically_with_temperature(
        w_um in 0.3f64..60.0,
        t_lo in 233.15f64..390.0,
        dt in 5.0f64..80.0,
        proc_idx in 0usize..5,
    ) {
        let procs = [
            ProcessCorner::TT,
            ProcessCorner::FF,
            ProcessCorner::SS,
            ProcessCorner::SF,
            ProcessCorner::FS,
        ];
        let tech = tech_180nm();
        let cool = tech.at_corner(&Corner::new(procs[proc_idx], 1.0, t_lo));
        let warm = tech.at_corner(&Corner::new(procs[proc_idx], 1.0, t_lo + dt));
        let w = w_um * 1e-6;
        let id_cool = eval_mos(&cool.nmos, w, tech.l_min, 1.0, tech.vdd, tech.vdd, 0.0).id;
        let id_warm = eval_mos(&warm.nmos, w, tech.l_min, 1.0, tech.vdd, tech.vdd, 0.0).id;
        prop_assert!(id_warm < id_cool, "{id_warm} !< {id_cool} at {t_lo}+{dt}K");
    }
}
