//! Parameterized analog circuits with full measurement extraction — the six
//! sizing problems of the DNN-Opt paper.
//!
//! Small building blocks (180nm-class, paper §III-A):
//! - [`FoldedCascodeOta`] — Table I / Eq. 9 (20 variables, 29 constraints)
//!
//! All problems implement [`opt::SizingProblem`], so every optimizer in the
//! workspace (including DNN-Opt) runs on them unchanged.

pub mod measure;
pub mod mesh;
pub mod parasitics;
pub mod tech;

mod comparator;
mod ctle;
mod inverter_chain;
mod ldo;
mod level_shifter;
mod ota;

pub use comparator::{LatchParams, StrongArmLatch};
pub use ctle::Ctle;
pub use inverter_chain::InverterChain;
pub use ldo::Ldo;
pub use level_shifter::LevelShifter;
pub use ota::{FoldedCascodeOta, OtaParams, OtaReport};

/// Converts a simulator error into the optimizer's evaluation-level
/// failure diagnosis: solver failures map one-to-one onto the taxonomy
/// (kind, ladder stage, retry budget, injected flag); everything else
/// (netlist construction, unknown devices, bad analysis windows) is a
/// [`opt::FailureKind::Setup`] failure tagged with `analysis` — the
/// testbench phase that was running when the error surfaced.
pub fn diag_from_spice(e: &spice::SpiceError, analysis: &str) -> opt::FailureDiag {
    match e.failure_diag() {
        Some(d) => opt::FailureDiag {
            kind: match d.kind {
                spice::FailureKind::Singular => opt::FailureKind::Singular,
                spice::FailureKind::NoConvergence => opt::FailureKind::NoConvergence,
                spice::FailureKind::NanResidual => opt::FailureKind::NanResidual,
                spice::FailureKind::StepUnderflow => opt::FailureKind::StepUnderflow,
            },
            analysis: format!("{analysis}: {}", d.analysis),
            stage: match d.stage {
                spice::LadderStage::PlainNr => opt::RecoveryStage::PlainNr,
                spice::LadderStage::GminStepping => opt::RecoveryStage::GminStepping,
                spice::LadderStage::SourceStepping => opt::RecoveryStage::SourceStepping,
                spice::LadderStage::StepHalving => opt::RecoveryStage::StepHalving,
                spice::LadderStage::SmallSignal => opt::RecoveryStage::SmallSignal,
            },
            iterations: d.iterations,
            halvings: d.halvings,
            injected: d.injected,
        },
        None => opt::FailureDiag::setup(format!("{analysis}: {e}")),
    }
}

#[cfg(test)]
mod diag_tests {
    use super::*;

    #[test]
    fn solver_errors_map_one_to_one() {
        let e = spice::SpiceError::Solver(spice::FailureDiag {
            kind: spice::FailureKind::NanResidual,
            analysis: "dc operating point",
            stage: spice::LadderStage::SourceStepping,
            iterations: 77,
            halvings: 0,
            injected: true,
        });
        let d = diag_from_spice(&e, "ota dc");
        assert_eq!(d.kind, opt::FailureKind::NanResidual);
        assert_eq!(d.stage, opt::RecoveryStage::SourceStepping);
        assert_eq!(d.iterations, 77);
        assert!(d.injected);
        assert!(d.analysis.contains("ota dc"));
        assert!(d.analysis.contains("dc operating point"));
    }

    #[test]
    fn non_solver_errors_become_setup_failures() {
        let e = spice::SpiceError::BadValue {
            device: "M1".into(),
            reason: "negative width".into(),
        };
        let d = diag_from_spice(&e, "netlist build");
        assert_eq!(d.kind, opt::FailureKind::Setup);
        assert_eq!(d.stage, opt::RecoveryStage::None);
        assert!(d.analysis.contains("M1"));
    }

    #[test]
    fn ac_singularities_map_to_small_signal_stage() {
        let e = spice::SpiceError::SingularMatrix { analysis: "ac" };
        let d = diag_from_spice(&e, "open-loop ac");
        assert_eq!(d.kind, opt::FailureKind::Singular);
        assert_eq!(d.stage, opt::RecoveryStage::SmallSignal);
    }
}
