//! Telemetry-plane acceptance suite.
//!
//! Pins the three contracts the observability layer makes:
//!
//! 1. **Aggregation core** — log2-bucket histograms have exact power-of-two
//!    boundaries and shard merging is associative (proptest), so per-worker
//!    shards can be merged in any order without changing the summary.
//! 2. **Span accounting** — span counts over the hierarchical evaluation
//!    grid are identical at 1/2/7 pool threads, nesting depth returns to
//!    zero, and the hierarchy reaches ≥ 5 levels.
//! 3. **Neutrality** — a full DNN-Opt run's history is bit-identical with
//!    tracing off and with a Chrome event sink hot, at 1 and 2 threads:
//!    telemetry reads clocks but never feeds numerics.
//!
//! Plus the per-analysis failure attribution the unit grid carries into
//! [`opt::RobustnessReport::by_analysis`].

use std::sync::Mutex;

use circuits::tech::CornerSet;
use circuits::FoldedCascodeOta;
use dnn_opt::{DnnOpt, DnnOptConfig};
use opt::{parallel, Evaluator, Fom, Optimizer, RunResult, SizingProblem, StopPolicy};
use proptest::prelude::*;
use spice::fault::{self, FaultKind, FaultPlan, FaultSolves};
use telemetry::{Metric, SinkKind, SpanId};

/// Telemetry sinks/shards, the fault plan and the thread-count override
/// are process-wide: every stateful test holds this lock for its whole
/// body so concurrent test threads never observe each other's state.
static LOCK: Mutex<()> = Mutex::new(());

/// RAII cleanup: disables telemetry and removes any fault plan even when
/// an assertion panics mid-test.
struct Scoped;

impl Drop for Scoped {
    fn drop(&mut self) {
        telemetry::install(None);
        telemetry::reset();
        fault::install(None);
        parallel::set_max_threads(0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every value lands in the bucket whose `[floor, 2·floor)` range
    /// contains it (bucket 0 is the exact value 0; the last bucket clamps).
    #[test]
    fn histogram_buckets_bound_their_values(v in 0u64..u64::MAX) {
        let b = telemetry::bucket_of(v);
        prop_assert!(b < telemetry::HIST_BUCKETS);
        prop_assert!(telemetry::bucket_floor(b) <= v.max(1) || v == 0);
        if v > 0 && b < telemetry::HIST_BUCKETS - 1 {
            prop_assert!(telemetry::bucket_floor(b) <= v);
            prop_assert!(v < 2 * telemetry::bucket_floor(b));
        }
        if v == 0 {
            prop_assert_eq!(b, 0);
        }
    }

    /// Merging shard histograms is associative and order-independent, and
    /// always agrees with observing the concatenated stream directly —
    /// the property that makes lock-free per-worker shards mergeable.
    #[test]
    fn histogram_merge_is_associative(
        xs in proptest::collection::vec(0u64..1_000_000_000, 0..24),
        ys in proptest::collection::vec(0u64..1_000_000_000, 0..24),
        zs in proptest::collection::vec(0u64..1_000_000_000, 0..24),
    ) {
        let observe = |vals: &[u64]| {
            let mut h = telemetry::Histogram::new();
            for &v in vals {
                h.observe(v);
            }
            h
        };
        let (a, b, c) = (observe(&xs), observe(&ys), observe(&zs));
        // (a ⊕ b) ⊕ c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut right_tail = b;
        right_tail.merge(&c);
        let mut right = a;
        right.merge(&right_tail);
        prop_assert_eq!(left, right);
        // Both equal the direct observation of every value.
        let mut all = xs.clone();
        all.extend(&ys);
        all.extend(&zs);
        prop_assert_eq!(left, observe(&all));
        prop_assert_eq!(left.count, all.len() as u64);
    }
}

/// Span counts over the candidate×corner×analysis grid must not depend on
/// the worker-pool thread count, the nesting depth must unwind to zero,
/// and the hierarchy must reach at least five levels
/// (EvalBatch→Candidate→Corner→Analysis→Testbench→Solve).
#[test]
fn span_accounting_is_thread_count_invariant() {
    let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = Scoped;
    let ota = FoldedCascodeOta::with_corners(CornerSet::pvt5());
    let fom = Fom::new(100.0, vec![0.25; SizingProblem::num_constraints(&ota)]);
    let (lb, ub) = ota.bounds();
    let nominal = ota.nominal();
    let xs: Vec<Vec<f64>> = (0..3)
        .map(|i| {
            let t = (i as f64 - 1.0) * 0.03;
            nominal
                .iter()
                .zip(lb.iter().zip(&ub))
                .map(|(&v, (&l, &u))| (v + t * (u - l)).clamp(l, u))
                .collect()
        })
        .collect();
    let units = xs.len() * ota.num_corners() * SizingProblem::num_analyses(&ota);

    let summary_at = |threads: usize| -> telemetry::Summary {
        parallel::set_max_threads(threads);
        telemetry::install(Some(SinkKind::Summary));
        telemetry::reset();
        let mut ev = Evaluator::new(&ota, &fom, xs.len());
        ev.evaluate_batch(&xs);
        parallel::set_max_threads(0);
        let summary = telemetry::finish().expect("plane is installed");
        assert_eq!(telemetry::current_depth(), 0, "depth unwinds to zero");
        telemetry::install(None);
        summary
    };

    let reference = summary_at(1);
    assert_eq!(reference.span_count(SpanId::EvalBatch), 1);
    for id in [
        SpanId::Candidate,
        SpanId::Corner,
        SpanId::Analysis,
        SpanId::Testbench,
    ] {
        assert_eq!(
            reference.span_count(id),
            units as u64,
            "{id:?}: one span per grid unit"
        );
    }
    assert!(
        reference.span_count(SpanId::Solve) >= units as u64,
        "every unit runs at least one Newton solve"
    );
    assert!(
        reference.max_depth >= 5,
        "hierarchy reaches 5+ levels, got {}",
        reference.max_depth
    );
    assert!(!reference.metric(Metric::NewtonIterations).is_empty());
    assert!(!reference.metric(Metric::WorkspaceHits).is_empty());

    for threads in [2usize, 7] {
        let s = summary_at(threads);
        for id in [
            SpanId::EvalBatch,
            SpanId::Candidate,
            SpanId::Corner,
            SpanId::Analysis,
            SpanId::Testbench,
            SpanId::Solve,
            SpanId::Factor,
            SpanId::Refactor,
        ] {
            assert_eq!(
                s.span_count(id),
                reference.span_count(id),
                "{id:?} count @ {threads} threads"
            );
        }
        // The solver does bit-identical work, so the Newton-iteration
        // histogram (not just its count) is identical too.
        assert_eq!(
            s.metric(Metric::NewtonIterations),
            reference.metric(Metric::NewtonIterations),
            "NewtonIterations histogram @ {threads} threads"
        );
        assert!(s.max_depth >= 5, "@ {threads} threads");
    }
}

fn quick_cfg() -> DnnOptConfig {
    DnnOptConfig {
        n_init: 8,
        n_elite: 4,
        critic_epochs: 60,
        actor_epochs: 20,
        critic_batch: 64,
        hidden: 16,
        ..Default::default()
    }
}

fn assert_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.history.len(), b.history.len(), "{label}: history length");
    for (i, (ea, eb)) in a
        .history
        .entries()
        .iter()
        .zip(b.history.entries())
        .enumerate()
    {
        assert_eq!(ea.x, eb.x, "{label}: design #{i}");
        assert_eq!(ea.fom.to_bits(), eb.fom.to_bits(), "{label}: fom #{i}");
        assert_eq!(ea.spec, eb.spec, "{label}: spec #{i}");
        assert_eq!(ea.corner_specs, eb.corner_specs, "{label}: corners #{i}");
    }
    assert_eq!(
        a.history.best_trace(),
        b.history.best_trace(),
        "{label}: best trace"
    );
}

/// Tracing on vs off must not move a single bit of the optimizer history —
/// at 1 thread and at 2 — while the hot run writes a parseable Chrome
/// trace with balanced begin/end events and no drops.
#[test]
fn traced_runs_are_bit_identical_to_untraced() {
    let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = Scoped;
    let ota = FoldedCascodeOta::new();
    let fom = Fom::new(100.0, vec![0.25; SizingProblem::num_constraints(&ota)]);
    let dnn = DnnOpt::new(quick_cfg());

    for threads in [1usize, 2] {
        let run_with = |sink: Option<SinkKind>| -> (RunResult, Option<telemetry::Summary>) {
            parallel::set_max_threads(threads);
            telemetry::install(sink);
            telemetry::reset();
            let run = dnn.run(&ota, &fom, 14, StopPolicy::Exhaust, 3);
            let summary = telemetry::finish();
            telemetry::install(None);
            parallel::set_max_threads(0);
            (run, summary)
        };

        let (off, off_summary) = run_with(None);
        assert!(off_summary.is_none(), "disabled plane yields no summary");

        let path = std::env::temp_dir().join(format!(
            "dnnopt_telemetry_test_{}_t{threads}.json",
            std::process::id()
        ));
        let (on, on_summary) =
            run_with(Some(SinkKind::Chrome(path.to_string_lossy().into_owned())));
        assert_identical(
            &off,
            &on,
            &format!("traced vs untraced @ {threads} threads"),
        );

        let summary = on_summary.expect("enabled plane yields a summary");
        assert!(summary.events > 0, "events were buffered");
        assert_eq!(summary.dropped, 0, "no events dropped at this scale");
        assert!(summary.max_depth >= 5, "trace covers 5+ span levels");
        assert!(summary.span_count(SpanId::Run) >= 1);
        assert!(summary.span_count(SpanId::Generation) >= 1);
        assert!(summary.span_count(SpanId::CriticTrain) >= 1);
        assert!(!summary.metric(Metric::TrainSteps).is_empty());

        let text = std::fs::read_to_string(&path).expect("chrome trace written");
        let _ = std::fs::remove_file(&path);
        assert!(text.trim_start().starts_with('['), "trace_event JSON array");
        assert!(text.trim_end().ends_with(']'), "array closed");
        let begins = text.matches("\"ph\":\"B\"").count();
        let ends = text.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends, "begin/end events balance @ {threads} threads");
        assert!(begins > 0, "trace is non-empty");
    }
}

/// The unit grid attributes assembled failures to the analysis that
/// produced them: the diag label is prefixed with
/// [`SizingProblem::analysis_name`] and the robustness report breaks
/// failures down per analysis — on the real two-analysis OTA under a
/// full-rate fault plan.
#[test]
fn unit_grid_attributes_failures_per_analysis() {
    let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = Scoped;
    let ota = FoldedCascodeOta::new();
    let fom = Fom::new(100.0, vec![0.25; SizingProblem::num_constraints(&ota)]);
    let (lb, ub) = ota.bounds();
    let nominal = ota.nominal();
    let xs: Vec<Vec<f64>> = (0..3)
        .map(|i| {
            let t = (i as f64 - 1.0) * 0.02;
            nominal
                .iter()
                .zip(lb.iter().zip(&ub))
                .map(|(&v, (&l, &u))| (v + t * (u - l)).clamp(l, u))
                .collect()
        })
        .collect();

    fault::install(Some(FaultPlan {
        seed: 11,
        rate: 1.0,
        kind: FaultKind::SingularFactor,
        solves: FaultSolves::All,
    }));
    let mut ev = Evaluator::new(&ota, &fom, xs.len());
    let out = ev.evaluate_batch(&xs);
    fault::install(None);

    // Full-rate plan: every unit dies; the assembled corner carries the
    // first failed unit's diagnosis, which must name its analysis.
    for (i, e) in out.iter().enumerate() {
        assert!(e.spec.is_failure(), "candidate {i} must fail");
        let diag = e.spec.failure_diag().expect("injected failures are tagged");
        assert!(
            diag.analysis.starts_with("open-loop"),
            "diagnosis names the failing unit, got {:?}",
            diag.analysis
        );
    }
    let report = ev.history().robustness_report();
    assert_eq!(report.failures, xs.len());
    assert_eq!(report.by_analysis.len(), 1, "one distinct analysis label");
    let (label, n) = &report.by_analysis[0];
    assert!(label.starts_with("open-loop"), "got {label:?}");
    assert_eq!(*n, xs.len());
    assert_eq!(report.analysis_count(label), xs.len());
    assert_eq!(report.analysis_count("closed-loop"), 0);
    // The breakdown surfaces in the printed report.
    assert!(report.to_string().contains("open-loop"));

    // The healthy path is unaffected: no plan, no failures, no breakdown.
    let mut ev = Evaluator::new(&ota, &fom, 1);
    let out = ev.evaluate_batch(&xs[..1]);
    assert!(!out[0].spec.is_failure(), "healthy without a plan");
    assert!(ev.history().robustness_report().by_analysis.is_empty());
}
