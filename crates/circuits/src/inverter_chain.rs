//! The four-stage inverter chain — paper Table V row 1, "used mainly for
//! tool development and flow testing".
//!
//! Eight devices (an NMOS and a PMOS per stage), all eight widths are
//! design variables, and there are two specs: propagation delay and energy
//! per transition (reported as power at the switching rate). Estimated
//! parasitics are applied before every simulation, mirroring the paper's
//! MLParest-in-the-loop flow.

use opt::{SizingProblem, SpecResult};
use spice::{Circuit, SimOptions, SpiceError, Waveform, GND};

use crate::measure;
use crate::parasitics::{apply_parasitics, update_parasitics, ParasiticConfig};
use crate::tech::{tech_advanced, Technology};

/// The inverter-chain sizing problem (8 variables, 2 constraints).
///
/// # Example
///
/// ```no_run
/// use circuits::InverterChain;
/// use opt::SizingProblem;
///
/// let chain = InverterChain::new();
/// let spec = chain.evaluate(&chain.nominal());
/// assert_eq!(spec.constraints.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct InverterChain {
    tech: Technology,
    opts: SimOptions,
    parasitics: ParasiticConfig,
    /// Output load \[F\].
    c_load: f64,
    /// Delay target \[s\].
    delay_limit: f64,
    /// Energy-per-transition target \[J\].
    energy_limit: f64,
    /// Prebuilt testbench topology: node maps, device registry and
    /// parasitic capacitors are derived once here; per-candidate
    /// evaluation clones it and re-sizes devices in place.
    template: Circuit,
    /// Key node ids of the template: `(input, final stage output)`.
    io: (usize, usize),
}

impl Default for InverterChain {
    fn default() -> Self {
        Self::new()
    }
}

impl InverterChain {
    /// Creates the problem on the generic advanced-node technology.
    pub fn new() -> Self {
        let mut chain = InverterChain {
            tech: tech_advanced(),
            opts: SimOptions::default(),
            parasitics: ParasiticConfig::default(),
            c_load: 40e-15,
            delay_limit: 35e-12,
            energy_limit: 80e-15,
            template: Circuit::new(),
            io: (0, 0),
        };
        let (ckt, inp, out) = chain
            .build_topology()
            .expect("inverter-chain template must build");
        chain.template = ckt;
        chain.io = (inp, out);
        chain
    }

    /// A near-feasible tapered chain.
    pub fn nominal(&self) -> Vec<f64> {
        let u = 1e-6;
        // [wn1..wn4, wp1..wp4], tapered ~2x per stage.
        vec![
            0.5 * u,
            1.0 * u,
            2.0 * u,
            4.0 * u,
            0.9 * u,
            1.8 * u,
            3.6 * u,
            7.2 * u,
        ]
    }

    /// Builds the testbench topology once, with the nominal sizing applied
    /// (the sizing itself lives exclusively in [`InverterChain::resize`]).
    fn build_topology(&self) -> Result<(Circuit, usize, usize), SpiceError> {
        let t = &self.tech;
        let l = t.l_min;
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource("VDD", vdd, GND, Waveform::Dc(t.vdd))?;
        let inp = ckt.node("in");
        // 100 ps period pulse with sharp edges; delays measured on the
        // second (settled) cycle.
        ckt.add_vsource(
            "VIN",
            inp,
            GND,
            Waveform::pulse(0.0, t.vdd, 50e-12, 5e-12, 5e-12, 250e-12, 500e-12),
        )?;
        let mut prev = inp;
        let mut out = inp;
        for stage in 0..4 {
            out = ckt.node(&format!("s{stage}"));
            ckt.add_mosfet(
                &format!("MN{stage}"),
                out,
                prev,
                GND,
                GND,
                &t.nmos,
                1e-6,
                l,
                1.0,
            )?;
            ckt.add_mosfet(
                &format!("MP{stage}"),
                out,
                prev,
                vdd,
                vdd,
                &t.pmos,
                1e-6,
                l,
                1.0,
            )?;
            prev = out;
        }
        ckt.add_capacitor("CL", out, GND, self.c_load)?;
        self.resize(&mut ckt, &self.nominal())?;
        apply_parasitics(&mut ckt, &self.parasitics)?;
        Ok((ckt, inp, out))
    }

    /// Writes every design-dependent device value for the vector `x` —
    /// the single source of truth for the variable→device mapping.
    fn resize(&self, ckt: &mut Circuit, x: &[f64]) -> Result<(), SpiceError> {
        let l = self.tech.l_min;
        for stage in 0..4 {
            ckt.set_mosfet_geometry(&format!("MN{stage}"), x[stage], l, 1.0)?;
            ckt.set_mosfet_geometry(&format!("MP{stage}"), x[4 + stage], l, 1.0)?;
        }
        Ok(())
    }

    /// Instantiates the candidate `x`: clones the prebuilt template and
    /// re-sizes devices and parasitics in place (no netlist rebuild, no
    /// node-map re-derivation — and an unchanged topology fingerprint, so
    /// pooled solver state carries across candidates).
    fn build(&self, x: &[f64]) -> Result<(Circuit, usize, usize), SpiceError> {
        let mut ckt = self.template.clone();
        self.resize(&mut ckt, x)?;
        update_parasitics(&mut ckt, &self.parasitics)?;
        Ok((ckt, self.io.0, self.io.1))
    }
}

impl SizingProblem for InverterChain {
    fn dim(&self) -> usize {
        8
    }

    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.1e-6; 8], vec![20e-6; 8])
    }

    fn num_constraints(&self) -> usize {
        2
    }

    fn name(&self) -> &str {
        "inverter-chain"
    }

    fn variable_names(&self) -> Vec<String> {
        let mut v: Vec<String> = (1..=4).map(|i| format!("WN{i}")).collect();
        v.extend((1..=4).map(|i| format!("WP{i}")));
        v
    }

    fn nominal(&self) -> Vec<f64> {
        self.nominal()
    }

    fn evaluate(&self, x: &[f64]) -> SpecResult {
        let m = self.num_constraints();
        // Single-corner problem: the fault-plane scope keys on the
        // candidate alone (corner salt 0).
        let _scope = spice::fault::candidate_scope(spice::fault::candidate_key(x, 0));
        let (ckt, inp, out) = match self.build(x) {
            Ok(v) => v,
            Err(e) => {
                return SpecResult::failed_with(
                    m,
                    crate::diag_from_spice(&e, "inverter-chain netlist"),
                )
            }
        };
        let t = &self.tech;
        // One pooled workspace for the whole evaluation: the transient
        // reuses the recorded solver state of previous candidates.
        let mut ws = spice::lease_workspace(&ckt);
        let tr = match spice::transient_with_workspace(&ckt, &self.opts, 1.0e-9, 2e-12, &mut ws) {
            Ok(tr) => tr,
            Err(e) => {
                return SpecResult::failed_with(
                    m,
                    crate::diag_from_spice(&e, "inverter-chain transient"),
                )
            }
        };
        // Second cycle: rising input edge at 550 ps, falling at 805 ps.
        let w_in = tr.waveform(inp);
        let w_out = tr.waveform(out);
        let after = |w: &[(f64, f64)], t0: f64| -> Vec<(f64, f64)> {
            w.iter().copied().filter(|&(tt, _)| tt >= t0).collect()
        };
        let half = 0.5 * t.vdd;
        // Four inverters: output follows the input polarity.
        let t_in_rise = measure::crossing_time(&after(&w_in, 500e-12), half, true);
        let t_out_rise = measure::crossing_time(&after(&w_out, 500e-12), half, true);
        let t_in_fall = measure::crossing_time(&after(&w_in, 780e-12), half, false);
        let t_out_fall = measure::crossing_time(&after(&w_out, 780e-12), half, false);
        let delay = match (t_in_rise, t_out_rise, t_in_fall, t_out_fall) {
            (Some(ir), Some(or), Some(if_), Some(of)) if or > ir && of > if_ => {
                (or - ir).max(of - if_)
            }
            _ => {
                return SpecResult {
                    failure: None,
                    objective: 1.0,
                    constraints: vec![3.0; m],
                }
            }
        };
        // Energy for one full cycle (two transitions), halved.
        let energy = match tr.delivered_charge(&ckt, "VDD", 500e-12, 1.0e-9) {
            Ok(q) => (q * t.vdd / 2.0).abs(),
            Err(e) => {
                return SpecResult::failed_with(
                    m,
                    crate::diag_from_spice(&e, "inverter-chain energy"),
                )
            }
        };

        // Objective: delay-energy product pressure via energy (power at the
        // switching rate); the paper lists "delay and power" as the two
        // specs, with the optimizer driving both to feasibility.
        let constraints = vec![
            (delay - self.delay_limit) / self.delay_limit,
            (energy - self.energy_limit) / self.energy_limit,
        ];
        SpecResult {
            failure: None,
            objective: energy * 1e12,
            constraints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_chain_is_feasible() {
        let chain = InverterChain::new();
        let spec = chain.evaluate(&chain.nominal());
        assert!(!spec.is_failure());
        assert!(
            spec.feasible(),
            "nominal tapered chain should meet both specs: {:?}",
            spec.constraints
        );
    }

    #[test]
    fn tiny_devices_are_slow() {
        let chain = InverterChain::new();
        let (lb, _) = chain.bounds();
        let spec = chain.evaluate(&lb);
        assert!(
            spec.constraints[0] > 0.0,
            "minimum widths must miss the delay spec"
        );
    }

    #[test]
    fn huge_devices_burn_energy() {
        let chain = InverterChain::new();
        let (_, ub) = chain.bounds();
        let spec = chain.evaluate(&ub);
        assert!(
            spec.constraints[1] > 0.0,
            "maximum widths must miss the energy spec"
        );
    }

    #[test]
    fn eight_variables_two_specs() {
        let chain = InverterChain::new();
        assert_eq!(chain.dim(), 8);
        assert_eq!(chain.num_constraints(), 2);
        assert_eq!(chain.variable_names().len(), 8);
    }
}
