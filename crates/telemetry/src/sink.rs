//! Merging per-slot shards into a [`Summary`] and rendering the JSONL and
//! Chrome `trace_event` outputs.

use std::io::Write;
use std::sync::atomic::Ordering;

use crate::hist::{Histogram, HIST_BUCKETS};
use crate::{Event, Metric, Shard, SpanId, NUM_METRICS, NUM_SPANS};

/// Aggregated timing of one span id across all threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStat {
    /// Which span.
    pub id: SpanId,
    /// Completed (or instant) occurrences.
    pub count: u64,
    /// Total nanoseconds inside the span, summed over occurrences and
    /// threads (nested/parallel spans overlap, so totals can exceed
    /// wall-clock).
    pub total_ns: u64,
}

/// Aggregated observations of one metric across all threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricStat {
    /// Which metric.
    pub metric: Metric,
    /// Merged log2-bucket histogram with exact count/sum.
    pub hist: Histogram,
}

/// The merged view of everything recorded so far: what the summary sink
/// prints and what `opt`'s `RunReport` embeds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Summary {
    /// Per-span aggregates, declaration order, zero rows omitted.
    pub spans: Vec<SpanStat>,
    /// Per-metric aggregates, declaration order, zero rows omitted.
    pub metrics: Vec<MetricStat>,
    /// Deepest span nesting observed on any thread.
    pub max_depth: u64,
    /// Span events currently buffered for the JSONL/Chrome sinks.
    pub events: u64,
    /// Events dropped because a shard's buffer hit its cap.
    pub dropped: u64,
}

impl Summary {
    /// Occurrences of one span (0 if never opened).
    pub fn span_count(&self, id: SpanId) -> u64 {
        self.spans
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.count)
            .unwrap_or(0)
    }

    /// Total nanoseconds inside one span (0 if never opened).
    pub fn span_ns(&self, id: SpanId) -> u64 {
        self.spans
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.total_ns)
            .unwrap_or(0)
    }

    /// Merged histogram of one metric (empty if never recorded).
    pub fn metric(&self, m: Metric) -> Histogram {
        self.metrics
            .iter()
            .find(|s| s.metric == m)
            .map(|s| s.hist)
            .unwrap_or_default()
    }
}

/// Merges every shard's atomics into one [`Summary`].
pub(crate) fn merge_shards(shards: &[Shard]) -> Summary {
    let mut span_count = [0u64; NUM_SPANS];
    let mut span_ns = [0u64; NUM_SPANS];
    let mut hists = [Histogram::new(); NUM_METRICS];
    let mut max_depth = 0u64;
    let mut events = 0u64;
    let mut dropped = 0u64;
    for sh in shards {
        for i in 0..NUM_SPANS {
            span_count[i] += sh.span_count[i].load(Ordering::Relaxed);
            span_ns[i] += sh.span_ns[i].load(Ordering::Relaxed);
        }
        for i in 0..NUM_METRICS {
            let mut h = Histogram::new();
            h.count = sh.metric_count[i].load(Ordering::Relaxed);
            h.sum = sh.metric_sum[i].load(Ordering::Relaxed);
            for b in 0..HIST_BUCKETS {
                h.buckets[b] = sh.metric_hist[i][b].load(Ordering::Relaxed);
            }
            hists[i].merge(&h);
        }
        max_depth = max_depth.max(sh.max_depth.load(Ordering::Relaxed));
        dropped += sh.dropped.load(Ordering::Relaxed);
        events += sh.events.lock().unwrap_or_else(|e| e.into_inner()).len() as u64;
    }
    Summary {
        spans: SpanId::ALL
            .iter()
            .filter(|&&id| span_count[id as usize] > 0)
            .map(|&id| SpanStat {
                id,
                count: span_count[id as usize],
                total_ns: span_ns[id as usize],
            })
            .collect(),
        metrics: Metric::ALL
            .iter()
            .filter(|&&m| !hists[m as usize].is_empty())
            .map(|&m| MetricStat {
                metric: m,
                hist: hists[m as usize],
            })
            .collect(),
        max_depth,
        events,
        dropped,
    }
}

/// Renders nanoseconds with a unit that keeps 3–4 significant digits.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "telemetry: max span depth {}, {} events buffered ({} dropped)",
            self.max_depth, self.events, self.dropped
        )?;
        if !self.spans.is_empty() {
            writeln!(
                f,
                "  {:<14} {:>10} {:>12} {:>12}",
                "span", "count", "total", "mean"
            )?;
            for s in &self.spans {
                let mean = s.total_ns.checked_div(s.count).unwrap_or(0);
                writeln!(
                    f,
                    "  {:<14} {:>10} {:>12} {:>12}",
                    s.id.label(),
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(mean)
                )?;
            }
        }
        if !self.metrics.is_empty() {
            writeln!(
                f,
                "  {:<18} {:>10} {:>16} {:>12} {:>10}",
                "metric", "count", "sum", "mean", "max>="
            )?;
            for m in &self.metrics {
                writeln!(
                    f,
                    "  {:<18} {:>10} {:>16} {:>12.1} {:>10}",
                    m.metric.label(),
                    m.hist.count,
                    m.hist.sum,
                    m.hist.mean(),
                    m.hist.max_floor()
                )?;
            }
        }
        Ok(())
    }
}

/// Opens `path` for writing, or falls back to stderr when `None`.
fn open_out(path: Option<&str>) -> std::io::Result<Box<dyn Write>> {
    Ok(match path {
        Some(p) => Box::new(std::io::BufWriter::new(std::fs::File::create(p)?)),
        None => Box::new(std::io::BufWriter::new(std::io::stderr())),
    })
}

/// Writes the JSONL event stream: one object per span event, then one per
/// non-empty metric, then a trailing meta object. A consumer can check
/// trace health by parsing every line and balancing `B` against `E`
/// counts per `(tid, span)` — the CI schema job does exactly that.
pub(crate) fn write_jsonl(
    path: Option<&str>,
    events: &[Event],
    summary: &Summary,
) -> std::io::Result<()> {
    let mut out = open_out(path)?;
    for e in events {
        write!(
            out,
            "{{\"ev\":\"{}\",\"span\":\"{}\",\"tid\":{},\"ts_ns\":{}",
            e.ph as char,
            e.id.label(),
            e.tid,
            e.ts_ns
        )?;
        if e.arg != u64::MAX {
            write!(out, ",\"arg\":{}", e.arg)?;
        }
        writeln!(out, "}}")?;
    }
    for m in &summary.metrics {
        writeln!(
            out,
            "{{\"metric\":\"{}\",\"count\":{},\"sum\":{}}}",
            m.metric.label(),
            m.hist.count,
            m.hist.sum
        )?;
    }
    writeln!(
        out,
        "{{\"meta\":\"dnnopt-trace\",\"events\":{},\"dropped\":{},\"max_depth\":{}}}",
        events.len(),
        summary.dropped,
        summary.max_depth
    )?;
    out.flush()
}

/// Writes Chrome `trace_event` JSON (the "JSON array format"): load the
/// file in `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps are
/// microseconds; the worker slot becomes the `tid`, so pool workers get
/// their own rows in the viewer.
pub(crate) fn write_chrome(path: &str, events: &[Event], summary: &Summary) -> std::io::Result<()> {
    let mut out = open_out(Some(path))?;
    writeln!(out, "[")?;
    let mut first = true;
    for e in events {
        if !first {
            writeln!(out, ",")?;
        }
        first = false;
        let us = e.ts_ns as f64 / 1e3;
        write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{us:.3}",
            e.id.label(),
            e.ph as char,
            e.tid
        )?;
        if e.ph == b'I' {
            write!(out, ",\"s\":\"t\"")?;
        }
        if e.arg != u64::MAX {
            write!(out, ",\"args\":{{\"arg\":{}}}", e.arg)?;
        }
        write!(out, "}}")?;
    }
    // Trailing metadata event keeps the array well-formed without
    // tracking a dangling comma, and records drop accounting in-band.
    if !first {
        writeln!(out, ",")?;
    }
    writeln!(
        out,
        "{{\"name\":\"dnnopt-trace\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"dropped\":{},\"max_depth\":{}}}}}",
        summary.dropped, summary.max_depth
    )?;
    writeln!(out, "]")?;
    out.flush()
}
