//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the (small) subset of the `rand` 0.8 API the workspace
//! actually uses: the [`Rng`] extension trait with `gen`, `gen_range` and
//! `gen_bool`, [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — a well-studied, fast, deterministic PRNG. Streams differ
//! from upstream `rand`'s ChaCha-based `StdRng`, which is fine here: the
//! workspace relies on determinism and statistical quality, never on exact
//! upstream byte streams.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform-word source, the only method generators implement.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from a generator's "standard" distribution
/// (uniform over the unit interval for floats, uniform over all values for
/// integers and booleans).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw from `[0, n)` by widening multiply with rejection.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Lemire's method: the low word of x*n is biased only for a small
    // rejection zone.
    let zone = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64 so that every 64-bit seed yields a full,
    /// decorrelated state.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for code written against `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_are_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_integer_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(0);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
