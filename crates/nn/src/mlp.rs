//! Multi-layer perceptron with explicit reverse-mode differentiation.

use linalg::Matrix;
use rand::Rng;

use crate::workspace::TrainWorkspace;

/// Hidden-layer activation function (the output layer is always linear).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

/// Compile-time activation dispatch: the forward/backward kernels are
/// monomorphized per variant, so the hidden-layer inner loops contain no
/// per-element `match` on [`Activation`].
pub(crate) trait ActFn {
    /// The activation value `a = f(z)`.
    fn apply(z: f64) -> f64;

    /// The derivative `f'(z)` expressed through the activation *output*
    /// `a = f(z)` (ReLU: `a > 0`; tanh: `1 − a²`), so the backward pass
    /// needs no stored pre-activations.
    fn deriv_from_output(a: f64) -> f64;
}

/// [`Activation::Relu`] as a zero-sized kernel parameter.
pub(crate) struct ReluAct;

impl ActFn for ReluAct {
    #[inline(always)]
    fn apply(z: f64) -> f64 {
        z.max(0.0)
    }

    #[inline(always)]
    fn deriv_from_output(a: f64) -> f64 {
        // a = max(z, 0) is positive exactly when z is.
        if a > 0.0 {
            1.0
        } else {
            0.0
        }
    }
}

/// [`Activation::Tanh`] as a zero-sized kernel parameter.
pub(crate) struct TanhAct;

impl ActFn for TanhAct {
    #[inline(always)]
    fn apply(z: f64) -> f64 {
        z.tanh()
    }

    #[inline(always)]
    fn deriv_from_output(a: f64) -> f64 {
        1.0 - a * a
    }
}

/// One dense layer: `y = x·Wᵀ + b` with `W` of shape `out×in`.
#[derive(Debug, Clone)]
struct Dense {
    w: Matrix,
    b: Vec<f64>,
}

/// Pre-packed GEMM panels of a frozen network's weights (see
/// [`Mlp::freeze`]): per layer, `Wᵀ` packed for the forward `x·Wᵀ` and `W`
/// packed for the backward `δ·W` propagation. `None` for layers too large
/// for a single GEMM panel.
#[derive(Debug, Clone, Default)]
struct FrozenPacks {
    fwd: Vec<Option<linalg::PackedB>>,
    bwd: Vec<Option<linalg::PackedB>>,
}

/// Parameter gradients for a whole network, shaped like the network itself.
#[derive(Debug, Clone, Default)]
pub struct Gradients {
    pub(crate) dw: Vec<Matrix>,
    pub(crate) db: Vec<Vec<f64>>,
}

impl Gradients {
    /// Every gradient buffer as one sequence of flat slices (weights first,
    /// then biases) — the single-pass walk shared by [`Gradients::norm_sq`],
    /// [`Gradients::scale`], and the Adam step's per-layer slice pairing.
    fn flat_slices(&self) -> impl Iterator<Item = &[f64]> {
        self.dw
            .iter()
            .map(Matrix::as_slice)
            .chain(self.db.iter().map(Vec::as_slice))
    }

    /// Mutable variant of [`Gradients::flat_slices`].
    fn flat_slices_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        self.dw
            .iter_mut()
            .map(Matrix::as_mut_slice)
            .chain(self.db.iter_mut().map(Vec::as_mut_slice))
    }

    /// Sum of squared gradient entries (for monitoring/clipping): one flat
    /// pass over each buffer.
    pub fn norm_sq(&self) -> f64 {
        let mut s = 0.0;
        for slice in self.flat_slices() {
            for &v in slice {
                s += v * v;
            }
        }
        s
    }

    /// Scales all gradients in place (gradient clipping): one flat pass
    /// over each buffer.
    pub fn scale(&mut self, s: f64) {
        for slice in self.flat_slices_mut() {
            for v in slice {
                *v *= s;
            }
        }
    }
}

/// Cached intermediate values of a forward pass, needed by
/// [`Mlp::backward`].
///
/// Since the training kernels moved onto the fused GEMM engine, the cache
/// is simply an owned [`TrainWorkspace`] holding the layer activations —
/// both the allocating and the workspace APIs run the exact same kernels,
/// so their results are bit-identical by construction.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// The forward state (layer activations) of the pass.
    ws: TrainWorkspace,
}

/// A fully connected network with a linear output layer.
///
/// See the [crate docs](crate) for an end-to-end training example.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    hidden_act: Activation,
    /// Pre-packed weight panels, present only between a [`Mlp::freeze`]
    /// call and the next parameter mutation.
    frozen: Option<FrozenPacks>,
}

impl Mlp {
    /// Creates a network with the given layer sizes, e.g. `[4, 64, 64, 2]`
    /// for 4 inputs, two hidden layers of 64, and 2 outputs. Weights use
    /// He initialization for ReLU and Xavier for Tanh.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], hidden_act: Activation, rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "zero-width layer");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for win in sizes.windows(2) {
            let (fan_in, fan_out) = (win[0], win[1]);
            let scale = match hidden_act {
                Activation::Relu => (2.0 / fan_in as f64).sqrt(),
                Activation::Tanh => (2.0 / (fan_in + fan_out) as f64).sqrt(),
            };
            let w = Matrix::from_fn(fan_out, fan_in, |_, _| crate::gaussian(rng) * scale);
            layers.push(Dense {
                w,
                b: vec![0.0; fan_out],
            });
        }
        Mlp {
            layers,
            hidden_act,
            frozen: None,
        }
    }

    /// Pre-packs every weight matrix into its GEMM panel layouts, so
    /// subsequent forward/backward passes skip the per-call packing of the
    /// right-hand operand. Call once the parameters are final (a trained
    /// critic entering the actor loop, a trained actor proposing steps);
    /// any later parameter mutation silently discards the packs. Products
    /// with pre-packed weights are bit-identical to the blocked on-the-fly
    /// path.
    pub fn freeze(&mut self) {
        telemetry::record(telemetry::Metric::ModelFreezes, 1);
        let mut packs = FrozenPacks::default();
        for layer in &self.layers {
            // Forward: B = Wᵀ, effective (k = in, n = out).
            packs
                .fwd
                .push(linalg::PackedB::try_pack(linalg::GemmOp::Trans, &layer.w));
            // Backward propagation: B = W, effective (k = out, n = in).
            packs
                .bwd
                .push(linalg::PackedB::try_pack(linalg::GemmOp::NoTrans, &layer.w));
        }
        self.frozen = Some(packs);
    }

    /// True if pre-packed weight panels are active (see [`Mlp::freeze`]).
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// The pre-packed forward panel of layer `k`, when frozen and sized.
    pub(crate) fn packed_fwd(&self, k: usize) -> Option<&linalg::PackedB> {
        self.frozen.as_ref().and_then(|f| f.fwd[k].as_ref())
    }

    /// The pre-packed backward panel of layer `k`, when frozen and sized.
    pub(crate) fn packed_bwd(&self, k: usize) -> Option<&linalg::PackedB> {
        self.frozen.as_ref().and_then(|f| f.bwd[k].as_ref())
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].w.cols()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].w.rows()
    }

    /// Number of layers (weight matrices).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.rows() * l.w.cols() + l.b.len())
            .sum()
    }

    /// Borrow of layer `k`'s weights and biases (for the workspace kernels).
    pub(crate) fn layer(&self, k: usize) -> (&Matrix, &[f64]) {
        let l = &self.layers[k];
        (&l.w, &l.b)
    }

    /// Mutable borrow of layer `k`'s weights and biases (for in-place
    /// optimizer updates). Discards any pre-packed panels: the parameters
    /// are about to change.
    pub(crate) fn layer_params_mut(&mut self, k: usize) -> (&mut Matrix, &mut Vec<f64>) {
        self.frozen = None;
        let l = &mut self.layers[k];
        (&mut l.w, &mut l.b)
    }

    /// The hidden activation function.
    pub(crate) fn activation(&self) -> Activation {
        self.hidden_act
    }

    /// Forward pass on a batch (rows are samples).
    ///
    /// Runs the same fused GEMM kernels as [`Mlp::forward_ws`] on a
    /// throwaway workspace, so both paths are bit-identical; use the
    /// workspace variant in loops to avoid the per-call allocations.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the input dimensionality.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut ws = TrainWorkspace::new();
        self.forward_ws(x, &mut ws).clone()
    }

    /// Forward pass that also returns the cache required by
    /// [`Mlp::backward`].
    pub fn forward_cached(&self, x: &Matrix) -> (Matrix, ForwardCache) {
        let mut ws = TrainWorkspace::new();
        let y = self.forward_ws(x, &mut ws).clone();
        (y, ForwardCache { ws })
    }

    /// Reverse-mode pass: given `∂L/∂output` for the batch, returns the
    /// parameter gradients and `∂L/∂input`.
    ///
    /// Runs [`Mlp::backward_ws`] on a copy of the cached forward state, so
    /// the allocating and workspace APIs yield bit-identical gradients.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match the cached batch.
    pub fn backward(&self, cache: &ForwardCache, grad_out: &Matrix) -> (Gradients, Matrix) {
        let mut ws = cache.ws.clone();
        self.backward_ws(&mut ws, grad_out);
        let dx = std::mem::take(&mut ws.delta);
        (ws.grads, dx)
    }

    /// Gradient of the outputs with respect to the inputs only (parameters
    /// untouched) — the critic-to-actor path of DNN-Opt.
    pub fn input_gradient(&self, cache: &ForwardCache, grad_out: &Matrix) -> Matrix {
        self.backward(cache, grad_out).1
    }

    /// Scales the final layer's weights and biases by `s`. With a small
    /// `s` the network initially outputs near-zero values — the DDPG trick
    /// for actor networks whose outputs are corrections.
    pub fn scale_output_layer(&mut self, s: f64) {
        self.frozen = None;
        let last = self.layers.len() - 1;
        self.layers[last].w.scale_inplace(s);
        for b in &mut self.layers[last].b {
            *b *= s;
        }
    }

    /// Shapes of all weight matrices, for optimizer state allocation.
    pub(crate) fn shapes(&self) -> Vec<(usize, usize)> {
        self.layers
            .iter()
            .map(|l| (l.w.rows(), l.w.cols()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn small_net(act: Activation) -> Mlp {
        let mut rng = StdRng::seed_from_u64(3);
        Mlp::new(&[3, 5, 4, 2], act, &mut rng)
    }

    #[test]
    fn shapes_and_counts() {
        let net = small_net(Activation::Relu);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.num_layers(), 3);
        assert_eq!(net.num_params(), (5 * 3 + 5) + (4 * 5 + 4) + (2 * 4 + 2));
    }

    #[test]
    fn forward_is_deterministic() {
        let net = small_net(Activation::Tanh);
        let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3]]);
        let y1 = net.forward(&x);
        let y2 = net.forward(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn forward_cached_matches_forward() {
        let net = small_net(Activation::Relu);
        let x = Matrix::from_rows(&[&[0.5, 0.1, -0.7], &[1.0, -1.0, 0.0]]);
        let y = net.forward(&x);
        let (yc, _) = net.forward_cached(&x);
        assert_eq!(y, yc);
    }

    /// Scalar loss L = Σ w_l·y_l over the batch, with fixed output weights,
    /// checked against finite differences for every parameter.
    #[test]
    fn parameter_gradients_match_finite_differences() {
        for act in [Activation::Tanh, Activation::Relu] {
            let net = small_net(act);
            let x = Matrix::from_rows(&[&[0.3, -0.1, 0.8], &[-0.5, 0.2, 0.4]]);
            let wsum = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 1.5]]);
            let loss = |n: &Mlp| -> f64 {
                let y = n.forward(&x);
                y.hadamard(&wsum).as_slice().iter().sum()
            };
            let (_, cache) = net.forward_cached(&x);
            let (grads, _) = net.backward(&cache, &wsum);

            let h = 1e-6;
            for k in 0..net.num_layers() {
                for i in 0..net.layers[k].w.rows() {
                    for j in 0..net.layers[k].w.cols() {
                        let mut np = net.clone();
                        np.layers[k].w[(i, j)] += h;
                        let mut nm = net.clone();
                        nm.layers[k].w[(i, j)] -= h;
                        let fd = (loss(&np) - loss(&nm)) / (2.0 * h);
                        assert!(
                            (grads.dw[k][(i, j)] - fd).abs() < 1e-5,
                            "dW[{k}][{i},{j}] {act:?}: {} vs {}",
                            grads.dw[k][(i, j)],
                            fd
                        );
                    }
                    let mut np = net.clone();
                    np.layers[k].b[i] += h;
                    let mut nm = net.clone();
                    nm.layers[k].b[i] -= h;
                    let fd = (loss(&np) - loss(&nm)) / (2.0 * h);
                    assert!(
                        (grads.db[k][i] - fd).abs() < 1e-5,
                        "db[{k}][{i}] {act:?}: {} vs {}",
                        grads.db[k][i],
                        fd
                    );
                }
            }
        }
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        for act in [Activation::Tanh, Activation::Relu] {
            let net = small_net(act);
            let x = Matrix::from_rows(&[&[0.3, -0.1, 0.8]]);
            let wsum = Matrix::from_rows(&[&[1.0, -2.0]]);
            let (_, cache) = net.forward_cached(&x);
            let gin = net.input_gradient(&cache, &wsum);
            let h = 1e-6;
            for j in 0..3 {
                let mut xp = x.clone();
                xp[(0, j)] += h;
                let mut xm = x.clone();
                xm[(0, j)] -= h;
                let lp: f64 = net.forward(&xp).hadamard(&wsum).as_slice().iter().sum();
                let lm: f64 = net.forward(&xm).hadamard(&wsum).as_slice().iter().sum();
                let fd = (lp - lm) / (2.0 * h);
                assert!(
                    (gin[(0, j)] - fd).abs() < 1e-5,
                    "dX[{j}] {act:?}: {} vs {}",
                    gin[(0, j)],
                    fd
                );
            }
        }
    }

    #[test]
    fn gradient_norm_and_scaling() {
        let net = small_net(Activation::Tanh);
        let x = Matrix::from_rows(&[&[0.3, -0.1, 0.8]]);
        let (_, cache) = net.forward_cached(&x);
        let (mut g, _) = net.backward(&cache, &Matrix::from_rows(&[&[1.0, 1.0]]));
        let n0 = g.norm_sq();
        assert!(n0 > 0.0);
        g.scale(0.5);
        assert!((g.norm_sq() - 0.25 * n0).abs() < 1e-10 * n0);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_rejects_wrong_width() {
        let net = small_net(Activation::Relu);
        let x = Matrix::zeros(1, 4);
        net.forward(&x);
    }

    #[test]
    #[should_panic(expected = "need at least input and output sizes")]
    fn constructor_rejects_single_size() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Mlp::new(&[3], Activation::Relu, &mut rng);
    }
}
