//! Shared infrastructure for the reproduction harness: method suites,
//! per-method statistics, FoM-curve aggregation, and CSV output.
//!
//! The `repro` binary (this crate's `src/bin/repro.rs`) uses these helpers
//! to regenerate every table and figure of the paper; see EXPERIMENTS.md
//! for the mapping and the calibration notes.

use std::time::Duration;

use dnn_opt::{DnnOpt, DnnOptConfig};
use opt::{
    BoWei, DifferentialEvolution, Fom, Gaspad, Optimizer, RunResult, SizingProblem, StopPolicy,
};

/// The generic 180nm-class NMOS used by the micro-benchmarks' hand-built
/// ladder circuits (one definition so the benches cannot drift apart).
pub fn bench_nmos() -> spice::MosModel {
    spice::MosModel {
        polarity: spice::MosPolarity::Nmos,
        vth0: 0.45,
        kp: 300e-6,
        clm: 0.02e-6,
        gamma: 0.4,
        phi: 0.8,
        nsub: 1.4,
        cox: 8.5e-3,
        cov: 3e-10,
        cj: 1e-3,
        ldiff: 0.4e-6,
        kf: 1e-26,
        af: 1.0,
        noise_gamma: 2.0 / 3.0,
    }
}

/// Experiment-scale knobs, read from the environment so the default run is
/// laptop-sized while `REPEATS=10 DE_BUDGET=10000` reproduces the paper's
/// protocol exactly.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Repeats per (method, circuit); paper: 10.
    pub repeats: usize,
    /// Budget for the model-based methods; paper: 500.
    pub budget: usize,
    /// Budget for DE; paper: 10000.
    pub de_budget: usize,
}

impl Scale {
    /// Reads `REPEATS`, `BUDGET`, `DE_BUDGET` from the environment with
    /// laptop-scale defaults (3 / 500 / 2000).
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Scale {
            repeats: get("REPEATS", 3),
            budget: get("BUDGET", 500),
            de_budget: get("DE_BUDGET", 2000),
        }
    }
}

/// All runs of one method on one problem.
#[derive(Debug)]
pub struct MethodRuns {
    /// Method display name.
    pub name: String,
    /// One result per repeat.
    pub runs: Vec<RunResult>,
}

impl MethodRuns {
    /// Success rate: runs that found any feasible design.
    pub fn successes(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.sims_to_feasible().is_some())
            .count()
    }

    /// Mean simulations-to-first-feasible over the *successful* runs.
    pub fn mean_sims_to_feasible(&self) -> Option<f64> {
        let v: Vec<f64> = self
            .runs
            .iter()
            .filter_map(|r| r.sims_to_feasible().map(|n| n as f64))
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Min / max / mean best-feasible objective across successful runs.
    pub fn objective_stats(&self) -> Option<(f64, f64, f64)> {
        let v: Vec<f64> = self
            .runs
            .iter()
            .filter_map(RunResult::best_feasible_objective)
            .collect();
        if v.is_empty() {
            return None;
        }
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        Some((min, max, mean))
    }

    /// Total model time across runs.
    pub fn model_time(&self) -> Duration {
        self.runs.iter().map(|r| r.model_time).sum()
    }

    /// Total simulation time across runs.
    pub fn sim_time(&self) -> Duration {
        self.runs.iter().map(|r| r.sim_time).sum()
    }

    /// Mean best-FoM trace across runs, padded with each run's final value
    /// (the series of the paper's Figures 3/4).
    pub fn mean_trace(&self, len: usize) -> Vec<f64> {
        let mut mean = vec![0.0; len];
        for run in &self.runs {
            let trace = run.history.best_trace();
            let last = trace.last().copied().unwrap_or(f64::NAN);
            for (i, m) in mean.iter_mut().enumerate() {
                *m += trace.get(i).copied().unwrap_or(last);
            }
        }
        for m in &mut mean {
            *m /= self.runs.len().max(1) as f64;
        }
        mean
    }
}

/// The four methods of the building-block comparison (paper §III-A), with
/// the budgets of the paper's protocol scaled by [`Scale`].
pub fn building_block_suite(
    problem: &dyn SizingProblem,
    fom: &Fom,
    scale: &Scale,
    stop: StopPolicy,
) -> Vec<MethodRuns> {
    let mut out = Vec::new();
    let methods: Vec<(Box<dyn Optimizer>, usize)> = vec![
        (Box::new(DifferentialEvolution::default()), scale.de_budget),
        (Box::new(BoWei::default()), scale.budget),
        (Box::new(Gaspad::default()), scale.budget),
        (Box::new(DnnOpt::new(DnnOptConfig::default())), scale.budget),
    ];
    for (method, budget) in methods {
        let mut runs = Vec::new();
        for rep in 0..scale.repeats {
            eprintln!(
                "  [{}] run {}/{} (budget {budget})",
                method.name(),
                rep + 1,
                scale.repeats
            );
            runs.push(method.run(problem, fom, budget, stop, rep as u64));
        }
        out.push(MethodRuns {
            name: method.name().to_string(),
            runs,
        });
    }
    out
}

/// Formats a duration as fractional seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64())
}

/// Writes FoM-curve CSV: column 0 is the simulation index, then one column
/// per method (mean best-FoM).
///
/// # Errors
///
/// Propagates file-system errors.
pub fn write_traces_csv(path: &str, methods: &[MethodRuns], len: usize) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    write!(f, "sim")?;
    for m in methods {
        write!(f, ",{}", m.name)?;
    }
    writeln!(f)?;
    let traces: Vec<Vec<f64>> = methods.iter().map(|m| m.mean_trace(len)).collect();
    for i in 0..len {
        write!(f, "{}", i + 1)?;
        for t in &traces {
            write!(f, ",{:.6}", t[i])?;
        }
        writeln!(f)?;
    }
    Ok(())
}

/// Renders a coarse ASCII plot of the mean FoM curves, so figure shapes
/// are visible without leaving the terminal.
pub fn ascii_plot(methods: &[MethodRuns], len: usize, title: &str) -> String {
    let traces: Vec<(String, Vec<f64>)> = methods
        .iter()
        .map(|m| (m.name.clone(), m.mean_trace(len)))
        .collect();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, t) in &traces {
        for &v in t {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    if !lo.is_finite() || hi <= lo {
        return format!("{title}: (no data)\n");
    }
    let rows = 16;
    let cols = 64;
    let mut grid = vec![vec![' '; cols]; rows];
    let marks = ['D', 'B', 'G', '*']; // DE, BO-wEI, GASPAD, DNN-Opt
    for (ti, (_, t)) in traces.iter().enumerate() {
        let mark = marks.get(ti).copied().unwrap_or('?');
        for c in 0..cols {
            let idx = ((c as f64 / (cols - 1) as f64) * (len - 1) as f64) as usize;
            let v = t[idx.min(t.len() - 1)];
            if !v.is_finite() {
                continue;
            }
            let r = ((hi - v) / (hi - lo) * (rows - 1) as f64).round() as usize;
            grid[r.min(rows - 1)][c] = mark;
        }
    }
    let mut out = format!("{title}  (D=DE B=BO-wEI G=GASPAD *=DNN-Opt)\n");
    out.push_str(&format!("FoM {hi:>8.3} +\n"));
    for row in grid {
        out.push_str("             |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!("FoM {lo:>8.3} + sims 1 .. {len}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opt::{RandomSearch, SpecResult};

    struct Toy;
    impl SizingProblem for Toy {
        fn dim(&self) -> usize {
            2
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0; 2], vec![1.0; 2])
        }
        fn num_constraints(&self) -> usize {
            1
        }
        fn evaluate(&self, x: &[f64]) -> SpecResult {
            SpecResult {
                objective: x[0],
                constraints: vec![0.2 - x[1]],
            }
        }
    }

    fn toy_runs() -> MethodRuns {
        let fom = Fom::uniform(1.0, 1);
        let runs = (0..3)
            .map(|s| RandomSearch.run(&Toy, &fom, 30, StopPolicy::Exhaust, s))
            .collect();
        MethodRuns {
            name: "Random".into(),
            runs,
        }
    }

    #[test]
    fn stats_aggregate() {
        let m = toy_runs();
        assert_eq!(m.successes(), 3);
        assert!(m.mean_sims_to_feasible().unwrap() >= 1.0);
        let (min, max, mean) = m.objective_stats().unwrap();
        assert!(min <= mean && mean <= max);
    }

    #[test]
    fn mean_trace_is_monotone_and_padded() {
        let m = toy_runs();
        let t = m.mean_trace(50);
        assert_eq!(t.len(), 50);
        for w in t.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn csv_writer_produces_header_and_rows() {
        let m = toy_runs();
        let path = std::env::temp_dir().join("dnnopt_trace_test.csv");
        write_traces_csv(path.to_str().unwrap(), &[m], 10).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("sim,Random"));
        assert_eq!(body.lines().count(), 11);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ascii_plot_renders() {
        let m = toy_runs();
        let plot = ascii_plot(&[m], 30, "test");
        assert!(plot.contains("FoM"));
        assert!(plot.contains('D'));
    }

    #[test]
    fn scale_env_defaults() {
        let s = Scale::from_env();
        assert!(s.repeats >= 1);
        assert!(s.budget >= 10);
    }
}
