//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates.io, so this crate provides the
//! exact macro surface the workspace's property tests use — [`proptest!`]
//! with an optional `#![proptest_config(...)]` header, `prop_assert!`,
//! `prop_assert_eq!`, range strategies and [`collection::vec`] — backed by
//! deterministic random sampling (no shrinking). Each test function runs
//! `cases` random cases seeded from the test name, so failures reproduce
//! across runs.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration and runtime support used by the generated tests.
pub mod test_runner {
    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Deterministic per-test random source.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from the test name and case index (FNV-1a over
    /// the name, mixed with the case number) so every case is reproducible.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ ((case as u64) << 32 | case as u64),
        ))
    }
}

/// Value-generation strategies (sampling only; no shrinking).
pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.0.gen_range(self.start..self.end)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.start..self.end)
                }
            }
        )*};
    }

    int_strategy!(usize, u64, u32);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a `proptest!` body, reporting the failing
/// expression (and optional message) without unwinding through foreign code.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)*)
            )));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
}

/// Binds one `name in strategy` parameter list entry after another.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $name:ident in $strat:expr) => {
        let mut $name = $crate::strategy::Strategy::sample(&($strat), &mut *$rng);
    };
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut *$rng);
    };
    ($rng:ident; mut $name:ident in $strat:expr, $($rest:tt)*) => {
        let mut $name = $crate::strategy::Strategy::sample(&($strat), &mut *$rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut *$rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($params:tt)* ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        let __rng = &mut __rng;
                        $crate::__proptest_bind!(__rng; $($params)*);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// The `proptest!` block macro: wraps `#[test]` functions whose parameters
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 1usize..10, x in -2.0..2.0f64) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0.0..1.0f64, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn exact_size_vec(mut v in crate::collection::vec(0.0..1.0f64, 5)) {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert_eq!(v.len(), 5);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        use crate::strategy::Strategy;
        let s = 0.0..1.0f64;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
