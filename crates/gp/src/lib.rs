//! Gaussian-process regression and Bayesian-optimization acquisition
//! functions.
//!
//! This crate is the substrate for the paper's two GP-based baselines:
//!
//! - **BO-wEI** (Lyu et al., DAC 2018): Bayesian optimization with a
//!   weighted-Expected-Improvement acquisition blended with the probability
//!   of feasibility for each constraint;
//! - **GASPAD** (Liu et al., TCAD 2014): a GP-assisted evolutionary
//!   algorithm that prescreens DE offspring with a lower-confidence-bound
//!   rule.
//!
//! Exact GP regression with an RBF-ARD kernel, Cholesky solves, and
//! log-marginal-likelihood hyperparameter search over a multi-start grid.
//!
//! # Example
//!
//! ```
//! use gp::{GpRegressor, RbfKernel};
//! use linalg::Matrix;
//!
//! // Noise-free observations of f(x) = x².
//! let x = Matrix::from_rows(&[&[0.0], &[0.5], &[1.0]]);
//! let y = vec![0.0, 0.25, 1.0];
//! let gp = GpRegressor::fit(x, y, RbfKernel::isotropic(1, 0.5, 1.0), 1e-8)?;
//! let (mean, var) = gp.predict(&[0.25]);
//! assert!((mean - 0.0625).abs() < 0.1); // 3 points: coarse interpolation
//! assert!(var >= 0.0);
//! # Ok::<(), gp::GpError>(())
//! ```

mod acquisition;
mod kernel;
mod regressor;

pub use acquisition::{
    expected_improvement, lower_confidence_bound, normal_cdf, normal_pdf,
    probability_of_feasibility, weighted_expected_improvement,
};
pub use kernel::RbfKernel;
pub use regressor::{GpError, GpRegressor};
