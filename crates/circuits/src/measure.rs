//! Measurement extraction from analysis results.
//!
//! These helpers turn raw sweeps and waveforms into the figures the paper's
//! constraint lists are written in: gains in dB, unity-gain frequency,
//! phase/gain margins, crossing and settling times.

/// Converts a magnitude ratio to decibels (`-inf` guarded to -400 dB).
pub fn db(x: f64) -> f64 {
    if x <= 0.0 {
        -400.0
    } else {
        20.0 * x.log10()
    }
}

/// Converts decibels to a magnitude ratio.
pub fn from_db(d: f64) -> f64 {
    10f64.powf(d / 20.0)
}

/// Log-log interpolated frequency at which `mags` first crosses `level`
/// downward. Returns `None` if the response never crosses.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn crossing_frequency(freqs: &[f64], mags: &[f64], level: f64) -> Option<f64> {
    assert_eq!(freqs.len(), mags.len(), "grid length mismatch");
    for i in 1..freqs.len() {
        let (m0, m1) = (mags[i - 1], mags[i]);
        if m0 >= level && m1 < level {
            // Interpolate in log-frequency / log-magnitude space.
            let (l0, l1) = (m0.max(1e-30).ln(), m1.max(1e-30).ln());
            let t = if (l1 - l0).abs() < 1e-30 {
                0.0
            } else {
                (level.ln() - l0) / (l1 - l0)
            };
            let (f0, f1) = (freqs[i - 1].ln(), freqs[i].ln());
            return Some((f0 + t * (f1 - f0)).exp());
        }
    }
    None
}

/// Unity-gain frequency of a magnitude response.
pub fn unity_gain_frequency(freqs: &[f64], mags: &[f64]) -> Option<f64> {
    crossing_frequency(freqs, mags, 1.0)
}

/// Value of a sampled response at frequency `f` (log-x linear interpolation).
///
/// # Panics
///
/// Panics on an empty or mismatched grid.
pub fn sample_response(freqs: &[f64], vals: &[f64], f: f64) -> f64 {
    assert_eq!(freqs.len(), vals.len(), "grid length mismatch");
    assert!(!freqs.is_empty(), "empty grid");
    if f <= freqs[0] {
        return vals[0];
    }
    if f >= freqs[freqs.len() - 1] {
        return vals[vals.len() - 1];
    }
    for i in 1..freqs.len() {
        if freqs[i] >= f {
            let t = (f.ln() - freqs[i - 1].ln()) / (freqs[i].ln() - freqs[i - 1].ln());
            return vals[i - 1] + t * (vals[i] - vals[i - 1]);
        }
    }
    vals[vals.len() - 1]
}

/// Phase margin in degrees: `180° + phase(UGF)` with `phases` in unwrapped
/// radians. `None` when the gain never crosses unity.
pub fn phase_margin(freqs: &[f64], mags: &[f64], phases: &[f64]) -> Option<f64> {
    let ugf = unity_gain_frequency(freqs, mags)?;
    let ph = sample_response(freqs, phases, ugf);
    Some(180.0 + ph.to_degrees())
}

/// Gain margin in dB: `−gain(f180)` where `f180` is the −180° phase
/// crossing. `None` if the phase never reaches −180°.
pub fn gain_margin_db(freqs: &[f64], mags: &[f64], phases: &[f64]) -> Option<f64> {
    let target = -std::f64::consts::PI;
    for i in 1..freqs.len() {
        if phases[i - 1] > target && phases[i] <= target {
            let t = (target - phases[i - 1]) / (phases[i] - phases[i - 1]);
            let lf = freqs[i - 1].ln() + t * (freqs[i].ln() - freqs[i - 1].ln());
            let m = sample_response(freqs, mags, lf.exp());
            return Some(-db(m));
        }
    }
    None
}

/// First time a waveform crosses `level` in the given direction, linearly
/// interpolated. `None` if it never does.
pub fn crossing_time(wave: &[(f64, f64)], level: f64, rising: bool) -> Option<f64> {
    for w in wave.windows(2) {
        let ((t0, v0), (t1, v1)) = (w[0], w[1]);
        let crossed = if rising {
            v0 < level && v1 >= level
        } else {
            v0 > level && v1 <= level
        };
        if crossed {
            let t = if (v1 - v0).abs() < 1e-300 {
                0.0
            } else {
                (level - v0) / (v1 - v0)
            };
            return Some(t0 + t * (t1 - t0));
        }
    }
    None
}

/// Settling time after `t_start`: the last instant the waveform is outside
/// `final ± tol`, minus `t_start`. Returns `None` if the waveform ends
/// outside the band (never settles), and `Some(0)` if it never leaves it.
pub fn settling_time(wave: &[(f64, f64)], t_start: f64, v_final: f64, tol: f64) -> Option<f64> {
    let mut last_outside: Option<f64> = None;
    let mut any = false;
    for &(t, v) in wave {
        if t < t_start {
            continue;
        }
        any = true;
        if (v - v_final).abs() > tol {
            last_outside = Some(t);
        }
    }
    if !any {
        return None;
    }
    match last_outside {
        None => Some(0.0),
        Some(t) => {
            // If the last point is still outside, it never settled.
            let t_end = wave.last().map(|p| p.0).unwrap_or(t_start);
            if (t - t_end).abs() < 1e-18 {
                None
            } else {
                Some(t - t_start)
            }
        }
    }
}

/// Unwraps a sequence of phases (radians) so consecutive samples never jump
/// by more than π — required before interpolating phase margins.
pub fn unwrap_phases(raw: impl IntoIterator<Item = f64>) -> Vec<f64> {
    let mut out = Vec::new();
    let mut offset = 0.0;
    let mut prev = 0.0;
    for (i, ph) in raw.into_iter().enumerate() {
        if i > 0 {
            let mut d = ph + offset - prev;
            while d > std::f64::consts::PI {
                offset -= 2.0 * std::f64::consts::PI;
                d = ph + offset - prev;
            }
            while d < -std::f64::consts::PI {
                offset += 2.0 * std::f64::consts::PI;
                d = ph + offset - prev;
            }
        }
        prev = ph + offset;
        out.push(prev);
    }
    out
}

/// Peak of a response: `(f_peak, magnitude)` at the maximum.
///
/// # Panics
///
/// Panics on an empty or mismatched grid.
pub fn peak(freqs: &[f64], mags: &[f64]) -> (f64, f64) {
    assert_eq!(freqs.len(), mags.len(), "grid length mismatch");
    assert!(!freqs.is_empty(), "empty grid");
    let mut best = 0;
    for i in 1..mags.len() {
        if mags[i] > mags[best] {
            best = i;
        }
    }
    (freqs[best], mags[best])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        assert!((db(10.0) - 20.0).abs() < 1e-12);
        assert!((from_db(40.0) - 100.0).abs() < 1e-9);
        assert_eq!(db(0.0), -400.0);
    }

    fn one_pole(f: f64, a0: f64, fp: f64) -> (f64, f64) {
        let w = f / fp;
        let mag = a0 / (1.0 + w * w).sqrt();
        let ph = -(w.atan());
        (mag, ph)
    }

    #[test]
    fn ugf_of_one_pole_system() {
        // A0 = 1000, fp = 1 kHz → UGF ≈ 1 MHz.
        let freqs: Vec<f64> = (0..140)
            .map(|i| 10f64.powf(1.0 + i as f64 * 0.05))
            .collect();
        let mags: Vec<f64> = freqs.iter().map(|&f| one_pole(f, 1000.0, 1e3).0).collect();
        let ugf = unity_gain_frequency(&freqs, &mags).unwrap();
        assert!((ugf / 1e6 - 1.0).abs() < 0.02, "ugf {ugf}");
    }

    #[test]
    fn phase_margin_of_one_pole_is_ninety() {
        let freqs: Vec<f64> = (0..160)
            .map(|i| 10f64.powf(1.0 + i as f64 * 0.05))
            .collect();
        let mags: Vec<f64> = freqs.iter().map(|&f| one_pole(f, 1000.0, 1e3).0).collect();
        let phases: Vec<f64> = freqs.iter().map(|&f| one_pole(f, 1000.0, 1e3).1).collect();
        let pm = phase_margin(&freqs, &mags, &phases).unwrap();
        assert!((pm - 90.0).abs() < 2.0, "pm {pm}");
    }

    #[test]
    fn gain_margin_of_three_pole_system() {
        // Three identical poles at 1 kHz: phase hits -180° at √3·fp where
        // each pole contributes 60°; |H| there = a0/8.
        let a0 = 100.0;
        let freqs: Vec<f64> = (0..200)
            .map(|i| 10f64.powf(1.0 + i as f64 * 0.03))
            .collect();
        let resp = |f: f64| {
            let w: f64 = f / 1e3;
            let mag = a0 / (1.0 + w * w).powf(1.5);
            let ph = -3.0 * w.atan();
            (mag, ph)
        };
        let mags: Vec<f64> = freqs.iter().map(|&f| resp(f).0).collect();
        let phases: Vec<f64> = freqs.iter().map(|&f| resp(f).1).collect();
        let gm = gain_margin_db(&freqs, &mags, &phases).unwrap();
        let expect = -db(a0 / 8.0);
        assert!((gm - expect).abs() < 0.5, "gm {gm} expect {expect}");
    }

    #[test]
    fn crossing_time_interpolates() {
        let wave = vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)];
        assert!((crossing_time(&wave, 0.5, true).unwrap() - 0.5).abs() < 1e-12);
        assert!(crossing_time(&wave, 0.5, false).is_none());
        let fall = vec![(0.0, 1.0), (1.0, 0.0)];
        assert!((crossing_time(&fall, 0.25, false).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn settling_time_of_exponential() {
        // v(t) = 1 - e^-t, tol 0.01 → settles at t = ln(100) ≈ 4.605.
        let wave: Vec<(f64, f64)> = (0..1000)
            .map(|i| (i as f64 * 0.01, 1.0 - (-i as f64 * 0.01).exp()))
            .collect();
        let ts = settling_time(&wave, 0.0, 1.0, 0.01).unwrap();
        assert!((ts - 4.605).abs() < 0.02, "ts {ts}");
    }

    #[test]
    fn settling_never_and_immediate() {
        let ramp: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64)).collect();
        assert!(settling_time(&ramp, 0.0, 100.0, 0.5).is_none());
        let flat: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 1.0)).collect();
        assert_eq!(settling_time(&flat, 0.0, 1.0, 0.5), Some(0.0));
    }

    #[test]
    fn peak_detection() {
        let freqs = vec![1.0, 10.0, 100.0, 1000.0];
        let mags = vec![1.0, 3.0, 2.0, 0.5];
        assert_eq!(peak(&freqs, &mags), (10.0, 3.0));
    }

    #[test]
    fn sample_response_clamps_and_interpolates() {
        let freqs = vec![10.0, 100.0, 1000.0];
        let vals = vec![0.0, 1.0, 2.0];
        assert_eq!(sample_response(&freqs, &vals, 1.0), 0.0);
        assert_eq!(sample_response(&freqs, &vals, 1e6), 2.0);
        let mid = sample_response(&freqs, &vals, 31.6227766);
        assert!((mid - 0.5).abs() < 1e-6);
    }
}
