//! Minimal dense neural networks for the DNN-Opt actor/critic.
//!
//! The Rust deep-learning ecosystem is thin, and DNN-Opt needs one unusual
//! capability that rules out most off-the-shelf options anyway: training the
//! *actor* network requires the gradient of a scalar loss **with respect to
//! the inputs** of the (frozen) *critic* network, so gradients must flow
//! critic-output → critic-input → actor-output → actor-parameters. This
//! crate therefore implements exactly what is needed, from scratch:
//!
//! - [`Mlp`]: a multi-layer perceptron with ReLU/Tanh hidden activations and
//!   a linear output layer;
//! - [`Mlp::backward`]: reverse-mode differentiation returning both
//!   parameter gradients and the gradient with respect to the input batch;
//! - [`Adam`]: the Adam optimizer;
//! - [`Scaler`]: feature standardization fitted on training data.
//!
//! # Example: fit a small regression
//!
//! ```
//! use linalg::Matrix;
//! use nn::{Activation, Adam, Mlp};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut net = Mlp::new(&[1, 16, 1], Activation::Tanh, &mut rng);
//! let x = Matrix::from_fn(32, 1, |i, _| i as f64 / 32.0);
//! let y = x.map(|v| (2.0 * v).sin());
//! let mut adam = Adam::new(1e-2);
//! for _ in 0..800 {
//!     nn::train_step_mse(&mut net, &mut adam, &x, &y);
//! }
//! let pred = net.forward(&x);
//! assert!(nn::mse(&pred, &y) < 5e-3);
//! ```

mod adam;
mod mlp;
mod scaler;
mod workspace;

pub use adam::Adam;
pub use mlp::{Activation, ForwardCache, Gradients, Mlp};
pub use scaler::Scaler;
pub use workspace::{train_step_mse_ws, TrainWorkspace};

use linalg::Matrix;

/// Mean-squared error between predictions and targets, averaged over all
/// entries.
///
/// # Panics
///
/// Panics if the shapes disagree.
pub fn mse(pred: &Matrix, target: &Matrix) -> f64 {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "mse: shape mismatch"
    );
    let n = (pred.rows() * pred.cols()) as f64;
    pred.as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(p, t)| (p - t).powi(2))
        .sum::<f64>()
        / n
}

/// Gradient of [`mse`] with respect to the predictions: `2(pred − target)/n`.
pub fn mse_grad(pred: &Matrix, target: &Matrix) -> Matrix {
    let n = (pred.rows() * pred.cols()) as f64;
    Matrix::from_fn(pred.rows(), pred.cols(), |i, j| {
        2.0 * (pred[(i, j)] - target[(i, j)]) / n
    })
}

/// One full-batch MSE gradient step: forward, backward, Adam update.
/// Returns the pre-step loss.
pub fn train_step_mse(net: &mut Mlp, adam: &mut Adam, x: &Matrix, y: &Matrix) -> f64 {
    telemetry::record(telemetry::Metric::TrainSteps, 1);
    let (pred, cache) = net.forward_cached(x);
    let loss = mse(&pred, y);
    let grad_out = mse_grad(&pred, y);
    let (grads, _) = net.backward(&cache, &grad_out);
    adam.step(net, &grads);
    loss
}

/// Draws a standard-normal sample via Box-Muller (keeps the workspace free
/// of a `rand_distr` dependency).
pub fn gaussian<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn mse_of_equal_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.0, 0.0]]);
        assert!((mse(&a, &b) - 2.5).abs() < 1e-15);
    }

    #[test]
    fn mse_grad_matches_finite_difference() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[0.2, -1.0]]);
        let g = mse_grad(&a, &b);
        let h = 1e-6;
        for i in 0..2 {
            for j in 0..2 {
                let mut ap = a.clone();
                ap[(i, j)] += h;
                let mut am = a.clone();
                am[(i, j)] -= h;
                let fd = (mse(&ap, &b) - mse(&am, &b)) / (2.0 * h);
                assert!((g[(i, j)] - fd).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
