//! Deterministic parasitic RC-mesh workloads — the post-layout-scale
//! netlists the supernodal sparse engine is tuned on.
//!
//! Pre-layout netlists in this workspace are n ≈ 30–120 unknowns; an
//! extracted (post-layout) industrial block is hundreds to thousands,
//! dominated by parasitic RC structure. This module generates that regime
//! two ways:
//!
//! - [`build_rc_grid`] — a standalone rectangular resistor grid with
//!   grounded capacitors and a corner-to-corner current path, the
//!   canonical extraction-style topology whose factorization fill-in
//!   produces the dense trailing blocks supernodal elimination exploits.
//!   Used by the `sparse_scaling` bench and the determinism suite.
//! - [`apply_post_layout`] / [`update_post_layout`] — distributed RC
//!   ladders layered on an existing circuit: every estimated node
//!   capacitance (the [`crate::parasitics`] MLParest stand-in) is split
//!   into an open-ended multi-segment RC line instead of one lumped cap,
//!   multiplying the unknown count the way real extraction does.
//!   [`crate::FoldedCascodeOta::post_layout`] builds its testbenches
//!   through these.
//!
//! Everything is a pure function of its inputs — element values use a
//! fixed xorshift stream seeded by the node index, so the same `n` always
//! yields the bit-identical circuit (the determinism contract extends to
//! workload generation).

use spice::{Circuit, SpiceError, Waveform, GND};

use crate::parasitics::{node_caps, ParasiticConfig};

/// Per-segment series resistance \[Ω\] of a generated grid edge or ladder
/// segment, before jitter. Extraction-typical mid-level metal numbers.
const GRID_BASE_RES: f64 = 50.0;

/// Per-node grounded capacitance \[F\] of a generated grid node, before
/// jitter.
const GRID_BASE_CAP: f64 = 1.0e-15;

/// Deterministic value jitter in `[0, 1)` from a node/edge index — a
/// splitmix-style hash, so neighboring indices decorrelate fully.
fn jitter(k: u64) -> f64 {
    let mut z = k.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Builds an extraction-style RC grid with exactly `n` MNA unknowns
/// (`n - 1` grid nodes plus one driver branch): nodes laid out row-major
/// in a near-square rectangle (last row partial), resistors between
/// horizontal and vertical neighbors, a grounded capacitor at every node,
/// a DC/AC voltage driver at the first node, and a load resistor at the
/// last node so a real current distribution flows corner to corner.
///
/// On top of the nearest-neighbor mesh, every node couples resistively to
/// its diagonal neighbors and to its pitch-2 and pitch-3 neighbors in each
/// direction, with proportionally weaker conductances — the reduced
/// network of a multi-layer extraction, where overlapping wires on
/// adjacent metal layers and via stitching connect beyond the abutting
/// cell. This longer-range coupling is what gives post-layout matrices
/// their characteristic fill-in: factorization produces dense trailing
/// blocks, the structure the supernodal engine in `linalg` feeds on.
///
/// Element values carry deterministic ±50% jitter so no two pivots tie
/// artificially; the circuit is a pure function of `n`.
///
/// # Panics
///
/// Panics if `n < 2` (one grid node plus the driver branch is the minimum)
/// or netlist insertion fails (impossible for generated names).
pub fn build_rc_grid(n: usize) -> Circuit {
    assert!(n >= 2, "RC grid needs at least 2 unknowns, got {n}");
    let nodes = n - 1;
    let cols = (nodes as f64).sqrt().ceil() as usize;
    let mut ckt = Circuit::new();
    let ids: Vec<usize> = (0..nodes).map(|k| ckt.node(&format!("g{k}"))).collect();
    for k in 0..nodes {
        let row = k / cols;
        let col = k % cols;
        if col + 1 < cols && k + 1 < nodes {
            let r = GRID_BASE_RES * (0.5 + jitter(2 * k as u64));
            ckt.add_resistor(&format!("RH{k}"), ids[k], ids[k + 1], r)
                .expect("generated horizontal resistor");
        }
        if k + cols < nodes {
            let r = GRID_BASE_RES * (0.5 + jitter(2 * k as u64 + 1));
            ckt.add_resistor(&format!("RV{k}"), ids[k], ids[k + cols], r)
                .expect("generated vertical resistor");
        }
        // Adjacent-layer coupling: diagonals at 2× the base resistance,
        // pitch-2 at 4×, pitch-3 at 8× (coupling falls off with distance).
        let coupling: [(usize, bool, f64, &str); 12] = [
            (cols + 1, col + 1 < cols, 2.0, "a"),
            (cols.wrapping_sub(1), col > 0 && cols > 1, 2.0, "b"),
            (2, col + 2 < cols, 4.0, "c"),
            (2 * cols, true, 4.0, "d"),
            (3, col + 3 < cols, 8.0, "e"),
            (3 * cols, true, 8.0, "f"),
            (2 * cols + 2, col + 2 < cols, 6.0, "g"),
            (2 * cols - 2, col > 1, 6.0, "h"),
            (3 * cols + 3, col + 3 < cols, 10.0, "i"),
            (3 * cols - 3, col > 2, 10.0, "j"),
            (4, col + 4 < cols, 12.0, "m"),
            (4 * cols, true, 12.0, "n"),
        ];
        for (j, &(step, in_row, factor, tag)) in coupling.iter().enumerate() {
            if in_row && k + step < nodes {
                let r = GRID_BASE_RES
                    * factor
                    * (0.5 + jitter(0x2_0000_0000 + 12 * k as u64 + j as u64));
                ckt.add_resistor(&format!("RC{k}{tag}"), ids[k], ids[k + step], r)
                    .expect("generated coupling resistor");
            }
        }
        let c = GRID_BASE_CAP * (0.5 + jitter(0x1_0000_0000 + k as u64));
        ckt.add_capacitor(&format!("CG{k}"), ids[k], GND, c)
            .expect("generated grounded capacitor");
        let _ = row;
    }
    ckt.add_vsource_ac("VDRV", ids[0], GND, Waveform::Dc(1.0), 1.0)
        .expect("generated driver");
    ckt.add_resistor("RLOAD", ids[nodes - 1], GND, 1e3)
        .expect("generated load");
    debug_assert_eq!(ckt.num_unknowns(), n);
    ckt
}

/// Distributed-parasitic configuration for [`apply_post_layout`].
#[derive(Debug, Clone)]
pub struct PostLayoutConfig {
    /// RC segments per node ladder (each meshed node adds this many
    /// unknowns).
    pub segments: usize,
    /// Series resistance per ladder segment \[Ω\].
    pub seg_resistance: f64,
    /// The node-capacitance estimator whose per-node totals are split
    /// across the ladder.
    pub parasitics: ParasiticConfig,
}

impl Default for PostLayoutConfig {
    fn default() -> Self {
        PostLayoutConfig {
            segments: 8,
            seg_resistance: GRID_BASE_RES,
            parasitics: ParasiticConfig::default(),
        }
    }
}

/// Replaces the lumped parasitic estimate of every non-ground node with an
/// open-ended distributed RC line: `segments` series resistors
/// (`RPAR_<node>__s<i>`) chaining into internal nodes, each carrying an
/// equal share of the node's estimated capacitance
/// (`CPAR_<node>__s<i>`). Which nodes get ladders depends only on
/// connectivity, so the set inserted here is exactly the set
/// [`update_post_layout`] refreshes after a resize.
///
/// Returns the number of nodes meshed.
///
/// # Errors
///
/// Propagates netlist errors (duplicate names if applied twice).
pub fn apply_post_layout(ckt: &mut Circuit, cfg: &PostLayoutConfig) -> Result<usize, SpiceError> {
    let cap = node_caps(ckt, &cfg.parasitics);
    let mut meshed = 0;
    for (node, c) in cap.iter().enumerate().skip(1) {
        if *c <= 0.0 {
            continue;
        }
        let name = ckt.node_name(node).to_string();
        let per_seg = *c / cfg.segments as f64;
        let mut prev = node;
        for i in 0..cfg.segments {
            let seg = ckt.node(&format!("plm_{name}_{i}"));
            ckt.add_resistor(&format!("RPAR_{name}__s{i}"), prev, seg, cfg.seg_resistance)?;
            ckt.add_capacitor(&format!("CPAR_{name}__s{i}"), seg, GND, per_seg)?;
            prev = seg;
        }
        meshed += 1;
    }
    Ok(meshed)
}

/// Recomputes the parasitic estimate after device geometry changed and
/// writes the new per-segment values into the existing ladder capacitors
/// in place — the per-candidate companion of [`apply_post_layout`] for
/// cloned template circuits (the ladder *structure* is size-independent;
/// only the capacitance shares move).
///
/// Returns the number of nodes refreshed.
///
/// # Errors
///
/// Propagates netlist errors ([`apply_post_layout`] was never run on this
/// circuit).
pub fn update_post_layout(ckt: &mut Circuit, cfg: &PostLayoutConfig) -> Result<usize, SpiceError> {
    let cap = node_caps(ckt, &cfg.parasitics);
    let mut refreshed = 0;
    for (node, c) in cap.iter().enumerate().skip(1) {
        if *c <= 0.0 {
            continue;
        }
        let name = ckt.node_name(node).to_string();
        let per_seg = *c / cfg.segments as f64;
        for i in 0..cfg.segments {
            ckt.set_capacitance(&format!("CPAR_{name}__s{i}"), per_seg)?;
        }
        refreshed += 1;
    }
    Ok(refreshed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::tech_advanced;
    use spice::SimOptions;

    #[test]
    fn grid_has_exactly_n_unknowns() {
        for n in [2usize, 17, 200, 500] {
            let ckt = build_rc_grid(n);
            assert_eq!(ckt.num_unknowns(), n, "n = {n}");
        }
    }

    #[test]
    fn grid_is_deterministic() {
        let a = build_rc_grid(120);
        let b = build_rc_grid(120);
        assert_eq!(a.topology_id(), b.topology_id());
        let ra: Vec<_> = a.capacitive_elements();
        let rb: Vec<_> = b.capacitive_elements();
        assert_eq!(ra, rb);
    }

    #[test]
    fn grid_dc_solves_with_a_real_current_distribution() {
        let ckt = build_rc_grid(150);
        let op = spice::op(&ckt, &SimOptions::default()).unwrap();
        let first = ckt.find_node("g0").unwrap();
        let last = ckt.find_node("g148").unwrap();
        assert!((op.voltage(first) - 1.0).abs() < 1e-9);
        // Current flows corner to corner: the far node sits below the
        // driver but above ground.
        let v = op.voltage(last);
        assert!(v > 0.01 && v < 0.999, "far-corner voltage {v}");
    }

    #[test]
    fn post_layout_ladders_scale_unknowns_and_update_in_place() {
        let t = tech_advanced();
        let cfg = PostLayoutConfig {
            segments: 4,
            ..Default::default()
        };
        let build = |w: f64| {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let out = c.node("out");
            c.add_vsource("VDD", vdd, GND, Waveform::Dc(t.vdd)).unwrap();
            c.add_mosfet("M1", out, out, GND, GND, &t.nmos, w, 0.02e-6, 1.0)
                .unwrap();
            c.add_resistor("RL", vdd, out, 10e3).unwrap();
            c
        };
        let mut ckt = build(1e-6);
        let base_unknowns = ckt.num_unknowns();
        let meshed = apply_post_layout(&mut ckt, &cfg).unwrap();
        assert!(meshed >= 2);
        assert_eq!(ckt.num_unknowns(), base_unknowns + meshed * cfg.segments);
        // Updating after a resize must match a fresh application at the
        // new size, element for element.
        let mut fresh = build(5e-6);
        apply_post_layout(&mut fresh, &cfg).unwrap();
        ckt.set_mosfet_geometry("M1", 5e-6, 0.02e-6, 1.0).unwrap();
        let refreshed = update_post_layout(&mut ckt, &cfg).unwrap();
        assert_eq!(refreshed, meshed);
        assert_eq!(fresh.capacitive_elements(), ckt.capacitive_elements());
        // And the meshed circuit still solves.
        let op = spice::op(&ckt, &SimOptions::default()).unwrap();
        assert!(op.voltage(ckt.find_node("out").unwrap()) > 0.0);
    }
}
